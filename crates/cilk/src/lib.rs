//! # ccmm-cilk — fork/join computations, Cilk style
//!
//! The SPAA'98 paper treats the computation as given and names Cilk as
//! the canonical producer. This crate is that producer:
//!
//! * [`builder`]: a spawn/sync program builder with Cilk semantics
//!   (strands, spawn edges, implicit syncs) that unfolds a program into a
//!   [`ccmm_core::Computation`];
//! * [`programs`]: the workloads of the Cilk papers — `fib`, blocked
//!   matmul, a barrier stencil, and a tree reduction — with explicit
//!   memory traffic, used by the BACKER experiments and benchmarks.
//!
//! All built programs are determinate (race-free): every read has a
//! unique last writer through the dag, so any dag-consistent memory gives
//! them serial semantics — the property the Cilk memory-model line of
//! work set out to guarantee.

//! # Example
//!
//! ```
//! use ccmm_cilk::{build_program, race};
//! use ccmm_core::Location;
//!
//! let l = Location::new(0);
//! let c = build_program(|b, s| {
//!     b.write(s, l);
//!     b.spawn(s, |b, t| { b.read(t, l); });
//!     b.spawn(s, |b, t| { b.read(t, l); });
//!     b.sync(s);
//! });
//! assert_eq!(c.node_count(), 4); // write, two reads, join node
//! assert!(race::is_race_free(&c));
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod programs;
pub mod race;

pub use builder::{build_program, build_program_raw, ProgramBuilder, RawTrace, Strand};
pub use programs::conformance_workloads;
pub use programs::fib::{fib, fib_trace, FibProgram};
pub use programs::matmul::{matmul, matmul_trace, MatmulProgram};
pub use programs::reduce::{reduce, ReduceProgram};
pub use programs::sort::{mergesort, SortProgram};
pub use programs::stencil::{stencil, stencil_trace, StencilProgram};
