//! Parallel merge sort, Cilk style.
//!
//! Recursive halving with spawned sub-sorts; each merge reads its two
//! sorted runs from buffer A, writes the merged run into the temp buffer
//! B, and copies it back — the classic out-of-place merge with data
//! resident in A between levels. The memory pattern (read-two-runs /
//! write-one-run, read-heavy, log-depth) rounds out the workload set for
//! the BACKER experiments.
//!
//! Buffer A holds locations `0..n`, temp buffer B holds `n..2n`.

use crate::builder::{build_program, ProgramBuilder, Strand};
use ccmm_core::{Computation, Location};

/// A built merge-sort computation.
pub struct SortProgram {
    /// The computation dag.
    pub computation: Computation,
    /// Number of elements sorted.
    pub n: usize,
}

fn loc(buf: usize, i: usize, n: usize) -> Location {
    Location::new(buf * n + i)
}

/// Sorts `lo..hi` of buffer A in place (B as scratch).
fn sort_range(b: &mut ProgramBuilder, s: &mut Strand, lo: usize, hi: usize, n: usize) {
    if hi - lo <= 1 {
        return; // a single element is sorted where it lies
    }
    let mid = lo + (hi - lo) / 2;
    b.spawn(s, |b, t| sort_range(b, t, lo, mid, n));
    b.spawn(s, |b, t| sort_range(b, t, mid, hi, n));
    b.sync(s);
    // Merge A[lo..mid] + A[mid..hi] → B[lo..hi].
    for i in lo..hi {
        b.read(s, loc(0, i, n));
    }
    for i in lo..hi {
        b.write(s, loc(1, i, n));
    }
    // Copy back B[lo..hi] → A[lo..hi].
    for i in lo..hi {
        b.read(s, loc(1, i, n));
        b.write(s, loc(0, i, n));
    }
}

/// Builds the computation of sorting `n` elements (`n ≥ 1`).
pub fn mergesort(n: usize) -> SortProgram {
    assert!(n >= 1);
    let computation = build_program(|b, s| {
        // Initialise buffer A in parallel.
        for i in 0..n {
            b.spawn(s, |b, t| {
                b.write(t, loc(0, i, n));
            });
        }
        b.sync(s);
        sort_range(b, s, 0, n, n);
    });
    SortProgram { computation, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::Op;

    #[test]
    fn single_element() {
        let p = mergesort(1);
        // The init write plus the init-barrier sync node.
        assert_eq!(p.computation.node_count(), 2);
    }

    #[test]
    fn every_read_has_a_preceding_writer() {
        for n in [2usize, 3, 5, 8] {
            let p = mergesort(n);
            let c = &p.computation;
            for u in c.nodes() {
                if let Op::Read(l) = c.op(u) {
                    assert!(
                        c.writes_to(l).iter().any(|&w| c.precedes(w, u)),
                        "n={n}: read {u} of {l} unsupported"
                    );
                }
            }
        }
    }

    #[test]
    fn sort_is_race_free() {
        for n in [2usize, 4, 7] {
            assert!(crate::race::is_race_free(&mergesort(n).computation), "mergesort({n}) races");
        }
    }

    #[test]
    fn every_cell_of_a_written_at_each_level() {
        let n = 4;
        let p = mergesort(n);
        let c = &p.computation;
        for i in 0..n {
            // init + per-merge-level copy-back: levels = log2(4) = 2.
            assert_eq!(c.writes_to(loc(0, i, n)).len(), 3, "cell {i}");
        }
    }

    #[test]
    fn sibling_sorts_are_parallel() {
        let n = 4;
        let p = mergesort(n);
        let c = &p.computation;
        // The depth-1 merges write disjoint halves of B; those writes are
        // incomparable across siblings.
        let lw = c.writes_to(loc(1, 0, n))[0];
        let rw = c.writes_to(loc(1, 2, n))[0];
        assert!(c.reach().incomparable(lw, rw), "{lw} vs {rw}");
    }

    #[test]
    fn node_count_grows_n_log_n_ish() {
        let n8 = mergesort(8).computation.node_count();
        let n64 = mergesort(64).computation.node_count();
        let ratio = n64 as f64 / n8 as f64;
        assert!(ratio > 8.0 && ratio < 32.0, "ratio {ratio}");
    }
}
