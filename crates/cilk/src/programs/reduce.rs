//! Parallel tree reduction (sum of an array).
//!
//! Leaves read their input cells and write partial sums to fresh
//! locations; internal nodes read two partials and write their own. The
//! access pattern is read-heavy with a single final writer — a third
//! workload shape for the cache experiments.

use crate::builder::{build_program, ProgramBuilder, Strand};
use ccmm_core::{Computation, Location};
use ccmm_dag::NodeId;

/// A built reduction computation.
pub struct ReduceProgram {
    /// The computation dag.
    pub computation: Computation,
    /// Input cell locations.
    pub inputs: Vec<Location>,
    /// Location of the final sum.
    pub result_location: Location,
    /// Node writing the final sum.
    pub result_writer: NodeId,
}

fn reduce_range(
    b: &mut ProgramBuilder,
    s: &mut Strand,
    lo: usize,
    hi: usize,
    next_loc: &mut usize,
) -> (Location, NodeId) {
    if hi - lo == 1 {
        // Leaf: read input cell lo, write a partial.
        b.read(s, Location::new(lo));
        let part = Location::new(*next_loc);
        *next_loc += 1;
        let w = b.write(s, part);
        return (part, w);
    }
    let mid = lo + (hi - lo) / 2;
    let mut left = None;
    b.spawn(s, |b, t| {
        left = Some(reduce_range(b, t, lo, mid, next_loc));
    });
    let mut right = None;
    b.spawn(s, |b, t| {
        right = Some(reduce_range(b, t, mid, hi, next_loc));
    });
    b.sync(s);
    let (ll, _) = left.expect("left ran");
    let (rl, _) = right.expect("right ran");
    b.read(s, ll);
    b.read(s, rl);
    let part = Location::new(*next_loc);
    *next_loc += 1;
    let w = b.write(s, part);
    (part, w)
}

/// Builds the computation reducing `n` input cells (`n ≥ 1`). Input cells
/// occupy locations `0..n`; partials are allocated above them.
pub fn reduce(n: usize) -> ReduceProgram {
    assert!(n >= 1);
    let mut next_loc = n;
    let mut meta = None;
    let computation = build_program(|b, s| {
        // Initialise inputs in parallel.
        for i in 0..n {
            b.spawn(s, |b, t| {
                b.write(t, Location::new(i));
            });
        }
        b.sync(s);
        meta = Some(reduce_range(b, s, 0, n, &mut next_loc));
    });
    let (result_location, result_writer) = meta.expect("body ran");
    ReduceProgram {
        computation,
        inputs: (0..n).map(Location::new).collect(),
        result_location,
        result_writer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::Op;

    #[test]
    fn single_input() {
        let p = reduce(1);
        let c = &p.computation;
        // init write, sync?? (one child → sync node), read, write partial.
        assert!(c.node_count() >= 3);
        assert_eq!(c.writes_to(p.result_location).len(), 1);
    }

    #[test]
    fn partials_are_unique_writes() {
        let p = reduce(8);
        let c = &p.computation;
        for l in c.locations() {
            assert_eq!(c.writes_to(l).len(), 1, "location {l}");
        }
    }

    #[test]
    fn result_writer_is_sink() {
        let p = reduce(8);
        assert_eq!(p.computation.dag().leaves(), vec![p.result_writer]);
    }

    #[test]
    fn every_read_is_satisfied() {
        let p = reduce(7); // non-power-of-two split
        let c = &p.computation;
        for u in c.nodes() {
            if let Op::Read(l) = c.op(u) {
                assert!(c.writes_to(l).iter().any(|&w| c.precedes(w, u)), "read {u} of {l}");
            }
        }
    }

    #[test]
    fn reduction_depth_is_logarithmic() {
        // The longest chain grows like log n, not n: compare 8 vs 64.
        fn depth(c: &Computation) -> usize {
            let order = ccmm_dag::topo::topo_sort(c.dag());
            let mut d = vec![0usize; c.node_count()];
            let mut best = 0;
            for u in order {
                for &v in c.dag().successors(u) {
                    d[v.index()] = d[v.index()].max(d[u.index()] + 1);
                    best = best.max(d[v.index()]);
                }
            }
            best
        }
        let d8 = depth(&reduce(8).computation);
        let d64 = depth(&reduce(64).computation);
        assert!(d64 < d8 * 4, "depth should grow logarithmically: {d8} vs {d64}");
    }
}
