//! Example Cilk-style programs producing computation dags.

pub mod fib;
pub mod matmul;
pub mod reduce;
pub mod sort;
pub mod stencil;

use crate::builder::build_program;
use ccmm_core::{Computation, Location};

/// Small named workloads for the conformance harness: real fork/join
/// programs kept to ≤ ~10 nodes, because the harness's definitional
/// oracles enumerate topological sorts (factorial in the node count).
pub fn conformance_workloads() -> Vec<(&'static str, Computation)> {
    let l0 = Location::new(0);
    let l1 = Location::new(1);
    // A deliberately racy fork/join: both strands write l0 before the
    // final read, so different schedules induce different observers.
    let racy = build_program(|b, s| {
        b.write(s, l0);
        b.spawn(s, |b, t| {
            b.write(t, l0);
            b.read(t, l1);
        });
        b.write(s, l1);
        b.sync(s);
        b.read(s, l0);
    });
    vec![
        ("fib2", fib::fib(2).computation),
        ("matmul1", matmul::matmul(1).computation),
        ("racy-fork-join", racy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_workloads_stay_oracle_sized() {
        let ws = conformance_workloads();
        assert_eq!(ws.len(), 3);
        for (name, c) in &ws {
            assert!(
                c.node_count() <= 10,
                "{name} has {} nodes — too big for oracles",
                c.node_count()
            );
            assert!(c.node_count() >= 2, "{name} is degenerate");
        }
    }
}
