//! Example Cilk-style programs producing computation dags.

pub mod fib;
pub mod matmul;
pub mod reduce;
pub mod sort;
pub mod stencil;
