//! A 1-D Jacobi stencil with barrier steps.
//!
//! Two ping-ponged arrays `cur` and `next`: at each time step every cell
//! of `next` is computed in parallel from the three neighbouring cells of
//! `cur`, followed by a sync (the barrier). This is the layered,
//! barrier-synchronised shape typical of data-parallel codes — a contrast
//! to fib's tree shape for the scheduling and cache experiments.

use crate::builder::{build_program, build_program_raw, ProgramBuilder, RawTrace, Strand};
use ccmm_core::{Computation, Location};

/// A built stencil computation.
pub struct StencilProgram {
    /// The computation dag.
    pub computation: Computation,
    /// Number of cells.
    pub width: usize,
    /// Number of time steps.
    pub steps: usize,
}

/// Location of cell `i` in array `buf` (0 or 1) for width `w`.
pub fn cell(buf: usize, i: usize, w: usize) -> Location {
    Location::new(buf * w + i)
}

fn update_cell(b: &mut ProgramBuilder, s: &mut Strand, src: usize, dst: usize, i: usize, w: usize) {
    if i > 0 {
        b.read(s, cell(src, i - 1, w));
    }
    b.read(s, cell(src, i, w));
    if i + 1 < w {
        b.read(s, cell(src, i + 1, w));
    }
    b.write(s, cell(dst, i, w));
}

fn stencil_program(b: &mut ProgramBuilder, s: &mut Strand, width: usize, steps: usize) {
    // Initialise array 0 in parallel.
    for i in 0..width {
        b.spawn(s, |b, t| {
            b.write(t, cell(0, i, width));
        });
    }
    b.sync(s);
    for step in 0..steps {
        let src = step % 2;
        let dst = 1 - src;
        for i in 0..width {
            b.spawn(s, |b, t| {
                update_cell(b, t, src, dst, i, width);
            });
        }
        b.sync(s); // barrier
    }
}

/// Builds a `width`-cell, `steps`-step Jacobi stencil computation.
pub fn stencil(width: usize, steps: usize) -> StencilProgram {
    assert!(width > 0);
    let computation = build_program(|b, s| stencil_program(b, s, width, steps));
    StencilProgram { computation, width, steps }
}

/// Builds the stencil as a lean [`RawTrace`] (see
/// [`crate::builder::ProgramBuilder::finish_raw`]). Node count grows as
/// Θ(width · steps).
pub fn stencil_trace(width: usize, steps: usize) -> RawTrace {
    assert!(width > 0);
    build_program_raw(|b, s| stencil_program(b, s, width, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::Op;

    #[test]
    fn node_count_formula() {
        // width w, steps t: w init writes + 1 sync + per step:
        // w cells × (reads + 1 write) + 1 sync. Interior cells read 3,
        // edge cells read 2 (w ≥ 2).
        let (w, t) = (5, 3);
        let p = stencil(w, t);
        let per_step_ops = 2 * 2 + (w - 2) * 3 + w; // reads + writes
        let expected = w + 1 + t * (per_step_ops + 1);
        assert_eq!(p.computation.node_count(), expected);
    }

    #[test]
    fn single_cell_stencil() {
        let p = stencil(1, 2);
        // 1 init + 1 sync + 2 × (1 read + 1 write + 1 sync).
        assert_eq!(p.computation.node_count(), 8);
    }

    #[test]
    fn cells_within_a_step_are_parallel() {
        let p = stencil(4, 1);
        let c = &p.computation;
        // Find the write nodes of step 0 (they write buffer 1).
        let step_writes: Vec<_> = (0..4)
            .map(|i| {
                let ws = c.writes_to(cell(1, i, 4));
                assert_eq!(ws.len(), 1);
                ws[0]
            })
            .collect();
        for (a, &x) in step_writes.iter().enumerate() {
            for &y in &step_writes[a + 1..] {
                assert!(c.reach().incomparable(x, y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn barrier_orders_adjacent_steps() {
        let p = stencil(3, 2);
        let c = &p.computation;
        // Every step-1 read (of buffer 1) follows every step-0 write.
        let step0_writes: Vec<_> =
            (0..3).flat_map(|i| c.writes_to(cell(1, i, 3)).to_vec()).collect();
        let step1_reads: Vec<_> =
            c.nodes().filter(|&u| matches!(c.op(u), Op::Read(l) if l.index() >= 3)).collect();
        assert!(!step1_reads.is_empty());
        for &w in &step0_writes {
            for &r in &step1_reads {
                assert!(c.precedes(w, r), "step-0 write {w} vs step-1 read {r}");
            }
        }
    }

    #[test]
    fn race_free_reads() {
        let p = stencil(4, 3);
        let c = &p.computation;
        for u in c.nodes() {
            if let Op::Read(l) = c.op(u) {
                let before = c.writes_to(l).iter().filter(|&&w| c.precedes(w, u)).count();
                assert!(before >= 1, "read {u} of {l} unsupported");
                // Writes to a cell across steps are barrier-ordered, so the
                // read is determinate: all preceding writes are themselves
                // totally ordered; determinacy holds because the latest one
                // is unique.
            }
        }
    }
}
