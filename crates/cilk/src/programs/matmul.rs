//! Blocked divide-and-conquer matrix multiplication, Cilk style.
//!
//! `C += A · B` on `n × n` matrices (`n` a power of two), recursively
//! quartered: the eight sub-multiplications are spawned in two parallel
//! waves of four, with a sync between the waves because both waves
//! accumulate into the same quadrants of `C` — exactly the dependence
//! structure of the Cilk matmul in \[BFJ+96b\] whose dag-consistent memory
//! behaviour motivated the paper.
//!
//! Each matrix element is one memory location. Leaves (`n = 1`) perform
//! `R A[i,k]; R B[k,j]; R C[i,j]; W C[i,j]` — a read-modify-write, making
//! the accumulation order visible to the memory model.

use crate::builder::{build_program, build_program_raw, ProgramBuilder, RawTrace, Strand};
use ccmm_core::{Computation, Location};

/// Location layout for the three matrices.
#[derive(Clone, Copy, Debug)]
pub struct MatLayout {
    /// Matrix dimension (power of two).
    pub n: usize,
}

impl MatLayout {
    /// Location of `A[i, j]`.
    pub fn a(&self, i: usize, j: usize) -> Location {
        Location::new(i * self.n + j)
    }

    /// Location of `B[i, j]`.
    pub fn b(&self, i: usize, j: usize) -> Location {
        Location::new(self.n * self.n + i * self.n + j)
    }

    /// Location of `C[i, j]`.
    pub fn c(&self, i: usize, j: usize) -> Location {
        Location::new(2 * self.n * self.n + i * self.n + j)
    }
}

/// A built matmul computation.
pub struct MatmulProgram {
    /// The computation dag.
    pub computation: Computation,
    /// Location layout.
    pub layout: MatLayout,
}

#[allow(clippy::too_many_arguments)]
fn multiply(
    b: &mut ProgramBuilder,
    s: &mut Strand,
    lay: &MatLayout,
    // Row/col offsets and size of the A, B, C blocks.
    ai: usize,
    aj: usize,
    bi: usize,
    bj: usize,
    ci: usize,
    cj: usize,
    size: usize,
) {
    if size == 1 {
        b.read(s, lay.a(ai, aj));
        b.read(s, lay.b(bi, bj));
        b.read(s, lay.c(ci, cj));
        b.write(s, lay.c(ci, cj));
        return;
    }
    let h = size / 2;
    // Wave 1: C_xy += A_x0 · B_0y.
    for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        b.spawn(s, |b, t| {
            multiply(b, t, lay, ai + x * h, aj, bi, bj + y * h, ci + x * h, cj + y * h, h);
        });
    }
    b.sync(s);
    // Wave 2: C_xy += A_x1 · B_1y.
    for (x, y) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
        b.spawn(s, |b, t| {
            multiply(b, t, lay, ai + x * h, aj + h, bi + h, bj + y * h, ci + x * h, cj + y * h, h);
        });
    }
    b.sync(s);
}

/// Initialisation (write every element of A, B and C in parallel)
/// followed by the blocked multiply.
fn matmul_program(b: &mut ProgramBuilder, s: &mut Strand, lay: &MatLayout) {
    let n = lay.n;
    for i in 0..n {
        for j in 0..n {
            b.spawn(s, |b, t| {
                b.write(t, lay.a(i, j));
                b.write(t, lay.b(i, j));
                b.write(t, lay.c(i, j));
            });
        }
    }
    b.sync(s);
    multiply(b, s, lay, 0, 0, 0, 0, 0, 0, n);
}

/// Builds the computation of a blocked `n × n` matmul (`n` a power of 2).
pub fn matmul(n: usize) -> MatmulProgram {
    assert!(n.is_power_of_two(), "matmul needs a power-of-two size, got {n}");
    let lay = MatLayout { n };
    let computation = build_program(|b, s| matmul_program(b, s, &lay));
    MatmulProgram { computation, layout: lay }
}

/// Builds the blocked matmul as a lean [`RawTrace`] (see
/// [`crate::builder::ProgramBuilder::finish_raw`]); `n` must be a power
/// of two. Node count grows as Θ(n³).
pub fn matmul_trace(n: usize) -> RawTrace {
    assert!(n.is_power_of_two(), "matmul needs a power-of-two size, got {n}");
    let lay = MatLayout { n };
    build_program_raw(|b, s| matmul_program(b, s, &lay))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::Op;

    #[test]
    fn leaf_multiply_counts() {
        // n=1: 1 init spawn (3 writes) + sync + 4-node leaf multiply.
        let p = matmul(1);
        let c = &p.computation;
        let reads = c.nodes().filter(|&u| matches!(c.op(u), Op::Read(_))).count();
        let writes = c.nodes().filter(|&u| matches!(c.op(u), Op::Write(_))).count();
        assert_eq!(reads, 3);
        assert_eq!(writes, 4);
    }

    #[test]
    fn elementwise_update_counts_scale_cubically() {
        // Each C element receives n accumulations: n^3 leaf multiplies.
        let n = 4;
        let p = matmul(n);
        let c = &p.computation;
        let mut c_writes = 0;
        for i in 0..n {
            for j in 0..n {
                let w = c.writes_to(p.layout.c(i, j)).len();
                // 1 init write + n accumulating writes.
                assert_eq!(w, 1 + n, "C[{i},{j}]");
                c_writes += w;
            }
        }
        assert_eq!(c_writes, n * n * (n + 1));
    }

    #[test]
    fn accumulations_to_same_element_are_ordered() {
        // The sync between waves must serialize all writes to each C
        // element: no write-write races.
        let n = 4;
        let p = matmul(n);
        let c = &p.computation;
        for i in 0..n {
            for j in 0..n {
                let ws = c.writes_to(p.layout.c(i, j));
                for (a, &w1) in ws.iter().enumerate() {
                    for &w2 in &ws[a + 1..] {
                        assert!(
                            c.precedes(w1, w2) || c.precedes(w2, w1),
                            "racing writes {w1} {w2} to C[{i},{j}]"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reads_of_a_and_b_follow_initialisation() {
        let n = 2;
        let p = matmul(n);
        let c = &p.computation;
        for u in c.nodes() {
            if let Op::Read(loc) = c.op(u) {
                let writer_before = c.writes_to(loc).iter().any(|&w| c.precedes(w, u));
                assert!(writer_before, "read {u} of {loc} has no preceding write");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        matmul(3);
    }
}
