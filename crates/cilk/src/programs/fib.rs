//! The classic Cilk `fib`: the paper's (and Cilk's) canonical fork/join
//! workload, with memory traffic made explicit.
//!
//! Each activation owns one location; leaves write their base value, and
//! internal activations spawn both sub-fibs, sync, read both children's
//! locations, and write their own. The program is determinate (race-free):
//! every read has a unique preceding writer through the dag, so under any
//! dag-consistent memory every execution returns the same values.

use crate::builder::{build_program, build_program_raw, ProgramBuilder, RawTrace, Strand};
use ccmm_core::{Computation, Location};
use ccmm_dag::NodeId;

/// A built fib computation with its result location and metadata.
pub struct FibProgram {
    /// The computation dag.
    pub computation: Computation,
    /// Location holding the root activation's result.
    pub result_location: Location,
    /// The node that writes the final result.
    pub result_writer: NodeId,
    /// Number of activations (= locations used).
    pub activations: usize,
}

fn fib_body(
    b: &mut ProgramBuilder,
    s: &mut Strand,
    n: u32,
    next_loc: &mut usize,
) -> (Location, NodeId) {
    let my_loc = Location::new(*next_loc);
    *next_loc += 1;
    if n < 2 {
        let w = b.write(s, my_loc);
        return (my_loc, w);
    }
    let mut child_locs = Vec::new();
    for k in [1u32, 2u32] {
        // Rust closures cannot recurse anonymously; thread state through a
        // helper that performs the spawn.
        let mut got = None;
        b.spawn(s, |b, t| {
            got = Some(fib_body(b, t, n - k, next_loc));
        });
        child_locs.push(got.expect("spawn body ran").0);
    }
    b.sync(s);
    for cl in child_locs {
        b.read(s, cl);
    }
    let w = b.write(s, my_loc);
    (my_loc, w)
}

/// Builds the computation of `fib(n)`.
pub fn fib(n: u32) -> FibProgram {
    let mut next_loc = 0usize;
    let mut meta = None;
    let computation = build_program(|b, s| {
        meta = Some(fib_body(b, s, n, &mut next_loc));
    });
    let (result_location, result_writer) = meta.expect("body ran");
    FibProgram { computation, result_location, result_writer, activations: next_loc }
}

/// Builds `fib(n)` as a lean [`RawTrace`]: dag, ops, and Hebrew ranks
/// only — no transitive closure, so depths giving 10⁵–10⁷ nodes stay
/// linear in the trace size. The streaming checker's tree-shaped
/// workload.
pub fn fib_trace(n: u32) -> RawTrace {
    let mut next_loc = 0usize;
    build_program_raw(|b, s| {
        fib_body(b, s, n, &mut next_loc);
    })
}

/// The number of activations of `fib(n)` (for test cross-checks):
/// `a(n) = 1` for `n < 2`, else `1 + a(n-1) + a(n-2)`.
pub fn fib_activations(n: u32) -> usize {
    if n < 2 {
        1
    } else {
        1 + fib_activations(n - 1) + fib_activations(n - 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::Op;

    #[test]
    fn base_cases_are_single_writes() {
        for n in [0, 1] {
            let p = fib(n);
            assert_eq!(p.computation.node_count(), 1);
            assert_eq!(p.activations, 1);
            assert_eq!(p.computation.op(p.result_writer), Op::Write(p.result_location));
        }
    }

    #[test]
    fn activation_count_matches_recurrence() {
        for n in 0..8 {
            assert_eq!(fib(n).activations, fib_activations(n), "n={n}");
        }
    }

    #[test]
    fn result_writer_is_the_unique_sink_writer() {
        let p = fib(5);
        let leaves = p.computation.dag().leaves();
        assert_eq!(leaves, vec![p.result_writer]);
    }

    #[test]
    fn every_read_has_a_writer_among_ancestors() {
        // Determinacy: each read of location l is preceded by exactly one
        // write to l.
        let p = fib(6);
        let c = &p.computation;
        for u in c.nodes() {
            if let Op::Read(l) = c.op(u) {
                let writers: Vec<_> =
                    c.writes_to(l).iter().filter(|&&w| c.precedes(w, u)).collect();
                assert_eq!(writers.len(), 1, "read {u} of {l}");
            }
        }
    }

    #[test]
    fn no_write_races() {
        // All writes to the same location are ordered (here: unique).
        let p = fib(6);
        let c = &p.computation;
        for l in c.locations() {
            assert_eq!(c.writes_to(l).len(), 1, "location {l} written once");
        }
    }

    #[test]
    fn fib_grows_with_n() {
        assert!(fib(8).computation.node_count() > fib(5).computation.node_count());
    }
}
