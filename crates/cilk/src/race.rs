//! Determinacy-race detection on computations.
//!
//! Two accesses to the same location *race* if they are incomparable in
//! the dag and at least one writes. The Cilk memory-model line of work
//! rests on the guarantee that **race-free programs get serial semantics
//! under any dag-consistent memory**: every read has a unique "last"
//! writer among its ancestors, and every valid LC (indeed NN) observer
//! function must return it. [`check_determinacy`] machine-checks that
//! implication; [`find_races`] is the detector.
//!
//! The detector is the O(V²/64)-per-location precedence check (adequate
//! for analysis-sized computations; an SP-bags-style detector would trade
//! generality for speed on series-parallel dags).

use ccmm_core::{Computation, Location, Op};
use ccmm_dag::NodeId;

/// A pair of racing accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Race {
    /// The location raced on.
    pub location: Location,
    /// First access (lower node index).
    pub a: NodeId,
    /// Second access.
    pub b: NodeId,
    /// Whether both accesses are writes.
    pub write_write: bool,
}

/// Finds every determinacy race in the computation.
pub fn find_races(c: &Computation) -> Vec<Race> {
    let mut races = Vec::new();
    for l in c.locations() {
        // Collect accesses to l.
        let accesses: Vec<(NodeId, bool)> = c
            .nodes()
            .filter_map(|u| match c.op(u) {
                Op::Read(loc) if loc == l => Some((u, false)),
                Op::Write(loc) if loc == l => Some((u, true)),
                _ => None,
            })
            .collect();
        for (i, &(a, aw)) in accesses.iter().enumerate() {
            for &(b, bw) in &accesses[i + 1..] {
                if (aw || bw) && c.reach().incomparable(a, b) {
                    races.push(Race { location: l, a, b, write_write: aw && bw });
                }
            }
        }
    }
    races
}

/// Whether the computation is determinacy-race-free.
pub fn is_race_free(c: &Computation) -> bool {
    find_races(c).is_empty()
}

/// For a race-free computation, the unique determinate observation of
/// each read: the maximal write to its location among its ancestors
/// (`None` if no write precedes).
///
/// Panics if the computation has races (the notion is ill-defined then).
pub fn determinate_reads(c: &Computation) -> Vec<(NodeId, Option<NodeId>)> {
    assert!(is_race_free(c), "determinate_reads on a racy computation");
    c.nodes()
        .filter_map(|u| {
            let l = match c.op(u) {
                Op::Read(l) => l,
                _ => return None,
            };
            // Race freedom totally orders the writes preceding u, so the
            // maximal one is unique.
            let mut best: Option<NodeId> = None;
            for &w in c.writes_to(l) {
                if c.precedes(w, u) {
                    best = match best {
                        None => Some(w),
                        Some(b) if c.precedes(b, w) => Some(w),
                        Some(b) => Some(b),
                    };
                }
            }
            Some((u, best))
        })
        .collect()
}

/// Machine-checks the determinacy guarantee on a race-free computation:
/// every observer function in NN-dag consistency (hence in LC, SC) gives
/// each read exactly its determinate value. Returns the number of
/// observer functions checked.
///
/// Exhaustive over observer functions — small computations only.
pub fn check_determinacy(c: &Computation) -> Result<usize, (ccmm_core::ObserverFunction, NodeId)> {
    use ccmm_core::{MemoryModel, Nn};
    use std::ops::ControlFlow;
    let expected = determinate_reads(c);
    let mut checked = 0usize;
    let mut bad = None;
    let _ = ccmm_core::enumerate::for_each_observer(c, |phi| {
        if Nn::default().contains(c, phi) {
            checked += 1;
            for &(r, want) in &expected {
                let l = match c.op(r) {
                    Op::Read(l) => l,
                    _ => unreachable!(),
                };
                if phi.get(l, r) != want {
                    bad = Some((phi.clone(), r));
                    return ControlFlow::Break(());
                }
            }
        }
        ControlFlow::Continue(())
    });
    match bad {
        Some(b) => Err(b),
        None => Ok(checked),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build_program;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn parallel_write_write_is_a_race() {
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.sync(s);
        });
        let races = find_races(&c);
        assert_eq!(races.len(), 1);
        assert!(races[0].write_write);
        assert!(!is_race_free(&c));
    }

    #[test]
    fn parallel_read_write_is_a_race() {
        let c = build_program(|b, s| {
            b.write(s, l(0));
            b.spawn(s, |b, t| {
                b.read(t, l(0));
            });
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.sync(s);
        });
        let races = find_races(&c);
        assert_eq!(races.len(), 1);
        assert!(!races[0].write_write);
    }

    #[test]
    fn parallel_reads_do_not_race() {
        let c = build_program(|b, s| {
            b.write(s, l(0));
            b.spawn(s, |b, t| {
                b.read(t, l(0));
            });
            b.spawn(s, |b, t| {
                b.read(t, l(0));
            });
            b.sync(s);
        });
        assert!(is_race_free(&c));
    }

    #[test]
    fn sync_removes_the_race() {
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.sync(s);
            b.write(s, l(0));
        });
        assert!(is_race_free(&c));
    }

    #[test]
    fn workload_programs_are_race_free() {
        assert!(is_race_free(&crate::fib(6).computation));
        assert!(is_race_free(&crate::matmul(2).computation));
        assert!(is_race_free(&crate::stencil(5, 3).computation));
        assert!(is_race_free(&crate::reduce(8).computation));
    }

    #[test]
    fn determinate_reads_pick_last_writer() {
        let c = build_program(|b, s| {
            b.write(s, l(0)); // 0
            b.write(s, l(0)); // 1
            b.read(s, l(0)); // 2: must see write 1
        });
        let dr = determinate_reads(&c);
        assert_eq!(dr, vec![(NodeId::new(2), Some(NodeId::new(1)))]);
    }

    #[test]
    fn determinacy_guarantee_holds_exhaustively() {
        // A small race-free program: every NN-consistent observer gives
        // the serial read results.
        let c = build_program(|b, s| {
            b.write(s, l(0));
            b.spawn(s, |b, t| {
                b.read(t, l(0));
                b.write(t, l(1));
            });
            b.spawn(s, |b, t| {
                b.read(t, l(0));
            });
            b.sync(s);
            b.read(s, l(1));
        });
        assert!(is_race_free(&c));
        let checked = check_determinacy(&c).expect("determinacy must hold");
        assert!(checked > 0);
    }

    #[test]
    fn racy_program_is_not_determinate() {
        // Two racing writes then a read: different NN observers give
        // different results — determinacy genuinely requires race freedom.
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.sync(s);
            b.read(s, l(0));
        });
        assert!(!is_race_free(&c));
        use ccmm_core::{MemoryModel, Nn, Op};
        use std::collections::HashSet;
        use std::ops::ControlFlow;
        let mut results = HashSet::new();
        let read = c.nodes().find(|&u| matches!(c.op(u), Op::Read(_))).unwrap();
        let _ = ccmm_core::enumerate::for_each_observer(&c, |phi| {
            if Nn::default().contains(&c, phi) {
                results.insert(phi.get(l(0), read));
            }
            ControlFlow::Continue(())
        });
        assert!(results.len() > 1, "racy read should be nondeterminate");
    }

    #[test]
    #[should_panic(expected = "racy computation")]
    fn determinate_reads_rejects_races() {
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.write(s, l(0));
            b.sync(s);
        });
        determinate_reads(&c);
    }
}
