//! A Cilk-style spawn/sync builder for computations.
//!
//! The paper takes computations as given and points at multithreaded
//! languages with fork/join parallelism (Cilk) as their source. This
//! builder is that source: write a program with `op`/`spawn`/`sync`, get
//! the computation dag its execution unfolds into.
//!
//! Semantics mirrored from Cilk:
//!
//! * a *strand* is a maximal sequence of ops with no parallel control;
//! * `spawn` forks a child whose first op depends on the spawn point;
//! * `sync` joins all outstanding children of the current function
//!   (represented as an `N` node — the paper's synchronization-only
//!   instruction);
//! * every function syncs implicitly before returning.

use ccmm_core::{Computation, Location, Op};
use ccmm_dag::{Dag, NodeId};

/// Accumulates nodes and edges while the program runs.
#[derive(Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    edges: Vec<(usize, usize)>,
}

/// The sequential position inside one function activation.
#[derive(Clone, Debug, Default)]
pub struct Strand {
    /// The most recent node of this strand, if any.
    cursor: Option<NodeId>,
    /// Last nodes of spawned-but-unsynced children.
    children: Vec<NodeId>,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, preds: &[NodeId]) -> NodeId {
        let id = NodeId::new(self.ops.len());
        self.ops.push(op);
        for p in preds {
            self.edges.push((p.index(), id.index()));
        }
        id
    }

    /// Appends a sequential op to the strand.
    pub fn op(&mut self, s: &mut Strand, op: Op) -> NodeId {
        let preds: Vec<NodeId> = s.cursor.into_iter().collect();
        let id = self.push(op, &preds);
        s.cursor = Some(id);
        id
    }

    /// Appends a read of `l`.
    pub fn read(&mut self, s: &mut Strand, l: Location) -> NodeId {
        self.op(s, Op::Read(l))
    }

    /// Appends a write of `l`.
    pub fn write(&mut self, s: &mut Strand, l: Location) -> NodeId {
        self.op(s, Op::Write(l))
    }

    /// Appends a no-op.
    pub fn nop(&mut self, s: &mut Strand) -> NodeId {
        self.op(s, Op::Nop)
    }

    /// Spawns `f` as a child of the current strand. The child's first op
    /// depends on the spawn point; the parent continues in parallel with
    /// the child until the next `sync`.
    pub fn spawn<F>(&mut self, s: &mut Strand, f: F)
    where
        F: FnOnce(&mut ProgramBuilder, &mut Strand),
    {
        let mut child = Strand { cursor: s.cursor, children: Vec::new() };
        f(self, &mut child);
        // Implicit sync before the child returns.
        self.sync(&mut child);
        match child.cursor {
            // The child produced nodes (or a sync node): join it later.
            Some(last) if child.cursor != s.cursor => s.children.push(last),
            // Empty child: nothing to join.
            _ => {}
        }
    }

    /// Joins all outstanding children with an `N` node. No-op if nothing
    /// was spawned since the last sync.
    pub fn sync(&mut self, s: &mut Strand) {
        if s.children.is_empty() {
            return;
        }
        let mut preds: Vec<NodeId> = s.cursor.into_iter().collect();
        preds.append(&mut s.children);
        let id = self.push(Op::Nop, &preds);
        s.cursor = Some(id);
    }

    /// Finalises the program into a computation, syncing the root strand.
    pub fn finish(mut self, mut root: Strand) -> Computation {
        self.sync(&mut root);
        let n = self.ops.len();
        let dag = Dag::from_edges(n, &self.edges).expect("builder edges are acyclic");
        Computation::new(dag, self.ops).expect("one op per node")
    }
}

/// Runs a program closure and returns its computation.
pub fn build_program<F>(f: F) -> Computation
where
    F: FnOnce(&mut ProgramBuilder, &mut Strand),
{
    let mut b = ProgramBuilder::new();
    let mut root = Strand::default();
    f(&mut b, &mut root);
    b.finish(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn sequential_program_is_a_chain() {
        let c = build_program(|b, s| {
            b.write(s, l(0));
            b.read(s, l(0));
            b.read(s, l(0));
        });
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.dag().edge_count(), 2);
        assert!(c.precedes(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn spawned_children_are_parallel() {
        let c = build_program(|b, s| {
            b.nop(s); // 0: spawn point
            b.spawn(s, |b, t| {
                b.write(t, l(0)); // 1
            });
            b.spawn(s, |b, t| {
                b.write(t, l(1)); // 2
            });
            b.sync(s); // 3
            b.read(s, l(0)); // 4
        });
        assert_eq!(c.node_count(), 5);
        let r = c.reach();
        assert!(r.incomparable(NodeId::new(1), NodeId::new(2)));
        assert!(c.precedes(NodeId::new(1), NodeId::new(4)));
        assert!(c.precedes(NodeId::new(2), NodeId::new(4)));
    }

    #[test]
    fn spawn_depends_on_spawn_point() {
        let c = build_program(|b, s| {
            b.write(s, l(0)); // 0
            b.spawn(s, |b, t| {
                b.read(t, l(0)); // 1: must come after the write
            });
            b.sync(s);
        });
        assert!(c.precedes(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn sync_without_children_is_noop() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.sync(s);
            b.sync(s);
        });
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn empty_spawn_adds_nothing() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |_, _| {});
            b.sync(s);
        });
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn nested_spawns_form_series_parallel_structure() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |b, t| {
                b.spawn(t, |b, u| {
                    b.write(u, l(0));
                });
                b.spawn(t, |b, u| {
                    b.write(u, l(1));
                });
                // implicit sync of the child's children
            });
            b.sync(s);
        });
        // Nodes: root nop, two grandchild writes, child's implicit sync
        // node, root sync node.
        assert_eq!(c.node_count(), 5);
        let roots = c.dag().roots();
        assert_eq!(roots.len(), 1);
        let leaves = c.dag().leaves();
        assert_eq!(leaves.len(), 1);
    }

    #[test]
    fn child_implicit_sync_only_when_needed() {
        // A child with no spawns of its own adds no sync node.
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |b, t| {
                b.write(t, l(0));
                b.write(t, l(1));
            });
            b.sync(s);
        });
        // 0: nop, 1-2: writes, 3: root sync.
        assert_eq!(c.node_count(), 4);
    }

    #[test]
    fn program_with_leading_spawn_has_parallel_roots() {
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.write(s, l(1));
            b.sync(s);
        });
        // Both the child write and the parent write have no predecessors.
        assert_eq!(c.dag().roots().len(), 2);
    }
}
