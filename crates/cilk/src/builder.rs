//! A Cilk-style spawn/sync builder for computations.
//!
//! The paper takes computations as given and points at multithreaded
//! languages with fork/join parallelism (Cilk) as their source. This
//! builder is that source: write a program with `op`/`spawn`/`sync`, get
//! the computation dag its execution unfolds into.
//!
//! Semantics mirrored from Cilk:
//!
//! * a *strand* is a maximal sequence of ops with no parallel control;
//! * `spawn` forks a child whose first op depends on the spawn point;
//! * `sync` joins all outstanding children of the current function
//!   (represented as an `N` node — the paper's synchronization-only
//!   instruction);
//! * every function syncs implicitly before returning.

use ccmm_core::{Computation, Location, Op};
use ccmm_dag::{Dag, NodeId, SpOrder};

/// One entry of the builder's structural event log. Execution is
/// depth-first (a `spawn` runs its child closure immediately), so the log
/// is a properly nested stream: plain nodes, `Open`/`Close` brackets
/// around each spawned child's block, and the sync node joining the
/// blocks deferred since the last sync at that level.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A sequential op node.
    Node(u32),
    /// A spawned child block starts.
    Open,
    /// The spawned child block ends.
    Close,
    /// A sync node joining the open blocks at this level.
    Sync(u32),
}

/// Accumulates nodes and edges while the program runs.
#[derive(Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    edges: Vec<(usize, usize)>,
    events: Vec<Ev>,
}

/// The sequential position inside one function activation.
#[derive(Clone, Debug, Default)]
pub struct Strand {
    /// The most recent node of this strand, if any.
    cursor: Option<NodeId>,
    /// Last nodes of spawned-but-unsynced children.
    children: Vec<NodeId>,
}

impl ProgramBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, preds: &[NodeId]) -> NodeId {
        let id = NodeId::new(self.ops.len());
        self.ops.push(op);
        for p in preds {
            self.edges.push((p.index(), id.index()));
        }
        id
    }

    /// Appends a sequential op to the strand.
    pub fn op(&mut self, s: &mut Strand, op: Op) -> NodeId {
        let preds: Vec<NodeId> = s.cursor.into_iter().collect();
        let id = self.push(op, &preds);
        self.events.push(Ev::Node(id.index() as u32));
        s.cursor = Some(id);
        id
    }

    /// Appends a read of `l`.
    pub fn read(&mut self, s: &mut Strand, l: Location) -> NodeId {
        self.op(s, Op::Read(l))
    }

    /// Appends a write of `l`.
    pub fn write(&mut self, s: &mut Strand, l: Location) -> NodeId {
        self.op(s, Op::Write(l))
    }

    /// Appends a no-op.
    pub fn nop(&mut self, s: &mut Strand) -> NodeId {
        self.op(s, Op::Nop)
    }

    /// Spawns `f` as a child of the current strand. The child's first op
    /// depends on the spawn point; the parent continues in parallel with
    /// the child until the next `sync`.
    pub fn spawn<F>(&mut self, s: &mut Strand, f: F)
    where
        F: FnOnce(&mut ProgramBuilder, &mut Strand),
    {
        let mut child = Strand { cursor: s.cursor, children: Vec::new() };
        self.events.push(Ev::Open);
        f(self, &mut child);
        // Implicit sync before the child returns.
        self.sync(&mut child);
        self.events.push(Ev::Close);
        match child.cursor {
            // The child produced nodes (or a sync node): join it later.
            Some(last) if child.cursor != s.cursor => s.children.push(last),
            // Empty child: nothing to join.
            _ => {}
        }
    }

    /// Joins all outstanding children with an `N` node. No-op if nothing
    /// was spawned since the last sync.
    pub fn sync(&mut self, s: &mut Strand) {
        if s.children.is_empty() {
            return;
        }
        let mut preds: Vec<NodeId> = s.cursor.into_iter().collect();
        preds.append(&mut s.children);
        let id = self.push(Op::Nop, &preds);
        self.events.push(Ev::Sync(id.index() as u32));
        s.cursor = Some(id);
    }

    /// Finalises the program into a computation, syncing the root strand.
    pub fn finish(mut self, mut root: Strand) -> Computation {
        self.sync(&mut root);
        let n = self.ops.len();
        let dag = Dag::from_edges(n, &self.edges).expect("builder edges are acyclic");
        Computation::new(dag, self.ops).expect("one op per node")
    }

    /// Finalises the program into a [`RawTrace`]: the dag, the ops, and
    /// the Hebrew linear extension — but **no transitive closure and no
    /// dense observer table**, so million-node programs stay O(n + e).
    /// [`finish`](ProgramBuilder::finish) by contrast builds a
    /// [`Computation`], whose reachability bitsets are Θ(n²) bits.
    pub fn finish_raw(mut self, mut root: Strand) -> RawTrace {
        self.sync(&mut root);
        let n = self.ops.len();
        let hebrew = hebrew_ranks(&self.events, n);
        let dag = Dag::from_edges(n, &self.edges).expect("builder edges are acyclic");
        let num_locations =
            self.ops.iter().filter_map(|o| o.location()).map(|l| l.index() + 1).max().unwrap_or(0);
        RawTrace { dag, ops: self.ops, hebrew, num_locations }
    }
}

/// Computes each node's rank in the *Hebrew* linear extension from the
/// builder's event log.
///
/// Creation order is the *English* extension: a `spawn` runs its child
/// closure immediately, so child blocks come before the parent's
/// continuation. The Hebrew extension enumerates the branches of every
/// parallel composition in the opposite order: walking the log, plain
/// nodes emit in order, each child block is deferred, and a sync emits
/// the blocks deferred at its level in **reverse spawn order** (each
/// recursively Hebrew-ordered) before the sync node itself.
///
/// Correctness for the builder's fork/join grammar: a segment
/// `a₁…; spawn C; rest` decomposes as the series-parallel expression
/// `a₁… ; (C ∥ rest)`, and reversing branch order at every parallel
/// composition is exactly the standard 2-realizer of a series-parallel
/// order — comparable pairs keep their creation order, incomparable
/// pairs (one in `C`, one in `rest`) flip. The differential tests below
/// check `SpOrder` against full reachability on every pair.
fn hebrew_ranks(events: &[Ev], n: usize) -> Vec<u32> {
    // Matching `Close` for each `Open` (the log is properly nested).
    let mut matching = vec![0usize; events.len()];
    let mut stack = Vec::new();
    for (i, e) in events.iter().enumerate() {
        match e {
            Ev::Open => stack.push(i),
            Ev::Close => {
                let o = stack.pop().expect("Close without Open");
                matching[o] = i;
            }
            _ => {}
        }
    }
    debug_assert!(stack.is_empty(), "unclosed spawn block");
    fn emit(events: &[Ev], lo: usize, hi: usize, matching: &[usize], out: &mut Vec<u32>) {
        let mut deferred: Vec<(usize, usize)> = Vec::new();
        let mut i = lo;
        while i < hi {
            match events[i] {
                Ev::Node(id) => out.push(id),
                Ev::Open => {
                    let close = matching[i];
                    deferred.push((i + 1, close));
                    i = close;
                }
                Ev::Close => unreachable!("Close is always skipped via its Open"),
                Ev::Sync(id) => {
                    for &(a, b) in deferred.iter().rev() {
                        emit(events, a, b, matching, out);
                    }
                    deferred.clear();
                    out.push(id);
                }
            }
            i += 1;
        }
        // A strand can end with spawned-but-unsynced children only when
        // they were empty; flush defensively all the same.
        for &(a, b) in deferred.iter().rev() {
            emit(events, a, b, matching, out);
        }
    }
    let mut order = Vec::with_capacity(n);
    emit(events, 0, events.len(), &matching, &mut order);
    debug_assert_eq!(order.len(), n, "hebrew order must visit every node once");
    let mut rank = vec![0u32; n];
    for (pos, id) in order.into_iter().enumerate() {
        rank[id as usize] = pos as u32;
    }
    rank
}

/// A lean trace of a built program: the dag, one op per node, and the
/// Hebrew linear extension. Everything the streaming membership checker
/// needs — precedence is O(1) through [`SpOrder`] at two integer
/// comparisons per query — and nothing quadratic: no transitive-closure
/// bitsets, no dense `L × n` observer table. This is the form `ccmm
/// watch` harvests million-node programs in.
pub struct RawTrace {
    /// The computation dag; node creation order is a topological sort.
    pub dag: Dag,
    /// One op per node, indexed by [`NodeId`].
    pub ops: Vec<Op>,
    /// Hebrew rank per node (creation order is the English rank).
    pub hebrew: Vec<u32>,
    /// One more than the largest location index mentioned by any op.
    pub num_locations: usize,
}

impl RawTrace {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ops.len()
    }

    /// The two-extension precedence oracle for this trace.
    pub fn sp_order(&self) -> SpOrder {
        SpOrder::new(&self.dag, self.hebrew.clone())
            .expect("builder creation/hebrew orders realize the dag")
    }

    /// Densifies into a [`Computation`] (Θ(n²) reachability — for
    /// small-scale cross-checks only).
    pub fn to_computation(&self) -> Computation {
        Computation::new(self.dag.clone(), self.ops.clone()).expect("one op per node")
    }
}

/// Runs a program closure and returns its computation.
pub fn build_program<F>(f: F) -> Computation
where
    F: FnOnce(&mut ProgramBuilder, &mut Strand),
{
    let mut b = ProgramBuilder::new();
    let mut root = Strand::default();
    f(&mut b, &mut root);
    b.finish(root)
}

/// Runs a program closure and returns its [`RawTrace`] (closure-free
/// form for streaming-scale programs).
pub fn build_program_raw<F>(f: F) -> RawTrace
where
    F: FnOnce(&mut ProgramBuilder, &mut Strand),
{
    let mut b = ProgramBuilder::new();
    let mut root = Strand::default();
    f(&mut b, &mut root);
    b.finish_raw(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn sequential_program_is_a_chain() {
        let c = build_program(|b, s| {
            b.write(s, l(0));
            b.read(s, l(0));
            b.read(s, l(0));
        });
        assert_eq!(c.node_count(), 3);
        assert_eq!(c.dag().edge_count(), 2);
        assert!(c.precedes(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn spawned_children_are_parallel() {
        let c = build_program(|b, s| {
            b.nop(s); // 0: spawn point
            b.spawn(s, |b, t| {
                b.write(t, l(0)); // 1
            });
            b.spawn(s, |b, t| {
                b.write(t, l(1)); // 2
            });
            b.sync(s); // 3
            b.read(s, l(0)); // 4
        });
        assert_eq!(c.node_count(), 5);
        let r = c.reach();
        assert!(r.incomparable(NodeId::new(1), NodeId::new(2)));
        assert!(c.precedes(NodeId::new(1), NodeId::new(4)));
        assert!(c.precedes(NodeId::new(2), NodeId::new(4)));
    }

    #[test]
    fn spawn_depends_on_spawn_point() {
        let c = build_program(|b, s| {
            b.write(s, l(0)); // 0
            b.spawn(s, |b, t| {
                b.read(t, l(0)); // 1: must come after the write
            });
            b.sync(s);
        });
        assert!(c.precedes(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn sync_without_children_is_noop() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.sync(s);
            b.sync(s);
        });
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn empty_spawn_adds_nothing() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |_, _| {});
            b.sync(s);
        });
        assert_eq!(c.node_count(), 1);
    }

    #[test]
    fn nested_spawns_form_series_parallel_structure() {
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |b, t| {
                b.spawn(t, |b, u| {
                    b.write(u, l(0));
                });
                b.spawn(t, |b, u| {
                    b.write(u, l(1));
                });
                // implicit sync of the child's children
            });
            b.sync(s);
        });
        // Nodes: root nop, two grandchild writes, child's implicit sync
        // node, root sync node.
        assert_eq!(c.node_count(), 5);
        let roots = c.dag().roots();
        assert_eq!(roots.len(), 1);
        let leaves = c.dag().leaves();
        assert_eq!(leaves.len(), 1);
    }

    #[test]
    fn child_implicit_sync_only_when_needed() {
        // A child with no spawns of its own adds no sync node.
        let c = build_program(|b, s| {
            b.nop(s);
            b.spawn(s, |b, t| {
                b.write(t, l(0));
                b.write(t, l(1));
            });
            b.sync(s);
        });
        // 0: nop, 1-2: writes, 3: root sync.
        assert_eq!(c.node_count(), 4);
    }

    /// Checks the raw trace's `SpOrder` against full reachability on
    /// every node pair — soundness *and* completeness of the 2-realizer.
    fn assert_sp_order_matches_reachability(trace: &RawTrace, tag: &str) {
        let sp = trace.sp_order();
        let reach = ccmm_dag::Reachability::new(&trace.dag);
        let n = trace.node_count();
        for u in 0..n {
            for v in 0..n {
                let (u, v) = (NodeId::new(u), NodeId::new(v));
                assert_eq!(
                    sp.precedes(u, v),
                    reach.reaches(u, v),
                    "{tag}: SpOrder disagrees with reachability on {u} ≺ {v}"
                );
            }
        }
    }

    /// A seeded random fork/join program: nested spawns, multiple syncs
    /// per level, ops before/between/after spawns.
    fn lcg(rng: &mut u64) -> u32 {
        *rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (*rng >> 33) as u32
    }

    fn random_program(b: &mut ProgramBuilder, s: &mut Strand, depth: u32, rng: &mut u64) {
        let steps = 2 + lcg(rng) % 4;
        for _ in 0..steps {
            match lcg(rng) % 5 {
                0 => {
                    b.write(s, l((lcg(rng) % 3) as usize));
                }
                1 => {
                    b.read(s, l((lcg(rng) % 3) as usize));
                }
                2 if depth > 0 => {
                    let spawns = 1 + lcg(rng) % 3;
                    for _ in 0..spawns {
                        b.spawn(s, |b, t| random_program(b, t, depth - 1, rng));
                    }
                    if lcg(rng).is_multiple_of(2) {
                        b.sync(s);
                    }
                }
                3 => b.sync(s),
                _ => {
                    b.nop(s);
                }
            }
        }
    }

    #[test]
    fn sp_order_matches_reachability_on_canonical_programs() {
        for n in 2..=8 {
            let trace = crate::programs::fib::fib_trace(n);
            assert_sp_order_matches_reachability(&trace, &format!("fib({n})"));
        }
        let trace = crate::programs::matmul::matmul_trace(2);
        assert_sp_order_matches_reachability(&trace, "matmul(2)");
        let trace = crate::programs::stencil::stencil_trace(3, 2);
        assert_sp_order_matches_reachability(&trace, "stencil(3,2)");
        let trace = build_program_raw(|b, s| {
            for i in 0..4 {
                b.spawn(s, |b, t| {
                    b.write(t, l(i));
                    b.spawn(t, |b, u| {
                        b.read(u, l(i));
                    });
                });
            }
            b.sync(s);
            b.read(s, l(0));
        });
        assert_sp_order_matches_reachability(&trace, "nested spawn fan");
    }

    #[test]
    fn sp_order_matches_reachability_on_random_programs() {
        for seed in 0..40u64 {
            let mut rng = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let trace = build_program_raw(|b, s| random_program(b, s, 3, &mut rng));
            if trace.node_count() > 120 {
                continue; // keep the all-pairs check cheap
            }
            assert_sp_order_matches_reachability(&trace, &format!("random seed {seed}"));
        }
    }

    #[test]
    fn raw_trace_matches_finish() {
        // finish() and finish_raw() must describe the same computation.
        let build = |b: &mut ProgramBuilder, s: &mut Strand| {
            b.write(s, l(0));
            b.spawn(s, |b, t| {
                b.read(t, l(0));
                b.write(t, l(1));
            });
            b.spawn(s, |b, t| {
                b.read(t, l(0));
            });
            b.sync(s);
            b.read(s, l(1));
        };
        let c = build_program(build);
        let trace = build_program_raw(build);
        assert_eq!(trace.node_count(), c.node_count());
        assert_eq!(trace.num_locations, c.num_locations());
        assert_eq!(trace.to_computation(), c);
        // Hebrew is a permutation of 0..n.
        let mut seen = vec![false; trace.node_count()];
        for &h in &trace.hebrew {
            assert!(!seen[h as usize]);
            seen[h as usize] = true;
        }
    }

    #[test]
    fn program_with_leading_spawn_has_parallel_roots() {
        let c = build_program(|b, s| {
            b.spawn(s, |b, t| {
                b.write(t, l(0));
            });
            b.write(s, l(1));
            b.sync(s);
        });
        // Both the child write and the parent write have no predecessors.
        assert_eq!(c.dag().roots().len(), 2);
    }
}
