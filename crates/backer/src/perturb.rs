//! Schedule perturbation for the threaded executor.
//!
//! [`crate::threads`] runs on real OS threads, so plain CI — especially
//! single-core CI — explores a vanishingly thin slice of the executor's
//! interleaving space: workers rarely race, steals are rare, and the
//! hand-placed atomics in the readiness protocol are never contended.
//! This module widens that slice deterministically. A
//! [`PerturbPlan`] (see [`ccmm_core::fault`]) decides, as a pure
//! function of `(seed, structural position)`, where to inject:
//!
//! - **yields** (`std::thread::yield_now`) before a node executes and
//!   before its successors are notified — handing the OS a scheduling
//!   point exactly where a stale-cache or lost-readiness bug would bite;
//! - **busy-spin delays** at the same positions — stretching the race
//!   windows between the `proc_of` store, the in-degree decrement, and
//!   the main-memory lock;
//! - **steal-victim rotation** — each idle worker starts its victim scan
//!   at a seeded offset per attempt, so work migrates across workers
//!   instead of settling into the default victim order.
//!
//! The injected *choices* reproduce exactly for a fixed seed; the OS
//! interleaving they provoke does not, which is the point — the stress
//! harness (`ccmm stress`) runs thousands of seeds and checks every
//! resulting observer function against the LC membership oracle.
//!
//! Telemetry: [`Counter::StealAttempts`] counts every victim probe and
//! [`Counter::PerturbInjected`] every yield/delay actually injected.
//! Both are timing-dependent (see DESIGN.md §9) and excluded from all
//! bit-identity checks.

pub use ccmm_core::fault::PerturbPlan;
use ccmm_core::telemetry::{self, Counter};

/// Phase salt for the perturbation point before a node executes.
pub const PHASE_PRE_EXEC: u64 = 0;
/// Phase salt for the perturbation point after a node's reconcile,
/// before its successors' in-degrees are decremented.
pub const PHASE_PRE_NOTIFY: u64 = 1;

/// Applies the plan's decision at `(phase, node)`: possibly yields,
/// possibly burns a busy-spin delay. A no-op for [`PerturbPlan::none`].
#[inline]
pub fn jostle(plan: &PerturbPlan, phase: u64, node: usize) {
    if plan.is_empty() {
        return;
    }
    if plan.yield_at(phase, node) {
        telemetry::count(Counter::PerturbInjected, 1);
        std::thread::yield_now();
    }
    let spins = plan.spin_at(phase, node);
    if spins > 0 {
        telemetry::count(Counter::PerturbInjected, 1);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jostle_is_a_noop_for_the_empty_plan_and_total_for_aggressive() {
        // Smoke: neither plan may panic at any position, and the
        // aggressive plan's decisions stay in range.
        let none = PerturbPlan::none();
        let aggressive = PerturbPlan::aggressive(7);
        for node in 0..256 {
            jostle(&none, PHASE_PRE_EXEC, node);
            jostle(&aggressive, PHASE_PRE_EXEC, node);
            jostle(&aggressive, PHASE_PRE_NOTIFY, node);
        }
    }
}
