//! A real multithreaded BACKER executor.
//!
//! Where [`crate::sim`] replays a precomputed schedule deterministically,
//! this module runs the computation on actual OS threads with
//! crossbeam work-stealing deques, per-worker caches, and a shared main
//! memory — scheduling nondeterminism and all. The protocol here is
//! *conservative BACKER*: a worker reconciles its dirty lines after
//! **every** node (a superset of the required reconcile-after-cross-edge
//! writes-backs, since a node's successors may be stolen by anyone), and
//! flushes before executing a node with a predecessor executed elsewhere.
//! More protocol traffic than necessary, the same correctness guarantee:
//! every execution's observer function is location consistent.
//!
//! Synchronization structure: a node becomes ready when its last
//! predecessor completes (atomic in-degree counters); the completing
//! worker pushes it to its local deque, idle workers steal. The main
//! memory lock is the transport for both tokens and happens-before: a
//! reconcile (release of the lock) precedes the dependent fetch (acquire).

use crate::cache::Cache;
use crate::config::BackerConfig;
use crate::memory::{node_of, token_of, MainMemory};
use crate::stats::Stats;
use ccmm_core::{Computation, ObserverFunction, Op};
use ccmm_dag::NodeId;
use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The result of a threaded execution.
#[derive(Debug)]
pub struct ThreadedResult {
    /// The observer function induced by the execution.
    pub observer: ObserverFunction,
    /// Merged protocol counters.
    pub stats: Stats,
    /// Which worker executed each node.
    pub executed_on: Vec<usize>,
}

/// One node's observation row, produced by its executing worker.
type Row = (NodeId, usize, Vec<Option<NodeId>>);

fn find_task(
    local: &Worker<NodeId>,
    injector: &Injector<NodeId>,
    stealers: &[Stealer<NodeId>],
) -> Option<NodeId> {
    local.pop().or_else(|| {
        std::iter::repeat_with(|| {
            injector
                .steal_batch_and_pop(local)
                .or_else(|| stealers.iter().map(|s| s.steal()).collect())
        })
        .find(|s| !s.is_retry())
        .and_then(|s| s.success())
    })
}

/// Executes `c` on `config.processors` worker threads with word-granular
/// caches.
pub fn run(c: &Computation, config: &BackerConfig) -> ThreadedResult {
    run_with_caches(c, config, |nl| Cache::new(nl, config.cache_capacity.max(1)))
}

/// Executes `c` on worker threads with page-granular caches (capacity in
/// pages; see [`crate::paged`]).
pub fn run_paged(c: &Computation, config: &BackerConfig, page_size: usize) -> ThreadedResult {
    run_with_caches(c, config, |nl| {
        crate::paged::PagedCache::new(nl, page_size, config.cache_capacity.max(1))
    })
}

/// The generic threaded executor, parameterized over the cache
/// organisation. `make_cache` runs once per worker.
pub fn run_with_caches<C, F>(
    c: &Computation,
    config: &BackerConfig,
    make_cache: F,
) -> ThreadedResult
where
    C: crate::cache::CacheOps,
    F: Fn(usize) -> C + Sync,
{
    let n = c.node_count();
    let num_locations = c.num_locations();
    if n == 0 {
        return ThreadedResult {
            observer: ObserverFunction::empty(),
            stats: Stats::default(),
            executed_on: Vec::new(),
        };
    }
    let workers = config.processors.max(1);
    let mem = Mutex::new(MainMemory::new(num_locations));
    let indeg: Vec<AtomicUsize> =
        (0..n).map(|u| AtomicUsize::new(c.dag().in_degree(NodeId::new(u)))).collect();
    let proc_of: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let completed = AtomicUsize::new(0);

    let injector = Injector::new();
    for r in c.dag().roots() {
        injector.push(r);
    }
    let locals: Vec<Worker<NodeId>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<NodeId>> = locals.iter().map(Worker::stealer).collect();

    let all_rows: Mutex<Vec<Row>> = Mutex::new(Vec::with_capacity(n));
    let total_stats: Mutex<Stats> = Mutex::new(Stats::default());

    std::thread::scope(|scope| {
        for (me, local) in locals.into_iter().enumerate() {
            let mem = &mem;
            let indeg = &indeg;
            let proc_of = &proc_of;
            let completed = &completed;
            let injector = &injector;
            let stealers = &stealers;
            let all_rows = &all_rows;
            let total_stats = &total_stats;
            let make_cache = &make_cache;
            scope.spawn(move || {
                let mut cache = make_cache(num_locations);
                let mut stats = Stats::default();
                let mut rows: Vec<Row> = Vec::new();
                loop {
                    let Some(u) = find_task(&local, injector, stealers) else {
                        if completed.load(Ordering::Acquire) == n {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    proc_of[u.index()].store(me, Ordering::Release);
                    let cross_pred = c
                        .dag()
                        .predecessors(u)
                        .iter()
                        .any(|&q| proc_of[q.index()].load(Ordering::Acquire) != me);
                    {
                        let mut m = mem.lock();
                        if cross_pred && !config.faults.skip_flush {
                            cache.flush_all(&mut m, &mut stats);
                        }
                        match c.op(u) {
                            Op::Read(l) => {
                                cache.read(l, &mut m, &mut stats);
                            }
                            Op::Write(l) => {
                                cache.write(l, token_of(u), &mut m, &mut stats);
                            }
                            Op::Nop => {}
                        }
                        // Probe the node's full view while holding the lock
                        // so the row is a consistent snapshot.
                        let row: Vec<Option<NodeId>> = c
                            .locations()
                            .map(|l| node_of(cache.peek(l).unwrap_or_else(|| m.load(l))))
                            .collect();
                        rows.push((u, me, row));
                        // Conservative BACKER: eager reconcile after every
                        // node, before successors can start.
                        if !config.faults.skip_reconcile {
                            cache.reconcile_all(&mut m, &mut stats);
                        }
                    }
                    for &v in c.dag().successors(u) {
                        if indeg[v.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                            local.push(v);
                        }
                    }
                    completed.fetch_add(1, Ordering::Release);
                }
                all_rows.lock().append(&mut rows);
                total_stats.lock().merge(&stats);
            });
        }
    });

    let mut observer = ObserverFunction::bottom(num_locations, n);
    let mut executed_on = vec![usize::MAX; n];
    for (u, who, row) in all_rows.into_inner() {
        executed_on[u.index()] = who;
        for (li, v) in row.into_iter().enumerate() {
            observer.set(ccmm_core::Location::new(li), u, v);
        }
    }
    ThreadedResult { observer, stats: total_stats.into_inner(), executed_on }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel};

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    fn fork_join_computation(depth: usize) -> Computation {
        let dag = ccmm_dag::generate::fork_join_tree(depth);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| match i % 4 {
                0 => Op::Write(l(0)),
                1 => Op::Read(l(0)),
                2 => Op::Write(l(1)),
                _ => Op::Read(l(1)),
            })
            .collect();
        Computation::new(dag, ops).unwrap()
    }

    #[test]
    fn empty_computation_runs() {
        let c = Computation::empty();
        let r = run(&c, &BackerConfig::with_processors(4));
        assert_eq!(r.observer, ObserverFunction::empty());
    }

    #[test]
    fn single_thread_matches_serial_semantics() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let r = run(&c, &BackerConfig::with_processors(1));
        assert!(r.observer.is_valid_for(&c));
        assert_eq!(r.observer.get(l(0), ccmm_dag::NodeId::new(2)), Some(ccmm_dag::NodeId::new(0)));
    }

    #[test]
    fn all_nodes_execute_exactly_once() {
        let c = fork_join_computation(4);
        let r = run(&c, &BackerConfig::with_processors(4));
        assert!(r.executed_on.iter().all(|&w| w != usize::MAX));
        assert!(r.executed_on.iter().all(|&w| w < 4));
    }

    #[test]
    fn threaded_executions_maintain_lc() {
        let c = fork_join_computation(4);
        for procs in [1, 2, 4, 8] {
            for _ in 0..10 {
                let r = run(&c, &BackerConfig::with_processors(procs));
                assert!(r.observer.is_valid_for(&c), "invalid observer");
                assert!(
                    Lc.contains(&c, &r.observer),
                    "threaded BACKER violated LC on {procs} threads"
                );
            }
        }
    }

    #[test]
    fn tiny_caches_still_maintain_lc() {
        let c = fork_join_computation(3);
        for _ in 0..10 {
            let r = run(&c, &BackerConfig::with_processors(4).cache_capacity(1));
            assert!(Lc.contains(&c, &r.observer));
        }
    }

    #[test]
    fn dependency_edges_deliver_tokens() {
        // A chain must behave exactly like serial memory regardless of
        // which workers execute it.
        let k = 12;
        let dag = ccmm_dag::generate::chain(k);
        let ops: Vec<Op> =
            (0..k).map(|i| if i % 2 == 0 { Op::Write(l(0)) } else { Op::Read(l(0)) }).collect();
        let c = Computation::new(dag, ops).unwrap();
        for _ in 0..5 {
            let r = run(&c, &BackerConfig::with_processors(3));
            for i in (1..k).step_by(2) {
                assert_eq!(
                    r.observer.get(l(0), ccmm_dag::NodeId::new(i)),
                    Some(ccmm_dag::NodeId::new(i - 1)),
                    "read {i} must see preceding write"
                );
            }
        }
    }
}

#[cfg(test)]
mod paged_tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel};

    #[test]
    fn paged_threads_maintain_lc() {
        let dag = ccmm_dag::generate::fork_join_tree(3);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| match i % 3 {
                0 => Op::Write(Location::new(i % 6)),
                1 => Op::Read(Location::new((i + 2) % 6)),
                _ => Op::Nop,
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for page in [1usize, 4] {
            for _ in 0..5 {
                let r = run_paged(&c, &BackerConfig::with_processors(4).cache_capacity(2), page);
                assert!(r.observer.is_valid_for(&c));
                assert!(Lc.contains(&c, &r.observer), "page={page}");
            }
        }
    }
}
