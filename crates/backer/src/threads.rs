//! A real multithreaded BACKER executor.
//!
//! Where [`crate::sim`] replays a precomputed schedule deterministically,
//! this module runs the computation on actual OS threads with
//! crossbeam work-stealing deques, per-worker caches, and a shared main
//! memory — scheduling nondeterminism and all. The protocol here is
//! *conservative BACKER*: a worker reconciles its dirty lines after
//! **every** node (a superset of the required reconcile-after-cross-edge
//! writes-backs, since a node's successors may be stolen by anyone), and
//! flushes before executing a node with a predecessor executed elsewhere.
//! More protocol traffic than necessary, the same correctness guarantee:
//! every execution's observer function is location consistent.
//!
//! Synchronization structure: a node becomes ready when its last
//! predecessor completes (atomic in-degree counters); the completing
//! worker pushes it to its local deque, idle workers steal. The main
//! memory lock is the transport for both tokens and happens-before: a
//! reconcile (release of the lock) precedes the dependent fetch (acquire).

use crate::cache::Cache;
use crate::config::BackerConfig;
use crate::memory::{node_of, token_of, MainMemory};
use crate::perturb::{self, PerturbPlan};
use crate::stats::Stats;
use ccmm_core::telemetry::{self, Counter};
use ccmm_core::{Computation, ObserverFunction, Op};
use ccmm_dag::NodeId;
use crossbeam::deque::{Injector, Stealer, Worker};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The result of a threaded execution.
#[derive(Debug)]
pub struct ThreadedResult {
    /// The observer function induced by the execution.
    pub observer: ObserverFunction,
    /// Merged protocol counters.
    pub stats: Stats,
    /// Which worker executed each node.
    pub executed_on: Vec<usize>,
}

/// One node's observation row, produced by its executing worker.
type Row = (NodeId, usize, Vec<Option<NodeId>>);

fn find_task(
    local: &Worker<NodeId>,
    injector: &Injector<NodeId>,
    stealers: &[Stealer<NodeId>],
    me: usize,
    attempts: &mut u64,
    plan: &PerturbPlan,
) -> Option<NodeId> {
    if let Some(u) = local.pop() {
        return Some(u);
    }
    loop {
        *attempts += 1;
        telemetry::count(Counter::StealAttempts, 1);
        // The perturb plan rotates which victim this worker probes
        // first, so work migrates across workers instead of settling
        // into the fixed index order (the empty plan's start is 0 —
        // exactly the old behaviour).
        let start = plan.steal_start(me, *attempts, stealers.len());
        let s = injector.steal_batch_and_pop(local).or_else(|| {
            (0..stealers.len()).map(|k| stealers[(start + k) % stealers.len()].steal()).collect()
        });
        if !s.is_retry() {
            return s.success();
        }
    }
}

/// Executes `c` on `config.processors` worker threads with word-granular
/// caches.
pub fn run(c: &Computation, config: &BackerConfig) -> ThreadedResult {
    run_perturbed(c, config, &PerturbPlan::none())
}

/// Executes `c` with word-granular caches under a schedule-perturbation
/// plan (see [`crate::perturb`]): seeded yields/delays before and after
/// each node, seeded steal-victim rotation. The protocol (and therefore
/// the LC guarantee) is untouched — only the schedule is jostled.
pub fn run_perturbed(c: &Computation, config: &BackerConfig, plan: &PerturbPlan) -> ThreadedResult {
    run_with_caches_perturbed(c, config, plan, |nl| Cache::new(nl, config.cache_capacity.max(1)))
}

/// Executes `c` on worker threads with page-granular caches (capacity in
/// pages; see [`crate::paged`]).
pub fn run_paged(c: &Computation, config: &BackerConfig, page_size: usize) -> ThreadedResult {
    run_with_caches(c, config, |nl| {
        crate::paged::PagedCache::new(nl, page_size, config.cache_capacity.max(1))
    })
}

/// The generic threaded executor, parameterized over the cache
/// organisation. `make_cache` runs once per worker.
pub fn run_with_caches<C, F>(
    c: &Computation,
    config: &BackerConfig,
    make_cache: F,
) -> ThreadedResult
where
    C: crate::cache::CacheOps,
    F: Fn(usize) -> C + Sync,
{
    run_with_caches_perturbed(c, config, &PerturbPlan::none(), make_cache)
}

/// [`run_with_caches`] under a schedule-perturbation plan.
pub fn run_with_caches_perturbed<C, F>(
    c: &Computation,
    config: &BackerConfig,
    plan: &PerturbPlan,
    make_cache: F,
) -> ThreadedResult
where
    C: crate::cache::CacheOps,
    F: Fn(usize) -> C + Sync,
{
    let n = c.node_count();
    let num_locations = c.num_locations();
    if n == 0 {
        return ThreadedResult {
            observer: ObserverFunction::empty(),
            stats: Stats::default(),
            executed_on: Vec::new(),
        };
    }
    let workers = config.processors.max(1);
    let mem = Mutex::new(MainMemory::new(num_locations));
    let indeg: Vec<AtomicUsize> =
        (0..n).map(|u| AtomicUsize::new(c.dag().in_degree(NodeId::new(u)))).collect();
    let proc_of: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(usize::MAX)).collect();
    let completed = AtomicUsize::new(0);

    let injector = Injector::new();
    for r in c.dag().roots() {
        injector.push(r);
    }
    let locals: Vec<Worker<NodeId>> = (0..workers).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<NodeId>> = locals.iter().map(Worker::stealer).collect();

    let all_rows: Mutex<Vec<Row>> = Mutex::new(Vec::with_capacity(n));
    let total_stats: Mutex<Stats> = Mutex::new(Stats::default());

    std::thread::scope(|scope| {
        for (me, local) in locals.into_iter().enumerate() {
            let mem = &mem;
            let indeg = &indeg;
            let proc_of = &proc_of;
            let completed = &completed;
            let injector = &injector;
            let stealers = &stealers;
            let all_rows = &all_rows;
            let total_stats = &total_stats;
            let make_cache = &make_cache;
            scope.spawn(move || {
                let mut cache = make_cache(num_locations);
                let mut stats = Stats::default();
                let mut rows: Vec<Row> = Vec::new();
                let mut attempts = 0u64;
                loop {
                    let Some(u) = find_task(&local, injector, stealers, me, &mut attempts, plan)
                    else {
                        // Ordering audit: Acquire pairs with the Release
                        // fetch_add below. Seeing `completed == n` must
                        // also make every worker's appended rows/stats
                        // visible... except it doesn't need to: rows are
                        // published under the `all_rows` mutex after the
                        // loop, whose lock provides that edge. The Acquire
                        // here is only needed so that a worker which
                        // observes the final count cannot still find a
                        // task (task pushes happen-before the counter
                        // increment of the node that made them ready).
                        if completed.load(Ordering::Acquire) == n {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    perturb::jostle(plan, perturb::PHASE_PRE_EXEC, u.index());
                    // Ordering audit: Release so that everything this
                    // worker did *before claiming u* — in particular the
                    // reconcile of any prior node's dirty lines — is
                    // visible to a successor's executor that reads
                    // `proc_of[u] == me` via the Acquire load below.
                    // Correctness does not actually lean on that edge
                    // (the main-memory mutex is the token transport);
                    // what the protocol needs is weaker and subtle, see
                    // the `interleaving` test module: a stale read of
                    // `proc_of[q]` can only yield `usize::MAX` or a
                    // previous (foreign) claimant, both of which flip
                    // `cross_pred` to true — a conservative extra flush,
                    // never a missed one. The one read that must be
                    // fresh — the executor of `u`'s *last* predecessor
                    // seeing its own id — is me-reads-me, always exact.
                    proc_of[u.index()].store(me, Ordering::Release);
                    // Ordering audit: Acquire pairs with the Release
                    // store above. For predecessors handed to us through
                    // the deque (local push or steal), crossbeam's
                    // deque operations provide the happens-before, so
                    // the load returns the true executor. For reads that
                    // race ahead of that edge the stale value is
                    // `usize::MAX != me` — conservative, as argued above.
                    let cross_pred = c
                        .dag()
                        .predecessors(u)
                        .iter()
                        .any(|&q| proc_of[q.index()].load(Ordering::Acquire) != me);
                    {
                        let mut m = mem.lock();
                        if cross_pred && !config.faults.skip_flush {
                            cache.flush_all(&mut m, &mut stats);
                        }
                        match c.op(u) {
                            Op::Read(l) => {
                                cache.read(l, &mut m, &mut stats);
                            }
                            Op::Write(l) => {
                                cache.write(l, token_of(u), &mut m, &mut stats);
                            }
                            Op::Nop => {}
                        }
                        // Probe the node's full view while holding the lock
                        // so the row is a consistent snapshot.
                        let row: Vec<Option<NodeId>> = c
                            .locations()
                            .map(|l| node_of(cache.peek(l).unwrap_or_else(|| m.load(l))))
                            .collect();
                        rows.push((u, me, row));
                        // Conservative BACKER: eager reconcile after every
                        // node, before successors can start.
                        if !config.faults.skip_reconcile {
                            cache.reconcile_all(&mut m, &mut stats);
                        }
                    }
                    perturb::jostle(plan, perturb::PHASE_PRE_NOTIFY, u.index());
                    for &v in c.dag().successors(u) {
                        // Ordering audit: AcqRel is load-bearing. Release:
                        // our `proc_of[u] = me` store and reconcile (via
                        // the mutex unlock above) happen-before the
                        // decrement. Acquire + the RMW release sequence:
                        // the worker whose decrement hits zero
                        // synchronizes with *every* earlier decrementer,
                        // so when it (or a stealer of its push) later
                        // executes `v`, all predecessors' effects are
                        // ordered before it. Weakening this to Relaxed
                        // would let `v` execute before a predecessor's
                        // `proc_of` store is visible — still conservative
                        // for the flush decision, but the pairing with
                        // `completed` below would break: a task push
                        // could be reordered after the final count.
                        if indeg[v.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                            local.push(v);
                        }
                    }
                    // Ordering audit: Release pairs with the idle-loop
                    // Acquire load. The push of any node we made ready is
                    // ordered before this increment, so a worker that
                    // reads the final count and exits cannot strand a
                    // ready-but-unpushed task.
                    completed.fetch_add(1, Ordering::Release);
                }
                all_rows.lock().append(&mut rows);
                total_stats.lock().merge(&stats);
            });
        }
    });

    let mut observer = ObserverFunction::bottom(num_locations, n);
    let mut executed_on = vec![usize::MAX; n];
    for (u, who, row) in all_rows.into_inner() {
        executed_on[u.index()] = who;
        for (li, v) in row.into_iter().enumerate() {
            observer.set(ccmm_core::Location::new(li), u, v);
        }
    }
    ThreadedResult { observer, stats: total_stats.into_inner(), executed_on }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel};

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    fn fork_join_computation(depth: usize) -> Computation {
        let dag = ccmm_dag::generate::fork_join_tree(depth);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| match i % 4 {
                0 => Op::Write(l(0)),
                1 => Op::Read(l(0)),
                2 => Op::Write(l(1)),
                _ => Op::Read(l(1)),
            })
            .collect();
        Computation::new(dag, ops).unwrap()
    }

    #[test]
    fn empty_computation_runs() {
        let c = Computation::empty();
        let r = run(&c, &BackerConfig::with_processors(4));
        assert_eq!(r.observer, ObserverFunction::empty());
    }

    #[test]
    fn single_thread_matches_serial_semantics() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let r = run(&c, &BackerConfig::with_processors(1));
        assert!(r.observer.is_valid_for(&c));
        assert_eq!(r.observer.get(l(0), ccmm_dag::NodeId::new(2)), Some(ccmm_dag::NodeId::new(0)));
    }

    #[test]
    fn all_nodes_execute_exactly_once() {
        let c = fork_join_computation(4);
        let r = run(&c, &BackerConfig::with_processors(4));
        assert!(r.executed_on.iter().all(|&w| w != usize::MAX));
        assert!(r.executed_on.iter().all(|&w| w < 4));
    }

    #[test]
    fn threaded_executions_maintain_lc() {
        let c = fork_join_computation(4);
        for procs in [1, 2, 4, 8] {
            for _ in 0..10 {
                let r = run(&c, &BackerConfig::with_processors(procs));
                assert!(r.observer.is_valid_for(&c), "invalid observer");
                assert!(
                    Lc.contains(&c, &r.observer),
                    "threaded BACKER violated LC on {procs} threads"
                );
            }
        }
    }

    #[test]
    fn tiny_caches_still_maintain_lc() {
        let c = fork_join_computation(3);
        for _ in 0..10 {
            let r = run(&c, &BackerConfig::with_processors(4).cache_capacity(1));
            assert!(Lc.contains(&c, &r.observer));
        }
    }

    #[test]
    fn dependency_edges_deliver_tokens() {
        // A chain must behave exactly like serial memory regardless of
        // which workers execute it.
        let k = 12;
        let dag = ccmm_dag::generate::chain(k);
        let ops: Vec<Op> =
            (0..k).map(|i| if i % 2 == 0 { Op::Write(l(0)) } else { Op::Read(l(0)) }).collect();
        let c = Computation::new(dag, ops).unwrap();
        for _ in 0..5 {
            let r = run(&c, &BackerConfig::with_processors(3));
            for i in (1..k).step_by(2) {
                assert_eq!(
                    r.observer.get(l(0), ccmm_dag::NodeId::new(i)),
                    Some(ccmm_dag::NodeId::new(i - 1)),
                    "read {i} must see preceding write"
                );
            }
        }
    }
}

#[cfg(test)]
mod interleaving {
    //! Handwritten interleaving enumeration pinning the readiness
    //! protocol. The ordering audit found no bug, so per the issue the
    //! protocol's safety argument is pinned here against regression.
    //!
    //! Model: a join node `v` with `W` predecessors, each executed by a
    //! distinct worker. Each worker performs, in program order:
    //!
    //! 1. `proc_of[p_w].store(w, Release)`
    //! 2. `indeg[v].fetch_sub(1, AcqRel)`
    //!
    //! The worker whose decrement returns 1 executes `v` (local push +
    //! LIFO pop; a steal only *adds* a happens-before edge via the deque,
    //! so the pop case is the weakest and covers both) and loads every
    //! `proc_of[p_q]` with Acquire to decide `cross_pred`.
    //!
    //! The enumerator walks every decrement order and, per load, every
    //! coherence-allowed value: a load may return a stale value only if
    //! the newer store does not happen-before it. Vector clocks track
    //! happens-before; AcqRel RMWs form a release sequence, so the final
    //! decrementer inherits every earlier decrementer's clock.
    //!
    //! Pinned properties:
    //!
    //! * Real orderings: every `proc_of` read is exact — the executor of
    //!   `v` sees the true worker id of every predecessor, in every
    //!   interleaving.
    //! * Mutated orderings (`fetch_sub` weakened to Relaxed): stale
    //!   `usize::MAX` reads become allowed (and the test asserts the
    //!   enumerator really explores them), but `cross_pred` only ever
    //!   flips toward *more* flushing. A stale read can never equal
    //!   `me`, because worker `me` is the only thread that ever writes
    //!   the value `me`: a missed flush is impossible in every
    //!   interleaving; the failure mode of the weakened protocol is
    //!   extra conservative flushes (and a broken termination counter,
    //!   which is outside this model — see the audit comment on
    //!   `completed`).

    const W: usize = 3;

    /// A vector clock over the `W` workers; entry `i` counts worker
    /// `i`'s events (1 = its store, 2 = its decrement).
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    struct Clock([u64; W]);

    impl Clock {
        fn zero() -> Self {
            Clock([0; W])
        }
        fn join(&mut self, o: Clock) {
            for i in 0..W {
                self.0[i] = self.0[i].max(o.0[i]);
            }
        }
        /// True iff an event at `self` happens-after an event at `o`.
        fn dominates(&self, o: Clock) -> bool {
            (0..W).all(|i| self.0[i] >= o.0[i])
        }
    }

    fn permutations(items: &[usize]) -> Vec<Vec<usize>> {
        if items.is_empty() {
            return vec![Vec::new()];
        }
        let mut out = Vec::new();
        for (i, &x) in items.iter().enumerate() {
            let mut rest = items.to_vec();
            rest.remove(i);
            for mut p in permutations(&rest) {
                p.insert(0, x);
                out.push(p);
            }
        }
        out
    }

    /// Enumerates every decrement order and every coherence-allowed
    /// combination of `proc_of` reads. `rmw_acqrel` selects the real
    /// protocol; `false` models the Relaxed-decrement mutation.
    /// Returns `(saw_stale_read, cross_pred outcomes)`.
    fn enumerate(rmw_acqrel: bool) -> (bool, Vec<bool>) {
        let mut saw_stale = false;
        let mut outcomes = Vec::new();
        for order in permutations(&(0..W).collect::<Vec<_>>()) {
            // Worker w's store is its event #1; Release means the clock
            // travels with the value (we only use it for coherence).
            let mut store_clock = [Clock::zero(); W];
            for (w, sc) in store_clock.iter_mut().enumerate() {
                sc.0[w] = 1;
            }
            // The decrements happen in `order`. `chain` is the release
            // sequence: each AcqRel RMW joins it (acquire side) and
            // extends it (release side).
            let mut chain = Clock::zero();
            let mut exec_clock = Clock::zero();
            for (step, &w) in order.iter().enumerate() {
                let mut wc = store_clock[w]; // program order: store first
                wc.0[w] = 2;
                if rmw_acqrel {
                    wc.join(chain);
                    chain.join(wc);
                }
                if step == W - 1 {
                    exec_clock = wc; // final decrementer executes v
                }
            }
            let me = *order.last().unwrap();

            // Per-predecessor read choices under coherence: the store
            // happens-before the load ⇒ the stale init (usize::MAX) is
            // forbidden; otherwise both values are allowed.
            let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
            for (q, sc) in store_clock.iter().enumerate() {
                let choices: Vec<usize> = if exec_clock.dominates(*sc) {
                    vec![q]
                } else {
                    saw_stale = true;
                    vec![q, usize::MAX]
                };
                let mut next = Vec::new();
                for c in &combos {
                    for &v in &choices {
                        let mut c2 = c.clone();
                        c2.push(v);
                        next.push(c2);
                    }
                }
                combos = next;
            }
            for combo in combos {
                for (q, &r) in combo.iter().enumerate() {
                    // The unforgeability invariant: reading `me` is only
                    // possible for me's own store.
                    assert!(r != me || q == me, "a stale read must never impersonate `me`");
                }
                outcomes.push(combo.iter().any(|&r| r != me));
            }
        }
        (saw_stale, outcomes)
    }

    #[test]
    fn acqrel_chain_makes_every_proc_of_read_exact() {
        let (saw_stale, outcomes) = enumerate(true);
        assert!(!saw_stale, "with AcqRel decrements no stale read is coherence-allowed");
        // All predecessors sit on distinct foreign workers here, so
        // every interleaving must conclude cross_pred.
        assert!(!outcomes.is_empty());
        assert!(outcomes.into_iter().all(|c| c));
    }

    #[test]
    fn relaxed_decrement_mutation_is_explored_and_stays_conservative() {
        let (saw_stale, outcomes) = enumerate(false);
        assert!(saw_stale, "the enumerator must actually reach stale reads");
        assert!(
            outcomes.into_iter().all(|c| c),
            "a stale read is usize::MAX, never `me`: cross_pred may only flip \
             toward more flushing — a missed flush is impossible"
        );
    }
}

#[cfg(test)]
mod perturbed_tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel};

    #[test]
    fn perturbed_executions_maintain_lc() {
        let dag = ccmm_dag::generate::fork_join_tree(4);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| match i % 4 {
                0 => Op::Write(Location::new(0)),
                1 => Op::Read(Location::new(0)),
                2 => Op::Write(Location::new(1)),
                _ => Op::Read(Location::new(1)),
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for seed in 0..8u64 {
            let plan = PerturbPlan::aggressive(seed);
            let r = run_perturbed(&c, &BackerConfig::with_processors(4), &plan);
            assert!(r.observer.is_valid_for(&c));
            assert!(Lc.contains(&c, &r.observer), "perturbed run left LC (seed {seed})");
        }
    }

    #[test]
    fn empty_plan_is_identity_on_single_thread() {
        // With 1 worker and no perturbation the executor is
        // deterministic; run/run_perturbed(none) must agree exactly.
        let dag = ccmm_dag::generate::chain(9);
        let ops: Vec<Op> =
            (0..9)
                .map(|i| {
                    if i % 2 == 0 {
                        Op::Write(Location::new(0))
                    } else {
                        Op::Read(Location::new(0))
                    }
                })
                .collect();
        let c = Computation::new(dag, ops).unwrap();
        let cfg = BackerConfig::with_processors(1);
        let a = run(&c, &cfg);
        let b = run_perturbed(&c, &cfg, &PerturbPlan::none());
        assert_eq!(a.observer, b.observer);
        assert_eq!(a.executed_on, b.executed_on);
    }
}

#[cfg(test)]
mod paged_tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel};

    #[test]
    fn paged_threads_maintain_lc() {
        let dag = ccmm_dag::generate::fork_join_tree(3);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| match i % 3 {
                0 => Op::Write(Location::new(i % 6)),
                1 => Op::Read(Location::new((i + 2) % 6)),
                _ => Op::Nop,
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for page in [1usize, 4] {
            for _ in 0..5 {
                let r = run_paged(&c, &BackerConfig::with_processors(4).cache_capacity(2), page);
                assert!(r.observer.is_valid_for(&c));
                assert!(Lc.contains(&c, &r.observer), "page={page}");
            }
        }
    }
}
