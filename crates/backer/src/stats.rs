//! Execution counters, the raw material of the performance experiments.

/// Protocol and cache event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Cache read hits.
    pub hits: u64,
    /// Cache read misses.
    pub misses: u64,
    /// Fetches from main memory.
    pub fetches: u64,
    /// Cache writes.
    pub writes: u64,
    /// Dirty lines written back to main memory.
    pub reconciles: u64,
    /// Whole-cache flushes.
    pub flushes: u64,
    /// Lines evicted under capacity pressure.
    pub evictions: u64,
}

serde::impl_serde_struct!(Stats { hits, misses, fetches, writes, reconciles, flushes, evictions });

impl Stats {
    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.fetches += other.fetches;
        self.writes += other.writes;
        self.reconciles += other.reconciles;
        self.flushes += other.flushes;
        self.evictions += other.evictions;
    }

    /// Read hit rate in `[0, 1]`; 1.0 if there were no reads.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats { hits: 1, misses: 2, ..Default::default() };
        let b = Stats { hits: 10, reconciles: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 2);
        assert_eq!(a.reconciles, 3);
    }

    #[test]
    fn hit_rate_bounds() {
        assert_eq!(Stats::default().hit_rate(), 1.0);
        let s = Stats { hits: 3, misses: 1, ..Default::default() };
        assert_eq!(s.hit_rate(), 0.75);
    }
}
