//! The atomic-memory baseline: no caches, every access hits main memory.
//!
//! The strongest-possible memory for a computation: at each step the
//! executing node sees the globally latest state, so the induced observer
//! function is the last-writer function of the execution serialization —
//! *sequential consistency by construction*. It is the natural foil for
//! BACKER in the experiments: SC semantics, but zero locality (every read
//! is a round-trip) versus BACKER's weaker LC with cache hits. The §7
//! question — "whether any algorithm can be found that is more efficient
//! than BACKER that implements a weaker memory model than LC" — lives on
//! exactly this axis.

use crate::memory::{node_of, token_of, MainMemory};
use crate::schedule::Schedule;
use crate::sim::SimResult;
use crate::stats::Stats;
use ccmm_core::{Computation, ObserverFunction, Op};

/// Runs the computation against uncached atomic memory under `schedule`.
///
/// The observer function records, for every node and location, the
/// memory state at the node's execution — making every execution
/// sequentially consistent (verified in the tests and experiment E9).
pub fn run(c: &Computation, schedule: &Schedule) -> SimResult {
    schedule.validate(c).expect("invalid schedule");
    let num_locations = c.num_locations();
    let mut mem = MainMemory::new(num_locations);
    let mut stats = Stats::default();
    let mut observer = ObserverFunction::bottom(num_locations, c.node_count());
    let mut per_proc = vec![Stats::default(); schedule.processors];

    for &u in &schedule.order {
        let p = schedule.proc[u.index()];
        match c.op(u) {
            Op::Read(l) => {
                let _ = mem.load(l);
                per_proc[p].misses += 1;
                per_proc[p].fetches += 1;
            }
            Op::Write(l) => {
                mem.store(l, token_of(u));
                per_proc[p].writes += 1;
                // Writes go straight to memory: count as reconciles for
                // comparability with BACKER's write-back traffic.
                per_proc[p].reconciles += 1;
            }
            Op::Nop => {}
        }
        for l in c.locations() {
            observer.set(l, u, node_of(mem.load(l)));
        }
    }
    for s in &per_proc {
        stats.merge(s);
    }
    SimResult { observer, stats, per_proc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel, Sc};
    use rand::SeedableRng;

    fn workload() -> Computation {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let dag = ccmm_dag::generate::gnp_dag(10, 0.3, &mut rng);
        let ops: Vec<Op> = (0..10)
            .map(|i| match i % 3 {
                0 => Op::Write(Location::new(i % 2)),
                1 => Op::Read(Location::new((i + 1) % 2)),
                _ => Op::Nop,
            })
            .collect();
        Computation::new(dag, ops).unwrap()
    }

    #[test]
    fn atomic_memory_is_sequentially_consistent() {
        let c = workload();
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        for _ in 0..20 {
            let s = Schedule::random(&c, 4, &mut rng);
            let r = run(&c, &s);
            assert!(r.observer.is_valid_for(&c));
            assert!(Sc.contains(&c, &r.observer), "atomic memory must be SC");
            assert!(Lc.contains(&c, &r.observer));
        }
    }

    #[test]
    fn every_read_is_a_fetch() {
        let c = workload();
        let s = Schedule::serial(&c);
        let r = run(&c, &s);
        let reads = c.nodes().filter(|&u| matches!(c.op(u), Op::Read(_))).count() as u64;
        assert_eq!(r.stats.fetches, reads, "no cache, no hits");
        assert_eq!(r.stats.hits, 0);
    }

    #[test]
    fn observer_matches_execution_order_last_writer() {
        let c = workload();
        let s = Schedule::serial(&c);
        let r = run(&c, &s);
        let expected = ccmm_core::last_writer::last_writer_function(&c, &s.order);
        assert_eq!(r.observer, expected);
    }

    #[test]
    fn cilk_programs_run_atomically() {
        let c = ccmm_cilk_like();
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let s = Schedule::work_stealing(&c, 4, &mut rng);
        let r = run(&c, &s);
        assert!(Sc.contains(&c, &r.observer));
    }

    fn ccmm_cilk_like() -> Computation {
        let dag = ccmm_dag::generate::fork_join_tree(3);
        let n = dag.node_count();
        let ops: Vec<Op> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    Op::Write(Location::new(i % 3))
                } else {
                    Op::Read(Location::new((i + 1) % 3))
                }
            })
            .collect();
        Computation::new(dag, ops).unwrap()
    }
}
