//! Page-granularity caching with per-word dirty masks.
//!
//! The real BACKER cached *pages*, not single words — fetching a page
//! pulls in its neighbours (spatial locality) and two processors writing
//! different words of one page share it falsely. Write-backs use per-word
//! dirty masks (only words this processor wrote are stored), the
//! diff-style trick that keeps false sharing from losing writes: BACKER
//! tolerates concurrent dirty copies of a page as long as their dirty
//! word sets are disjoint — which is exactly the race-free case.
//!
//! [`PagedCache`] implements the same [`CacheOps`] protocol surface as the
//! word-granular [`crate::cache::Cache`], so the simulator runs over
//! either; experiment E10's page-size sweep shows the fetch-traffic /
//! false-sharing trade-off the Cilk papers measured.

use crate::cache::CacheOps;
use crate::memory::{MainMemory, Token};
use crate::stats::Stats;
use ccmm_core::Location;

/// Per-word state inside a cached page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Word {
    /// Not present (page was write-allocated without a fetch).
    Absent,
    /// Present and matching what we fetched.
    Clean(Token),
    /// Written locally, not yet reconciled.
    Dirty(Token),
}

#[derive(Clone, Debug)]
struct Page {
    words: Vec<Word>,
    stamp: u64,
}

impl Page {
    fn has_dirty(&self) -> bool {
        self.words.iter().any(|w| matches!(w, Word::Dirty(_)))
    }
}

/// A processor cache holding whole pages of `page_size` consecutive
/// locations, with capacity counted in pages.
#[derive(Debug)]
pub struct PagedCache {
    pages: Vec<Option<Page>>,
    page_size: usize,
    capacity_pages: usize,
    occupancy: usize,
    clock: u64,
}

impl PagedCache {
    /// An empty cache over `num_locations` locations grouped into pages of
    /// `page_size` words, holding at most `capacity_pages` pages.
    pub fn new(num_locations: usize, page_size: usize, capacity_pages: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(capacity_pages > 0, "capacity must be positive");
        let npages = num_locations.div_ceil(page_size).max(1);
        PagedCache { pages: vec![None; npages], page_size, capacity_pages, occupancy: 0, clock: 0 }
    }

    fn page_of(&self, l: Location) -> usize {
        l.index() / self.page_size
    }

    fn word_of(&self, l: Location) -> usize {
        l.index() % self.page_size
    }

    /// Number of resident pages.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    fn write_back(
        page_idx: usize,
        page: &mut Page,
        page_size: usize,
        mem: &mut MainMemory,
        stats: &mut Stats,
    ) {
        for (w, word) in page.words.iter_mut().enumerate() {
            if let Word::Dirty(t) = *word {
                let loc = Location::new(page_idx * page_size + w);
                if loc.index() < mem.len() {
                    mem.store(loc, t);
                }
                *word = Word::Clean(t);
                stats.reconciles += 1;
            }
        }
    }

    fn evict_lru(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        let victim = self
            .pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|pg| (i, pg.stamp)))
            .min_by_key(|&(_, s)| s)
            .map(|(i, _)| i)
            .expect("evict on empty cache");
        let mut page = self.pages[victim].take().expect("victim resident");
        self.occupancy -= 1;
        stats.evictions += 1;
        if page.has_dirty() {
            Self::write_back(victim, &mut page, self.page_size, mem, stats);
        }
    }

    fn install_fetched(&mut self, pi: usize, mem: &MainMemory) -> &mut Page {
        let words = (0..self.page_size)
            .map(|w| {
                let loc = pi * self.page_size + w;
                if loc < mem.len() {
                    Word::Clean(mem.load(Location::new(loc)))
                } else {
                    Word::Absent
                }
            })
            .collect();
        self.clock += 1;
        self.occupancy += 1;
        self.pages[pi] = Some(Page { words, stamp: self.clock });
        self.pages[pi].as_mut().expect("just installed")
    }
}

impl CacheOps for PagedCache {
    fn read(&mut self, l: Location, mem: &mut MainMemory, stats: &mut Stats) -> Token {
        let pi = self.page_of(l);
        let wi = self.word_of(l);
        self.clock += 1;
        let clock = self.clock;
        if let Some(page) = &mut self.pages[pi] {
            page.stamp = clock;
            match page.words[wi] {
                Word::Clean(t) | Word::Dirty(t) => {
                    stats.hits += 1;
                    return t;
                }
                Word::Absent => {
                    // Present page but absent word (write-allocated): fill
                    // this word from memory. One word, one fetch.
                    let t = mem.load(l);
                    page.words[wi] = Word::Clean(t);
                    stats.misses += 1;
                    stats.fetches += 1;
                    return t;
                }
            }
        }
        stats.misses += 1;
        stats.fetches += 1; // one fetch transfers the whole page
        while self.occupancy >= self.capacity_pages {
            self.evict_lru(mem, stats);
        }
        let page = self.install_fetched(pi, mem);
        match page.words[wi] {
            Word::Clean(t) => t,
            _ => unreachable!("fetched word is clean"),
        }
    }

    fn write(&mut self, l: Location, t: Token, mem: &mut MainMemory, stats: &mut Stats) {
        let pi = self.page_of(l);
        let wi = self.word_of(l);
        self.clock += 1;
        let clock = self.clock;
        if let Some(page) = &mut self.pages[pi] {
            page.stamp = clock;
            page.words[wi] = Word::Dirty(t);
        } else {
            while self.occupancy >= self.capacity_pages {
                self.evict_lru(mem, stats);
            }
            // Write-allocate without fetching: other words stay Absent.
            let mut words = vec![Word::Absent; self.page_size];
            words[wi] = Word::Dirty(t);
            self.occupancy += 1;
            self.pages[pi] = Some(Page { words, stamp: clock });
        }
        stats.writes += 1;
    }

    fn reconcile_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        let page_size = self.page_size;
        for (pi, slot) in self.pages.iter_mut().enumerate() {
            if let Some(page) = slot {
                if page.has_dirty() {
                    Self::write_back(pi, page, page_size, mem, stats);
                }
            }
        }
    }

    fn flush_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        self.reconcile_all(mem, stats);
        for slot in &mut self.pages {
            *slot = None;
        }
        self.occupancy = 0;
        stats.flushes += 1;
    }

    fn peek(&self, l: Location) -> Option<Token> {
        let page = self.pages[self.page_of(l)].as_ref()?;
        match page.words[self.word_of(l)] {
            Word::Clean(t) | Word::Dirty(t) => Some(t),
            Word::Absent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn fetch_brings_whole_page() {
        let mut mem = MainMemory::new(8);
        mem.store(l(0), 10);
        mem.store(l(1), 11);
        let mut c = PagedCache::new(8, 4, 2);
        let mut s = Stats::default();
        assert_eq!(c.read(l(0), &mut mem, &mut s), 10);
        assert_eq!(s.fetches, 1);
        // Neighbour in the same page: hit, no new fetch.
        assert_eq!(c.read(l(1), &mut mem, &mut s), 11);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.hits, 1);
        // Different page: new fetch.
        let _ = c.read(l(4), &mut mem, &mut s);
        assert_eq!(s.fetches, 2);
    }

    #[test]
    fn write_allocate_does_not_fetch() {
        let mut mem = MainMemory::new(4);
        mem.store(l(1), 99);
        let mut c = PagedCache::new(4, 4, 1);
        let mut s = Stats::default();
        c.write(l(0), 5, &mut mem, &mut s);
        assert_eq!(s.fetches, 0);
        assert_eq!(c.peek(l(0)), Some(5));
        // The page-mate is absent, not a stale garbage value.
        assert_eq!(c.peek(l(1)), None);
        // Reading it fills just that word.
        assert_eq!(c.read(l(1), &mut mem, &mut s), 99);
    }

    #[test]
    fn reconcile_writes_only_dirty_words() {
        let mut mem = MainMemory::new(4);
        mem.store(l(1), 42);
        let mut c = PagedCache::new(4, 4, 1);
        let mut s = Stats::default();
        let _ = c.read(l(1), &mut mem, &mut s); // page now cached clean
        c.write(l(0), 7, &mut mem, &mut s);
        // Someone else updates word 1 in memory.
        mem.store(l(1), 43);
        c.reconcile_all(&mut mem, &mut s);
        assert_eq!(mem.load(l(0)), 7, "dirty word written");
        assert_eq!(mem.load(l(1)), 43, "clean word NOT overwritten — no false-sharing clobber");
    }

    #[test]
    fn disjoint_dirty_words_merge_across_caches() {
        // Two caches write different words of one page; both reconcile;
        // both writes survive.
        let mut mem = MainMemory::new(4);
        let mut a = PagedCache::new(4, 4, 1);
        let mut b = PagedCache::new(4, 4, 1);
        let mut s = Stats::default();
        a.write(l(0), 1, &mut mem, &mut s);
        b.write(l(1), 2, &mut mem, &mut s);
        a.reconcile_all(&mut mem, &mut s);
        b.reconcile_all(&mut mem, &mut s);
        assert_eq!(mem.load(l(0)), 1);
        assert_eq!(mem.load(l(1)), 2);
    }

    #[test]
    fn eviction_prefers_lru_page() {
        let mut mem = MainMemory::new(8);
        let mut c = PagedCache::new(8, 2, 2);
        let mut s = Stats::default();
        let _ = c.read(l(0), &mut mem, &mut s); // page 0
        let _ = c.read(l(2), &mut mem, &mut s); // page 1
        let _ = c.read(l(0), &mut mem, &mut s); // touch page 0
        let _ = c.read(l(4), &mut mem, &mut s); // page 2 evicts page 1
        assert!(c.peek(l(0)).is_some());
        assert!(c.peek(l(2)).is_none());
        assert!(c.peek(l(4)).is_some());
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn flush_drops_everything_after_writeback() {
        let mut mem = MainMemory::new(4);
        let mut c = PagedCache::new(4, 2, 2);
        let mut s = Stats::default();
        c.write(l(3), 9, &mut mem, &mut s);
        c.flush_all(&mut mem, &mut s);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(mem.load(l(3)), 9);
        assert_eq!(c.peek(l(3)), None);
    }

    #[test]
    fn page_size_one_behaves_like_word_cache() {
        use crate::cache::Cache;
        let mut mem1 = MainMemory::new(4);
        let mut mem2 = MainMemory::new(4);
        let mut paged = PagedCache::new(4, 1, 2);
        let mut word = Cache::new(4, 2);
        let mut s1 = Stats::default();
        let mut s2 = Stats::default();
        let script: Vec<(bool, usize, Token)> =
            vec![(true, 0, 5), (false, 0, 0), (true, 1, 6), (false, 2, 0), (false, 1, 0)];
        for (is_write, loc, t) in script {
            if is_write {
                paged.write(l(loc), t, &mut mem1, &mut s1);
                word.write(l(loc), t, &mut mem2, &mut s2);
            } else {
                let a = paged.read(l(loc), &mut mem1, &mut s1);
                let b = word.read(l(loc), &mut mem2, &mut s2);
                assert_eq!(a, b, "loc {loc}");
            }
        }
        assert_eq!(s1.fetches, s2.fetches);
        assert_eq!(s1.hits, s2.hits);
    }
}
