//! # ccmm-backer — the BACKER coherence algorithm
//!
//! BACKER (\[BFJ+96a\], \[BFJ+96b\]) is the coherence algorithm behind Cilk's
//! dag-consistent shared memory, and the system that motivated the SPAA'98
//! paper's theory: Luchangco \[Luc97\] proved that BACKER in fact maintains
//! **location consistency** (the constructible version of NN-dag
//! consistency, Theorem 23).
//!
//! This crate makes that claim executable:
//!
//! * [`sim`]: a deterministic discrete-event simulator replaying any
//!   [`schedule::Schedule`] with per-processor caches, fetch/reconcile/
//!   flush protocol, LRU eviction, and full counters;
//! * [`threads`]: a real multithreaded executor (crossbeam work-stealing
//!   deques, parking_lot-guarded main memory) running the conservative
//!   variant of the protocol;
//! * [`config::FaultInjection`]: switchable protocol violations (skip
//!   flush / skip reconcile) whose executions detectably leave LC;
//! * [`verify`](crate::verify()): post-mortem membership profiles of executions against
//!   SC / LC / NN / WW;
//! * [`harvest`]: distinct observer functions collected across a spread
//!   of schedules and cache sizes, feeding the conformance harness.
//!
//! Executions transport unique write tokens, so every run yields a total
//! observer function checkable by `ccmm-core`'s exact model checkers.

//! # Example
//!
//! ```
//! use ccmm_backer::{sim, BackerConfig, Schedule};
//! use ccmm_core::{Computation, Lc, Location, MemoryModel, Op};
//!
//! // W(l) on one processor, R(l) on another, across a dependency edge.
//! let l = Location::new(0);
//! let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l), Op::Read(l)]);
//! let schedule = Schedule::round_robin(&c, 2);
//! let result = sim::run(&c, &schedule, &BackerConfig::with_processors(2));
//!
//! // The protocol delivered the token, and the execution is LC.
//! assert_eq!(
//!     result.observer.get(l, ccmm_dag::NodeId::new(1)),
//!     Some(ccmm_dag::NodeId::new(0)),
//! );
//! assert!(Lc.contains(&c, &result.observer));
//! ```

#![warn(missing_docs)]

pub mod atomic;
pub mod cache;
pub mod config;
pub mod harvest;
pub mod memory;
pub mod paged;
pub mod perturb;
pub mod schedule;
pub mod sim;
pub mod stats;
pub mod stream;
pub mod threads;
pub mod timing;
pub mod verify;

pub use config::{BackerConfig, FaultInjection};
pub use perturb::PerturbPlan;
pub use schedule::Schedule;
pub use sim::{run, SimResult};
pub use stats::Stats;
pub use stream::{block_cyclic_proc, run_stream, LeanCache, StreamRunner};
pub use verify::{verify, ModelProfile, VerifyReport};
