//! Schedules: who executes which node, in what serialization.
//!
//! The theory separates the computation from the schedule; BACKER's
//! behaviour (and its observer function) depends on both. A [`Schedule`]
//! is a topological execution order plus a processor assignment per node.
//! Generators range from fully serial to a locality-greedy approximation
//! of Cilk's work-stealing scheduler.

use ccmm_core::Computation;
use ccmm_dag::{topo, NodeId};
use rand::Rng;

/// An execution schedule for a computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Global serialization of node executions (a topological sort).
    pub order: Vec<NodeId>,
    /// `proc[u.index()]` = processor executing node `u`.
    pub proc: Vec<usize>,
    /// Number of processors.
    pub processors: usize,
}

impl Schedule {
    /// Validates the schedule against a computation.
    pub fn validate(&self, c: &Computation) -> Result<(), String> {
        if !topo::is_topological_sort(c.dag(), &self.order) {
            return Err("order is not a topological sort".to_string());
        }
        if self.proc.len() != c.node_count() {
            return Err(format!(
                "proc assignment has {} entries for {} nodes",
                self.proc.len(),
                c.node_count()
            ));
        }
        if let Some(&bad) = self.proc.iter().find(|&&p| p >= self.processors) {
            return Err(format!("processor {bad} out of range {}", self.processors));
        }
        Ok(())
    }

    /// Everything on one processor, deterministic order. BACKER on a
    /// serial schedule is exact shared memory: every read sees the most
    /// recent write in program order.
    pub fn serial(c: &Computation) -> Schedule {
        Schedule { order: topo::topo_sort(c.dag()), proc: vec![0; c.node_count()], processors: 1 }
    }

    /// Deterministic order, nodes dealt round-robin across `p` processors
    /// — a pessimal-locality schedule, useful as a stress case.
    pub fn round_robin(c: &Computation, p: usize) -> Schedule {
        assert!(p > 0);
        let order = topo::topo_sort(c.dag());
        let mut proc = vec![0; c.node_count()];
        for (i, u) in order.iter().enumerate() {
            proc[u.index()] = i % p;
        }
        Schedule { order, proc, processors: p }
    }

    /// Random topological order with uniformly random processor per node.
    pub fn random<R: Rng + ?Sized>(c: &Computation, p: usize, rng: &mut R) -> Schedule {
        assert!(p > 0);
        let order = topo::random_topo_sort(c.dag(), rng);
        let proc = (0..c.node_count()).map(|_| rng.gen_range(0..p)).collect();
        Schedule { order, proc, processors: p }
    }

    /// A locality-greedy approximation of work stealing: each processor
    /// prefers to continue with a ready successor of the node it just
    /// executed (the "continuation"); idle processors steal a random ready
    /// node. One node executes per global step.
    pub fn work_stealing<R: Rng + ?Sized>(c: &Computation, p: usize, rng: &mut R) -> Schedule {
        assert!(p > 0);
        let n = c.node_count();
        let mut indeg: Vec<usize> = (0..n).map(|u| c.dag().in_degree(NodeId::new(u))).collect();
        let mut ready: Vec<NodeId> = c.dag().roots();
        let mut last_on: Vec<Option<NodeId>> = vec![None; p];
        let mut order = Vec::with_capacity(n);
        let mut proc = vec![0; n];
        let mut turn = 0usize;
        while !ready.is_empty() {
            // Round-robin the processors; each picks with locality.
            let me = turn % p;
            turn += 1;
            let pick_idx = last_on[me]
                .and_then(|prev| {
                    ready.iter().position(|&r| c.dag().predecessors(r).contains(&prev))
                })
                .unwrap_or_else(|| rng.gen_range(0..ready.len()));
            let u = ready.swap_remove(pick_idx);
            order.push(u);
            proc[u.index()] = me;
            last_on[me] = Some(u);
            for &v in c.dag().successors(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    ready.push(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n);
        Schedule { order, proc, processors: p }
    }

    /// Number of dag edges whose endpoints run on different processors —
    /// each forces protocol traffic.
    pub fn cross_edges(&self, c: &Computation) -> usize {
        c.dag().edges().filter(|&(u, v)| self.proc[u.index()] != self.proc[v.index()]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Location, Op};
    use rand::SeedableRng;

    fn diamond() -> Computation {
        Computation::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![
                Op::Write(Location::new(0)),
                Op::Read(Location::new(0)),
                Op::Write(Location::new(0)),
                Op::Read(Location::new(0)),
            ],
        )
    }

    #[test]
    fn serial_is_valid_single_proc() {
        let c = diamond();
        let s = Schedule::serial(&c);
        assert!(s.validate(&c).is_ok());
        assert_eq!(s.processors, 1);
        assert_eq!(s.cross_edges(&c), 0);
    }

    #[test]
    fn round_robin_spreads_nodes() {
        let c = diamond();
        let s = Schedule::round_robin(&c, 2);
        assert!(s.validate(&c).is_ok());
        assert!(s.proc.contains(&0));
        assert!(s.proc.contains(&1));
        assert!(s.cross_edges(&c) > 0);
    }

    #[test]
    fn random_schedules_are_valid() {
        let c = diamond();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let s = Schedule::random(&c, 3, &mut rng);
            assert!(s.validate(&c).is_ok());
        }
    }

    #[test]
    fn work_stealing_schedules_are_valid() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let dag = ccmm_dag::generate::fork_join_tree(4);
        let n = dag.node_count();
        let c = Computation::new(dag, vec![Op::Nop; n]).unwrap();
        for p in [1, 2, 4] {
            for _ in 0..10 {
                let s = Schedule::work_stealing(&c, p, &mut rng);
                assert!(s.validate(&c).is_ok());
            }
        }
    }

    #[test]
    fn validate_rejects_bad_schedules() {
        let c = diamond();
        let mut s = Schedule::serial(&c);
        s.order.swap(0, 1);
        assert!(s.validate(&c).is_err());

        let mut s2 = Schedule::serial(&c);
        s2.proc[2] = 5;
        assert!(s2.validate(&c).is_err());

        let mut s3 = Schedule::serial(&c);
        s3.proc.pop();
        assert!(s3.validate(&c).is_err());
    }

    #[test]
    fn locality_reduces_cross_edges_versus_round_robin() {
        // On a long chain, work stealing keeps everything on one
        // processor; round robin alternates every edge.
        let dag = ccmm_dag::generate::chain(20);
        let c = Computation::new(dag, vec![Op::Nop; 20]).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let ws = Schedule::work_stealing(&c, 2, &mut rng);
        let rr = Schedule::round_robin(&c, 2);
        assert!(ws.cross_edges(&c) <= rr.cross_edges(&c));
        assert_eq!(rr.cross_edges(&c), 19);
    }
}
