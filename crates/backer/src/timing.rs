//! A timed, event-driven BACKER execution model.
//!
//! \[BFJ+96a\]'s analysis of BACKER under work stealing bounds the
//! execution time as `T_P = O(T_1/P + σ·T_∞)` — work divided across
//! processors plus a critical-path term inflated by protocol costs. This
//! module makes that shape measurable: a greedy event-driven scheduler
//! executes the computation on `P` processors with a [`CostModel`]
//! charging for instructions, fetches, reconciles, and flushes, and
//! reports the makespan alongside the work (`T_1`) and span (`T_∞`)
//! lower bounds.
//!
//! The scheduler is greedy (no processor idles while a node is ready),
//! so Brent/Graham's bound `T_P ≤ T_1/P + T_∞` holds for the pure-work
//! component; protocol costs push the measured makespan above it by the
//! coherence overhead the experiments quantify.

use crate::cache::Cache;
use crate::config::BackerConfig;
use crate::memory::{token_of, MainMemory};
use crate::stats::Stats;
use ccmm_core::{Computation, Op};
use ccmm_dag::NodeId;
use rand::Rng;

/// Cost coefficients, in abstract time units.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Executing any instruction.
    pub op: u64,
    /// One fetch from main memory.
    pub fetch: u64,
    /// Writing one dirty line back.
    pub reconcile: u64,
    /// Emptying the cache (fixed part; dirty write-backs billed per line).
    pub flush: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // A fetch is an order of magnitude slower than an instruction,
        // in the spirit of the DSM machines the Cilk papers measured.
        CostModel { op: 1, fetch: 10, reconcile: 10, flush: 2 }
    }
}

/// The result of a timed execution.
#[derive(Clone, Debug)]
pub struct TimedResult {
    /// Total simulated time (makespan).
    pub makespan: u64,
    /// Sum of all node costs as executed (includes protocol charges).
    pub total_cost: u64,
    /// Per-node completion times.
    pub finish: Vec<u64>,
    /// Which processor executed each node.
    pub proc: Vec<usize>,
    /// Protocol counters.
    pub stats: Stats,
}

/// Pure-work `T_1`: every node costs `cost.op` (no protocol on one
/// processor with an unbounded cache and perfect locality).
pub fn work(c: &Computation, cost: &CostModel) -> u64 {
    c.node_count() as u64 * cost.op
}

/// Pure-work `T_∞`: the longest path, each node costing `cost.op`.
pub fn span(c: &Computation, cost: &CostModel) -> u64 {
    let order = ccmm_dag::topo::topo_sort(c.dag());
    let mut depth = vec![0u64; c.node_count()];
    let mut best = 0;
    for u in order {
        let d = depth[u.index()] + cost.op;
        best = best.max(d);
        for &v in c.dag().successors(u) {
            depth[v.index()] = depth[v.index()].max(d);
        }
    }
    best
}

/// Runs a timed, greedy, randomized execution on `p` processors.
///
/// Scheduling: when a processor becomes free it executes a ready node,
/// preferring a successor of the node it just finished (continuation
/// locality) and otherwise stealing a uniformly random ready node. Memory
/// behaviour and protocol placement match [`crate::sim`] (flush before
/// cross-processor dependencies, reconcile after).
pub fn run<R: Rng + ?Sized>(
    c: &Computation,
    p: usize,
    config: &BackerConfig,
    cost: &CostModel,
    rng: &mut R,
) -> TimedResult {
    assert!(p > 0);
    let n = c.node_count();
    let num_locations = c.num_locations();
    let mut mem = MainMemory::new(num_locations);
    let mut caches: Vec<Cache> =
        (0..p).map(|_| Cache::new(num_locations, config.cache_capacity.max(1))).collect();
    let mut stats_per: Vec<Stats> = vec![Stats::default(); p];

    let mut indeg: Vec<usize> = (0..n).map(|u| c.dag().in_degree(NodeId::new(u))).collect();
    let mut ready_time: Vec<u64> = vec![0; n];
    let mut ready: Vec<NodeId> = c.dag().roots();
    let mut finish = vec![0u64; n];
    let mut proc_of = vec![usize::MAX; n];
    let mut proc_free = vec![0u64; p];
    let mut last_on: Vec<Option<NodeId>> = vec![None; p];
    let mut done = 0usize;
    let mut total_cost = 0u64;

    while done < n {
        // Pick the processor that frees up first.
        let me = (0..p).min_by_key(|&q| proc_free[q]).expect("p > 0");
        let now = proc_free[me];
        // Candidates ready by `now`; if none, idle until the earliest one.
        let avail: Vec<usize> = ready
            .iter()
            .enumerate()
            .filter(|(_, u)| ready_time[u.index()] <= now)
            .map(|(i, _)| i)
            .collect();
        let pick = if avail.is_empty() {
            let (i, u) = ready
                .iter()
                .enumerate()
                .min_by_key(|(_, u)| ready_time[u.index()])
                .expect("nodes remain");
            proc_free[me] = ready_time[u.index()];
            i
        } else {
            // Continuation locality, else random steal.
            avail
                .iter()
                .copied()
                .find(|&i| {
                    last_on[me].is_some_and(|prev| c.dag().predecessors(ready[i]).contains(&prev))
                })
                .unwrap_or_else(|| avail[rng.gen_range(0..avail.len())])
        };
        let u = ready.swap_remove(pick);
        let start = proc_free[me].max(ready_time[u.index()]);
        let stats_before = stats_per[me];

        let cross_pred = c.dag().predecessors(u).iter().any(|&q| proc_of[q.index()] != me);
        if cross_pred && !config.faults.skip_flush {
            caches[me].flush_all(&mut mem, &mut stats_per[me]);
        }
        match c.op(u) {
            Op::Read(l) => {
                caches[me].read(l, &mut mem, &mut stats_per[me]);
            }
            Op::Write(l) => {
                caches[me].write(l, token_of(u), &mut mem, &mut stats_per[me]);
            }
            Op::Nop => {}
        }
        let cross_succ = c.dag().successors(u).iter().any(|&v| proc_of[v.index()] != me);
        let _ = cross_succ; // successors not yet placed; reconcile eagerly:
        if !config.faults.skip_reconcile {
            caches[me].reconcile_all(&mut mem, &mut stats_per[me]);
        }

        // Bill the node: op + protocol deltas.
        let d = delta(&stats_before, &stats_per[me]);
        let node_cost = cost.op
            + d.fetches * cost.fetch
            + d.reconciles * cost.reconcile
            + d.flushes * cost.flush;
        total_cost += node_cost;
        let end = start + node_cost;
        finish[u.index()] = end;
        proc_of[u.index()] = me;
        proc_free[me] = end;
        last_on[me] = Some(u);
        done += 1;
        for &v in c.dag().successors(u) {
            indeg[v.index()] -= 1;
            ready_time[v.index()] = ready_time[v.index()].max(end);
            if indeg[v.index()] == 0 {
                ready.push(v);
            }
        }
    }

    let mut stats = Stats::default();
    for s in &stats_per {
        stats.merge(s);
    }
    TimedResult {
        makespan: finish.iter().copied().max().unwrap_or(0),
        total_cost,
        finish,
        proc: proc_of,
        stats,
    }
}

fn delta(before: &Stats, after: &Stats) -> Stats {
    Stats {
        hits: after.hits - before.hits,
        misses: after.misses - before.misses,
        fetches: after.fetches - before.fetches,
        writes: after.writes - before.writes,
        reconciles: after.reconciles - before.reconciles,
        flushes: after.flushes - before.flushes,
        evictions: after.evictions - before.evictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn fib_comp() -> Computation {
        ccmm_cilk_shim::fib_like()
    }

    /// A tiny local stand-in to avoid a dev-dependency cycle with
    /// ccmm-cilk: a fork/join tree with alternating reads and writes.
    mod ccmm_cilk_shim {
        use ccmm_core::{Computation, Location, Op};
        pub fn fib_like() -> Computation {
            let dag = ccmm_dag::generate::fork_join_tree(4);
            let n = dag.node_count();
            let ops: Vec<Op> = (0..n)
                .map(|i| match i % 3 {
                    0 => Op::Write(Location::new(i % 4)),
                    1 => Op::Read(Location::new((i + 1) % 4)),
                    _ => Op::Nop,
                })
                .collect();
            Computation::new(dag, ops).unwrap()
        }
    }

    #[test]
    fn work_and_span_formulas() {
        let c = fib_comp();
        let cost = CostModel { op: 2, ..Default::default() };
        assert_eq!(work(&c, &cost), 2 * c.node_count() as u64);
        // Span of a fork/join tree of depth 4: 2*4 + 1 nodes on the spine.
        assert_eq!(span(&c, &cost), 2 * 9);
    }

    #[test]
    fn single_processor_makespan_equals_total_cost() {
        let c = fib_comp();
        let cost = CostModel::default();
        let r = run(&c, 1, &BackerConfig::with_processors(1), &cost, &mut rng());
        assert_eq!(r.makespan, r.total_cost, "no idling on one processor");
        assert!(r.makespan >= work(&c, &cost));
    }

    #[test]
    fn makespan_respects_span_lower_bound() {
        let c = fib_comp();
        let cost = CostModel::default();
        for p in [1, 2, 4, 8] {
            let r = run(&c, p, &BackerConfig::with_processors(p), &cost, &mut rng());
            assert!(r.makespan >= span(&c, &cost), "p={p}");
            assert!(r.makespan >= work(&c, &cost) / p as u64, "p={p}");
        }
    }

    #[test]
    fn more_processors_do_not_slow_down_pure_work() {
        // With zero protocol costs, greedy scheduling satisfies Brent:
        // T_P ≤ T_1/P + T_∞.
        let c = fib_comp();
        let cost = CostModel { op: 1, fetch: 0, reconcile: 0, flush: 0 };
        for p in [1usize, 2, 4] {
            let r = run(&c, p, &BackerConfig::with_processors(p), &cost, &mut rng());
            let bound = work(&c, &cost) / p as u64 + span(&c, &cost);
            assert!(r.makespan <= bound, "Brent violated at p={p}: {} > {bound}", r.makespan);
        }
    }

    #[test]
    fn finish_times_respect_dependencies() {
        let c = fib_comp();
        let r = run(&c, 4, &BackerConfig::with_processors(4), &CostModel::default(), &mut rng());
        for (u, v) in c.dag().edges() {
            assert!(r.finish[u.index()] <= r.finish[v.index()], "{u} -> {v}");
        }
        assert!(r.proc.iter().all(|&q| q < 4));
    }

    #[test]
    fn speedup_materialises_on_parallel_work() {
        // A wide fork/join tree must run faster on 4 processors than 1
        // (with cheap protocol).
        let dag = ccmm_dag::generate::fork_join_tree(6);
        let n = dag.node_count();
        let c = Computation::new(dag, vec![Op::Nop; n]).unwrap();
        let cost = CostModel { op: 10, fetch: 1, reconcile: 1, flush: 1 };
        let t1 = run(&c, 1, &BackerConfig::with_processors(1), &cost, &mut rng()).makespan;
        let t4 = run(&c, 4, &BackerConfig::with_processors(4), &cost, &mut rng()).makespan;
        assert!((t4 as f64) < 0.5 * t1 as f64, "expected ≥2x speedup: T1={t1} T4={t4}");
    }
}
