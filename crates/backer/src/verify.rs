//! Verifying executions against the memory models.
//!
//! Post-mortem analysis in the paper's sense (Section 1): run the memory
//! algorithm, read off the observer function, check it against a model.
//! [`verify`] produces a full membership profile; [`VerifyReport`]
//! aggregates profiles across randomized runs for the experiment tables.

use ccmm_core::{Computation, Lc, MemoryModel, Model, Nn, ObserverFunction, Sc, Ww};

/// Membership of one execution's observer function in each model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelProfile {
    /// The observer function is valid (Definition 2).
    pub valid: bool,
    /// Membership in SC.
    pub sc: bool,
    /// Membership in LC.
    pub lc: bool,
    /// Membership in NN-dag consistency.
    pub nn: bool,
    /// Membership in WW-dag consistency.
    pub ww: bool,
}

/// Checks one execution against the model hierarchy.
pub fn verify(c: &Computation, phi: &ObserverFunction) -> ModelProfile {
    ModelProfile {
        valid: phi.is_valid_for(c),
        sc: Sc.contains(c, phi),
        lc: Lc.contains(c, phi),
        nn: Nn::default().contains(c, phi),
        ww: Ww::default().contains(c, phi),
    }
}

/// Aggregated verification results over many executions.
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyReport {
    /// Executions checked.
    pub runs: usize,
    /// Executions with valid observer functions.
    pub valid: usize,
    /// Executions in SC.
    pub sc: usize,
    /// Executions in LC.
    pub lc: usize,
    /// Executions in NN.
    pub nn: usize,
    /// Executions in WW.
    pub ww: usize,
}

impl VerifyReport {
    /// Folds one profile into the report.
    pub fn record(&mut self, p: ModelProfile) {
        self.runs += 1;
        self.valid += p.valid as usize;
        self.sc += p.sc as usize;
        self.lc += p.lc as usize;
        self.nn += p.nn as usize;
        self.ww += p.ww as usize;
    }

    /// Whether every run was location consistent — the \[Luc97\] guarantee
    /// for fault-free BACKER.
    pub fn all_lc(&self) -> bool {
        self.lc == self.runs
    }

    /// Fraction of runs in `model` (by name column).
    pub fn fraction(&self, model: Model) -> f64 {
        let count = match model {
            Model::Sc => self.sc,
            Model::Lc => self.lc,
            Model::Nn => self.nn,
            Model::Ww => self.ww,
            _ => self.valid,
        };
        if self.runs == 0 {
            1.0
        } else {
            count as f64 / self.runs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Location, ObserverFunction, Op};

    #[test]
    fn profile_of_serial_chain() {
        let c = Computation::from_edges(
            2,
            &[(0, 1)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0))],
        );
        let phi = ObserverFunction::base(&c).with(
            Location::new(0),
            ccmm_dag::NodeId::new(1),
            Some(ccmm_dag::NodeId::new(0)),
        );
        let p = verify(&c, &phi);
        assert!(p.valid && p.sc && p.lc && p.nn && p.ww);
    }

    #[test]
    fn report_aggregates() {
        let mut r = VerifyReport::default();
        r.record(ModelProfile { valid: true, sc: true, lc: true, nn: true, ww: true });
        r.record(ModelProfile { valid: true, sc: false, lc: true, nn: true, ww: true });
        assert_eq!(r.runs, 2);
        assert_eq!(r.sc, 1);
        assert!(r.all_lc());
        assert_eq!(r.fraction(Model::Sc), 0.5);
        assert_eq!(r.fraction(Model::Lc), 1.0);
    }

    #[test]
    fn empty_report_fractions() {
        let r = VerifyReport::default();
        assert_eq!(r.fraction(Model::Sc), 1.0);
        assert!(r.all_lc());
    }
}
