//! Configuration for the BACKER simulator and executor.

/// Fault injection switches — each disables one leg of the coherence
//  protocol, producing executions that (detectably) violate LC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Skip the cache flush a processor must perform before executing a
    /// node with a cross-processor predecessor. Stale cached values
    /// survive dependency edges.
    pub skip_flush: bool,
    /// Skip the reconcile (write-back of dirty lines) a processor must
    /// perform after executing a node with a cross-processor successor.
    /// Writes become invisible across dependency edges.
    pub skip_reconcile: bool,
}

impl FaultInjection {
    /// The correct protocol: nothing skipped.
    pub const NONE: FaultInjection = FaultInjection { skip_flush: false, skip_reconcile: false };

    /// Whether any fault is enabled.
    pub fn any(self) -> bool {
        self.skip_flush || self.skip_reconcile
    }
}

/// BACKER configuration.
#[derive(Clone, Copy, Debug)]
pub struct BackerConfig {
    /// Number of processors.
    pub processors: usize,
    /// Cache capacity per processor, in lines (locations). `usize::MAX`
    /// for unbounded.
    pub cache_capacity: usize,
    /// Protocol faults to inject (default: none).
    pub faults: FaultInjection,
}

impl Default for BackerConfig {
    fn default() -> Self {
        BackerConfig { processors: 4, cache_capacity: usize::MAX, faults: FaultInjection::NONE }
    }
}

impl BackerConfig {
    /// A config with `p` processors and unbounded caches.
    pub fn with_processors(p: usize) -> Self {
        BackerConfig { processors: p, ..Default::default() }
    }

    /// Sets the per-processor cache capacity.
    pub fn cache_capacity(mut self, lines: usize) -> Self {
        self.cache_capacity = lines;
        self
    }

    /// Enables fault injection.
    pub fn faults(mut self, f: FaultInjection) -> Self {
        self.faults = f;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config() {
        let c = BackerConfig::default();
        assert_eq!(c.processors, 4);
        assert_eq!(c.cache_capacity, usize::MAX);
        assert!(!c.faults.any());
    }

    #[test]
    fn builder_chains() {
        let f = FaultInjection { skip_flush: true, skip_reconcile: false };
        let c = BackerConfig::with_processors(2).cache_capacity(8).faults(f);
        assert_eq!(c.processors, 2);
        assert_eq!(c.cache_capacity, 8);
        assert!(c.faults.any());
        assert!(c.faults.skip_flush);
    }
}
