//! A per-processor cache with dirty bits and LRU eviction.
//!
//! BACKER's three primitive operations on a cached location
//! (\[BFJ+96a\]): *fetch* (copy main memory → cache), *reconcile* (copy a
//! dirty cache line → main memory and mark it clean), and *flush*
//! (reconcile if dirty, then drop the line). Eviction under capacity
//! pressure is a flush of the least-recently-used line.

use crate::memory::{MainMemory, Token};
use crate::stats::Stats;
use ccmm_core::Location;

/// The protocol surface shared by word-granular ([`Cache`]) and
/// page-granular ([`crate::paged::PagedCache`]) caches; the simulator is
/// generic over it.
pub trait CacheOps {
    /// A processor read: hit, or fetch from main memory.
    fn read(&mut self, l: Location, mem: &mut MainMemory, stats: &mut Stats) -> Token;
    /// A processor write: install the token dirty.
    fn write(&mut self, l: Location, t: Token, mem: &mut MainMemory, stats: &mut Stats);
    /// Write back every dirty word, marking it clean.
    fn reconcile_all(&mut self, mem: &mut MainMemory, stats: &mut Stats);
    /// Reconcile, then drop everything.
    fn flush_all(&mut self, mem: &mut MainMemory, stats: &mut Stats);
    /// Non-perturbing lookup (no LRU update, no fetch).
    fn peek(&self, l: Location) -> Option<Token>;
}

#[derive(Clone, Copy, Debug)]
struct Line {
    value: Token,
    dirty: bool,
    /// LRU clock stamp of the most recent touch.
    stamp: u64,
}

/// A processor-local cache.
#[derive(Debug)]
pub struct Cache {
    /// `lines[l]` = cached line for location `l`, if present.
    lines: Vec<Option<Line>>,
    capacity: usize,
    occupancy: usize,
    clock: u64,
}

impl Cache {
    /// An empty cache over `num_locations` possible lines with the given
    /// capacity.
    pub fn new(num_locations: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Cache { lines: vec![None; num_locations], capacity, occupancy: 0, clock: 0 }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Whether `l` is resident.
    pub fn contains(&self, l: Location) -> bool {
        self.lines[l.index()].is_some()
    }

    /// Peeks at the cached value without touching LRU state (used by the
    /// simulator's non-perturbing observer probe).
    pub fn peek(&self, l: Location) -> Option<Token> {
        self.lines[l.index()].map(|line| line.value)
    }

    fn touch(&mut self, l: Location) {
        self.clock += 1;
        if let Some(line) = &mut self.lines[l.index()] {
            line.stamp = self.clock;
        }
    }

    /// Evicts the least-recently-used line (reconciling it if dirty).
    fn evict_lru(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        let victim = self
            .lines
            .iter()
            .enumerate()
            .filter_map(|(i, line)| line.map(|ln| (i, ln.stamp)))
            .min_by_key(|&(_, stamp)| stamp)
            .map(|(i, _)| i)
            .expect("evict called on empty cache");
        let line = self.lines[victim].take().expect("victim resident");
        self.occupancy -= 1;
        stats.evictions += 1;
        if line.dirty {
            mem.store(Location::new(victim), line.value);
            stats.reconciles += 1;
        }
    }

    fn make_room(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        while self.occupancy >= self.capacity {
            self.evict_lru(mem, stats);
        }
    }

    /// A processor read: cache hit, or fetch from main memory.
    pub fn read(&mut self, l: Location, mem: &mut MainMemory, stats: &mut Stats) -> Token {
        if let Some(line) = self.lines[l.index()] {
            stats.hits += 1;
            self.touch(l);
            return line.value;
        }
        stats.misses += 1;
        stats.fetches += 1;
        self.make_room(mem, stats);
        let value = mem.load(l);
        self.clock += 1;
        self.lines[l.index()] = Some(Line { value, dirty: false, stamp: self.clock });
        self.occupancy += 1;
        value
    }

    /// A processor write: install the token dirty (write-allocate, no
    /// fetch needed as whole "lines" are single values).
    pub fn write(&mut self, l: Location, t: Token, mem: &mut MainMemory, stats: &mut Stats) {
        if self.lines[l.index()].is_none() {
            self.make_room(mem, stats);
            self.occupancy += 1;
        }
        self.clock += 1;
        self.lines[l.index()] = Some(Line { value: t, dirty: true, stamp: self.clock });
        stats.writes += 1;
    }

    /// Reconciles every dirty line (write back, mark clean).
    pub fn reconcile_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        for (i, slot) in self.lines.iter_mut().enumerate() {
            if let Some(line) = slot {
                if line.dirty {
                    mem.store(Location::new(i), line.value);
                    line.dirty = false;
                    stats.reconciles += 1;
                }
            }
        }
    }

    /// Flushes the whole cache: reconcile dirty lines, then drop
    /// everything.
    pub fn flush_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        self.reconcile_all(mem, stats);
        for slot in &mut self.lines {
            *slot = None;
        }
        self.occupancy = 0;
        stats.flushes += 1;
    }
}

impl CacheOps for Cache {
    fn read(&mut self, l: Location, mem: &mut MainMemory, stats: &mut Stats) -> Token {
        Cache::read(self, l, mem, stats)
    }

    fn write(&mut self, l: Location, t: Token, mem: &mut MainMemory, stats: &mut Stats) {
        Cache::write(self, l, t, mem, stats)
    }

    fn reconcile_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        Cache::reconcile_all(self, mem, stats)
    }

    fn flush_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        Cache::flush_all(self, mem, stats)
    }

    fn peek(&self, l: Location) -> Option<Token> {
        Cache::peek(self, l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn read_miss_fetches_then_hits() {
        let mut mem = MainMemory::new(2);
        mem.store(l(0), 7);
        let mut c = Cache::new(2, 2);
        let mut s = Stats::default();
        assert_eq!(c.read(l(0), &mut mem, &mut s), 7);
        assert_eq!(s.misses, 1);
        assert_eq!(c.read(l(0), &mut mem, &mut s), 7);
        assert_eq!(s.hits, 1);
        assert_eq!(s.fetches, 1);
    }

    #[test]
    fn write_is_dirty_until_reconcile() {
        let mut mem = MainMemory::new(1);
        let mut c = Cache::new(1, 1);
        let mut s = Stats::default();
        c.write(l(0), 5, &mut mem, &mut s);
        assert_eq!(mem.load(l(0)), 0, "write not visible before reconcile");
        c.reconcile_all(&mut mem, &mut s);
        assert_eq!(mem.load(l(0)), 5);
        assert_eq!(s.reconciles, 1);
        // Reconciling again writes nothing (clean).
        c.reconcile_all(&mut mem, &mut s);
        assert_eq!(s.reconciles, 1);
    }

    #[test]
    fn flush_drops_lines() {
        let mut mem = MainMemory::new(2);
        let mut c = Cache::new(2, 2);
        let mut s = Stats::default();
        c.write(l(0), 3, &mut mem, &mut s);
        c.flush_all(&mut mem, &mut s);
        assert!(!c.contains(l(0)));
        assert_eq!(mem.load(l(0)), 3, "flush reconciles dirty data");
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn lru_eviction_reconciles_dirty_victim() {
        let mut mem = MainMemory::new(3);
        let mut c = Cache::new(3, 2);
        let mut s = Stats::default();
        c.write(l(0), 1, &mut mem, &mut s);
        c.write(l(1), 2, &mut mem, &mut s);
        // Touch l0 so l1 is LRU.
        c.read(l(0), &mut mem, &mut s);
        c.write(l(2), 3, &mut mem, &mut s); // evicts l1
        assert!(c.contains(l(0)));
        assert!(!c.contains(l(1)));
        assert!(c.contains(l(2)));
        assert_eq!(mem.load(l(1)), 2, "dirty victim written back");
        assert_eq!(s.evictions, 1);
    }

    #[test]
    fn stale_cached_value_survives_memory_update() {
        // The heart of relaxed behaviour: a clean cached copy does not see
        // later main-memory updates until flushed.
        let mut mem = MainMemory::new(1);
        let mut c = Cache::new(1, 1);
        let mut s = Stats::default();
        assert_eq!(c.read(l(0), &mut mem, &mut s), 0);
        mem.store(l(0), 9); // another processor reconciled
        assert_eq!(c.read(l(0), &mut mem, &mut s), 0, "stale but legal");
        c.flush_all(&mut mem, &mut s);
        assert_eq!(c.read(l(0), &mut mem, &mut s), 9);
    }

    #[test]
    fn peek_does_not_perturb() {
        let mut mem = MainMemory::new(2);
        let mut c = Cache::new(2, 1);
        let mut s = Stats::default();
        c.write(l(0), 4, &mut mem, &mut s);
        assert_eq!(c.peek(l(0)), Some(4));
        assert_eq!(c.peek(l(1)), None);
        let (hits, misses) = (s.hits, s.misses);
        let _ = c.peek(l(1));
        assert_eq!((s.hits, s.misses), (hits, misses));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Cache::new(1, 0);
    }
}
