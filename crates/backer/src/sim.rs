//! The deterministic discrete-event BACKER simulator.
//!
//! Given a computation and a [`Schedule`], the simulator executes the
//! nodes in order, each on its assigned processor, running the BACKER
//! protocol at dependency edges that cross processors (\[BFJ+96a\]):
//!
//! * **flush-before**: before executing a node with a cross-processor
//!   predecessor, the processor reconciles and empties its cache (it may
//!   hold stale copies from before the dependency);
//! * **reconcile-after**: after executing a node with a cross-processor
//!   successor, the processor writes back its dirty lines (the dependent
//!   node must be able to see them through main memory).
//!
//! Writes carry unique tokens, so the execution yields a total
//! [`ObserverFunction`]: after each node executes, every location is
//! *probed* (cache line if resident, else main memory — without
//! perturbing the cache), defining what that node "observes" everywhere,
//! exactly the paper's device of giving memory semantics to all nodes.
//! Luchangco \[Luc97\] proves BACKER maintains LC; experiment E9 verifies
//! every simulated execution against the LC checker.

use crate::cache::Cache;
use crate::config::BackerConfig;
use crate::memory::{node_of, token_of, MainMemory};
use crate::schedule::Schedule;
use crate::stats::Stats;
use ccmm_core::{Computation, ObserverFunction, Op};

/// The result of a simulated execution.
#[derive(Debug)]
pub struct SimResult {
    /// The observer function induced by the execution.
    pub observer: ObserverFunction,
    /// Merged protocol counters across processors.
    pub stats: Stats,
    /// Per-processor counters.
    pub per_proc: Vec<Stats>,
}

/// Runs BACKER on `c` under `schedule` with word-granular caches.
///
/// Panics if the schedule fails validation.
pub fn run(c: &Computation, schedule: &Schedule, config: &BackerConfig) -> SimResult {
    run_with_caches(c, schedule, config, |nl| Cache::new(nl, config.cache_capacity.max(1)))
}

/// Runs BACKER with page-granular caches of `page_size` words and
/// capacity counted in pages (see [`crate::paged`]).
pub fn run_paged(
    c: &Computation,
    schedule: &Schedule,
    config: &BackerConfig,
    page_size: usize,
) -> SimResult {
    run_with_caches(c, schedule, config, |nl| {
        crate::paged::PagedCache::new(nl, page_size, config.cache_capacity.max(1))
    })
}

/// The generic simulator core, parameterized over the cache organisation.
pub fn run_with_caches<C, F>(
    c: &Computation,
    schedule: &Schedule,
    config: &BackerConfig,
    make_cache: F,
) -> SimResult
where
    C: crate::cache::CacheOps,
    F: Fn(usize) -> C,
{
    schedule.validate(c).expect("invalid schedule");
    assert!(
        schedule.processors <= config.processors,
        "schedule uses {} processors, config allows {}",
        schedule.processors,
        config.processors
    );
    let num_locations = c.num_locations();
    let mut mem = MainMemory::new(num_locations);
    let mut caches: Vec<C> = (0..config.processors).map(|_| make_cache(num_locations)).collect();
    let mut per_proc: Vec<Stats> = vec![Stats::default(); config.processors];
    let mut observer = ObserverFunction::bottom(num_locations, c.node_count());

    for &u in &schedule.order {
        let p = schedule.proc[u.index()];
        let cross_pred = c.dag().predecessors(u).iter().any(|&q| schedule.proc[q.index()] != p);
        if cross_pred && !config.faults.skip_flush {
            caches[p].flush_all(&mut mem, &mut per_proc[p]);
        }
        match c.op(u) {
            Op::Read(l) => {
                caches[p].read(l, &mut mem, &mut per_proc[p]);
            }
            Op::Write(l) => {
                caches[p].write(l, token_of(u), &mut mem, &mut per_proc[p]);
            }
            Op::Nop => {}
        }
        // Non-perturbing probe: what does this node observe everywhere?
        for l in c.locations() {
            let tok = caches[p].peek(l).unwrap_or_else(|| mem.load(l));
            observer.set(l, u, node_of(tok));
        }
        let cross_succ = c.dag().successors(u).iter().any(|&v| schedule.proc[v.index()] != p);
        if cross_succ && !config.faults.skip_reconcile {
            caches[p].reconcile_all(&mut mem, &mut per_proc[p]);
        }
    }

    let mut stats = Stats::default();
    for s in &per_proc {
        stats.merge(s);
    }
    SimResult { observer, stats, per_proc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FaultInjection;
    use ccmm_core::{Lc, Location, MemoryModel, Sc};
    use ccmm_dag::NodeId;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    fn chain_wrr() -> Computation {
        Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        )
    }

    #[test]
    fn serial_execution_is_exact() {
        let c = chain_wrr();
        let r = run(&c, &Schedule::serial(&c), &BackerConfig::default());
        assert!(r.observer.is_valid_for(&c));
        assert_eq!(r.observer.get(l(0), n(1)), Some(n(0)));
        assert_eq!(r.observer.get(l(0), n(2)), Some(n(0)));
        // Serial BACKER is sequentially consistent.
        assert!(Sc.contains(&c, &r.observer));
    }

    #[test]
    fn cross_processor_dependency_sees_the_write() {
        // W on p0, read on p1 across the edge: reconcile + flush deliver
        // the token.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let s = Schedule { order: vec![n(0), n(1)], proc: vec![0, 1], processors: 2 };
        let r = run(&c, &s, &BackerConfig::with_processors(2));
        assert_eq!(r.observer.get(l(0), n(1)), Some(n(0)));
        assert!(r.stats.reconciles >= 1);
        assert!(r.stats.flushes >= 1);
    }

    #[test]
    fn skip_reconcile_loses_the_write() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let s = Schedule { order: vec![n(0), n(1)], proc: vec![0, 1], processors: 2 };
        let cfg = BackerConfig::with_processors(2)
            .faults(FaultInjection { skip_reconcile: true, skip_flush: false });
        let r = run(&c, &s, &cfg);
        assert_eq!(r.observer.get(l(0), n(1)), None, "write never reached memory");
    }

    #[test]
    fn skip_flush_reads_stale_cache() {
        // p1 caches the initial value, p0 writes and reconciles, p1 reads
        // again across the dependency edge but (faultily) without
        // flushing: it sees its stale ⊥ — an LC violation.
        let c = Computation::from_edges(
            3,
            &[(0, 2), (1, 2)],
            vec![
                Op::Read(l(0)),  // 0 on p1: caches initial value
                Op::Write(l(0)), // 1 on p0
                Op::Read(l(0)),  // 2 on p1, after both
            ],
        );
        let s = Schedule { order: vec![n(0), n(1), n(2)], proc: vec![1, 0, 1], processors: 2 };
        let good = run(&c, &s, &BackerConfig::with_processors(2));
        assert_eq!(good.observer.get(l(0), n(2)), Some(n(1)));
        assert!(Lc.contains(&c, &good.observer));

        let cfg = BackerConfig::with_processors(2)
            .faults(FaultInjection { skip_flush: true, skip_reconcile: false });
        let bad = run(&c, &s, &cfg);
        assert_eq!(bad.observer.get(l(0), n(2)), None, "stale cached ⊥");
        assert!(!Lc.contains(&c, &bad.observer), "fault must violate LC");
    }

    #[test]
    fn observer_is_always_valid() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let dag = ccmm_dag::generate::gnp_dag(12, 0.25, &mut rng);
        let ops: Vec<Op> = (0..12)
            .map(|i| match i % 3 {
                0 => Op::Write(l(i % 2)),
                1 => Op::Read(l((i + 1) % 2)),
                _ => Op::Nop,
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for _ in 0..20 {
            let s = Schedule::random(&c, 3, &mut rng);
            let r = run(&c, &s, &BackerConfig::with_processors(3).cache_capacity(1));
            assert!(r.observer.is_valid_for(&c), "invalid observer from sim");
        }
    }

    #[test]
    fn random_executions_maintain_lc() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let dag = ccmm_dag::generate::fork_join_tree(3);
        let nn = dag.node_count();
        let ops: Vec<Op> = (0..nn)
            .map(|i| match i % 3 {
                0 => Op::Write(l(0)),
                1 => Op::Read(l(0)),
                _ => Op::Write(l(1)),
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for p in [1, 2, 4] {
            for _ in 0..25 {
                let s = Schedule::work_stealing(&c, p, &mut rng);
                let r = run(&c, &s, &BackerConfig::with_processors(p));
                assert!(
                    Lc.contains(&c, &r.observer),
                    "BACKER produced a non-LC observer on {p} procs"
                );
            }
        }
    }

    #[test]
    fn tiny_cache_still_correct() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let dag = ccmm_dag::generate::layered_dag(4, 3, 2, &mut rng);
        let nn = dag.node_count();
        let ops: Vec<Op> = (0..nn)
            .map(|i| if i % 2 == 0 { Op::Write(l(i % 4)) } else { Op::Read(l((i + 1) % 4)) })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        let mut total_evictions = 0;
        for _ in 0..10 {
            let s = Schedule::random(&c, 2, &mut rng);
            let r = run(&c, &s, &BackerConfig::with_processors(2).cache_capacity(1));
            assert!(ccmm_core::Lc.contains(&c, &r.observer));
            total_evictions += r.stats.evictions;
        }
        // Individual runs may flush before ever filling the single line,
        // but across runs capacity pressure must show up.
        assert!(total_evictions > 0, "capacity 1 should evict somewhere");
    }

    #[test]
    fn paged_executions_maintain_lc() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let dag = ccmm_dag::generate::fork_join_tree(3);
        let nn = dag.node_count();
        let ops: Vec<Op> = (0..nn)
            .map(|i| match i % 3 {
                0 => Op::Write(l(i % 6)),
                1 => Op::Read(l((i + 2) % 6)),
                _ => Op::Nop,
            })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        for page_size in [1usize, 2, 4, 8] {
            for _ in 0..15 {
                let s = Schedule::work_stealing(&c, 3, &mut rng);
                let r = run_paged(
                    &c,
                    &s,
                    &BackerConfig::with_processors(3).cache_capacity(2),
                    page_size,
                );
                assert!(r.observer.is_valid_for(&c), "page_size={page_size}");
                assert!(
                    Lc.contains(&c, &r.observer),
                    "paged BACKER violated LC at page_size={page_size}"
                );
            }
        }
    }

    #[test]
    fn paged_page_size_one_matches_word_cache() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dag = ccmm_dag::generate::gnp_dag(10, 0.3, &mut rng);
        let ops: Vec<Op> = (0..10)
            .map(|i| if i % 2 == 0 { Op::Write(l(i % 3)) } else { Op::Read(l((i + 1) % 3)) })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        let s = Schedule::round_robin(&c, 2);
        let cfg = BackerConfig::with_processors(2).cache_capacity(2);
        let word = run(&c, &s, &cfg);
        let paged = run_paged(&c, &s, &cfg, 1);
        assert_eq!(word.observer, paged.observer);
        assert_eq!(word.stats.fetches, paged.stats.fetches);
        assert_eq!(word.stats.hits, paged.stats.hits);
    }

    #[test]
    fn larger_pages_exploit_spatial_locality() {
        // A serial sweep reading consecutive locations: big pages fetch
        // far less.
        let width = 32;
        let ops: Vec<Op> = (0..width).map(|i| Op::Read(l(i))).collect();
        let edges: Vec<(usize, usize)> = (0..width - 1).map(|i| (i, i + 1)).collect();
        let c = Computation::from_edges(width, &edges, ops);
        let s = Schedule::serial(&c);
        let cfg = BackerConfig::with_processors(1).cache_capacity(4);
        let small = run_paged(&c, &s, &cfg, 1);
        let big = run_paged(&c, &s, &cfg, 8);
        assert_eq!(small.stats.fetches, 32);
        assert_eq!(big.stats.fetches, 4, "8-word pages fetch 32/8 times");
    }

    #[test]
    fn stats_accumulate_per_processor() {
        let c = chain_wrr();
        let r = run(&c, &Schedule::serial(&c), &BackerConfig::with_processors(2));
        assert_eq!(r.per_proc.len(), 2);
        assert!(r.per_proc[0].writes == 1);
        assert_eq!(r.per_proc[1], Stats::default(), "idle processor untouched");
    }
}
