//! Main memory: the single backing store behind all processor caches.
//!
//! Values are *write tokens*: `0` is the initial value ("no write
//! observed", the theory's ⊥), and write node `w` stores `w.index() + 1`.
//! Token transport is what lets the simulator read an observer function
//! straight off an execution.

use ccmm_core::Location;
use ccmm_dag::NodeId;

/// A write token: 0 = initial (⊥), `w.index() + 1` = written by node `w`.
pub type Token = u64;

/// The token of write node `w`.
#[inline]
pub fn token_of(w: NodeId) -> Token {
    w.index() as Token + 1
}

/// The node encoded by a token, or `None` for the initial value.
#[inline]
pub fn node_of(t: Token) -> Option<NodeId> {
    (t != 0).then(|| NodeId::new(t as usize - 1))
}

/// Flat main memory over a fixed set of locations.
#[derive(Clone, Debug)]
pub struct MainMemory {
    cells: Vec<Token>,
}

impl MainMemory {
    /// Zero-initialised memory with `num_locations` cells.
    pub fn new(num_locations: usize) -> Self {
        MainMemory { cells: vec![0; num_locations] }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the memory has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Reads the cell for `l`.
    #[inline]
    pub fn load(&self, l: Location) -> Token {
        self.cells[l.index()]
    }

    /// Writes the cell for `l`.
    #[inline]
    pub fn store(&mut self, l: Location, t: Token) {
        self.cells[l.index()] = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        let w = NodeId::new(7);
        assert_eq!(token_of(w), 8);
        assert_eq!(node_of(8), Some(w));
        assert_eq!(node_of(0), None);
    }

    #[test]
    fn load_store() {
        let mut m = MainMemory::new(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.load(Location::new(1)), 0);
        m.store(Location::new(1), 42);
        assert_eq!(m.load(Location::new(1)), 42);
        assert_eq!(m.load(Location::new(0)), 0);
    }

    #[test]
    fn empty_memory() {
        let m = MainMemory::new(0);
        assert!(m.is_empty());
    }
}
