//! Harvesting observer functions from simulated BACKER executions.
//!
//! The conformance harness wants `(C, Φ)` pairs that a *real* coherence
//! protocol can produce — the region of the model lattice actual
//! executions inhabit, which random generation over- and under-samples.
//! [`harvest_observers`] replays one computation under a spread of
//! schedules (serial, round-robin, seeded work-stealing) and cache
//! capacities and returns the distinct observer functions the simulator
//! induced.
//!
//! Deterministic for a fixed `(runs, procs, cache_lines, seed)` tuple:
//! schedules are drawn from a seeded [`StdRng`] and the simulator itself
//! is a deterministic discrete-event replay.

use crate::config::BackerConfig;
use crate::schedule::Schedule;
use crate::sim;
use ccmm_core::{Computation, ObserverFunction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `c` under `runs` schedules on `procs` processors and returns the
/// distinct observer functions induced. The first two runs are the serial
/// and round-robin schedules; the rest are seeded work-stealing draws.
/// Each schedule executes twice, with unbounded caches and with
/// `cache_lines`-line caches (eviction forces extra fetch/reconcile
/// traffic, which changes what stale values reads can observe).
pub fn harvest_observers(
    c: &Computation,
    runs: usize,
    procs: usize,
    cache_lines: usize,
    seed: u64,
) -> Vec<ObserverFunction> {
    harvest_observers_cfg(c, runs, procs, cache_lines, seed, &BackerConfig::default())
}

/// [`harvest_observers`] with an explicit base config: `base.faults` is
/// honored by every simulated run (processors and cache capacity are
/// still taken from the arguments). This is the stress harness's
/// deterministic oracle leg — a seeded protocol mutation flows through
/// to the simulator, whose round-robin schedule reliably exercises the
/// skipped flush/reconcile across processor boundaries.
pub fn harvest_observers_cfg(
    c: &Computation,
    runs: usize,
    procs: usize,
    cache_lines: usize,
    seed: u64,
    base: &BackerConfig,
) -> Vec<ObserverFunction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<ObserverFunction> = Vec::new();
    for r in 0..runs {
        let schedule = match r {
            0 => Schedule::serial(c),
            1 => Schedule::round_robin(c, procs),
            _ => Schedule::work_stealing(c, procs, &mut rng),
        };
        for capacity in [usize::MAX, cache_lines.max(1)] {
            let config = base.cache_capacity(capacity);
            let config = BackerConfig { processors: procs, ..config };
            let result = sim::run(c, &schedule, &config);
            if !out.contains(&result.observer) {
                out.push(result.observer);
            }
        }
    }
    out
}

/// Harvests distinct observer functions from *real threaded* executions
/// under a schedule-perturbation plan (see [`crate::threads`] and
/// [`crate::perturb`]). Unlike [`harvest_observers`] this is not
/// deterministic — the OS schedules the workers — but every returned
/// observer is a genuine conservative-BACKER execution and therefore
/// must be valid and location consistent.
pub fn harvest_observers_perturbed(
    c: &Computation,
    runs: usize,
    procs: usize,
    cache_lines: usize,
    plan: &crate::perturb::PerturbPlan,
) -> Vec<ObserverFunction> {
    let mut out: Vec<ObserverFunction> = Vec::new();
    for r in 0..runs {
        let plan = plan.clone().with_seed(plan.seed().wrapping_add(r as u64));
        for capacity in [usize::MAX, cache_lines.max(1)] {
            let config = BackerConfig::with_processors(procs).cache_capacity(capacity);
            let result = crate::threads::run_perturbed(c, &config, &plan);
            if !out.contains(&result.observer) {
                out.push(result.observer);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel, Op};

    fn racy_computation() -> Computation {
        let l = Location::new(0);
        // Two parallel writers and a read joining them.
        Computation::from_edges(
            4,
            &[(0, 2), (1, 2), (2, 3)],
            vec![Op::Write(l), Op::Write(l), Op::Read(l), Op::Read(l)],
        )
    }

    #[test]
    fn harvested_observers_are_valid_and_lc() {
        let c = racy_computation();
        let observers = harvest_observers(&c, 5, 2, 1, 11);
        assert!(!observers.is_empty());
        for phi in &observers {
            assert!(phi.is_valid_for(&c), "simulator must induce a valid observer");
            assert!(Lc.contains(&c, phi), "unfaulted BACKER maintains LC");
        }
    }

    #[test]
    fn harvest_is_deterministic_in_the_seed() {
        let c = racy_computation();
        let a = harvest_observers(&c, 6, 3, 2, 99);
        let b = harvest_observers(&c, 6, 3, 2, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn faulted_harvest_cfg_produces_lc_violations() {
        // The cfg variant must thread the fault switches through to the
        // simulator: with reconcile skipped, writes die in caches and
        // some harvested observer leaves LC.
        let c = racy_computation();
        let faulty = BackerConfig::default()
            .faults(crate::config::FaultInjection { skip_flush: false, skip_reconcile: true });
        let observers = harvest_observers_cfg(&c, 5, 2, 1, 11, &faulty);
        assert!(
            observers.iter().any(|phi| !phi.is_valid_for(&c) || !Lc.contains(&c, phi)),
            "skip-reconcile must be observable in the harvest"
        );
        // And the default base must match the plain entry point.
        let a = harvest_observers(&c, 5, 2, 1, 11);
        let b = harvest_observers_cfg(&c, 5, 2, 1, 11, &BackerConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn perturbed_harvest_observers_are_well_formed_across_seed_sweep() {
        // 1k random seeds × {2,4} threads: each seed draws a random
        // series-parallel computation and two perturbed *threaded*
        // executions (unbounded + 1-line caches). Every harvested
        // observer must be well-formed — every read sees ⊥ or a real
        // write to its location (`is_valid_for`) — and, because the
        // perturbation leaves the protocol untouched, LC.
        use crate::perturb::PerturbPlan;
        use rand::Rng;
        for threads in [2usize, 4] {
            for seed in 0..1000u64 {
                let mut rng = StdRng::seed_from_u64(seed ^ (threads as u64) << 32);
                let dag = ccmm_dag::generate::random_sp_dag(6, 0.5, &mut rng);
                let n = dag.node_count();
                let ops: Vec<Op> = (0..n)
                    .map(|_| match rng.gen_range(0..3) {
                        0 => Op::Write(Location::new(rng.gen_range(0..3))),
                        1 => Op::Read(Location::new(rng.gen_range(0..3))),
                        _ => Op::Nop,
                    })
                    .collect();
                let c = Computation::new(dag, ops).unwrap();
                let plan = PerturbPlan::aggressive(seed);
                for phi in harvest_observers_perturbed(&c, 1, threads, 1, &plan) {
                    assert!(
                        phi.is_valid_for(&c),
                        "seed {seed} × {threads} threads: ill-formed observer"
                    );
                    assert!(
                        Lc.contains(&c, &phi),
                        "seed {seed} × {threads} threads: perturbed run left LC"
                    );
                }
            }
        }
    }

    #[test]
    fn harvest_deduplicates() {
        // A serial chain admits exactly one execution observer, no matter
        // how many runs are requested.
        let l = Location::new(0);
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l), Op::Read(l)]);
        let observers = harvest_observers(&c, 4, 2, 1, 0);
        assert_eq!(observers.len(), 1);
    }
}
