//! Harvesting observer functions from simulated BACKER executions.
//!
//! The conformance harness wants `(C, Φ)` pairs that a *real* coherence
//! protocol can produce — the region of the model lattice actual
//! executions inhabit, which random generation over- and under-samples.
//! [`harvest_observers`] replays one computation under a spread of
//! schedules (serial, round-robin, seeded work-stealing) and cache
//! capacities and returns the distinct observer functions the simulator
//! induced.
//!
//! Deterministic for a fixed `(runs, procs, cache_lines, seed)` tuple:
//! schedules are drawn from a seeded [`StdRng`] and the simulator itself
//! is a deterministic discrete-event replay.

use crate::config::BackerConfig;
use crate::schedule::Schedule;
use crate::sim;
use ccmm_core::{Computation, ObserverFunction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs `c` under `runs` schedules on `procs` processors and returns the
/// distinct observer functions induced. The first two runs are the serial
/// and round-robin schedules; the rest are seeded work-stealing draws.
/// Each schedule executes twice, with unbounded caches and with
/// `cache_lines`-line caches (eviction forces extra fetch/reconcile
/// traffic, which changes what stale values reads can observe).
pub fn harvest_observers(
    c: &Computation,
    runs: usize,
    procs: usize,
    cache_lines: usize,
    seed: u64,
) -> Vec<ObserverFunction> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<ObserverFunction> = Vec::new();
    for r in 0..runs {
        let schedule = match r {
            0 => Schedule::serial(c),
            1 => Schedule::round_robin(c, procs),
            _ => Schedule::work_stealing(c, procs, &mut rng),
        };
        for capacity in [usize::MAX, cache_lines.max(1)] {
            let config = BackerConfig::with_processors(procs).cache_capacity(capacity);
            let result = sim::run(c, &schedule, &config);
            if !out.contains(&result.observer) {
                out.push(result.observer);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_core::{Lc, Location, MemoryModel, Op};

    fn racy_computation() -> Computation {
        let l = Location::new(0);
        // Two parallel writers and a read joining them.
        Computation::from_edges(
            4,
            &[(0, 2), (1, 2), (2, 3)],
            vec![Op::Write(l), Op::Write(l), Op::Read(l), Op::Read(l)],
        )
    }

    #[test]
    fn harvested_observers_are_valid_and_lc() {
        let c = racy_computation();
        let observers = harvest_observers(&c, 5, 2, 1, 11);
        assert!(!observers.is_empty());
        for phi in &observers {
            assert!(phi.is_valid_for(&c), "simulator must induce a valid observer");
            assert!(Lc.contains(&c, phi), "unfaulted BACKER maintains LC");
        }
    }

    #[test]
    fn harvest_is_deterministic_in_the_seed() {
        let c = racy_computation();
        let a = harvest_observers(&c, 6, 3, 2, 99);
        let b = harvest_observers(&c, 6, 3, 2, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn harvest_deduplicates() {
        // A serial chain admits exactly one execution observer, no matter
        // how many runs are requested.
        let l = Location::new(0);
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l), Op::Read(l)]);
        let observers = harvest_observers(&c, 4, 2, 1, 0);
        assert_eq!(observers.len(), 1);
    }
}
