//! A lean streaming BACKER runner for million-node traces.
//!
//! [`crate::sim`] is exact but dense: it probes **every** location after
//! every node (O(n·L) work) and keeps per-processor caches as
//! location-indexed vectors (O(p·L) memory), both of which are
//! prohibitive at the 10⁵–10⁷-node scale that `ccmm watch` targets. This
//! module runs the same flush-before / reconcile-after protocol with:
//!
//! * occupancy-bounded caches (a hash map of resident lines, so a flush
//!   costs O(occupancy), not O(L));
//! * per-node probing of the executed node's **own** location only —
//!   exactly the observation the streaming membership checker needs
//!   (everything else is completed by the last-writer function, Def. 13);
//! * a deterministic block-cyclic schedule over creation order, so a
//!   resumed run re-derives the identical execution without storing a
//!   schedule of n entries.
//!
//! The nodes are executed in creation order, which is a topological order
//! for builder-produced traces (every edge points forward). Faults from
//! [`crate::config::FaultInjection`] apply as in the dense simulator, so
//! `watch --fault` can stream genuine LC violations.

use std::collections::HashMap;

use crate::config::BackerConfig;
use crate::memory::{node_of, token_of, MainMemory, Token};
use crate::stats::Stats;
use ccmm_core::{Location, Op};
use ccmm_dag::{Dag, NodeId};

/// The processor that executes node `index` under a block-cyclic
/// schedule: blocks of `block` consecutive nodes rotate over the
/// processors. Deterministic, so checkpoint/resume re-derives the same
/// execution from `(block, processors)` alone.
#[inline]
pub fn block_cyclic_proc(index: usize, block: usize, processors: usize) -> usize {
    (index / block.max(1)) % processors.max(1)
}

#[derive(Clone, Copy, Debug)]
struct Line {
    value: Token,
    dirty: bool,
    /// LRU clock stamp of the most recent touch.
    stamp: u64,
}

/// A processor cache storing only its resident lines, so whole-cache
/// operations cost O(occupancy) instead of O(num_locations). Protocol
/// semantics (fetch / reconcile / flush / LRU eviction) match
/// [`crate::cache::Cache`] line for line.
#[derive(Debug, Default)]
pub struct LeanCache {
    lines: HashMap<usize, Line>,
    capacity: usize,
    clock: u64,
}

impl LeanCache {
    /// An empty cache holding at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LeanCache { lines: HashMap::new(), capacity, clock: 0 }
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.lines.len()
    }

    /// Non-perturbing lookup (no LRU update, no fetch).
    pub fn peek(&self, l: Location) -> Option<Token> {
        self.lines.get(&l.index()).map(|line| line.value)
    }

    fn evict_lru(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        let victim = self
            .lines
            .iter()
            .min_by_key(|&(_, line)| line.stamp)
            .map(|(&i, _)| i)
            .expect("evict called on empty cache");
        let line = self.lines.remove(&victim).expect("victim resident");
        stats.evictions += 1;
        if line.dirty {
            mem.store(Location::new(victim), line.value);
            stats.reconciles += 1;
        }
    }

    fn make_room(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        while self.lines.len() >= self.capacity {
            self.evict_lru(mem, stats);
        }
    }

    /// A processor read: cache hit, or fetch from main memory.
    pub fn read(&mut self, l: Location, mem: &mut MainMemory, stats: &mut Stats) -> Token {
        self.clock += 1;
        let clock = self.clock;
        if let Some(line) = self.lines.get_mut(&l.index()) {
            stats.hits += 1;
            line.stamp = clock;
            return line.value;
        }
        stats.misses += 1;
        stats.fetches += 1;
        self.make_room(mem, stats);
        let value = mem.load(l);
        self.lines.insert(l.index(), Line { value, dirty: false, stamp: clock });
        value
    }

    /// A processor write: install the token dirty (write-allocate).
    pub fn write(&mut self, l: Location, t: Token, mem: &mut MainMemory, stats: &mut Stats) {
        if !self.lines.contains_key(&l.index()) {
            self.make_room(mem, stats);
        }
        self.clock += 1;
        self.lines.insert(l.index(), Line { value: t, dirty: true, stamp: self.clock });
        stats.writes += 1;
    }

    /// Reconciles every dirty line (write back, mark clean).
    pub fn reconcile_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        for (&i, line) in self.lines.iter_mut() {
            if line.dirty {
                mem.store(Location::new(i), line.value);
                line.dirty = false;
                stats.reconciles += 1;
            }
        }
    }

    /// Flushes the whole cache: reconcile dirty lines, then drop
    /// everything.
    pub fn flush_all(&mut self, mem: &mut MainMemory, stats: &mut Stats) {
        self.reconcile_all(mem, stats);
        self.lines.clear();
        stats.flushes += 1;
    }
}

/// A resumable streaming BACKER execution: one [`step`](StreamRunner::step)
/// per node in creation order, so a supervisor can interleave deadline
/// checks, checkpoints, and membership checking between nodes. The whole
/// execution is a pure function of `(config, block)` — replaying steps
/// re-derives the identical observations, which is how `ccmm watch`
/// resumes from a journalled position.
#[derive(Debug)]
pub struct StreamRunner {
    config: BackerConfig,
    block: usize,
    procs: usize,
    mem: MainMemory,
    caches: Vec<LeanCache>,
    per_proc: Vec<Stats>,
    next: usize,
}

impl StreamRunner {
    /// A runner at position 0 over `num_locations` memory cells.
    pub fn new(num_locations: usize, config: &BackerConfig, block: usize) -> Self {
        let procs = config.processors.max(1);
        StreamRunner {
            config: *config,
            block,
            procs,
            mem: MainMemory::new(num_locations),
            caches: (0..procs).map(|_| LeanCache::new(config.cache_capacity.max(1))).collect(),
            per_proc: vec![Stats::default(); procs],
            next: 0,
        }
    }

    /// Index of the next node to execute.
    pub fn position(&self) -> usize {
        self.next
    }

    /// Merged protocol counters so far.
    pub fn stats(&self) -> Stats {
        let mut stats = Stats::default();
        for s in &self.per_proc {
            stats.merge(s);
        }
        stats
    }

    /// Executes the next node and returns `(node, op, observed)`, where
    /// `observed` is what the executing processor sees at the node's own
    /// location (the write itself for writes, the token fetched or hit
    /// for reads, `None` for nops). `None` once the trace is exhausted.
    ///
    /// Panics if some edge into the node points backwards (creation
    /// order must be topological) or `ops.len() != dag.node_count()`.
    pub fn step(&mut self, dag: &Dag, ops: &[Op]) -> Option<(NodeId, Op, Option<NodeId>)> {
        assert_eq!(ops.len(), dag.node_count(), "one op per node");
        let i = self.next;
        if i >= ops.len() {
            return None;
        }
        self.next += 1;
        let u = NodeId::new(i);
        let op = ops[i];
        let p = block_cyclic_proc(i, self.block, self.procs);
        let cross_pred = dag.predecessors(u).iter().any(|&q| {
            assert!(q.index() < i, "edge {q}→{u} points backwards");
            block_cyclic_proc(q.index(), self.block, self.procs) != p
        });
        if cross_pred && !self.config.faults.skip_flush {
            self.caches[p].flush_all(&mut self.mem, &mut self.per_proc[p]);
        }
        let observed = match op {
            Op::Read(l) => node_of(self.caches[p].read(l, &mut self.mem, &mut self.per_proc[p])),
            Op::Write(l) => {
                self.caches[p].write(l, token_of(u), &mut self.mem, &mut self.per_proc[p]);
                Some(u)
            }
            Op::Nop => None,
        };
        let cross_succ = dag
            .successors(u)
            .iter()
            .any(|&v| block_cyclic_proc(v.index(), self.block, self.procs) != p);
        if cross_succ && !self.config.faults.skip_reconcile {
            self.caches[p].reconcile_all(&mut self.mem, &mut self.per_proc[p]);
        }
        Some((u, op, observed))
    }
}

/// Runs BACKER over the whole trace in creation order under the
/// deterministic block-cyclic schedule, calling `sink(u, op, observed)`
/// after each node (see [`StreamRunner::step`]). Returns the merged
/// protocol counters.
pub fn run_stream<F>(
    dag: &Dag,
    ops: &[Op],
    num_locations: usize,
    config: &BackerConfig,
    block: usize,
    mut sink: F,
) -> Stats
where
    F: FnMut(NodeId, Op, Option<NodeId>),
{
    let mut runner = StreamRunner::new(num_locations, config, block);
    while let Some((u, op, observed)) = runner.step(dag, ops) {
        sink(u, op, observed);
    }
    runner.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::sim;
    use ccmm_cilk::{fib_trace, stencil_trace};

    /// The dense simulator run under the same block-cyclic schedule must
    /// report the same own-location observation for every node.
    fn assert_stream_matches_sim(trace: &ccmm_cilk::RawTrace, config: &BackerConfig, block: usize) {
        let c = trace.to_computation();
        let n = c.node_count();
        let procs = config.processors.max(1);
        let schedule = Schedule {
            order: (0..n).map(NodeId::new).collect(),
            proc: (0..n).map(|i| block_cyclic_proc(i, block, procs)).collect(),
            processors: procs,
        };
        let dense = sim::run(&c, &schedule, config);
        let mut streamed: Vec<Option<NodeId>> = Vec::with_capacity(n);
        let stream_stats =
            run_stream(&trace.dag, &trace.ops, trace.num_locations, config, block, |_, _, obs| {
                streamed.push(obs)
            });
        for (i, &got) in streamed.iter().enumerate() {
            let u = NodeId::new(i);
            let want = c.op(u).location().and_then(|l| dense.observer.get(l, u));
            assert_eq!(got, want, "node {u} (block={block}, p={procs})");
        }
        assert_eq!(stream_stats.writes, dense.stats.writes);
        assert_eq!(stream_stats.reconciles, dense.stats.reconciles);
    }

    #[test]
    fn block_cyclic_rotates_blocks() {
        let procs: Vec<usize> = (0..8).map(|i| block_cyclic_proc(i, 2, 3)).collect();
        assert_eq!(procs, vec![0, 0, 1, 1, 2, 2, 0, 0]);
        assert_eq!(block_cyclic_proc(5, 0, 2), 1, "block 0 clamps to 1");
    }

    #[test]
    fn stream_matches_dense_sim_on_own_locations() {
        for trace in [fib_trace(7), stencil_trace(4, 3)] {
            for (procs, block) in [(1, 1), (2, 1), (3, 4), (4, 7)] {
                let cfg = BackerConfig::with_processors(procs);
                assert_stream_matches_sim(&trace, &cfg, block);
            }
        }
    }

    #[test]
    fn stream_matches_dense_sim_under_capacity_pressure() {
        let trace = stencil_trace(5, 2);
        for cap in [1, 2, 8] {
            let cfg = BackerConfig::with_processors(3).cache_capacity(cap);
            assert_stream_matches_sim(&trace, &cfg, 2);
        }
    }

    #[test]
    fn stream_matches_dense_sim_with_faults() {
        let trace = fib_trace(6);
        for faults in [
            crate::config::FaultInjection { skip_flush: true, skip_reconcile: false },
            crate::config::FaultInjection { skip_flush: false, skip_reconcile: true },
        ] {
            let cfg = BackerConfig::with_processors(2).faults(faults);
            assert_stream_matches_sim(&trace, &cfg, 3);
        }
    }

    #[test]
    fn lean_cache_lru_evicts_and_reconciles() {
        let mut mem = MainMemory::new(3);
        let mut cache = LeanCache::new(2);
        let mut stats = Stats::default();
        cache.write(Location::new(0), 1, &mut mem, &mut stats);
        cache.write(Location::new(1), 2, &mut mem, &mut stats);
        cache.read(Location::new(0), &mut mem, &mut stats); // l1 becomes LRU
        cache.write(Location::new(2), 3, &mut mem, &mut stats); // evicts l1
        assert_eq!(cache.occupancy(), 2);
        assert_eq!(cache.peek(Location::new(1)), None);
        assert_eq!(mem.load(Location::new(1)), 2, "dirty victim written back");
        assert_eq!(stats.evictions, 1);
    }
}
