//! E9 — BACKER maintains location consistency (\[Luc97\], the paper's §6–7
//! motivation), and broken protocols detectably do not.
//!
//! Randomized executions of the deterministic simulator and the threaded
//! executor over the Cilk workloads, each verified post-mortem against
//! SC / LC / NN / WW. Fault-injected variants must produce LC violations.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_backer`

use ccmm_backer::{sim, threads, BackerConfig, FaultInjection, Schedule, VerifyReport};
use ccmm_bench::Table;
use ccmm_core::Computation;
use rand::SeedableRng;

fn workloads() -> Vec<(&'static str, Computation)> {
    vec![
        ("fib(8)", ccmm_cilk::fib(8).computation),
        ("matmul(4)", ccmm_cilk::matmul(4).computation),
        ("stencil(8,4)", ccmm_cilk::stencil(8, 4).computation),
        ("reduce(16)", ccmm_cilk::reduce(16).computation),
        ("mergesort(16)", ccmm_cilk::mergesort(16).computation),
    ]
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1998);
    let runs = 40;

    println!("== simulator: {runs} random work-stealing schedules per workload, 4 procs ==\n");
    let mut t = Table::new(["workload", "nodes", "runs", "valid", "SC", "LC", "NN", "WW"]);
    for (name, c) in workloads() {
        let mut rep = VerifyReport::default();
        for _ in 0..runs {
            let s = Schedule::work_stealing(&c, 4, &mut rng);
            let r = sim::run(&c, &s, &BackerConfig::with_processors(4).cache_capacity(16));
            rep.record(ccmm_backer::verify(&c, &r.observer));
        }
        assert!(rep.all_lc(), "{name}: BACKER violated LC");
        t.row([
            name.to_string(),
            c.node_count().to_string(),
            rep.runs.to_string(),
            rep.valid.to_string(),
            rep.sc.to_string(),
            rep.lc.to_string(),
            rep.nn.to_string(),
            rep.ww.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("LC column = runs: every execution location consistent [Luc97] ✓");
    println!("(SC < runs: BACKER is *not* sequentially consistent — stale");
    println!("clean copies at unrelated locations show up in the total");
    println!("observer function.)\n");

    println!("== threaded executor: 10 runs per workload, 4 workers ==\n");
    let mut t = Table::new(["workload", "runs", "valid", "SC", "LC", "NN", "WW"]);
    for (name, c) in workloads() {
        let mut rep = VerifyReport::default();
        for _ in 0..10 {
            let r = threads::run(&c, &BackerConfig::with_processors(4));
            rep.record(ccmm_backer::verify(&c, &r.observer));
        }
        assert!(rep.all_lc(), "{name}: threaded BACKER violated LC");
        t.row([
            name.to_string(),
            rep.runs.to_string(),
            rep.valid.to_string(),
            rep.sc.to_string(),
            rep.lc.to_string(),
            rep.nn.to_string(),
            rep.ww.to_string(),
        ]);
    }
    println!("{}", t.render());

    println!("== baseline: atomic (uncached) memory vs BACKER ==\n");
    println!("atomic memory is SC by construction but fetches on every read;");
    println!("BACKER weakens the model to LC and buys locality — the paper's");
    println!("\u{a7}7 efficiency-vs-strength axis.\n");
    let mut t = Table::new(["workload", "memory", "model kept", "fetches", "hit rate"]);
    for (name, c) in workloads() {
        let s = Schedule::work_stealing(&c, 4, &mut rng);
        let atomic = ccmm_backer::atomic::run(&c, &s);
        let backer = sim::run(&c, &s, &BackerConfig::with_processors(4).cache_capacity(16));
        let ap = ccmm_backer::verify(&c, &atomic.observer);
        let bp = ccmm_backer::verify(&c, &backer.observer);
        assert!(ap.sc, "{name}: atomic memory must be SC");
        assert!(bp.lc, "{name}: BACKER must be LC");
        t.row([
            name.to_string(),
            "atomic".to_string(),
            (if ap.sc { "SC" } else { "-" }).to_string(),
            atomic.stats.fetches.to_string(),
            format!("{:.2}", atomic.stats.hit_rate()),
        ]);
        t.row([
            String::new(),
            "BACKER".to_string(),
            (if bp.sc {
                "SC"
            } else if bp.lc {
                "LC"
            } else {
                "-"
            })
            .to_string(),
            backer.stats.fetches.to_string(),
            format!("{:.2}", backer.stats.hit_rate()),
        ]);
    }
    println!("{}", t.render());

    println!("== fault injection: broken protocols violate LC ==\n");
    let mut t = Table::new(["fault", "workload", "runs", "LC violations"]);
    let faults = [
        ("skip flush", FaultInjection { skip_flush: true, skip_reconcile: false }),
        ("skip reconcile", FaultInjection { skip_flush: false, skip_reconcile: true }),
        ("skip both", FaultInjection { skip_flush: true, skip_reconcile: true }),
    ];
    for (fname, f) in faults {
        // The stencil re-reads every cell each ping-pong round, exposing
        // both stale caches (flush faults) and lost writes… lost writes
        // read as ⊥ after an observed write — also an LC violation.
        let c = ccmm_cilk::stencil(8, 4).computation;
        let mut violations = 0;
        for _ in 0..runs {
            let s = Schedule::random(&c, 4, &mut rng);
            let r = sim::run(&c, &s, &BackerConfig::with_processors(4).faults(f));
            if !ccmm_backer::verify(&c, &r.observer).lc {
                violations += 1;
            }
        }
        t.row([
            fname.to_string(),
            "stencil(8,4)".to_string(),
            runs.to_string(),
            violations.to_string(),
        ]);
        assert!(violations > 0, "{fname}: expected LC violations");
    }
    println!("{}", t.render());
    println!("every protocol leg is load-bearing: removing either produces");
    println!("observer functions outside LC, and the checker catches them.");
}
