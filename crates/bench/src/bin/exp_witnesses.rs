//! E2/E3 — Figures 2 and 3: the separating computation/observer pairs.
//!
//! Verifies the reconstructed witnesses' membership pattern in all six
//! models, and searches the exhaustive universe to confirm the patterns
//! first appear at 4 nodes (Figure 2) resp. 2 nodes (Figure 3's pattern,
//! which the paper drew with 4 nodes to keep reads defined).
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_witnesses`

use ccmm_bench::{mark, Table};
use ccmm_core::relation::find_pair;
use ccmm_core::universe::Universe;
use ccmm_core::witness::{figure2, figure3, Witness};
use ccmm_core::Model;

fn report(name: &str, w: &Witness, expect_in: &[Model], expect_out: &[Model]) {
    println!("== {name} ==");
    println!("nodes ({}):", w.names.join(", "));
    println!("{}", w.computation.to_dot(name));
    println!("observer function:\n{}", w.phi.render());
    let mut t = Table::new(["model", "member", "expected"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww] {
        let is_in = m.contains(&w.computation, &w.phi);
        let expected = if expect_in.contains(&m) {
            assert!(is_in, "{name}: expected ∈ {m}");
            "∈"
        } else if expect_out.contains(&m) {
            assert!(!is_in, "{name}: expected ∉ {m}");
            "∉"
        } else {
            "–"
        };
        t.row([m.name(), mark(is_in), expected]);
    }
    println!("{}", t.render());
}

fn main() {
    report(
        "Figure 2 (in WW ∩ NW, not WN/NN)",
        &figure2(),
        &[Model::Ww, Model::Nw],
        &[Model::Wn, Model::Nn],
    );
    report(
        "Figure 3 (in WW ∩ WN, not NW/NN)",
        &figure3(),
        &[Model::Ww, Model::Wn],
        &[Model::Nw, Model::Nn],
    );

    // Minimality search.
    println!("== minimality of the patterns (exhaustive search) ==\n");
    let mut t = Table::new(["pattern", "nodes", "first witness exists"]);
    for n in 1..=4 {
        let u = Universe::new(n, 1);
        let fig2 = find_pair(&[&Model::Ww, &Model::Nw], &[&Model::Wn, &Model::Nn], &u);
        let fig3 = find_pair(&[&Model::Ww, &Model::Wn], &[&Model::Nw, &Model::Nn], &u);
        t.row(["Fig 2 (NW\\WN)".to_string(), n.to_string(), mark(fig2.is_some()).to_string()]);
        t.row(["Fig 3 (WN\\NW)".to_string(), n.to_string(), mark(fig3.is_some()).to_string()]);
    }
    println!("{}", t.render());
    println!("The Figure-3 pattern first exists at 4 nodes — the paper's");
    println!("figure is minimal. The Figure-2 pattern has a degenerate 3-node");
    println!("instance whose separating node observes ⊥; the paper's 4-node");
    println!("figure is the smallest where every read returns a written value.");
}
