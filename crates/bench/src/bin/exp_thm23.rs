//! E8 — Theorem 23: LC = NN*.
//!
//! Computes the bounded constructible version of NN-dag consistency by
//! greatest-fixpoint deletion over exhaustive universes and compares the
//! survivors with LC size by size. Also verifies the two sandwich
//! invariants that hold unconditionally (LC ⊆ fixpoint ⊆ NN) and reports
//! Theorem 22 (LC ⊊ NN) counts.
//!
//! The fixpoint runs on the worklist engine: the base set is materialised
//! by the parallel sweep (`CCMM_THREADS` threads) and, after one full
//! pass, deletions propagate only to the unique augmentation parent of
//! each deleted pair instead of re-scanning the universe. Survivors are
//! identical to the naïve re-scan fixpoint; the timing lands in
//! `BENCH_sweep.json`.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_thm23 [max_nodes]`
//! (default bound 5; 4 is fast, 5 takes a few seconds in release)

use ccmm_bench::report::{self, SweepRecord};
use ccmm_bench::Table;
use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::sweep::SweepConfig;
use ccmm_core::universe::Universe;
use ccmm_core::{Lc, MemoryModel, Nn};
use std::ops::ControlFlow;

fn main() {
    let bound: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let u = Universe::new(bound, 1);
    let cfg = SweepConfig::from_env();
    println!(
        "computing bounded NN* over all computations ≤ {bound} nodes, 1 location \
         (worklist fixpoint, {} threads)…",
        cfg.threads
    );
    let t0 = std::time::Instant::now();
    let fix = BoundedConstructible::compute_worklist(&Nn::default(), &u, &cfg);
    let wall = t0.elapsed();
    println!(
        "fixpoint reached in {:?}: {} rounds, {} pairs deleted, {} survive\n",
        wall,
        fix.passes,
        fix.deleted,
        fix.total_pairs()
    );

    let mut table =
        Table::new(["size", "NN pairs", "NN* pairs", "LC pairs", "NN*=LC", "LC⊊NN gap"]);
    let mut all_agree = true;
    for n in 0..bound {
        // Count NN pairs and LC pairs at this size; compare fixpoint to LC.
        let mut nn_pairs = 0usize;
        let mut flow = |c: &ccmm_core::Computation| {
            let _ = for_each_observer(c, |phi| {
                if Nn::default().contains(c, phi) {
                    nn_pairs += 1;
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(n, &mut flow);
        let agree = fix.agreement_with(&Lc, n, &u);
        all_agree &= agree.disagreements == 0;
        table.row([
            n.to_string(),
            nn_pairs.to_string(),
            agree.survivors.to_string(),
            agree.in_model.to_string(),
            ccmm_bench::mark(agree.disagreements == 0).to_string(),
            (nn_pairs - agree.in_model).to_string(),
        ]);
        assert_eq!(agree.disagreements, 0, "NN* ≠ LC at size {n}");
    }
    println!("{}", table.render());
    println!("(sizes below the bound only; boundary-size pairs are never");
    println!("deleted by the bounded fixpoint and are not compared)");

    // Sandwich invariants.
    println!("\nverifying LC ⊆ NN* ⊆ NN on every pair of the universe…");
    let mut checked = 0usize;
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            let in_lc = Lc.contains(c, phi);
            let in_fix = fix.contains(c, phi);
            let in_nn = Nn::default().contains(c, phi);
            assert!(!in_lc || in_fix, "LC ⊄ NN*");
            assert!(!in_fix || in_nn, "NN* ⊄ NN");
            checked += 1;
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });
    println!("{checked} pairs checked ✓");

    let record = SweepRecord::new(
        "exp_thm23/nn_star",
        "worklist",
        &u,
        cfg.threads,
        wall,
        report::universe_pairs(&u),
        fix.passes,
    );
    match report::emit(std::slice::from_ref(&record)) {
        Ok(path) => println!("sweep timing appended to {path}"),
        Err(e) => eprintln!("could not write sweep timing: {e}"),
    }

    assert!(all_agree);
    println!("\nTheorem 23 (LC = NN*) reproduced — and in fact *proven* at every");
    println!("size below the bound: the bounded fixpoint over-approximates the");
    println!("true NN* (boundary pairs are never deleted), so");
    println!("  LC ⊆ NN* ⊆ bounded-fixpoint = LC  ⟹  NN* = LC exactly.");
    println!("The 'LC⊊NN gap' column is Theorem 22's strictness, closed");
    println!("exactly by the constructibility fixpoint.");
}
