//! E4 — Figure 4: NN-dag consistency is not constructible.
//!
//! Three layers of evidence:
//! 1. the reconstructed Figure-4 pair is in NN, and no observer function
//!    on its non-write extension restricts to it;
//! 2. an exhaustive scan (Theorem 12's condition over the universe)
//!    independently finds a nonconstructibility witness for NN — and for
//!    NW and WN — while SC, LC and WW pass;
//! 3. the same scan via all one-node extensions (Theorem 10's condition)
//!    agrees where feasible.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_fig4`

use ccmm_bench::{mark, Table};
use ccmm_core::props::{any_extension, check_constructible_aug};
use ccmm_core::universe::Universe;
use ccmm_core::witness::{figure4_full, figure4_prefix};
use ccmm_core::{Lc, MemoryModel, Model, Nn, Op, Sc};

fn main() {
    println!("== the Figure 4 witness ==\n");
    let w = figure4_prefix();
    println!("prefix ({}):", w.names.join(", "));
    println!("{}", w.computation.to_dot("fig4"));
    println!("observer function:\n{}", w.phi.render());
    println!("in NN: {}", mark(Nn::default().contains(&w.computation, &w.phi)));
    println!("in LC: {}", mark(Lc.contains(&w.computation, &w.phi)));
    println!("in SC: {}\n", mark(Sc.contains(&w.computation, &w.phi)));

    let mut t = Table::new(["extension op", "NN-extensible"]);
    for op in
        [Op::Read(ccmm_core::Location::new(0)), Op::Nop, Op::Write(ccmm_core::Location::new(0))]
    {
        let full = figure4_full(op);
        let ok = any_extension(&full, &w.phi, |phi2| Nn::default().contains(&full, phi2));
        t.row([op.to_string(), mark(ok).to_string()]);
    }
    println!("{}", t.render());
    println!("paper: \"unless F writes to the memory location, there is no");
    println!("way to extend Φ\" — reproduced.\n");

    println!("== exhaustive constructibility scan (Theorem 12 condition) ==\n");
    println!("universe: all computations ≤ 4 nodes (so prefixes ≤ 4, with");
    println!("augmentations at 5 nodes), 1 location.\n");
    let u = Universe::new(5, 1);
    let mut t = Table::new(["model", "constructible (≤ bound)", "paper says", "agrees"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww] {
        let res = check_constructible_aug(&m, &u);
        let found_ok = res.is_ok();
        let paper = m.paper_says_constructible();
        t.row([
            m.name().to_string(),
            mark(found_ok).to_string(),
            mark(paper).to_string(),
            mark(found_ok == paper).to_string(),
        ]);
        if let Err(witness) = res {
            println!(
                "  {} stuck at: {:?} / {:?} extended by {}",
                m.name(),
                witness.c,
                witness.phi,
                witness.op
            );
        }
        assert_eq!(found_ok, paper, "{m}: constructibility disagrees with the paper");
    }
    println!("\n{}", t.render());
    println!("Figure 1's constructibility annotations reproduced: SC, LC and");
    println!("WW are constructible; NN, NW and WN are not.");
}
