//! E15 — exploring the Q-dag-consistency *family* beyond the four named
//! members.
//!
//! Definition 20 is parametric: any predicate `Q(l, u, v, w)` yields a
//! memory model, and "strengthening Q weakens the model". This experiment
//! instantiates a small zoo of predicates and machine-checks the induced
//! lattice against the named models — demonstrating that the framework
//! (checkers, relation engine, property scans) is generic in Q, not
//! hard-wired to NN/NW/WN/WW.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_qfamily`

use ccmm_bench::Table;
use ccmm_core::model::{DynQ, MemoryModel};
use ccmm_core::relation::compare;
use ccmm_core::universe::Universe;
use ccmm_core::{Computation, Location, Model};
use ccmm_dag::NodeId;

fn zoo() -> Vec<DynQ> {
    vec![
        // The four named members, re-expressed dynamically (sanity row).
        DynQ::new("NN'", |_, _, _, _, _| true),
        DynQ::new("NW'", |c: &Computation, l, _, v, _| c.op(v).is_write_to(l)),
        DynQ::new("WN'", |c: &Computation, l, u: Option<NodeId>, _, _| {
            u.is_none_or(|u| c.op(u).is_write_to(l))
        }),
        // Exotic members.
        DynQ::new("EDGE", |c: &Computation, _, u: Option<NodeId>, v, _| {
            // Only constrain when u -> v is a direct edge.
            u.is_some_and(|u| c.dag().has_edge(u, v))
        }),
        DynQ::new("NEAR-W", |c: &Computation, l, _, v, w| {
            // Constrain middles adjacent to the endpoint w when v writes.
            c.op(v).is_write_to(l) && c.dag().has_edge(v, w)
        }),
        DynQ::new("L0-ONLY", |_, l: Location, _, _, _| l.index() == 0),
    ]
}

fn main() {
    let u = Universe::new(4, 1);
    let named = [Model::Nn, Model::Nw, Model::Wn, Model::Ww, Model::Lc];

    println!("== the Q-family zoo vs the named models (≤4 nodes, 1 location) ==\n");
    let mut t = Table::new(
        std::iter::once("Q \\ model".to_string()).chain(named.iter().map(|m| m.name().to_string())),
    );
    for q in zoo() {
        let mut cells = vec![q.name().to_string()];
        for m in named {
            let rel = compare(&q, &m, &u).relation;
            cells.push(rel.to_string());
        }
        t.row(cells);
    }
    println!("{}", t.render());

    // Sanity: the dynamic re-expressions coincide with the static models.
    let z = zoo();
    assert_eq!(compare(&z[0], &Model::Nn, &u).relation, ccmm_core::relation::Relation::Equal);
    assert_eq!(compare(&z[1], &Model::Nw, &u).relation, ccmm_core::relation::Relation::Equal);
    assert_eq!(compare(&z[2], &Model::Wn, &u).relation, ccmm_core::relation::Relation::Equal);

    // Theorem 21 for the whole zoo: NN is stronger than every Q-model.
    for q in zoo() {
        let rel = compare(&Model::Nn, &q, &u).relation;
        assert!(
            matches!(
                rel,
                ccmm_core::relation::Relation::Equal
                    | ccmm_core::relation::Relation::StrictlyStronger
            ),
            "Theorem 21 violated by {}",
            q.name()
        );
    }
    println!("Theorem 21 verified across the zoo: NN ⊆ Q-dag consistency for");
    println!("every predicate Q, named or exotic. Notes from the matrix: with");
    println!("one location L0-ONLY collapses to NN; NEAR-W coincides with NW at");
    println!("this bound (adjacent write-middles are the only ones NW can");
    println!("catch on ≤4 nodes); EDGE is incomparable with all of NW/WN/WW.");

    // Strengthening Q weakens the model: EDGE ⊆ Q=true pointwise.
    let edge = &z[3];
    let rel = compare(&Model::Nn, edge, &u).relation;
    println!("\nNN vs EDGE: {rel} (fewer constrained triples ⇒ weaker model).");
}
