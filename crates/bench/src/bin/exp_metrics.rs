//! E14 — workload shape inventory.
//!
//! Height, exact Dilworth width, and parallelism for every workload used
//! in the BACKER and speedup experiments. Shape explains the measured
//! behaviour: speedup saturates near the parallelism ratio, and protocol
//! traffic correlates with width (simultaneously active strands touching
//! memory).
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_metrics`

use ccmm_bench::Table;
use ccmm_core::Computation;
use ccmm_dag::metrics;

fn main() {
    let workloads: Vec<(&str, Computation)> = vec![
        ("fib(8)", ccmm_cilk::fib(8).computation),
        ("fib(12)", ccmm_cilk::fib(12).computation),
        ("matmul(4)", ccmm_cilk::matmul(4).computation),
        ("matmul(8)", ccmm_cilk::matmul(8).computation),
        ("stencil(8,4)", ccmm_cilk::stencil(8, 4).computation),
        ("stencil(64,8)", ccmm_cilk::stencil(64, 8).computation),
        ("reduce(16)", ccmm_cilk::reduce(16).computation),
        ("reduce(256)", ccmm_cilk::reduce(256).computation),
        ("mergesort(16)", ccmm_cilk::mergesort(16).computation),
        ("mergesort(128)", ccmm_cilk::mergesort(128).computation),
    ];

    let mut t = Table::new([
        "workload",
        "nodes",
        "edges",
        "height",
        "width",
        "parallelism",
        "locations",
        "race-free",
    ]);
    for (name, c) in &workloads {
        let s = metrics::shape(c.dag());
        t.row([
            name.to_string(),
            s.nodes.to_string(),
            c.dag().edge_count().to_string(),
            s.height.to_string(),
            s.width.to_string(),
            format!("{:.1}", s.parallelism),
            c.num_locations().to_string(),
            ccmm_bench::mark(ccmm_cilk::race::is_race_free(c)).to_string(),
        ]);
        assert!(ccmm_cilk::race::is_race_free(c), "{name} must be race-free");
    }
    println!("{}", t.render());

    println!("shape glossary: height = longest dependency chain (nodes);");
    println!("width = largest antichain (max instantaneous parallelism,");
    println!("computed exactly via Dilworth/König); parallelism = nodes/height");
    println!("(average parallelism, the speedup ceiling of E12).");

    // Level profiles for two contrasting shapes.
    for name in ["fib(8)", "stencil(8,4)"] {
        let c = workloads.iter().find(|(n, _)| *n == name).map(|(_, c)| c).unwrap();
        let profile = metrics::level_profile(c.dag());
        let max = profile.iter().copied().max().unwrap_or(1).max(1);
        println!("\nlevel profile of {name} (nodes per depth level):");
        for (d, &w) in profile.iter().enumerate() {
            let bar = "#".repeat((w * 40).div_ceil(max));
            println!("{d:>4} | {bar} {w}");
        }
    }
}
