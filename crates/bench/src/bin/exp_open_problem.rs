//! E11 — the paper's open problem (§7): characterize NW* and WN*.
//!
//! Figure 1 draws dashed lines: "It is known that LC ⊆ WN* and that
//! LC ⊆ NW*, but we do not know whether these inclusions are strict."
//! We compute the bounded constructible versions of NW and WN by the same
//! fixpoint used for Theorem 23 and compare them with LC and with NN*
//! size by size — exhaustive evidence below the bound.
//!
//! Both fixpoints run on the worklist engine with a parallel base sweep
//! (`CCMM_THREADS` threads); timings land in `BENCH_sweep.json`.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_open_problem [bound]`

use ccmm_bench::report::{self, SweepRecord};
use ccmm_bench::Table;
use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::sweep::SweepConfig;
use ccmm_core::universe::Universe;
use ccmm_core::{Computation, Lc, MemoryModel, Nw, ObserverFunction, Wn};
use std::ops::ControlFlow;

fn main() {
    let bound: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    let u = Universe::new(bound, 1);
    let cfg = SweepConfig::from_env();

    println!(
        "computing bounded NW* and WN* over all computations ≤ {bound} nodes \
         (worklist fixpoint, {} threads)…\n",
        cfg.threads
    );
    let t0 = std::time::Instant::now();
    let nw_star = BoundedConstructible::compute_worklist(&Nw::default(), &u, &cfg);
    let nw_wall = t0.elapsed();
    println!(
        "NW*: {} rounds, {} deleted, {} survive ({nw_wall:?})",
        nw_star.passes,
        nw_star.deleted,
        nw_star.total_pairs()
    );
    let t0 = std::time::Instant::now();
    let wn_star = BoundedConstructible::compute_worklist(&Wn::default(), &u, &cfg);
    let wn_wall = t0.elapsed();
    println!(
        "WN*: {} rounds, {} deleted, {} survive ({wn_wall:?})\n",
        wn_star.passes,
        wn_star.deleted,
        wn_star.total_pairs()
    );

    let pairs = report::universe_pairs(&u);
    let records = [
        SweepRecord::new(
            "exp_open_problem/nw_star",
            "worklist",
            &u,
            cfg.threads,
            nw_wall,
            pairs,
            nw_star.passes,
        ),
        SweepRecord::new(
            "exp_open_problem/wn_star",
            "worklist",
            &u,
            cfg.threads,
            wn_wall,
            pairs,
            wn_star.passes,
        ),
    ];
    match report::emit(&records) {
        Ok(path) => println!("sweep timings appended to {path}\n"),
        Err(e) => eprintln!("could not write sweep timings: {e}\n"),
    }

    let mut t = Table::new(["size", "LC", "NW*", "WN*", "LC⊆NW*", "NW*\\LC", "LC⊆WN*", "WN*\\LC"]);
    let mut nw_witness: Option<(Computation, ObserverFunction)> = None;
    let mut wn_witness: Option<(Computation, ObserverFunction)> = None;
    for n in 0..bound {
        let mut lc_pairs = 0usize;
        let mut nw_pairs = 0usize;
        let mut wn_pairs = 0usize;
        let mut lc_sub_nw = true;
        let mut lc_sub_wn = true;
        let mut nw_extra = 0usize;
        let mut wn_extra = 0usize;
        let mut f = |c: &Computation| {
            let _ = for_each_observer(c, |phi| {
                let in_lc = Lc.contains(c, phi);
                let in_nw = nw_star.contains(c, phi);
                let in_wn = wn_star.contains(c, phi);
                lc_pairs += in_lc as usize;
                nw_pairs += in_nw as usize;
                wn_pairs += in_wn as usize;
                if in_lc && !in_nw {
                    lc_sub_nw = false;
                }
                if in_lc && !in_wn {
                    lc_sub_wn = false;
                }
                if in_nw && !in_lc {
                    nw_extra += 1;
                    if nw_witness.is_none() {
                        nw_witness = Some((c.clone(), phi.clone()));
                    }
                }
                if in_wn && !in_lc {
                    wn_extra += 1;
                    if wn_witness.is_none() {
                        wn_witness = Some((c.clone(), phi.clone()));
                    }
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(n, &mut f);
        t.row([
            n.to_string(),
            lc_pairs.to_string(),
            nw_pairs.to_string(),
            wn_pairs.to_string(),
            ccmm_bench::mark(lc_sub_nw).to_string(),
            nw_extra.to_string(),
            ccmm_bench::mark(lc_sub_wn).to_string(),
            wn_extra.to_string(),
        ]);
        assert!(lc_sub_nw, "LC ⊆ NW* must hold (LC is constructible and ⊆ NW)");
        assert!(lc_sub_wn, "LC ⊆ WN* must hold");
    }
    println!("{}", t.render());

    // The bounded fixpoint over-approximates the true Δ* (boundary pairs
    // are never deleted): emptiness of the difference would *prove*
    // equality, but a nonempty difference is inconclusive — the surviving
    // pairs might die under deeper lookahead. Probe them with the exact
    // k-step survival test (Kleene iteration converges to the true Δ*).
    println!("== deep-lookahead probe of the surviving witnesses ==\n");
    let alphabet = u.alphabet();
    let mut t = Table::new(["witness", "k=1", "k=2", "k=3", "k=4", "k=5", "k=6"]);
    let probes: Vec<(&str, Option<(Computation, ObserverFunction)>)> =
        vec![("NW* \\ LC", nw_witness), ("WN* \\ LC", wn_witness)];
    let mut verdicts = Vec::new();
    for (name, w) in probes {
        let Some((c, phi)) = w else {
            println!("{name}: empty below the bound — equality PROVEN there.\n");
            verdicts.push((name, None));
            continue;
        };
        println!("{name} witness: {c:?}  {phi:?}");
        let mut cells = vec![name.to_string()];
        let mut survived_all = true;
        let model: &str = name;
        for k in 1..=6 {
            let alive = if model.starts_with("NW") {
                ccmm_core::constructible::survives_lookahead(&Nw::default(), &c, &phi, k, &alphabet)
            } else {
                ccmm_core::constructible::survives_lookahead(&Wn::default(), &c, &phi, k, &alphabet)
            };
            survived_all &= alive;
            cells.push(ccmm_bench::mark(alive).to_string());
        }
        t.row(cells);
        verdicts.push((name, Some(survived_all)));
    }
    println!("{}", t.render());
    for (name, v) in verdicts {
        match v {
            None => {}
            Some(true) => println!(
                "{name}: survives 6-step lookahead — strong evidence the paper's \
                 inclusion is STRICT (survival at all k would put it in the true Δ*)."
            ),
            Some(false) => println!(
                "{name}: dies under deeper lookahead — the bounded-fixpoint gap was \
                 an artifact; no strictness evidence at this size."
            ),
        }
    }
}
