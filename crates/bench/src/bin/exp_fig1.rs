//! E1/E6/E7 — Figure 1: the lattice of models, machine-checked.
//!
//! For every ordered pair of models, decide ⊊ / = / ⊋ / ∥ over the
//! exhaustive universe of computations with ≤ 4 nodes over one location,
//! and report pair counts plus separating witnesses. The SC/LC separation
//! needs two locations and is certified with an explicit store-buffering
//! witness.
//!
//! The matrix is computed by the parallel sweep engine (`CCMM_THREADS`
//! overrides the thread count); counts and witnesses are bit-identical to
//! the serial scan, and timings land in `BENCH_sweep.json`.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_fig1`

use ccmm_bench::report::{self, SweepRecord};
use ccmm_bench::Table;
use ccmm_core::relation::Relation;
use ccmm_core::sweep::{compare_par, SweepConfig};
use ccmm_core::universe::Universe;
use ccmm_core::Location;
use ccmm_core::{Computation, Lc, MemoryModel, Model, ObserverFunction, Op, Sc};
use ccmm_dag::NodeId;

fn main() {
    let u = Universe::new(4, 1);
    let cfg = SweepConfig::from_env();
    let models = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];
    let compare = |a: &Model, b: &Model, u: &Universe| compare_par(a, b, u, &cfg);

    println!(
        "== E1: pairwise model relations (all computations ≤ 4 nodes, 1 location; {} threads) ==\n",
        cfg.threads
    );
    let t0 = std::time::Instant::now();
    let mut pairs_checked = 0u64;
    let mut matrix = Table::new(
        std::iter::once("row \\ col".to_string())
            .chain(models.iter().map(|m| m.name().to_string())),
    );
    let mut pair_counts = Table::new(["model", "member pairs"]);
    for a in models {
        let mut cells = vec![a.name().to_string()];
        let mut a_total = 0;
        for b in models {
            let cmp = compare(&a, &b, &u);
            a_total = cmp.a_total;
            pairs_checked += cmp.pairs_checked as u64;
            cells.push(cmp.relation.to_string());
        }
        matrix.row(cells);
        pair_counts.row([a.name().to_string(), a_total.to_string()]);
    }
    let matrix_wall = t0.elapsed();
    println!("{}", matrix.render());
    println!("{}", pair_counts.render());
    println!("matrix swept in {matrix_wall:?} ({pairs_checked} pairs)\n");

    println!("paper (Figure 1) says: LC ⊊ NN ⊊ {{NW, WN}} ⊊ WW, NW ∥ WN;");
    println!("SC = LC at one location, SC ⊊ LC with more than one.\n");

    // Verify the claimed chain and report witnesses.
    println!("== E6/E7: strictness witnesses ==\n");
    let chain = [
        (Model::Lc, Model::Nn),
        (Model::Nn, Model::Nw),
        (Model::Nn, Model::Wn),
        (Model::Nw, Model::Ww),
        (Model::Wn, Model::Ww),
    ];
    for (a, b) in chain {
        let cmp = compare(&a, &b, &u);
        assert_eq!(cmp.relation, Relation::StrictlyStronger, "{a} vs {b}");
        let (c, phi) = cmp.b_only.expect("strict inclusion has a witness");
        println!("{} ⊊ {}: witness in {} \\ {}:", a, b, b, a);
        println!("  {c:?}");
        println!("  {phi:?}\n");
    }
    let nw_wn = compare(&Model::Nw, &Model::Wn, &u);
    assert_eq!(nw_wn.relation, Relation::Incomparable);
    println!("NW ∥ WN: both directions witnessed.\n");

    // SC vs LC at two locations: the store-buffering pair.
    println!("== SC ⊊ LC at two locations (store-buffering witness) ==\n");
    let l0 = Location::new(0);
    let l1 = Location::new(1);
    let c = Computation::from_edges(
        4,
        &[(0, 1), (2, 3)],
        vec![Op::Write(l0), Op::Read(l1), Op::Write(l1), Op::Read(l0)],
    );
    // Both reads observe ⊥ at the location they read; each node's row at
    // its own thread's written location is the thread's write (forced —
    // it follows the write).
    let phi = ObserverFunction::base(&c).with(l0, NodeId::new(1), Some(NodeId::new(0))).with(
        l1,
        NodeId::new(3),
        Some(NodeId::new(2)),
    );
    assert!(Lc.contains(&c, &phi));
    assert!(!Sc.contains(&c, &phi));
    println!("  {c:?}");
    println!("  both reads observe ⊥: in LC, not in SC ✓\n");

    // Also check SC ⊆ LC holds on a small 2-location universe.
    let u2 = Universe::new(3, 2);
    let cmp = compare_par(&Sc, &Lc, &u2, &cfg);
    assert!(cmp.a_only.is_none(), "SC ⊆ LC must hold");
    println!(
        "SC ⊆ LC over all computations ≤ 3 nodes, 2 locations: ✓ ({} pairs checked)",
        cmp.pairs_checked
    );
    println!("relation there: SC {} LC", cmp.relation);

    // Randomized evidence beyond the exhaustive bound: 10-node samples.
    println!("\n== sampled cross-check at 10 nodes, 2 locations (2000 samples/pair) ==\n");
    use ccmm_core::relation::compare_sampled;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(424242);
    let mut t = Table::new(["pair", "A\\B found", "B\\A found", "verdict"]);
    for (a, b) in [
        (Model::Sc, Model::Lc),
        (Model::Lc, Model::Nn),
        (Model::Nn, Model::Nw),
        (Model::Nn, Model::Wn),
        (Model::Nw, Model::Ww),
        (Model::Wn, Model::Ww),
    ] {
        let cmp = compare_sampled(&a, &b, 10, 2, 2000, &mut rng);
        assert!(cmp.a_only.is_none(), "{a} ⊆ {b} violated at 10 nodes!");
        t.row([
            format!("{a} vs {b}"),
            "no (inclusion holds)".to_string(),
            if cmp.b_only.is_some() { "yes (strict)" } else { "not sampled" }.to_string(),
            cmp.relation.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("sampling cannot prove inclusions, but any A\\B hit would be a");
    println!("disproof — none appears, while strictness witnesses do.");

    let record = SweepRecord::new(
        "exp_fig1/lattice",
        if cfg.threads > 1 { "parallel" } else { "serial" },
        &u,
        cfg.threads,
        matrix_wall,
        pairs_checked,
        0,
    );
    match report::emit(std::slice::from_ref(&record)) {
        Ok(path) => println!("\nsweep timing appended to {path}"),
        Err(e) => eprintln!("\ncould not write sweep timing: {e}"),
    }

    println!("\nAll Figure-1 relations machine-verified.");
}
