//! E10 — performance shape: checker scaling and protocol-traffic curves.
//!
//! Two families of tables in the spirit of the Cilk papers' evaluations
//! (\[BFJ+96b\]'s experiments motivated this line of work; absolute numbers
//! are not comparable — our substrate is a simulator — but the *shapes*
//! are):
//!
//! 1. membership-checker cost versus computation size (LC's polynomial
//!    block contraction versus SC's NP search, on easy and adversarial
//!    instances);
//! 2. BACKER protocol traffic (fetches, reconciles, hit rate) versus
//!    processor count and cache capacity on the Cilk workloads —
//!    locality-greedy scheduling beats round-robin, bigger caches fetch
//!    less, more processors reconcile more.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_scaling`

use ccmm_backer::{sim, BackerConfig, Schedule};
use ccmm_bench::Table;
use ccmm_core::last_writer::last_writer_function;
use ccmm_core::{Computation, Lc, MemoryModel, Op, Sc};
use ccmm_dag::topo;
use rand::SeedableRng;
use std::time::Instant;

fn random_computation(n: usize, locs: usize, rng: &mut impl rand::Rng) -> Computation {
    let dag = ccmm_dag::generate::gnp_dag(n, 2.0 / n as f64, rng);
    let ops: Vec<Op> = (0..n)
        .map(|i| match i % 3 {
            0 => Op::Write(ccmm_core::Location::new(i % locs)),
            1 => Op::Read(ccmm_core::Location::new((i + 1) % locs)),
            _ => Op::Nop,
        })
        .collect();
    Computation::new(dag, ops).unwrap()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);

    println!("== checker scaling: time per membership query (µs, averaged) ==\n");
    let mut t = Table::new(["nodes", "LC yes", "LC no", "SC yes", "SC adversarial-no"]);
    for n in [20usize, 40, 80, 160] {
        let c = random_computation(n, 4, &mut rng);
        // Positive instance: a last-writer function.
        let phi_yes = last_writer_function(&c, &topo::topo_sort(c.dag()));
        // Negative instance for LC: corrupt one entry.
        let mut phi_no = phi_yes.clone();
        'outer: for l in c.locations() {
            for u in c.nodes() {
                if !c.op(u).is_write_to(l) {
                    for &w in c.writes_to(l) {
                        if !c.precedes(u, w) && phi_yes.get(l, u) != Some(w) {
                            phi_no.set(l, u, Some(w));
                            break 'outer;
                        }
                    }
                }
            }
        }
        // Adversarial SC instance: wide antichain of writes + a read
        // demanding ⊥ — forces exhaustive refutation (memoised). Capped:
        // the state space grows as 2^k·k and k=16 already takes minutes.
        let k = (n / 8).clamp(4, 12);
        let mut aops = vec![Op::Write(ccmm_core::Location::new(0)); k];
        aops.push(Op::Read(ccmm_core::Location::new(0)));
        let aedges: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
        let adv = Computation::from_edges(k + 1, &aedges, aops);
        let adv_phi = ccmm_core::ObserverFunction::base(&adv);

        let time = |f: &mut dyn FnMut() -> bool, reps: u32| -> f64 {
            let t0 = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            t0.elapsed().as_secs_f64() * 1e6 / reps as f64
        };
        let lc_yes = time(&mut || Lc.contains(&c, &phi_yes), 50);
        let lc_no = time(&mut || Lc.contains(&c, &phi_no), 50);
        let sc_yes = time(&mut || Sc.contains(&c, &phi_yes), 20);
        let sc_adv = time(&mut || Sc.contains(&adv, &adv_phi), 5);
        t.row([
            n.to_string(),
            format!("{lc_yes:.1}"),
            format!("{lc_no:.1}"),
            format!("{sc_yes:.1}"),
            format!("{sc_adv:.1}"),
        ]);
    }
    println!("{}", t.render());
    println!("LC stays polynomial either way; SC is fast on realizable");
    println!("instances and pays exponentially (tamed by memoisation) to");
    println!("refute adversarial ones — verifying SC is NP-complete [GK94].\n");

    println!("== BACKER traffic vs processors (fib(10), 64-line caches) ==\n");
    let c = ccmm_cilk::fib(10).computation;
    let mut t =
        Table::new(["procs", "schedule", "cross edges", "fetches", "reconciles", "hit rate"]);
    for p in [1usize, 2, 4, 8] {
        for (sname, s) in [
            ("work-steal", Schedule::work_stealing(&c, p, &mut rng)),
            ("round-robin", Schedule::round_robin(&c, p)),
        ] {
            let r = sim::run(&c, &s, &BackerConfig::with_processors(p).cache_capacity(64));
            t.row([
                p.to_string(),
                sname.to_string(),
                s.cross_edges(&c).to_string(),
                r.stats.fetches.to_string(),
                r.stats.reconciles.to_string(),
                format!("{:.2}", r.stats.hit_rate()),
            ]);
        }
    }
    println!("{}", t.render());
    println!("more processors ⇒ more cross edges ⇒ more protocol traffic;");
    println!("locality-greedy scheduling stays well under round-robin.\n");

    println!("== BACKER traffic vs cache capacity (stencil(16,4), serial schedule) ==\n");
    println!("(a serial schedule never flushes, isolating pure capacity");
    println!("effects; the stencil re-reads each cell three times per step)\n");
    let c = ccmm_cilk::stencil(16, 4).computation;
    let mut t = Table::new(["capacity", "fetches", "evictions", "reconciles", "hit rate"]);
    let s = Schedule::serial(&c);
    for cap in [1usize, 2, 4, 8, 16, 32, 64] {
        let r = sim::run(&c, &s, &BackerConfig::with_processors(1).cache_capacity(cap));
        t.row([
            cap.to_string(),
            r.stats.fetches.to_string(),
            r.stats.evictions.to_string(),
            r.stats.reconciles.to_string(),
            format!("{:.2}", r.stats.hit_rate()),
        ]);
    }
    println!("{}", t.render());
    println!("shrinking caches trade hits for fetches/evictions — the cache");
    println!("-size sensitivity the Cilk papers measured on real machines.\n");

    println!("== BACKER traffic vs page size (stencil(32,4), 4 procs, 8 pages/cache) ==\n");
    println!("(page-granular caches with per-word dirty masks; a fetch");
    println!("transfers one page, so spatial locality pays until flush");
    println!("traffic and capacity misses eat the gain)\n");
    let c = ccmm_cilk::stencil(32, 4).computation;
    let mut t =
        Table::new(["page size", "fetches", "evictions", "reconciles", "hit rate", "in LC"]);
    for page in [1usize, 2, 4, 8, 16] {
        let s = Schedule::work_stealing(&c, 4, &mut rng);
        let r = sim::run_paged(&c, &s, &BackerConfig::with_processors(4).cache_capacity(8), page);
        let ok = ccmm_core::Lc.contains(&c, &r.observer);
        t.row([
            page.to_string(),
            r.stats.fetches.to_string(),
            r.stats.evictions.to_string(),
            r.stats.reconciles.to_string(),
            format!("{:.2}", r.stats.hit_rate()),
            ccmm_bench::mark(ok).to_string(),
        ]);
        assert!(ok, "paged BACKER must stay LC");
    }
    println!("{}", t.render());
    println!("the page-size axis of the [BFJ+96b]-style experiments: larger");
    println!("pages amortise fetches on the stencil's contiguous reads, and");
    println!("per-word dirty masks keep false sharing from corrupting data");
    println!("(the LC column stays ✓ at every page size).");
}
