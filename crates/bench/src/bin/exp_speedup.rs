//! E12 — the performance-model shape of \[BFJ+96a\]: `T_P ≈ T_1/P + σ·T_∞`.
//!
//! Timed BACKER executions of the Cilk workloads across processor counts,
//! reporting makespan, speedup, parallelism (`T_1/T_∞`), and the greedy
//! bound. The shape to reproduce: near-linear speedup while
//! `P ≪ parallelism`, flattening toward the span limit, with protocol
//! costs inflating the critical-path term.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_speedup`

use ccmm_backer::timing::{run, span, work, CostModel};
use ccmm_backer::BackerConfig;
use ccmm_bench::Table;
use ccmm_core::Computation;
use rand::SeedableRng;

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(96);
    let cost = CostModel::default();
    let workloads: Vec<(&str, Computation)> = vec![
        ("fib(12)", ccmm_cilk::fib(12).computation),
        ("matmul(8)", ccmm_cilk::matmul(8).computation),
        ("stencil(64,8)", ccmm_cilk::stencil(64, 8).computation),
        ("reduce(256)", ccmm_cilk::reduce(256).computation),
        ("mergesort(128)", ccmm_cilk::mergesort(128).computation),
    ];

    for (name, c) in &workloads {
        let t1_work = work(c, &cost);
        let tinf = span(c, &cost);
        let shape = ccmm_dag::metrics::shape(c.dag());
        println!(
            "== {name}: {} nodes, height {}, width {}, work T1={t1_work}, span T∞={tinf}, parallelism {:.1} ==\n",
            c.node_count(),
            shape.height,
            shape.width,
            t1_work as f64 / tinf as f64
        );
        let mut t = Table::new([
            "P",
            "makespan T_P",
            "speedup T_1/T_P",
            "greedy bound T_1/P+T∞",
            "fetches",
            "reconciles",
        ]);
        let base = run(c, 1, &BackerConfig::with_processors(1).cache_capacity(64), &cost, &mut rng);
        for p in [1usize, 2, 4, 8, 16, 32] {
            // Average a few runs (random stealing).
            let mut best = u64::MAX;
            let mut stats = ccmm_backer::Stats::default();
            for _ in 0..3 {
                let r = run(
                    c,
                    p,
                    &BackerConfig::with_processors(p).cache_capacity(64),
                    &cost,
                    &mut rng,
                );
                best = best.min(r.makespan);
                stats = r.stats;
            }
            let bound = base.makespan / p as u64 + tinf;
            t.row([
                p.to_string(),
                best.to_string(),
                format!("{:.2}", base.makespan as f64 / best as f64),
                bound.to_string(),
                stats.fetches.to_string(),
                stats.reconciles.to_string(),
            ]);
        }
        println!("{}", t.render());
    }

    println!("Shape check: speedup climbs while P ≪ parallelism and");
    println!("saturates near it; stencil (wide, shallow) scales further than");
    println!("fib (deep tree) at equal node counts; protocol traffic grows");
    println!("with P — the qualitative content of the Cilk speedup studies.");
}
