//! E13 — the online consistency game (Section 3 made operational).
//!
//! An adversary reveals computations node by node; a session commits an
//! observation row per reveal, preserving its model. Measured:
//!
//! * greedy sessions for the constructible models never jam;
//! * membership-preserving NN sessions escape LC and sometimes jam — and
//!   *every* jam happens from a state outside LC (LC states always
//!   extend: Theorem 19 + Theorem 23);
//! * lookahead reduces NN's jam rate (lookahead-∞ would be an LC player).
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_online`

use ccmm_bench::Table;
use ccmm_core::online::OnlineSession;
use ccmm_core::{Computation, Lc, Location, MemoryModel, Model, Nn, Op};
use ccmm_dag::NodeId;
use rand::{Rng, SeedableRng};

/// Random adversary input: write-heavy single-location computations.
fn adversary_input(rng: &mut impl Rng) -> Computation {
    let n = rng.gen_range(5..9);
    let dag = ccmm_dag::generate::gnp_dag(n, 0.35, rng);
    let writes = rng.gen_range(2..4);
    let ops: Vec<Op> = (0..n)
        .map(|i| if i < writes { Op::Write(Location::new(0)) } else { Op::Read(Location::new(0)) })
        .collect();
    Computation::new(dag, ops).unwrap()
}

/// Plays one game with random admissible choices; returns
/// (jammed, ever_left_lc, jam_was_outside_lc).
fn play<M: MemoryModel + Copy>(
    model: M,
    c: &Computation,
    lookahead: usize,
    rng: &mut impl Rng,
) -> (bool, bool, bool) {
    let mut s = OnlineSession::new(model, c.num_locations()).with_lookahead(lookahead);
    let mut left_lc = false;
    let mut was_in_lc = true;
    for u in c.nodes() {
        let preds: Vec<NodeId> = c.dag().predecessors(u).to_vec();
        let pick = rng.gen_range(0..16usize);
        match s.reveal_choose(&preds, c.op(u), |cands| pick % cands.len()) {
            Ok(_) => {
                let in_lc = Lc.contains(s.computation(), s.observer());
                left_lc |= !in_lc;
                was_in_lc = in_lc;
            }
            Err(_) => return (true, left_lc, !was_in_lc),
        }
    }
    (false, left_lc, true)
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let games = 300;
    let inputs: Vec<Computation> = (0..games).map(|_| adversary_input(&mut rng)).collect();

    println!("== random-choice online sessions, {games} adversary inputs ==\n");
    let mut t =
        Table::new(["model", "lookahead", "jams", "games escaping LC", "jams from inside LC"]);
    for (m, k) in [
        (Model::Sc, 0usize),
        (Model::Lc, 0),
        (Model::Ww, 0),
        (Model::Nn, 0),
        (Model::Nn, 1),
        (Model::Nn, 2),
    ] {
        let mut jams = 0;
        let mut escapes = 0;
        let mut bad_jams = 0;
        for c in &inputs {
            let (jam, left, jam_outside) = play(m, c, k, &mut rng);
            jams += jam as usize;
            escapes += left as usize;
            if jam && !jam_outside {
                bad_jams += 1;
            }
        }
        t.row([
            m.name().to_string(),
            k.to_string(),
            jams.to_string(),
            escapes.to_string(),
            bad_jams.to_string(),
        ]);
        if m.paper_says_constructible() {
            assert_eq!(jams, 0, "{m} is constructible; greedy play must never jam");
        }
        assert_eq!(bad_jams, 0, "a jam from inside LC would contradict Theorem 19/23");
    }
    println!("{}", t.render());

    println!("Readings:");
    println!("• constructible models (SC, LC, WW): zero jams — any membership-");
    println!("  preserving choice extends forever (Definition 6).");
    println!("• NN with no lookahead: random choices escape LC and then jam;");
    println!("  every jam occurs from a state outside LC. Lookahead shrinks the");
    println!("  jam count; an infinite-lookahead NN player is exactly an LC");
    println!("  player (Theorem 23).");

    // Determinism bonus: the same adversary, revealed in a different
    // topological order, cannot save a committed crossing.
    let w = ccmm_core::witness::figure4_prefix();
    let mut orders_jammed = 0;
    let mut total_orders = 0;
    for t_order in ccmm_dag::topo::all_topo_sorts(w.computation.dag()) {
        // Replay the prefix committing exactly the witness's rows, when
        // the reveal order allows reproducing them.
        let mut s = OnlineSession::new(Nn::default(), 1);
        let mut renumber: std::collections::HashMap<NodeId, NodeId> = Default::default();
        let mut ok = true;
        for &orig in &t_order {
            let preds: Vec<NodeId> =
                w.computation.dag().predecessors(orig).iter().map(|p| renumber[p]).collect();
            let want = w.phi.get(Location::new(0), orig);
            let want_mapped = want.map(|x| renumber.get(&x).copied().unwrap_or(x));
            let new_id = NodeId::new(s.computation().node_count());
            let res = s.reveal_choose(&preds, w.computation.op(orig), |cands| {
                cands
                    .iter()
                    .position(|p| p.get(Location::new(0), new_id) == want_mapped)
                    .unwrap_or(0)
            });
            if res.is_err() {
                ok = false;
                break;
            }
            renumber.insert(orig, new_id);
        }
        if ok {
            total_orders += 1;
            if s.reveal(
                &[renumber[&NodeId::new(2)], renumber[&NodeId::new(3)]],
                Op::Read(Location::new(0)),
            )
            .is_err()
            {
                orders_jammed += 1;
            }
        }
    }
    println!();
    println!(
        "Figure-4 crossing committed under {total_orders} reveal orders: the final \
         read jammed in {orders_jammed}/{total_orders} — reveal order cannot undo a \
         committed crossing."
    );
    assert_eq!(orders_jammed, total_orders);
}
