//! E16 — the determinacy guarantee: race-free programs get serial
//! semantics under dag-consistent memory.
//!
//! This is the promise the Cilk memory-model line of work was built on,
//! and the practical payoff of the paper's theory: if a program has no
//! determinacy races, *every* observer function any dag-consistent memory
//! can produce gives each read its unique serial value — so BACKER (LC)
//! runs are reproducible. Three layers:
//!
//! 1. race detection on every workload (all race-free);
//! 2. exhaustive check on small programs: every NN observer gives the
//!    determinate read values;
//! 3. end-to-end: hundreds of randomized BACKER runs reproduce the serial
//!    read results exactly; a deliberately racy program does not.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_determinacy`

use ccmm_backer::{sim, BackerConfig, Schedule};
use ccmm_bench::{mark, Table};
use ccmm_cilk::race;
use ccmm_core::{Computation, Op};
use ccmm_dag::NodeId;
use rand::{Rng, SeedableRng};

fn read_results(c: &Computation, phi: &ccmm_core::ObserverFunction) -> Vec<Option<NodeId>> {
    c.nodes()
        .filter_map(|u| match c.op(u) {
            Op::Read(l) => Some(phi.get(l, u)),
            _ => None,
        })
        .collect()
}

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1996);
    let workloads: Vec<(&str, Computation)> = vec![
        ("fib(9)", ccmm_cilk::fib(9).computation),
        ("matmul(4)", ccmm_cilk::matmul(4).computation),
        ("stencil(10,4)", ccmm_cilk::stencil(10, 4).computation),
        ("reduce(32)", ccmm_cilk::reduce(32).computation),
        ("mergesort(24)", ccmm_cilk::mergesort(24).computation),
    ];

    println!("== determinacy of race-free workloads under BACKER (LC) ==\n");
    let runs = 60;
    let mut t =
        Table::new(["workload", "reads", "race-free", "runs", "deterministic", "matches serial"]);
    for (name, c) in &workloads {
        let rf = race::is_race_free(c);
        assert!(rf, "{name} must be race-free");
        let expected =
            read_results(c, &sim::run(c, &Schedule::serial(c), &BackerConfig::default()).observer);
        let mut all_same = true;
        for _ in 0..runs {
            let p = 1 + (rng.gen::<u8>() as usize % 8);
            let s = Schedule::work_stealing(c, p, &mut rng);
            let cap = 1 + (rng.gen::<u8>() as usize % 32);
            let r = sim::run(c, &s, &BackerConfig::with_processors(p).cache_capacity(cap));
            if read_results(c, &r.observer) != expected {
                all_same = false;
            }
        }
        t.row([
            name.to_string(),
            expected.len().to_string(),
            mark(rf).to_string(),
            runs.to_string(),
            mark(all_same).to_string(),
            mark(all_same).to_string(),
        ]);
        assert!(all_same, "{name}: nondeterministic read under BACKER");
    }
    println!("{}", t.render());
    println!("every read of every run returned the serial value, across");
    println!("random processor counts (1–8) and cache capacities (1–32).\n");

    println!("== the racy control ==\n");
    // Two unsynchronized writers then a read: the read's winner varies.
    let racy = ccmm_cilk::build_program(|b, s| {
        let l = ccmm_core::Location::new(0);
        b.spawn(s, |b, t| {
            b.write(t, l);
        });
        b.spawn(s, |b, t| {
            b.write(t, l);
        });
        b.sync(s);
        b.read(s, l);
    });
    let races = race::find_races(&racy);
    println!("races found: {}", races.len());
    let mut outcomes = std::collections::BTreeSet::new();
    for _ in 0..100 {
        let s = Schedule::random(&racy, 2, &mut rng);
        let r = sim::run(&racy, &s, &BackerConfig::with_processors(2));
        outcomes.insert(read_results(&racy, &r.observer));
    }
    println!("distinct read outcomes over 100 runs: {}", outcomes.len());
    assert!(races.len() == 1 && outcomes.len() > 1);
    println!("\nrace-free ⇔ reproducible: the detector and the executions agree.");
}
