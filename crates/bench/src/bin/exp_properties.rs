//! E5 — Theorem 19 and the abstract model properties.
//!
//! Machine-checks, over an exhaustive universe, that every model is
//! complete and monotonic, and that SC and LC (and WW) are constructible
//! while NN, NW, WN are not — Theorem 19 plus Figure 1's annotations.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_properties`

use ccmm_bench::{mark, Table};
use ccmm_core::props::{check_complete, check_constructible_aug, check_monotonic};
use ccmm_core::universe::Universe;
use ccmm_core::Model;

fn main() {
    // Completeness and monotonicity at a 4-node bound; constructibility
    // at a 5-node bound (its smallest counterexamples have 4-node
    // prefixes).
    let u4 = Universe::new(4, 1);
    let u5 = Universe::new(5, 1);
    println!("universes: ≤4 nodes (complete/monotonic), ≤5 nodes (constructible), 1 location\n");

    let mut t = Table::new(["model", "complete", "monotonic", "constructible", "paper"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww, Model::Any] {
        let complete = check_complete(&m, &u4).is_ok();
        let monotonic = check_monotonic(&m, &u4).is_ok();
        let constructible = check_constructible_aug(&m, &u5).is_ok();
        let paper = m.paper_says_constructible();
        t.row([
            m.name().to_string(),
            mark(complete).to_string(),
            mark(monotonic).to_string(),
            mark(constructible).to_string(),
            format!("constructible: {}", mark(paper)),
        ]);
        assert!(complete, "{m} must be complete (all models ⊇ some W_T)");
        assert!(monotonic, "{m} must be monotonic");
        assert_eq!(constructible, paper, "{m} constructibility vs paper");
    }
    println!("{}", t.render());

    // Also check with two locations at a smaller bound — the properties
    // are not single-location artifacts.
    let u32 = Universe::new(3, 2);
    println!("cross-check at ≤3 nodes, 2 locations:");
    let mut t2 = Table::new(["model", "complete", "monotonic", "constructible(≤3)"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Ww] {
        t2.row([
            m.name().to_string(),
            mark(check_complete(&m, &u32).is_ok()).to_string(),
            mark(check_monotonic(&m, &u32).is_ok()).to_string(),
            mark(check_constructible_aug(&m, &u32).is_ok()).to_string(),
        ]);
    }
    println!("{}", t2.render());
    println!("(NN's smallest nonconstructibility witnesses need 4-node");
    println!("prefixes, so the 3-node scan correctly reports no failure.)");

    println!("\nTheorem 19 (SC, LC monotonic and constructible) reproduced;");
    println!("completeness and monotonicity hold for all six models.");
}
