//! E5 — Theorem 19 and the abstract model properties.
//!
//! Machine-checks, over an exhaustive universe, that every model is
//! complete and monotonic, and that SC and LC (and WW) are constructible
//! while NN, NW, WN are not — Theorem 19 plus Figure 1's annotations.
//!
//! All three property checkers run on the parallel sweep engine
//! (`CCMM_THREADS` threads); witnesses are the serial scan's witnesses,
//! and the timing lands in `BENCH_sweep.json`.
//!
//! Run: `cargo run --release -p ccmm-bench --bin exp_properties`

use ccmm_bench::report::{self, SweepRecord};
use ccmm_bench::{mark, Table};
use ccmm_core::sweep::{
    check_complete_par, check_constructible_aug_par, check_monotonic_par, SweepConfig,
};
use ccmm_core::universe::Universe;
use ccmm_core::Model;

fn main() {
    // Completeness and monotonicity at a 4-node bound; constructibility
    // at a 5-node bound (its smallest counterexamples have 4-node
    // prefixes).
    let u4 = Universe::new(4, 1);
    let u5 = Universe::new(5, 1);
    let cfg = SweepConfig::from_env();
    println!(
        "universes: ≤4 nodes (complete/monotonic), ≤5 nodes (constructible), 1 location; \
         {} sweep threads\n",
        cfg.threads
    );

    let t0 = std::time::Instant::now();
    let mut t = Table::new(["model", "complete", "monotonic", "constructible", "paper"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww, Model::Any] {
        let complete = check_complete_par(&m, &u4, &cfg).is_ok();
        let monotonic = check_monotonic_par(&m, &u4, &cfg).is_ok();
        let constructible = check_constructible_aug_par(&m, &u5, &cfg).is_ok();
        let paper = m.paper_says_constructible();
        t.row([
            m.name().to_string(),
            mark(complete).to_string(),
            mark(monotonic).to_string(),
            mark(constructible).to_string(),
            format!("constructible: {}", mark(paper)),
        ]);
        assert!(complete, "{m} must be complete (all models ⊇ some W_T)");
        assert!(monotonic, "{m} must be monotonic");
        assert_eq!(constructible, paper, "{m} constructibility vs paper");
    }
    let wall = t0.elapsed();
    println!("{}", t.render());
    println!("all property sweeps finished in {wall:?}\n");

    // Also check with two locations at a smaller bound — the properties
    // are not single-location artifacts.
    let u32 = Universe::new(3, 2);
    println!("cross-check at ≤3 nodes, 2 locations:");
    let mut t2 = Table::new(["model", "complete", "monotonic", "constructible(≤3)"]);
    for m in [Model::Sc, Model::Lc, Model::Nn, Model::Ww] {
        t2.row([
            m.name().to_string(),
            mark(check_complete_par(&m, &u32, &cfg).is_ok()).to_string(),
            mark(check_monotonic_par(&m, &u32, &cfg).is_ok()).to_string(),
            mark(check_constructible_aug_par(&m, &u32, &cfg).is_ok()).to_string(),
        ]);
    }
    println!("{}", t2.render());

    let record = SweepRecord::new(
        "exp_properties/theorem19",
        if cfg.threads > 1 { "parallel" } else { "serial" },
        &u5,
        cfg.threads,
        wall,
        report::universe_pairs(&u4) + report::universe_pairs(&u5),
        0,
    );
    match report::emit(std::slice::from_ref(&record)) {
        Ok(path) => println!("sweep timing appended to {path}"),
        Err(e) => eprintln!("could not write sweep timing: {e}"),
    }
    println!("(NN's smallest nonconstructibility witnesses need 4-node");
    println!("prefixes, so the 3-node scan correctly reports no failure.)");

    println!("\nTheorem 19 (SC, LC monotonic and constructible) reproduced;");
    println!("completeness and monotonicity hold for all six models.");
}
