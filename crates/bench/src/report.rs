//! Machine-readable sweep timings: `BENCH_sweep.json`.
//!
//! Each experiment binary that drives the parallel sweep engine appends
//! one [`SweepRecord`] per measured phase to a JSON array on disk, so
//! speedups can be tracked across runs and machines without scraping
//! stdout. The file path defaults to `BENCH_sweep.json` in the working
//! directory and can be overridden with the `CCMM_BENCH_JSON` environment
//! variable.

use ccmm_core::universe::Universe;
use std::time::Duration;

/// One timed sweep: which experiment, over which universe, with how many
/// threads, and how fast.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// Experiment identifier (e.g. `"exp_fig1/lattice"`).
    pub experiment: String,
    /// Engine variant (`"serial"`, `"parallel"`, `"worklist"`, …).
    pub engine: String,
    /// Universe node bound.
    pub max_nodes: u64,
    /// Universe location-alphabet size.
    pub num_locations: u64,
    /// Computations in the swept universe (closed form).
    pub universe_computations: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Wall-clock time in milliseconds.
    pub wall_ms: f64,
    /// (computation, observer) pairs examined.
    pub pairs_checked: u64,
    /// Pairs per second of wall time (0 when `wall_ms` is 0).
    pub pairs_per_sec: f64,
    /// Fixpoint passes/rounds until convergence; 0 for non-fixpoint
    /// sweeps.
    pub fixpoint_passes: u64,
    /// Supervisor outcome: `"complete"`, `"degraded"` (quarantined
    /// panics), or `"partial"` (deadline hit). Records predating this
    /// field deserialize as `"complete"`.
    pub status: String,
    /// Telemetry counters for the phase this record times
    /// (`name → value`, in [`ccmm_core::telemetry::Counter::ALL`] order),
    /// embedded when the sweep ran with telemetry on. Empty when
    /// telemetry was off; records predating this field deserialize as
    /// empty. Serialized as a JSON object and omitted when empty.
    pub counters: Vec<(String, u64)>,
}

// Hand-rolled (not `impl_serde_struct!`) because the macro errors on
// missing fields, and committed baselines predate `status`: absent ⇒
// `"complete"`.
impl serde::Serialize for SweepRecord {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut fields = vec![
            ("experiment".into(), serde::to_value(&self.experiment)),
            ("engine".into(), serde::to_value(&self.engine)),
            ("max_nodes".into(), serde::to_value(&self.max_nodes)),
            ("num_locations".into(), serde::to_value(&self.num_locations)),
            ("universe_computations".into(), serde::to_value(&self.universe_computations)),
            ("threads".into(), serde::to_value(&self.threads)),
            ("wall_ms".into(), serde::to_value(&self.wall_ms)),
            ("pairs_checked".into(), serde::to_value(&self.pairs_checked)),
            ("pairs_per_sec".into(), serde::to_value(&self.pairs_per_sec)),
            ("fixpoint_passes".into(), serde::to_value(&self.fixpoint_passes)),
            ("status".into(), serde::to_value(&self.status)),
        ];
        if !self.counters.is_empty() {
            let entries =
                self.counters.iter().map(|(k, v)| (k.clone(), serde::to_value(v))).collect();
            fields.push(("counters".into(), serde::Value::Map(entries)));
        }
        s.serialize_value(serde::Value::Map(fields))
    }
}

impl<'de> serde::Deserialize<'de> for SweepRecord {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = serde::Deserializer::take_value(d)?;
        let mut map = match v {
            serde::Value::Map(m) => m,
            other => {
                return Err(<D::Error as serde::de::Error>::custom(format_args!(
                    "expected object, found {other:?}"
                )))
            }
        };
        let status = if map.iter().any(|(k, _)| k == "status") {
            serde::de::take_field(&mut map, "status")?
        } else {
            "complete".to_string()
        };
        // Optional like `status`: telemetry-off runs and committed
        // baselines predating the field carry no counters object.
        let counters = match map.iter().position(|(k, _)| k == "counters") {
            Some(i) => match map.remove(i).1 {
                serde::Value::Map(entries) => entries
                    .into_iter()
                    .map(|(k, v)| serde::from_value::<u64, D::Error>(v).map(|n| (k, n)))
                    .collect::<Result<Vec<_>, _>>()?,
                other => {
                    return Err(<D::Error as serde::de::Error>::custom(format_args!(
                        "counters: expected object, found {other:?}"
                    )))
                }
            },
            None => Vec::new(),
        };
        Ok(SweepRecord {
            experiment: serde::de::take_field(&mut map, "experiment")?,
            engine: serde::de::take_field(&mut map, "engine")?,
            max_nodes: serde::de::take_field(&mut map, "max_nodes")?,
            num_locations: serde::de::take_field(&mut map, "num_locations")?,
            universe_computations: serde::de::take_field(&mut map, "universe_computations")?,
            threads: serde::de::take_field(&mut map, "threads")?,
            wall_ms: serde::de::take_field(&mut map, "wall_ms")?,
            pairs_checked: serde::de::take_field(&mut map, "pairs_checked")?,
            pairs_per_sec: serde::de::take_field(&mut map, "pairs_per_sec")?,
            fixpoint_passes: serde::de::take_field(&mut map, "fixpoint_passes")?,
            status,
            counters,
        })
    }
}

impl SweepRecord {
    /// Builds a record from a measured sweep, deriving the throughput and
    /// universe-size fields.
    pub fn new(
        experiment: impl Into<String>,
        engine: impl Into<String>,
        u: &Universe,
        threads: usize,
        wall: Duration,
        pairs_checked: u64,
        fixpoint_passes: usize,
    ) -> Self {
        let wall_ms = wall.as_secs_f64() * 1e3;
        let pairs_per_sec =
            if wall_ms > 0.0 { pairs_checked as f64 / wall.as_secs_f64() } else { 0.0 };
        SweepRecord {
            experiment: experiment.into(),
            engine: engine.into(),
            max_nodes: u.max_nodes as u64,
            num_locations: u.num_locations as u64,
            universe_computations: u.count_computations_closed().min(u64::MAX as u128) as u64,
            threads: threads as u64,
            wall_ms,
            pairs_checked,
            pairs_per_sec,
            fixpoint_passes: fixpoint_passes as u64,
            status: "complete".to_string(),
            counters: Vec::new(),
        }
    }

    /// Tags the record with a supervisor outcome (builder style).
    pub fn with_status(mut self, status: impl Into<String>) -> Self {
        self.status = status.into();
        self
    }

    /// Embeds a telemetry counter snapshot (builder style).
    pub fn with_counters(mut self, counters: Vec<(String, u64)>) -> Self {
        self.counters = counters;
        self
    }
}

/// The output path: `CCMM_BENCH_JSON` or `BENCH_sweep.json`.
pub fn bench_json_path() -> String {
    std::env::var("CCMM_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_string())
}

/// Appends `records` to the JSON array at [`bench_json_path`], creating
/// the file if needed (a malformed existing file is overwritten rather
/// than poisoning every future run). Returns the path written.
pub fn emit(records: &[SweepRecord]) -> std::io::Result<String> {
    let path = bench_json_path();
    let mut arr: Vec<serde::Value> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde::Value>(&s).ok())
        .and_then(|v| match v {
            serde::Value::Seq(items) => Some(items),
            _ => None,
        })
        .unwrap_or_default();
    arr.extend(records.iter().map(serde::to_value));
    let text = serde_json::to_string_pretty(&serde::Value::Seq(arr))
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, text)?;
    Ok(path)
}

/// The most recent **complete** record at [`bench_json_path`] matching
/// the given experiment, engine, universe shape, and thread count — the
/// committed baseline a perf gate compares a fresh measurement against.
/// Degraded or partial records never serve as baselines (their timings
/// cover an unknown fraction of the work), and a measurement is only
/// comparable to a baseline taken at the same parallelism — a 4-thread
/// run gated against a 1-thread baseline would pass on scaling alone.
/// `None` when the file is missing, malformed, or has no matching
/// complete record.
pub fn latest_matching(
    experiment: &str,
    engine: &str,
    u: &Universe,
    threads: usize,
) -> Option<SweepRecord> {
    latest_matching_shape(
        experiment,
        engine,
        u.max_nodes as u64,
        u.num_locations as u64,
        threads as u64,
    )
}

/// Like [`latest_matching`] but keyed on an explicit shape instead of a
/// [`Universe`] — for streaming experiments whose workload is a single
/// harvested trace (`max_nodes` = trace length) rather than a swept
/// universe.
pub fn latest_matching_shape(
    experiment: &str,
    engine: &str,
    max_nodes: u64,
    num_locations: u64,
    threads: u64,
) -> Option<SweepRecord> {
    let text = std::fs::read_to_string(bench_json_path()).ok()?;
    let serde::Value::Seq(items) = serde_json::from_str::<serde::Value>(&text).ok()? else {
        return None;
    };
    items
        .into_iter()
        .rev()
        .filter_map(|v| serde::from_value::<SweepRecord, serde_json::Error>(v).ok())
        .find(|r| {
            r.status == "complete"
                && r.experiment == experiment
                && r.engine == engine
                && r.max_nodes == max_nodes
                && r.num_locations == num_locations
                && r.threads == threads
        })
}

/// The number of (computation, observer) pairs in the universe — the
/// size of the space a full sweep examines. Enumerates computations but
/// counts observers in closed form per computation.
pub fn universe_pairs(u: &Universe) -> u64 {
    let mut total: u128 = 0;
    let _ = u.for_each_computation(|c| {
        total += ccmm_core::enumerate::count_observers(c);
        std::ops::ControlFlow::Continue(())
    });
    total.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_derives_throughput() {
        let u = Universe::new(3, 1);
        let r = SweepRecord::new("test", "serial", &u, 2, Duration::from_millis(500), 1000, 3);
        assert_eq!(r.universe_computations, 211);
        assert_eq!(r.threads, 2);
        assert!((r.wall_ms - 500.0).abs() < 1e-9);
        assert!((r.pairs_per_sec - 2000.0).abs() < 1e-6);
        assert_eq!(r.fixpoint_passes, 3);
    }

    #[test]
    fn record_round_trips_through_json() {
        let u = Universe::new(2, 1);
        let r = SweepRecord::new("rt", "parallel", &u, 4, Duration::from_millis(10), 42, 0);
        let json = serde_json::to_string(&serde::to_value(&r)).expect("serialize");
        let back: SweepRecord = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn emit_appends_to_an_array() {
        let dir = std::env::temp_dir().join("ccmm_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_file(&path);
        // Scope the env override to this test via an explicit path.
        std::env::set_var("CCMM_BENCH_JSON", &path);
        let u = Universe::new(2, 1);
        let r1 = SweepRecord::new("a", "serial", &u, 1, Duration::from_millis(1), 1, 0);
        let r2 = SweepRecord::new("b", "parallel", &u, 8, Duration::from_millis(2), 2, 1);
        emit(std::slice::from_ref(&r1)).unwrap();
        emit(std::slice::from_ref(&r2)).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        let serde::Value::Seq(items) = v else { panic!("not an array") };
        assert_eq!(items.len(), 2);
        let back: SweepRecord =
            serde::from_value::<_, serde_json::Error>(items[1].clone()).unwrap();
        assert_eq!(back, r2);
        // Baseline lookup: most recent record matching experiment/engine/
        // universe shape, scoped to the same env override.
        let r3 = SweepRecord::new("a", "serial", &u, 2, Duration::from_millis(4), 8, 0);
        emit(std::slice::from_ref(&r3)).unwrap();
        assert_eq!(latest_matching("a", "serial", &u, 2), Some(r3), "latest wins");
        assert_eq!(latest_matching("b", "parallel", &u, 8), Some(r2));
        assert_eq!(latest_matching("a", "parallel", &u, 2), None, "engine must match");
        assert_eq!(
            latest_matching("a", "serial", &Universe::new(3, 1), 2),
            None,
            "shape must match"
        );
        assert_eq!(latest_matching("a", "serial", &u, 4), None, "thread count must match");
        std::env::set_var("CCMM_BENCH_JSON", dir.join("no_such_file.json"));
        assert_eq!(latest_matching("a", "serial", &u, 2), None, "missing file is no baseline");
        std::env::remove_var("CCMM_BENCH_JSON");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn status_defaults_to_complete_for_old_records() {
        // A committed baseline written before the `status` field existed.
        let legacy = r#"{
            "experiment": "old", "engine": "parallel", "max_nodes": 4,
            "num_locations": 1, "universe_computations": 9, "threads": 2,
            "wall_ms": 1.0, "pairs_checked": 10, "pairs_per_sec": 10000.0,
            "fixpoint_passes": 0
        }"#;
        let r: SweepRecord = serde_json::from_str(legacy).expect("legacy record parses");
        assert_eq!(r.status, "complete");
        // And a tagged record round-trips with its status intact.
        let u = Universe::new(2, 1);
        let r = SweepRecord::new("rt", "parallel", &u, 4, Duration::from_millis(10), 42, 0)
            .with_status("degraded");
        let json = serde_json::to_string(&serde::to_value(&r)).expect("serialize");
        let back: SweepRecord = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.status, "degraded");
        assert_eq!(back, r);
    }

    #[test]
    fn counters_default_to_empty_and_round_trip() {
        // Records predating (or written without) telemetry have no
        // `counters` key at all.
        let legacy = r#"{
            "experiment": "old", "engine": "parallel", "max_nodes": 4,
            "num_locations": 1, "universe_computations": 9, "threads": 2,
            "wall_ms": 1.0, "pairs_checked": 10, "pairs_per_sec": 10000.0,
            "fixpoint_passes": 0, "status": "complete"
        }"#;
        let r: SweepRecord = serde_json::from_str(legacy).expect("counter-less record parses");
        assert!(r.counters.is_empty());
        let json = serde_json::to_string(&serde::to_value(&r)).expect("serialize");
        assert!(!json.contains("counters"), "empty counters are omitted: {json}");
        // A counter-tagged record round-trips with names and values intact.
        let u = Universe::new(2, 1);
        let r = SweepRecord::new("ct", "parallel", &u, 2, Duration::from_millis(5), 7, 0)
            .with_counters(vec![("pairs_checked".into(), 7), ("sc_memo_hits".into(), 3)]);
        let json = serde_json::to_string(&serde::to_value(&r)).expect("serialize");
        let back: SweepRecord = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn lane_and_scalar_baselines_never_cross() {
        // The lane64 engine is ~an order of magnitude faster than the
        // scalar canonical engine, so `--gate` must only ever compare a
        // run against a baseline recorded by the SAME engine — otherwise
        // the first lane64 run would raise the bar and every later scalar
        // run would falsely fail (and vice versa falsely pass).
        let dir = std::env::temp_dir().join("ccmm_bench_lane_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CCMM_BENCH_JSON", &path);
        let u = Universe::new(2, 1);
        let scalar = SweepRecord::new(
            "cli_sweep/memberships",
            "canonical",
            &u,
            1,
            Duration::from_millis(20),
            1000,
            0,
        );
        let lane = SweepRecord::new(
            "cli_sweep/memberships",
            "lane64",
            &u,
            1,
            Duration::from_millis(2),
            1000,
            0,
        );
        emit(&[scalar.clone(), lane.clone()]).unwrap();
        assert_eq!(
            latest_matching("cli_sweep/memberships", "canonical", &u, 1),
            Some(scalar),
            "scalar gate must see the scalar baseline, not the faster lane record"
        );
        assert_eq!(
            latest_matching("cli_sweep/memberships", "lane64", &u, 1),
            Some(lane),
            "lane gate must see the lane baseline, not the slower scalar record"
        );
        std::env::remove_var("CCMM_BENCH_JSON");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn non_complete_records_are_not_baselines() {
        let dir = std::env::temp_dir().join("ccmm_bench_status_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_sweep.json");
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CCMM_BENCH_JSON", &path);
        let u = Universe::new(2, 1);
        let complete = SweepRecord::new("g", "parallel", &u, 1, Duration::from_millis(3), 6, 0);
        let partial = SweepRecord::new("g", "parallel", &u, 1, Duration::from_millis(1), 2, 0)
            .with_status("partial");
        emit(&[complete.clone(), partial]).unwrap();
        // The newer partial record is skipped; the complete one wins.
        assert_eq!(latest_matching("g", "parallel", &u, 1), Some(complete));
        std::env::remove_var("CCMM_BENCH_JSON");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn universe_pairs_counts_the_swept_space() {
        // 211 computations at (3,1); pairs = Σ observers.
        let u = Universe::new(2, 1);
        let mut expect = 0u64;
        let _ = u.for_each_computation(|c| {
            expect += ccmm_core::enumerate::all_observers(c).len() as u64;
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(universe_pairs(&u), expect);
    }
}
