//! # ccmm-bench — the experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//!
//! | binary            | artifact                                         |
//! |-------------------|--------------------------------------------------|
//! | `exp_fig1`        | Figure 1 — the model lattice (E1, E6, E7)        |
//! | `exp_witnesses`   | Figures 2 and 3 — separating pairs (E2, E3)      |
//! | `exp_fig4`        | Figure 4 — NN nonconstructibility (E4)           |
//! | `exp_properties`  | Theorem 19 — completeness/monotonicity/          |
//! |                   | constructibility of every model (E5)             |
//! | `exp_thm23`       | Theorem 23 — LC = NN* via bounded fixpoint (E8)  |
//! | `exp_backer`      | BACKER maintains LC; faults violate it (E9)      |
//! | `exp_scaling`     | checker and protocol scaling (E10)               |
//!
//! Criterion benchmarks (in `benches/`) time the same machinery.
//! This library crate holds the shared table-formatting helpers.

#![warn(missing_docs)]

pub mod report;

/// A plain-text table that renders aligned for the terminal and as
/// GitHub markdown for EXPERIMENTS.md.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }

    /// Renders with aligned columns for terminal output.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .zip(w)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push_str(&w.iter().map(|&n| "-".repeat(n)).collect::<Vec<_>>().join("  "));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", self.headers.iter().map(|_| "---|").collect::<String>()));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Renders a boolean as a check/cross for experiment tables.
pub fn mark(b: bool) -> &'static str {
    if b {
        "✓"
    } else {
        "✗"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["model", "result"]);
        t.row(["SC", "ok"]).row(["NN-dag", "violated"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].starts_with("SC"));
        // Columns aligned: "result"/"ok"/"violated" start at same offset.
        let col = lines[0].find("result").unwrap();
        assert_eq!(lines[2].find("ok").unwrap(), col);
        assert_eq!(lines[3].find("violated").unwrap(), col);
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n| 1 | 2 |\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        Table::new(["a"]).row(["1", "2"]);
    }

    #[test]
    fn mark_values() {
        assert_eq!(mark(true), "✓");
        assert_eq!(mark(false), "✗");
    }
}
