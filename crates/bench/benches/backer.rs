//! Benchmarks the BACKER simulator and threaded executor (E9/E10):
//! simulation throughput across workloads, processor counts, and cache
//! capacities, plus the LC verification cost of an execution.

use ccmm_backer::{sim, threads, BackerConfig, Schedule};
use ccmm_core::{Computation, Lc, MemoryModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sim_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("backer_sim");
    let workloads: Vec<(&str, Computation)> = vec![
        ("fib10", ccmm_cilk::fib(10).computation),
        ("matmul4", ccmm_cilk::matmul(4).computation),
        ("stencil16x4", ccmm_cilk::stencil(16, 4).computation),
    ];
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    for (name, comp) in &workloads {
        let s = Schedule::work_stealing(comp, 4, &mut rng);
        let cfg = BackerConfig::with_processors(4).cache_capacity(64);
        group.bench_function(BenchmarkId::new("run", name), |b| {
            b.iter(|| black_box(sim::run(comp, &s, &cfg).stats))
        });
    }
    group.finish();
}

fn bench_sim_processors(c: &mut Criterion) {
    let mut group = c.benchmark_group("backer_procs");
    let comp = ccmm_cilk::fib(10).computation;
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    for p in [1usize, 2, 4, 8] {
        let s = Schedule::work_stealing(&comp, p, &mut rng);
        let cfg = BackerConfig::with_processors(p).cache_capacity(64);
        group.bench_with_input(BenchmarkId::new("fib10", p), &p, |b, _| {
            b.iter(|| black_box(sim::run(&comp, &s, &cfg).stats))
        });
    }
    group.finish();
}

fn bench_sim_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("backer_cache");
    let comp = ccmm_cilk::matmul(4).computation;
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let s = Schedule::work_stealing(&comp, 4, &mut rng);
    for cap in [1usize, 8, 64, 1024] {
        let cfg = BackerConfig::with_processors(4).cache_capacity(cap);
        group.bench_with_input(BenchmarkId::new("matmul4", cap), &cap, |b, _| {
            b.iter(|| black_box(sim::run(&comp, &s, &cfg).stats))
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("backer_threads");
    group.sample_size(10);
    let comp = ccmm_cilk::fib(10).computation;
    for p in [1usize, 4] {
        let cfg = BackerConfig::with_processors(p);
        group.bench_with_input(BenchmarkId::new("fib10", p), &p, |b, _| {
            b.iter(|| black_box(threads::run(&comp, &cfg).stats))
        });
    }
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let comp = ccmm_cilk::fib(10).computation;
    let mut rng = rand::rngs::StdRng::seed_from_u64(12);
    let s = Schedule::work_stealing(&comp, 4, &mut rng);
    let r = sim::run(&comp, &s, &BackerConfig::with_processors(4));
    c.bench_function("verify_lc_fib10", |b| b.iter(|| black_box(Lc.contains(&comp, &r.observer))));
}

criterion_group!(
    benches,
    bench_sim_workloads,
    bench_sim_processors,
    bench_sim_cache,
    bench_threads,
    bench_verification
);
criterion_main!(benches);
