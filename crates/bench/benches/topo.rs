//! Benchmarks the dag substrate: reachability construction, topological
//! sorting, enumeration of all sorts, and poset enumeration.

use ccmm_dag::{generate, poset, topo, Dag, Reachability};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn bench_reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("reachability");
    let mut rng = rand::rngs::StdRng::seed_from_u64(20);
    for n in [64usize, 256, 1024] {
        let d = generate::gnp_dag(n, 4.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(Reachability::new(&d).comparable_pairs()))
        });
    }
    group.finish();
}

fn bench_topo(c: &mut Criterion) {
    let mut group = c.benchmark_group("topo");
    let mut rng = rand::rngs::StdRng::seed_from_u64(21);
    let d = generate::gnp_dag(1024, 4.0 / 1024.0, &mut rng);
    group.bench_function("sort_1024", |b| b.iter(|| black_box(topo::topo_sort(&d).len())));
    group.bench_function("random_sort_1024", |b| {
        b.iter(|| black_box(topo::random_topo_sort(&d, &mut rng).len()))
    });
    // All sorts of a 4x2 grid-ish dag (diamond chain).
    let small = Dag::from_edges(
        8,
        &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 6), (5, 6), (6, 7)],
    )
    .unwrap();
    group.bench_function("all_sorts_double_diamond", |b| {
        b.iter(|| black_box(topo::count_topo_sorts(&small)))
    });
    group.finish();
}

fn bench_posets(c: &mut Criterion) {
    let mut group = c.benchmark_group("posets");
    for n in [4usize, 5, 6] {
        group.bench_with_input(BenchmarkId::new("count", n), &n, |b, &n| {
            b.iter(|| black_box(poset::count_posets(n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reachability, bench_topo, bench_posets);
criterion_main!(benches);
