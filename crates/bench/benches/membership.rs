//! Benchmarks the membership checkers (E10): LC's polynomial block
//! contraction, the Q-dag triple scans, and the SC search, across
//! computation sizes.

use ccmm_core::last_writer::last_writer_function;
use ccmm_core::{Computation, Lc, MemoryModel, Nn, Op, Sc, Ww};
use ccmm_dag::topo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn random_computation(n: usize, locs: usize, seed: u64) -> Computation {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dag = ccmm_dag::generate::gnp_dag(n, 2.0 / n as f64, &mut rng);
    let ops: Vec<Op> = (0..n)
        .map(|i| match i % 3 {
            0 => Op::Write(ccmm_core::Location::new(i % locs)),
            1 => Op::Read(ccmm_core::Location::new((i + 1) % locs)),
            _ => Op::Nop,
        })
        .collect();
    Computation::new(dag, ops).unwrap()
}

fn bench_members(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    for n in [16usize, 64, 256] {
        let comp = random_computation(n, 4, 42);
        let phi = last_writer_function(&comp, &topo::topo_sort(comp.dag()));
        group.bench_with_input(BenchmarkId::new("LC", n), &n, |b, _| {
            b.iter(|| black_box(Lc.contains(&comp, &phi)))
        });
        group.bench_with_input(BenchmarkId::new("NN", n), &n, |b, _| {
            b.iter(|| black_box(Nn::default().contains(&comp, &phi)))
        });
        group.bench_with_input(BenchmarkId::new("WW", n), &n, |b, _| {
            b.iter(|| black_box(Ww::default().contains(&comp, &phi)))
        });
        group.bench_with_input(BenchmarkId::new("SC-realizable", n), &n, |b, _| {
            b.iter(|| black_box(Sc.contains(&comp, &phi)))
        });
    }
    group.finish();
}

fn bench_sc_adversarial(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_refutation");
    // Antichain of k writes + read forced to ⊥: unsatisfiable; the solver
    // must refute via memoised search.
    for k in [6usize, 8, 10] {
        let mut ops = vec![Op::Write(ccmm_core::Location::new(0)); k];
        ops.push(Op::Read(ccmm_core::Location::new(0)));
        let edges: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
        let comp = Computation::from_edges(k + 1, &edges, ops);
        let phi = ccmm_core::ObserverFunction::base(&comp);
        group.bench_with_input(BenchmarkId::new("antichain", k), &k, |b, _| {
            b.iter(|| black_box(Sc.contains(&comp, &phi)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_members, bench_sc_adversarial);
criterion_main!(benches);
