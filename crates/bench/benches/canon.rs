//! Benchmarks the symmetry-reduced sweep against the labelled sweep it
//! shadows, and the reusable-scratch checker kernels against the
//! allocate-per-pair path they replace.
//!
//! `canon_sweep` isolates the enumeration win (canonical posets ×
//! location-canonical labellings vs every labelled computation) on the
//! same membership workload; `canon_scratch` isolates the allocation win
//! (one `CheckScratch` reused across every pair vs fresh checker state
//! per call) on a fixed pair set. Both run single-threaded so the ratios
//! are engine ratios, not scheduling artifacts.

use ccmm_core::enumerate::for_each_observer;
use ccmm_core::model::CheckScratch;
use ccmm_core::sweep::{sweep_computations, SweepConfig};
use ccmm_core::universe::Universe;
use ccmm_core::{MemoryModel, Model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::ops::ControlFlow;

const MODELS: [Model; 6] = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

/// Weighted membership counts over the universe — the `ccmm sweep`
/// phase-1 workload.
fn memberships(u: &Universe, cfg: &SweepConfig) -> u64 {
    sweep_computations(
        u,
        cfg,
        || (0u64, CheckScratch::new()),
        |acc, _, c, w| {
            let _ = for_each_observer(c, |phi| {
                for m in &MODELS {
                    acc.0 += w * m.contains_with(c, phi, &mut acc.1) as u64;
                }
                ControlFlow::Continue(())
            });
        },
    )
    .expect_complete("bench memberships sweep")
    .into_iter()
    .map(|(n, _)| n)
    .sum()
}

fn bench_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("canon_sweep");
    group.sample_size(10);
    for (nodes, locs) in [(4usize, 1usize), (4, 2)] {
        let u = Universe::new(nodes, locs);
        let id = format!("{nodes}n{locs}l");
        group.bench_function(BenchmarkId::new("labelled", &id), |b| {
            let cfg = SweepConfig::serial();
            b.iter(|| black_box(memberships(&u, &cfg)))
        });
        group.bench_function(BenchmarkId::new("canonical", &id), |b| {
            let cfg = SweepConfig::serial().canonical(true);
            b.iter(|| black_box(memberships(&u, &cfg)))
        });
    }
    group.finish();
}

fn bench_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("canon_scratch");
    group.sample_size(10);
    let u = Universe::new(4, 1);
    let cfg = SweepConfig::serial();
    group.bench_function("alloc_per_pair", |b| {
        b.iter(|| {
            let n: u64 = sweep_computations(
                &u,
                &cfg,
                || 0u64,
                |acc, _, c, _| {
                    let _ = for_each_observer(c, |phi| {
                        for m in &MODELS {
                            *acc += m.contains(c, phi) as u64;
                        }
                        ControlFlow::Continue(())
                    });
                },
            )
            .expect_complete("bench alloc sweep")
            .into_iter()
            .sum();
            black_box(n)
        })
    });
    group.bench_function("reused_scratch", |b| b.iter(|| black_box(memberships(&u, &cfg))));
    group.finish();
}

criterion_group!(benches, bench_enumeration, bench_scratch);
criterion_main!(benches);
