//! Benchmarks the analysis tooling: post-mortem value-trace checking,
//! dag metrics (Dilworth width), the online game, and race detection.

use ccmm_core::last_writer::last_writer_function;
use ccmm_core::online::greedy_survives;
use ccmm_core::trace::{is_lc_trace, is_sc_trace, ValueTrace};
use ccmm_core::{Computation, Lc, Op};
use ccmm_dag::{metrics, topo};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn traced_workload(n_layers: usize) -> (Computation, ValueTrace) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(60);
    let dag = ccmm_dag::generate::layered_dag(n_layers, 5, 2, &mut rng);
    let n = dag.node_count();
    let ops: Vec<Op> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Op::Write(ccmm_core::Location::new(i % 3))
            } else {
                Op::Read(ccmm_core::Location::new((i + 1) % 3))
            }
        })
        .collect();
    let c = Computation::new(dag, ops).unwrap();
    let phi = last_writer_function(&c, &topo::topo_sort(c.dag()));
    let reads = c
        .nodes()
        .filter_map(|u| match c.op(u) {
            Op::Read(l) => Some((u, phi.get(l, u).map_or(0, |w| w.index() as u64 + 1))),
            _ => None,
        })
        .collect();
    let trace = ValueTrace::with_tokens(&c, reads);
    (c, trace)
}

fn bench_trace_checking(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_checking");
    for layers in [4usize, 8, 12] {
        let (comp, trace) = traced_workload(layers);
        group.bench_with_input(BenchmarkId::new("lc", comp.node_count()), &layers, |b, _| {
            b.iter(|| black_box(is_lc_trace(&comp, &trace)))
        });
        group.bench_with_input(BenchmarkId::new("sc", comp.node_count()), &layers, |b, _| {
            b.iter(|| black_box(is_sc_trace(&comp, &trace)))
        });
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_metrics");
    let mut rng = rand::rngs::StdRng::seed_from_u64(61);
    for n in [32usize, 128, 512] {
        let d = ccmm_dag::generate::gnp_dag(n, 3.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::new("width", n), &n, |b, _| {
            b.iter(|| black_box(metrics::width(&d)))
        });
        group.bench_with_input(BenchmarkId::new("height", n), &n, |b, _| {
            b.iter(|| black_box(metrics::height(&d)))
        });
    }
    group.finish();
}

fn bench_online_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_game");
    group.sample_size(20);
    let mut rng = rand::rngs::StdRng::seed_from_u64(62);
    let dag = ccmm_dag::generate::gnp_dag(10, 0.3, &mut rng);
    let ops: Vec<Op> = (0..10)
        .map(|i| {
            if i < 4 {
                Op::Write(ccmm_core::Location::new(0))
            } else {
                Op::Read(ccmm_core::Location::new(0))
            }
        })
        .collect();
    let comp = Computation::new(dag, ops).unwrap();
    group.bench_function("greedy_lc_replay_10", |b| {
        b.iter(|| black_box(greedy_survives(Lc, &comp, 0)))
    });
    group.finish();
}

fn bench_race_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("race_detection");
    for n in [8usize, 10, 12] {
        let comp = ccmm_cilk::fib(n as u32).computation;
        group.bench_with_input(BenchmarkId::new("fib", comp.node_count()), &n, |b, _| {
            b.iter(|| black_box(ccmm_cilk::race::is_race_free(&comp)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_trace_checking,
    bench_metrics,
    bench_online_game,
    bench_race_detection
);
criterion_main!(benches);
