//! Benchmarks the SC membership solver in isolation: realizable instances
//! (positive), corrupted instances (fast negative), and antichain
//! refutations (worst case, memoised).

use ccmm_core::last_writer::last_writer_function;
use ccmm_core::{Computation, MemoryModel, ObserverFunction, Op, Sc};
use ccmm_dag::topo;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;

fn layered(n_layers: usize, width: usize, seed: u64) -> Computation {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dag = ccmm_dag::generate::layered_dag(n_layers, width, 2, &mut rng);
    let n = dag.node_count();
    let ops: Vec<Op> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                Op::Write(ccmm_core::Location::new(i % 3))
            } else {
                Op::Read(ccmm_core::Location::new((i + 1) % 3))
            }
        })
        .collect();
    Computation::new(dag, ops).unwrap()
}

fn bench_positive(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_positive");
    for layers in [4usize, 8, 16] {
        let comp = layered(layers, 4, 30);
        let phi = last_writer_function(&comp, &topo::topo_sort(comp.dag()));
        group.bench_with_input(BenchmarkId::new("layered", comp.node_count()), &layers, |b, _| {
            b.iter(|| black_box(Sc.contains(&comp, &phi)))
        });
    }
    group.finish();
}

fn bench_negative(c: &mut Criterion) {
    let mut group = c.benchmark_group("sc_negative");
    group.sample_size(20);
    for k in [6usize, 8, 10, 12] {
        let mut ops = vec![Op::Write(ccmm_core::Location::new(0)); k];
        ops.push(Op::Read(ccmm_core::Location::new(0)));
        let edges: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
        let comp = Computation::from_edges(k + 1, &edges, ops);
        let phi = ObserverFunction::base(&comp);
        group.bench_with_input(BenchmarkId::new("antichain", k), &k, |b, _| {
            b.iter(|| black_box(Sc.contains(&comp, &phi)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_positive, bench_negative);
criterion_main!(benches);
