//! Benchmarks the parallel sweep engine against the serial scans it
//! replaces, and the worklist Δ* fixpoint against the naïve re-scan
//! fixpoint.
//!
//! On a multi-core box the `compare` group shows the sweep speedup
//! (thread count via `CCMM_THREADS`, default = available parallelism);
//! on one core the parallel engine degenerates to the serial inline
//! path, so the interesting row is `fixpoint`: worklist vs naïve.

use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::relation::compare;
use ccmm_core::sweep::{compare_par, SweepConfig};
use ccmm_core::universe::Universe;
use ccmm_core::{Lc, Nn};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_compare");
    group.sample_size(10);
    let u = Universe::new(4, 1);
    group.bench_function(BenchmarkId::new("serial", 4), |b| {
        b.iter(|| black_box(compare(&Lc, &Nn::default(), &u).pairs_checked))
    });
    let cfg = SweepConfig::from_env();
    group.bench_function(BenchmarkId::new(format!("parallel_t{}", cfg.threads), 4), |b| {
        b.iter(|| black_box(compare_par(&Lc, &Nn::default(), &u, &cfg).pairs_checked))
    });
    group.finish();
}

fn bench_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_fixpoint");
    group.sample_size(10);
    for n in [4usize, 5] {
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, &n| {
            let u = Universe::new(n, 1);
            b.iter(|| black_box(BoundedConstructible::compute(&Nn::default(), &u).total_pairs()))
        });
        group.bench_with_input(BenchmarkId::new("worklist", n), &n, |b, &n| {
            let u = Universe::new(n, 1);
            let cfg = SweepConfig::from_env();
            b.iter(|| {
                black_box(
                    BoundedConstructible::compute_worklist(&Nn::default(), &u, &cfg).total_pairs(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compare, bench_fixpoint);
criterion_main!(benches);
