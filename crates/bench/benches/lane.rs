//! Benchmarks the bit-parallel lane engine against the scalar-scratch
//! membership path it accelerates: the same six-model weighted
//! membership workload, decided one `(C, Φ)` pair at a time
//! (`contains_with` + reused `CheckScratch`) vs 64 observers per `u64`
//! lane word (`contains_lanes` + `LanePack`). Both run single-threaded
//! over the canonical enumeration so the ratio is a kernel ratio, not a
//! scheduling artifact — this is the reproducible form of the ≥4×
//! speedup claim behind `ccmm sweep --engine lane64`.

use ccmm_core::constructible::lanes::LaneConstructible;
use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::enumerate::for_each_observer;
use ccmm_core::model::{CheckScratch, LanePack, LaneScratch, Nn};
use ccmm_core::sweep::{sweep_computations, SweepConfig};
use ccmm_core::universe::Universe;
use ccmm_core::{MemoryModel, Model};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::ops::ControlFlow;

const MODELS: [Model; 6] = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

/// The `ccmm sweep` phase-1 workload on the scalar-scratch path.
fn memberships_scalar(u: &Universe, cfg: &SweepConfig) -> u64 {
    sweep_computations(
        u,
        cfg,
        || (0u64, CheckScratch::new()),
        |acc, _, c, w| {
            let _ = for_each_observer(c, |phi| {
                for m in &MODELS {
                    acc.0 += w * m.contains_with(c, phi, &mut acc.1) as u64;
                }
                ControlFlow::Continue(())
            });
        },
    )
    .expect_complete("bench scalar memberships")
    .into_iter()
    .map(|(n, _)| n)
    .sum()
}

/// The same workload through the lane engine: observers packed 64 per
/// word in enumeration order, verdict masks popcounted against weights.
fn memberships_lanes(u: &Universe, cfg: &SweepConfig) -> u64 {
    sweep_computations(
        u,
        cfg,
        || (0u64, LanePack::new(), LaneScratch::new()),
        |acc, _, c, w| {
            let (total, pack, lanes) = acc;
            pack.prepare(c);
            let mut flush = |pack: &mut LanePack, lanes: &mut LaneScratch| {
                let used = pack.used();
                for m in &MODELS {
                    let verdict = m.contains_lanes(c, pack, lanes) & used;
                    *total += w * u64::from(verdict.count_ones());
                }
                pack.clear_lanes();
            };
            let _ = for_each_observer(c, |phi| {
                pack.push_valid(c, phi);
                if pack.is_full() {
                    flush(pack, lanes);
                }
                ControlFlow::Continue(())
            });
            if !pack.is_empty() {
                flush(pack, lanes);
            }
        },
    )
    .expect_complete("bench lane memberships")
    .into_iter()
    .map(|(n, _, _)| n)
    .sum()
}

fn bench_lane_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_engine");
    group.sample_size(10);
    for (nodes, locs) in [(4usize, 1usize), (4, 2), (5, 1)] {
        let u = Universe::new(nodes, locs);
        let cfg = SweepConfig::serial().canonical(true);
        let id = format!("{nodes}n{locs}l");
        let scalar = memberships_scalar(&u, &cfg);
        let lane = memberships_lanes(&u, &cfg);
        assert_eq!(scalar, lane, "engines disagree at {id}; the ratio would be meaningless");
        group.bench_function(BenchmarkId::new("scalar-scratch", &id), |b| {
            b.iter(|| black_box(memberships_scalar(&u, &cfg)))
        });
        group.bench_function(BenchmarkId::new("lane64", &id), |b| {
            b.iter(|| black_box(memberships_lanes(&u, &cfg)))
        });
    }
    group.finish();
}

/// The `ccmm sweep` phase-3 workload both ways: the scalar Δ* worklist
/// (hash-set survivor sets, one membership check per recheck) vs the
/// lane fixpoint (node-major survivor masks, 64-wide deltas). Both are
/// single-threaded end-to-end — Stage A plus the cascade — so the ratio
/// is the `--engine lane64` fixpoint claim in its reproducible form.
fn bench_lane_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("lane_fixpoint");
    group.sample_size(10);
    for (nodes, locs) in [(4usize, 1usize), (4, 2), (5, 1)] {
        let u = Universe::new(nodes, locs);
        let cfg = SweepConfig::serial();
        let id = format!("{nodes}n{locs}l");
        let scalar = BoundedConstructible::compute_worklist(&Nn::default(), &u, &cfg);
        let lane = LaneConstructible::compute(&Nn::default(), &u, &cfg);
        assert_eq!(
            (scalar.total_pairs(), scalar.deleted),
            (lane.total_pairs(), lane.deleted),
            "engines disagree at {id}; the ratio would be meaningless"
        );
        group.bench_function(BenchmarkId::new("worklist", &id), |b| {
            b.iter(|| {
                black_box(BoundedConstructible::compute_worklist(&Nn::default(), &u, &cfg))
                    .total_pairs()
            })
        });
        group.bench_function(BenchmarkId::new("lane64", &id), |b| {
            b.iter(|| black_box(LaneConstructible::compute(&Nn::default(), &u, &cfg)).total_pairs())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lane_engine, bench_lane_fixpoint);
criterion_main!(benches);
