//! Benchmarks the Figure-1 machinery (E1): universe enumeration, observer
//! enumeration, and a full pairwise model comparison at a small bound.

use ccmm_core::enumerate::{all_observers, count_observers};
use ccmm_core::relation::compare;
use ccmm_core::universe::Universe;
use ccmm_core::{Computation, Model, Op};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe");
    for n in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("count_computations", n), &n, |b, &n| {
            let u = Universe::new(n, 1);
            b.iter(|| black_box(u.count_computations()))
        });
    }
    group.finish();
}

fn bench_observer_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("observers");
    // A write-heavy diamond-of-diamonds: many candidates per slot.
    let comp = Computation::from_edges(
        6,
        &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (3, 5)],
        vec![
            Op::Write(ccmm_core::Location::new(0)),
            Op::Read(ccmm_core::Location::new(0)),
            Op::Write(ccmm_core::Location::new(0)),
            Op::Read(ccmm_core::Location::new(0)),
            Op::Write(ccmm_core::Location::new(0)),
            Op::Read(ccmm_core::Location::new(0)),
        ],
    );
    group.bench_function("all_observers_6node", |b| {
        b.iter(|| black_box(all_observers(&comp).len()))
    });
    group.bench_function("count_observers_6node", |b| b.iter(|| black_box(count_observers(&comp))));
    group.finish();
}

fn bench_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("compare");
    group.sample_size(10);
    let u = Universe::new(3, 1);
    for (a, b_model) in [(Model::Lc, Model::Nn), (Model::Nn, Model::Ww)] {
        group.bench_function(format!("{a}_vs_{b_model}_n3"), |bch| {
            bch.iter(|| black_box(compare(&a, &b_model, &u).relation))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_universe, bench_observer_enumeration, bench_compare);
criterion_main!(benches);
