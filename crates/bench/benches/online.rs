//! Benchmarks the online reveal path: the legacy per-reveal shape
//! (clone-and-extend the computation, copy the observer, enumerate rows
//! allocating) against the incremental `OnlineSession` (in-place `push`,
//! zero-copy enumeration, early exit, memoized incremental membership).
//! The legacy leg is quadratic-and-worse per session; the incremental
//! leg is what `ccmm watch` and long adversary games run on.

use ccmm_core::online::OnlineSession;
use ccmm_core::{props, AnyObserver, Computation, Lc, Location, MemoryModel, Op};
use ccmm_dag::NodeId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// The reveal schedule: a dependency chain with a write every 8th node —
/// the shape a harvested trace prefix feeds the session.
fn op_at(i: usize) -> Op {
    let l = Location::new(0);
    if i.is_multiple_of(8) {
        Op::Write(l)
    } else {
        Op::Read(l)
    }
}

/// Legacy reveal loop: every node clones the computation (`extend`
/// recomputes the closure and write index), copies the committed
/// observer into a fresh extension buffer, and scans rows through the
/// full batch checker.
fn legacy_session(model: impl MemoryModel + Copy, n: usize) -> Computation {
    let mut c = Computation::from_edges(1, &[], vec![op_at(0)]);
    // Commit the root's row over the empty prefix observer.
    let mut phi = {
        let base = ccmm_core::ObserverFunction::bottom(c.num_locations(), 0);
        let mut committed = None;
        props::any_extension(&c, &base, |p| {
            if model.contains(&c, p) {
                committed = Some(p.clone());
                true
            } else {
                false
            }
        });
        committed.expect("a root write always has an admissible row")
    };
    for i in 1..n {
        let ext = c.extend(&[NodeId::new(i - 1)], op_at(i));
        let mut committed = None;
        props::any_extension(&ext, &phi, |p| {
            if model.contains(&ext, p) {
                committed = Some(p.clone());
                true
            } else {
                false
            }
        });
        phi = committed.expect("AnyObserver and LC never jam on a chain");
        c = ext;
    }
    c
}

/// Incremental reveal loop: `OnlineSession::reveal` end to end.
fn incremental_session(model: impl MemoryModel + Copy, n: usize) -> usize {
    let mut game = OnlineSession::new(model, 1);
    game.reveal(&[], op_at(0)).expect("root");
    for i in 1..n {
        game.reveal(&[NodeId::new(i - 1)], op_at(i)).expect("chain reveal");
    }
    game.computation().node_count()
}

fn bench_reveal_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_reveal");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("legacy_any", n), &n, |b, &n| {
            b.iter(|| black_box(legacy_session(AnyObserver, n)))
        });
        group.bench_with_input(BenchmarkId::new("incremental_any", n), &n, |b, &n| {
            b.iter(|| black_box(incremental_session(AnyObserver, n)))
        });
    }
    // LC exercises the real membership checker per reveal; the legacy
    // leg re-runs it from scratch on every clone, so keep n modest.
    for n in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("legacy_lc", n), &n, |b, &n| {
            b.iter(|| black_box(legacy_session(Lc, n)))
        });
        group.bench_with_input(BenchmarkId::new("incremental_lc", n), &n, |b, &n| {
            b.iter(|| black_box(incremental_session(Lc, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reveal_paths);
criterion_main!(benches);
