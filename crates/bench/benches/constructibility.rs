//! Benchmarks the constructibility checkers (E4/E5): the Theorem-12
//! augmentation scan per model at a small bound, and the single-pair
//! extension check on the Figure-4 witness.

use ccmm_core::props::{any_extension, check_constructible_aug};
use ccmm_core::universe::Universe;
use ccmm_core::witness::{figure4_full, figure4_prefix};
use ccmm_core::{MemoryModel, Model, Nn, Op};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_aug_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("constructibility_scan");
    group.sample_size(10);
    let u = Universe::new(3, 1);
    for m in [Model::Lc, Model::Ww, Model::Nn] {
        group.bench_function(format!("aug_scan_{m}_n3"), |b| {
            b.iter(|| black_box(check_constructible_aug(&m, &u).is_ok()))
        });
    }
    group.finish();
}

fn bench_figure4_extension(c: &mut Criterion) {
    let w = figure4_prefix();
    let full = figure4_full(Op::Read(ccmm_core::Location::new(0)));
    c.bench_function("figure4_extension_check", |b| {
        b.iter(|| {
            black_box(any_extension(&full, &w.phi, |phi2| Nn::default().contains(&full, phi2)))
        })
    });
}

criterion_group!(benches, bench_aug_scan, bench_figure4_extension);
criterion_main!(benches);
