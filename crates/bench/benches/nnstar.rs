//! Benchmarks the bounded Δ* fixpoint (E8 / Theorem 23) at small bounds.

use ccmm_core::constructible::BoundedConstructible;
use ccmm_core::universe::Universe;
use ccmm_core::{Lc, Nn};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fixpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("nnstar_fixpoint");
    group.sample_size(10);
    for n in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("NN", n), &n, |b, &n| {
            let u = Universe::new(n, 1);
            b.iter(|| black_box(BoundedConstructible::compute(&Nn::default(), &u).total_pairs()))
        });
        group.bench_with_input(BenchmarkId::new("LC", n), &n, |b, &n| {
            let u = Universe::new(n, 1);
            b.iter(|| black_box(BoundedConstructible::compute(&Lc, &u).total_pairs()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixpoint);
criterion_main!(benches);
