//! The processor-centric bridge.
//!
//! Traditional memory models describe *processors* issuing instruction
//! streams. In the computation-centric theory that situation is just a
//! special shape of computation: each processor contributes a chain
//! (program order), and the chains share no edges — all interaction goes
//! through memory. [`ProcessorProgram`] performs that translation, so
//! classical processor-centric questions ("is this multiprocessor
//! execution sequentially consistent?") become membership queries on the
//! image computation.
//!
//! On chain images, our Definition-17 SC coincides with Lamport's
//! original formulation ("the result … is the same as if the operations
//! of all processors were executed in some sequential order, and the
//! operations of each individual processor appear in this sequence in the
//! order specified by its program"): a topological sort of disjoint
//! chains *is* an interleaving preserving each program order.

use crate::computation::Computation;
use crate::op::Op;
use ccmm_dag::{Dag, NodeId};

/// A processor-centric program: one instruction stream per processor.
#[derive(Clone, Debug, Default)]
pub struct ProcessorProgram {
    /// `threads[p]` = the ops processor `p` issues, in program order.
    pub threads: Vec<Vec<Op>>,
}

impl ProcessorProgram {
    /// A program with no processors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a processor with the given instruction stream; returns `self`
    /// for chaining.
    pub fn thread(mut self, ops: Vec<Op>) -> Self {
        self.threads.push(ops);
        self
    }

    /// Total number of instructions.
    pub fn len(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Unfolds the program into its computation: one chain per processor,
    /// no cross-chain edges. Returns the computation and, per thread, the
    /// node of each instruction.
    pub fn to_computation(&self) -> (Computation, Vec<Vec<NodeId>>) {
        let n = self.len();
        let mut ops = Vec::with_capacity(n);
        let mut edges = Vec::new();
        let mut map = Vec::with_capacity(self.threads.len());
        for stream in &self.threads {
            let mut nodes = Vec::with_capacity(stream.len());
            for (i, &op) in stream.iter().enumerate() {
                let id = ops.len();
                ops.push(op);
                if i > 0 {
                    edges.push((id - 1, id));
                }
                nodes.push(NodeId::new(id));
            }
            map.push(nodes);
        }
        let dag = Dag::from_edges(n, &edges).expect("chains are acyclic");
        let c = Computation::new(dag, ops).expect("one op per node");
        (c, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_observer;
    use crate::model::{Lc, MemoryModel, Sc};
    use crate::observer::ObserverFunction;
    use crate::op::Location;
    use std::ops::ControlFlow;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn translation_shape() {
        let p = ProcessorProgram::new()
            .thread(vec![Op::Write(l(0)), Op::Read(l(1))])
            .thread(vec![Op::Write(l(1)), Op::Read(l(0))]);
        let (c, map) = p.to_computation();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.dag().edge_count(), 2);
        // Program order within a thread, independence across.
        assert!(c.precedes(map[0][0], map[0][1]));
        assert!(c.reach().incomparable(map[0][0], map[1][0]));
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_program() {
        let (c, map) = ProcessorProgram::new().to_computation();
        assert!(c.is_empty());
        assert!(map.is_empty());
    }

    #[test]
    fn lamport_sc_agrees_with_interleaving_semantics() {
        // Brute-force Lamport SC: enumerate interleavings of the threads,
        // replay memory, record read results. Compare against Definition
        // 17 membership of the corresponding observer functions.
        let p = ProcessorProgram::new()
            .thread(vec![Op::Write(l(0)), Op::Read(l(1))])
            .thread(vec![Op::Write(l(1)), Op::Read(l(0))]);
        let (c, _) = p.to_computation();

        // All interleavings = all topological sorts of the chain dag;
        // last-writer functions of those sorts = Lamport-consistent
        // executions. Collect their observer functions.
        let mut lamport: std::collections::HashSet<ObserverFunction> =
            std::collections::HashSet::new();
        for t in ccmm_dag::topo::all_topo_sorts(c.dag()) {
            lamport.insert(crate::last_writer::last_writer_function(&c, &t));
        }
        // Definition-17 SC membership must carve out exactly that set.
        let _ = for_each_observer(&c, |phi| {
            assert_eq!(
                Sc.contains(&c, phi),
                lamport.contains(phi),
                "Definition 17 disagrees with Lamport on {phi:?}"
            );
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn dekker_mutual_exclusion_under_sc_but_not_lc() {
        // The Dekker/SB core: both threads write their flag then read the
        // other's. Under SC at least one read sees a flag set; under LC
        // both may read stale 0 — mutual exclusion breaks.
        let p = ProcessorProgram::new()
            .thread(vec![Op::Write(l(0)), Op::Read(l(1))])
            .thread(vec![Op::Write(l(1)), Op::Read(l(0))]);
        let (c, map) = p.to_computation();
        let r1 = map[0][1];
        let r2 = map[1][1];
        let mut sc_both_zero = false;
        let mut lc_both_zero = false;
        let _ = for_each_observer(&c, |phi| {
            let both_zero = phi.get(l(1), r1).is_none() && phi.get(l(0), r2).is_none();
            if both_zero {
                sc_both_zero |= Sc.contains(&c, phi);
                lc_both_zero |= Lc.contains(&c, phi);
            }
            ControlFlow::Continue(())
        });
        assert!(!sc_both_zero, "SC preserves Dekker");
        assert!(lc_both_zero, "LC alone does not");
    }

    #[test]
    fn single_thread_is_serial_semantics() {
        // One processor: every model collapses to serial memory.
        let p = ProcessorProgram::new().thread(vec![
            Op::Write(l(0)),
            Op::Read(l(0)),
            Op::Write(l(0)),
            Op::Read(l(0)),
        ]);
        let (c, map) = p.to_computation();
        let mut count = 0;
        let _ = for_each_observer(&c, |phi| {
            if crate::model::Ww::default().contains(&c, phi) {
                count += 1;
                // Reads see the most recent program-order write.
                assert_eq!(phi.get(l(0), map[0][1]), Some(map[0][0]));
                assert_eq!(phi.get(l(0), map[0][3]), Some(map[0][2]));
            }
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1, "exactly the serial observer survives even WW");
    }
}
