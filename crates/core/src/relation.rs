//! Deciding the strength relation between models over a universe.
//!
//! "Δ is stronger than Δ′" means Δ ⊆ Δ′ (Definition 4 — the *subset* is
//! stronger, since it allows fewer behaviours). [`compare`] decides the
//! relation between two models restricted to a bounded universe, with
//! separating witnesses; [`lattice`] assembles the full matrix of
//! Figure 1.

use crate::computation::Computation;
use crate::enumerate::for_each_observer;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::universe::Universe;
use std::ops::ControlFlow;

/// How two models relate as sets, restricted to a universe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Relation {
    /// `A = B` on the universe.
    Equal,
    /// `A ⊊ B` (A is strictly stronger).
    StrictlyStronger,
    /// `A ⊋ B` (A is strictly weaker).
    StrictlyWeaker,
    /// Neither contains the other.
    Incomparable,
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Relation::Equal => "=",
            Relation::StrictlyStronger => "⊊",
            Relation::StrictlyWeaker => "⊋",
            Relation::Incomparable => "∥",
        };
        f.write_str(s)
    }
}

/// The outcome of comparing two models over a universe.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// The set relation of A versus B.
    pub relation: Relation,
    /// A pair in `A \ B`, if any.
    pub a_only: Option<(Computation, ObserverFunction)>,
    /// A pair in `B \ A`, if any.
    pub b_only: Option<(Computation, ObserverFunction)>,
    /// Number of pairs in both models.
    pub both: usize,
    /// Number of pairs in A.
    pub a_total: usize,
    /// Number of pairs in B.
    pub b_total: usize,
    /// Number of (computation, observer) pairs examined.
    pub pairs_checked: usize,
}

/// Compares models `a` and `b` over every (computation, observer) pair of
/// the universe.
pub fn compare<A, B>(a: &A, b: &B, u: &Universe) -> Comparison
where
    A: MemoryModel,
    B: MemoryModel,
{
    let mut cmp = Comparison {
        relation: Relation::Equal,
        a_only: None,
        b_only: None,
        both: 0,
        a_total: 0,
        b_total: 0,
        pairs_checked: 0,
    };
    let _ = u.for_each_computation(|c| {
        let _ = for_each_observer(c, |phi| {
            cmp.pairs_checked += 1;
            let in_a = a.contains(c, phi);
            let in_b = b.contains(c, phi);
            if in_a {
                cmp.a_total += 1;
            }
            if in_b {
                cmp.b_total += 1;
            }
            if in_a && in_b {
                cmp.both += 1;
            }
            if in_a && !in_b && cmp.a_only.is_none() {
                cmp.a_only = Some((c.clone(), phi.clone()));
            }
            if in_b && !in_a && cmp.b_only.is_none() {
                cmp.b_only = Some((c.clone(), phi.clone()));
            }
            ControlFlow::Continue(())
        });
        ControlFlow::Continue(())
    });
    cmp.relation = match (&cmp.a_only, &cmp.b_only) {
        (None, None) => Relation::Equal,
        (None, Some(_)) => Relation::StrictlyStronger,
        (Some(_), None) => Relation::StrictlyWeaker,
        (Some(_), Some(_)) => Relation::Incomparable,
    };
    cmp
}

/// Searches the universe for a pair contained in all of `ins` and none of
/// `outs` — the witness-finding engine behind the Figures 2 and 3
/// separations.
pub fn find_pair<M: MemoryModel>(
    ins: &[&M],
    outs: &[&M],
    u: &Universe,
) -> Option<(Computation, ObserverFunction)> {
    let mut found = None;
    let _ = u.for_each_computation(|c| {
        for_each_observer(c, |phi| {
            if ins.iter().all(|m| m.contains(c, phi)) && outs.iter().all(|m| !m.contains(c, phi)) {
                found = Some((c.clone(), phi.clone()));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        })
    });
    found
}

/// Randomized relation evidence at sizes beyond exhaustive reach: sample
/// random computations of exactly `nodes` nodes over `locations`
/// locations with random valid observer functions, and count memberships.
///
/// A returned `a_only`/`b_only` witness is *proof* of non-inclusion;
/// absence of one is only sampling evidence. Complements [`compare`]'s
/// exhaustive verdicts at small bounds.
pub fn compare_sampled<A, B, R>(
    a: &A,
    b: &B,
    nodes: usize,
    locations: usize,
    samples: usize,
    rng: &mut R,
) -> Comparison
where
    A: MemoryModel,
    B: MemoryModel,
    R: rand::Rng + ?Sized,
{
    use crate::op::{Location, Op};
    use ccmm_dag::NodeId;
    let mut cmp = Comparison {
        relation: Relation::Equal,
        a_only: None,
        b_only: None,
        both: 0,
        a_total: 0,
        b_total: 0,
        pairs_checked: 0,
    };
    for _ in 0..samples {
        let dag = ccmm_dag::generate::gnp_dag(nodes, 2.0 / nodes as f64, rng);
        let ops: Vec<Op> = (0..nodes)
            .map(|_| match rng.gen_range(0..3) {
                0 => Op::Nop,
                1 => Op::Read(Location::new(rng.gen_range(0..locations))),
                _ => Op::Write(Location::new(rng.gen_range(0..locations))),
            })
            .collect();
        let c = Computation::new(dag, ops).expect("one op per node");
        // A random valid observer: per free slot, a random candidate.
        let mut phi = ObserverFunction::base(&c);
        for l in c.locations() {
            for u in c.nodes() {
                if c.op(u).is_write_to(l) {
                    continue;
                }
                let mut cands: Vec<Option<NodeId>> = vec![None];
                for &w in c.writes_to(l) {
                    if !c.precedes(u, w) {
                        cands.push(Some(w));
                    }
                }
                phi.set(l, u, cands[rng.gen_range(0..cands.len())]);
            }
        }
        cmp.pairs_checked += 1;
        let in_a = a.contains(&c, &phi);
        let in_b = b.contains(&c, &phi);
        cmp.a_total += in_a as usize;
        cmp.b_total += in_b as usize;
        cmp.both += (in_a && in_b) as usize;
        if in_a && !in_b && cmp.a_only.is_none() {
            cmp.a_only = Some((c.clone(), phi.clone()));
        }
        if in_b && !in_a && cmp.b_only.is_none() {
            cmp.b_only = Some((c, phi));
        }
    }
    cmp.relation = match (&cmp.a_only, &cmp.b_only) {
        (None, None) => Relation::Equal,
        (None, Some(_)) => Relation::StrictlyStronger,
        (Some(_), None) => Relation::StrictlyWeaker,
        (Some(_), Some(_)) => Relation::Incomparable,
    };
    cmp
}

/// One row of the lattice matrix.
#[derive(Clone, Debug)]
pub struct LatticeRow {
    /// Model name of the row.
    pub name: String,
    /// Relation of the row model to each column model.
    pub relations: Vec<Relation>,
}

/// The full pairwise relation matrix of a model list over a universe.
pub fn lattice<M: MemoryModel>(models: &[M], u: &Universe) -> Vec<LatticeRow> {
    models
        .iter()
        .map(|a| LatticeRow {
            name: a.name().to_string(),
            relations: models.iter().map(|b| compare(a, b, u).relation).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AnyObserver, Lc, Model, Sc};

    #[test]
    fn model_equals_itself() {
        let u = Universe::new(3, 1);
        let cmp = compare(&Lc, &Lc, &u);
        assert_eq!(cmp.relation, Relation::Equal);
        assert_eq!(cmp.a_total, cmp.b_total);
        assert!(cmp.pairs_checked > 0);
    }

    #[test]
    fn sc_strictly_stronger_than_any() {
        let u = Universe::new(3, 1);
        let cmp = compare(&Sc, &AnyObserver, &u);
        assert_eq!(cmp.relation, Relation::StrictlyStronger);
        assert!(cmp.a_only.is_none());
        let (c, phi) = cmp.b_only.expect("Any must have extra pairs");
        assert!(!Sc.contains(&c, &phi));
    }

    #[test]
    fn sc_equals_lc_with_one_location() {
        // With a single location one sort per location *is* one global
        // sort; strictness appears only with more than one location (the
        // paper notes "as long as there is more than one location"). The
        // two-location separation is exercised by the store-buffering
        // litmus test in `litmus.rs` and by experiment E1.
        let u1 = Universe::new(3, 1);
        assert_eq!(compare(&Sc, &Lc, &u1).relation, Relation::Equal);
    }

    #[test]
    fn find_pair_respects_all_constraints() {
        let u = Universe::new(3, 1);
        // NN ⊆ WW strictly: find WW-but-not-NN.
        let w = find_pair(&[&Model::Ww], &[&Model::Nn], &u);
        assert!(w.is_some());
        let (c, phi) = w.unwrap();
        assert!(Model::Ww.contains(&c, &phi));
        assert!(!Model::Nn.contains(&c, &phi));
    }

    #[test]
    fn lattice_diagonal_is_equal() {
        let u = Universe::new(2, 1);
        let rows = lattice(&[Model::Sc, Model::Lc, Model::Nn], &u);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.relations[i], Relation::Equal);
        }
    }

    #[test]
    fn relation_display() {
        assert_eq!(Relation::Equal.to_string(), "=");
        assert_eq!(Relation::StrictlyStronger.to_string(), "⊊");
    }

    #[test]
    fn sampled_comparison_respects_known_inclusions() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(88);
        // At 8 nodes (beyond exhaustive reach), sampling must never find
        // an SC pair outside LC, nor an LC pair outside NN.
        let cmp = compare_sampled(&Model::Sc, &Model::Lc, 8, 2, 300, &mut rng);
        assert!(cmp.a_only.is_none(), "SC ⊆ LC violated by sampling");
        let cmp = compare_sampled(&Model::Lc, &Model::Nn, 8, 2, 300, &mut rng);
        assert!(cmp.a_only.is_none(), "LC ⊆ NN violated by sampling");
        assert_eq!(cmp.pairs_checked, 300);
        // And random observers do witness the converse strictness.
        assert!(cmp.b_only.is_some(), "expected an NN\\LC sample at 8 nodes");
    }
}
