//! Property checkers: completeness, monotonicity, constructibility.
//!
//! Each checker quantifies over a bounded [`Universe`] and returns either
//! success or a concrete counterexample:
//!
//! * **Completeness** (Section 2): every computation admits at least one
//!   observer function in the model.
//! * **Monotonicity** (Definition 5): membership survives edge removal.
//!   Checking single-edge removals suffices — every relaxation is a chain
//!   of them.
//! * **Constructibility** (Definition 6): every member pair extends to any
//!   one-node extension. For *monotonic* models, Theorem 12 reduces this
//!   to the augmented computations only, which is what
//!   [`check_constructible_aug`] tests; [`check_constructible_ext`]
//!   checks all one-node extensions (Theorem 10's condition) and is used
//!   to cross-validate and to find non-augmentation witnesses like
//!   Figure 4.

use crate::computation::Computation;
use crate::enumerate::for_each_observer;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use crate::universe::Universe;
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;
use std::ops::ControlFlow;

/// A completeness counterexample: a computation with no observer function
/// in the model.
pub type IncompleteWitness = Computation;

/// Checks completeness over the universe.
/// (Large `Err` is deliberate: the witness is the product.)
#[allow(clippy::result_large_err)]
pub fn check_complete<M: MemoryModel>(model: &M, u: &Universe) -> Result<(), IncompleteWitness> {
    let mut witness = None;
    let _ = u.for_each_computation(|c| {
        let mut any = false;
        let _ = for_each_observer(c, |phi| {
            if model.contains(c, phi) {
                any = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        if !any {
            witness = Some(c.clone());
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    match witness {
        Some(c) => Err(c),
        None => Ok(()),
    }
}

/// A monotonicity counterexample: `(C, Φ)` in the model whose one-edge
/// relaxation `C'` is not.
#[derive(Clone, Debug)]
pub struct MonotonicityWitness {
    /// The member pair's computation.
    pub c: Computation,
    /// The member pair's observer function.
    pub phi: ObserverFunction,
    /// The relaxation on which membership fails.
    pub relaxed: Computation,
}

/// Checks monotonicity (Definition 5) over the universe via single-edge
/// removals.
/// (Large `Err` is deliberate: the witness is the product.)
#[allow(clippy::result_large_err)]
pub fn check_monotonic<M: MemoryModel>(model: &M, u: &Universe) -> Result<(), MonotonicityWitness> {
    let mut witness = None;
    let _ = u.for_each_computation(|c| {
        for_each_observer(c, |phi| {
            if !model.contains(c, phi) {
                return ControlFlow::Continue(());
            }
            for (a, b) in c.dag().edges() {
                let relaxed = c.without_edge(a, b).expect("edge exists");
                if !model.contains(&relaxed, phi) {
                    witness = Some(MonotonicityWitness { c: c.clone(), phi: phi.clone(), relaxed });
                    return ControlFlow::Break(());
                }
            }
            ControlFlow::Continue(())
        })
    });
    match witness {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

/// A constructibility counterexample: a member pair `(C, Φ)`, an extension
/// `C'` of `C`, and the fact that no `Φ'` with `Φ'|_C = Φ` is in the
/// model.
#[derive(Clone, Debug)]
pub struct ConstructibilityWitness {
    /// The member pair's computation (the prefix).
    pub c: Computation,
    /// The member pair's observer function.
    pub phi: ObserverFunction,
    /// The extension with no compatible observer function.
    pub extension: Computation,
    /// The op of the added node.
    pub op: Op,
}

/// Enumerates the observer functions on `ext` (an extension of an
/// `n`-node computation by one final node) that restrict to `phi`, and
/// returns whether any satisfies `pred`.
///
/// Only the new node's row is free: old entries are fixed by `phi`, and
/// rows for locations beyond `phi`'s range are ⊥ on old nodes (forced for
/// augmentations; for general extensions a non-⊥ value would not restrict
/// to `phi`).
pub fn any_extension<F>(ext: &Computation, phi: &ObserverFunction, pred: F) -> bool
where
    F: FnMut(&ObserverFunction) -> bool,
{
    let n_old = ext.node_count() - 1;
    let mut phi2 = ObserverFunction::bottom(ext.num_locations(), ext.node_count());
    for l in 0..phi.num_locations().min(ext.num_locations()) {
        let loc = Location::new(l);
        for u in 0..n_old {
            phi2.set(loc, NodeId::new(u), phi.get(loc, NodeId::new(u)));
        }
    }
    any_extension_in_place(ext, &mut phi2, pred)
}

/// In-place core of [`any_extension`]: enumerates the final node's
/// candidate observation rows directly on `phi2`, whose shape must
/// already match `ext` with the final node's entries all ⊥ (the old
/// nodes' entries are the committed prefix and are never touched).
///
/// `pred` is called on each complete assignment; the first acceptance
/// returns `true` **leaving `phi2` at that assignment** — the caller has
/// committed it with zero copies. On exhaustion the final node's entries
/// are reset to ⊥ and `false` is returned. Candidates are tried ⊥-first
/// per location, in location order, so the first row found is the
/// lexicographically least admissible one — the same row the collecting
/// wrapper's index 0 denotes.
///
/// This is the online session's per-reveal hot path: no `L × n` table
/// copy and no candidate cloning, so a reveal costs O(row) bookkeeping
/// per membership probe instead of O(L·n) per candidate.
pub fn any_extension_in_place<F>(
    ext: &Computation,
    phi2: &mut ObserverFunction,
    mut pred: F,
) -> bool
where
    F: FnMut(&ObserverFunction) -> bool,
{
    let new = ext.last_node().expect("extension is nonempty");
    debug_assert_eq!(phi2.node_count(), ext.node_count());
    debug_assert_eq!(phi2.num_locations(), ext.num_locations());
    // Candidate values for the new node's entry per location.
    let mut cands: Vec<(Location, Vec<Option<NodeId>>)> = Vec::new();
    for l in ext.locations() {
        debug_assert_eq!(phi2.get(l, new), None, "final-node entries must start at ⊥");
        if ext.op(new).is_write_to(l) {
            phi2.set(l, new, Some(new));
            continue;
        }
        let mut cs: Vec<Option<NodeId>> = vec![None];
        for &w in ext.writes_to(l) {
            if !ext.precedes(new, w) {
                cs.push(Some(w));
            }
        }
        cands.push((l, cs));
    }
    fn recurse<F>(
        cands: &[(Location, Vec<Option<NodeId>>)],
        i: usize,
        new: NodeId,
        phi2: &mut ObserverFunction,
        pred: &mut F,
    ) -> bool
    where
        F: FnMut(&ObserverFunction) -> bool,
    {
        if i == cands.len() {
            return pred(phi2);
        }
        let (l, cs) = &cands[i];
        for &v in cs {
            phi2.set(*l, new, v);
            if recurse(cands, i + 1, new, phi2, pred) {
                return true;
            }
        }
        false
    }
    if recurse(&cands, 0, new, phi2, &mut pred) {
        return true;
    }
    // Exhausted: restore the all-⊥ final column (including the forced
    // write self-observations) so the caller can roll the reveal back.
    for l in ext.locations() {
        phi2.set(l, new, None);
    }
    false
}

/// Checks Theorem 12's condition: every member pair extends to every
/// augmented computation. For monotonic models this is equivalent to
/// constructibility.
///
/// Only pairs whose computation has fewer than `u.max_nodes` nodes are
/// checked (the augmentation must stay within reach).
/// (Large `Err` is deliberate: the witness is the product.)
#[allow(clippy::result_large_err)]
pub fn check_constructible_aug<M: MemoryModel>(
    model: &M,
    u: &Universe,
) -> Result<(), ConstructibilityWitness> {
    let alphabet = u.alphabet();
    let mut witness = None;
    let bounded = Universe { max_nodes: u.max_nodes.saturating_sub(1), ..*u };
    let _ = bounded.for_each_computation(|c| {
        for_each_observer(c, |phi| {
            if !model.contains(c, phi) {
                return ControlFlow::Continue(());
            }
            for &o in &alphabet {
                let aug = c.augment(o);
                if !any_extension(&aug, phi, |phi2| model.contains(&aug, phi2)) {
                    witness = Some(ConstructibilityWitness {
                        c: c.clone(),
                        phi: phi.clone(),
                        extension: aug,
                        op: o,
                    });
                    return ControlFlow::Break(());
                }
            }
            ControlFlow::Continue(())
        })
    });
    match witness {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

/// All one-node extensions of `c` by op `o`, up to precedence: the new
/// node's ancestor set ranges over the downward-closed subsets of the
/// nodes. (Models are precedence-invariant, so attaching the new node to
/// each ancestor directly loses nothing.)
pub fn one_node_extensions(c: &Computation, o: Op) -> Vec<Computation> {
    let n = c.node_count();
    assert!(n <= 20, "extension enumeration is exponential");
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        // Downward-closed check.
        let mut closed = true;
        'outer: for v in 0..n {
            if mask & (1 << v) != 0 {
                for a in c.reach().ancestors(NodeId::new(v)).iter() {
                    if mask & (1 << a) == 0 {
                        closed = false;
                        break 'outer;
                    }
                }
            }
        }
        if !closed {
            continue;
        }
        let mut keep = BitSet::new(n.max(1));
        let mut preds = Vec::new();
        for v in 0..n {
            if mask & (1 << v) != 0 {
                keep.insert(v);
                preds.push(NodeId::new(v));
            }
        }
        out.push(c.extend(&preds, o));
    }
    out
}

/// Checks Theorem 10's condition directly: every member pair extends to
/// *every* one-node extension. Sufficient for constructibility of any
/// model; necessary as well (any prefix grows node by node).
/// (Large `Err` is deliberate: the witness is the product.)
#[allow(clippy::result_large_err)]
pub fn check_constructible_ext<M: MemoryModel>(
    model: &M,
    u: &Universe,
) -> Result<(), ConstructibilityWitness> {
    let alphabet = u.alphabet();
    let mut witness = None;
    let bounded = Universe { max_nodes: u.max_nodes.saturating_sub(1), ..*u };
    let _ = bounded.for_each_computation(|c| {
        for_each_observer(c, |phi| {
            if !model.contains(c, phi) {
                return ControlFlow::Continue(());
            }
            for &o in &alphabet {
                for ext in one_node_extensions(c, o) {
                    if !any_extension(&ext, phi, |phi2| model.contains(&ext, phi2)) {
                        witness = Some(ConstructibilityWitness {
                            c: c.clone(),
                            phi: phi.clone(),
                            extension: ext,
                            op: o,
                        });
                        return ControlFlow::Break(());
                    }
                }
            }
            ControlFlow::Continue(())
        })
    });
    match witness {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AnyObserver, Lc, Model, Nn, Sc, Ww};

    #[test]
    fn all_paper_models_complete_on_small_universe() {
        let u = Universe::new(3, 1);
        for m in Model::ALL {
            assert!(check_complete(&m, &u).is_ok(), "{m} incomplete");
        }
    }

    #[test]
    fn all_paper_models_monotonic_on_small_universe() {
        let u = Universe::new(3, 1);
        for m in Model::ALL {
            assert!(check_monotonic(&m, &u).is_ok(), "{m} not monotonic");
        }
    }

    #[test]
    fn theorem_19_sc_lc_constructible() {
        let u = Universe::new(3, 1);
        assert!(check_constructible_aug(&Sc, &u).is_ok());
        assert!(check_constructible_aug(&Lc, &u).is_ok());
    }

    #[test]
    fn ww_and_any_constructible() {
        let u = Universe::new(3, 1);
        assert!(check_constructible_aug(&Ww::new(), &u).is_ok());
        assert!(check_constructible_aug(&AnyObserver, &u).is_ok());
    }

    #[test]
    fn nn_not_constructible_with_witness() {
        // The smallest failing prefixes have 4 nodes (two writes with
        // crossing observations, as in Figure 4), so the universe must
        // reach 5 nodes for the augmentation.
        let u = Universe::new(5, 1);
        let w = check_constructible_aug(&Nn::new(), &u)
            .expect_err("NN must fail constructibility (Section 5, Figure 4)");
        // The witness pair is in NN but its augmentation has no compatible
        // extension.
        assert!(Nn::new().contains(&w.c, &w.phi));
        assert!(!any_extension(&w.extension, &w.phi, |phi2| {
            Nn::new().contains(&w.extension, phi2)
        }));
    }

    #[test]
    fn one_node_extensions_counts() {
        // Chain of 2: downward-closed subsets of {0,1} are {}, {0}, {0,1}.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Nop, Op::Nop]);
        assert_eq!(one_node_extensions(&c, Op::Nop).len(), 3);
        // Antichain of 2: all 4 subsets.
        let c2 = Computation::from_edges(2, &[], vec![Op::Nop, Op::Nop]);
        assert_eq!(one_node_extensions(&c2, Op::Nop).len(), 4);
    }

    #[test]
    fn any_extension_sees_all_final_rows() {
        // W ∥ W, extend with a read: candidates ⊥, w0, w1.
        let c = Computation::from_edges(
            2,
            &[],
            vec![Op::Write(Location::new(0)), Op::Write(Location::new(0))],
        );
        let phi = ObserverFunction::base(&c);
        let ext = c.augment(Op::Read(Location::new(0)));
        let mut count = 0;
        any_extension(&ext, &phi, |_| {
            count += 1;
            false
        });
        assert_eq!(count, 3);
    }

    #[test]
    fn ext_check_agrees_with_aug_for_monotonic_models() {
        // Theorem 12: for monotonic models the two checks agree. Small
        // universe to keep the extension enumeration cheap.
        let u = Universe::new(3, 1);
        for m in [Model::Sc, Model::Lc, Model::Ww, Model::Nn] {
            assert_eq!(
                check_constructible_aug(&m, &u).is_ok(),
                check_constructible_ext(&m, &u).is_ok(),
                "aug/ext disagree for {m}"
            );
        }
        // (NN passes both at this tiny bound — its smallest failures need
        // 4-node prefixes, covered by `nn_not_constructible_with_witness`.)
    }
}
