//! Zero-cost-when-disabled counters, spans, and progress heartbeats.
//!
//! Every long-running path in the crate (sweeps, fixpoints, model
//! checkers, the conformance harness) calls the `#[inline]` hooks in this
//! module. With the `telemetry` cargo feature off they compile to
//! nothing; with it on (the default) each hook is a single relaxed
//! atomic load and branch until telemetry is switched on at runtime with
//! [`set_enabled`], so the hot paths stay within noise of the
//! un-instrumented build.
//!
//! **Counters** are recorded in lock-free per-thread sinks (a
//! `thread_local` array of `AtomicU64`s, registered once per thread in a
//! global list) and merged by summation in [`snapshot_and_reset`].
//! Summation is commutative and associative, so the merged totals are
//! deterministic whenever the underlying *set* of events is — see
//! DESIGN.md §9 for which counters that covers (and why wall-clock
//! timings never are).
//!
//! **Spans** ([`span`]) record named intervals with microsecond
//! timestamps on a process-local monotonic clock ([`now_us`]); they are
//! drained as JSONL-able [`SpanEvent`]s by [`drain_events`]. Timestamps
//! are excluded from every bit-identity check: they measure the host,
//! not the computation.
//!
//! **Progress** ([`progress_tick`]) is a rate-limited stderr heartbeat
//! emitted from the supervisor's commit path (tasks done/total, ETA,
//! quarantine count) when [`set_progress`] is on.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A named event counter. The variants mirror the work items of the
/// sweep and fixpoint engines; [`Counter::ALL`] fixes the (stable)
/// snapshot order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Posets handed to a labelling scan (one per task scan attempt).
    PosetsScanned,
    /// Op labellings visited inside those scans (canonical mode: one per
    /// location-canonical labelling).
    LabellingsScanned,
    /// (computation, observer) membership pairs checked by a sweep.
    PairsChecked,
    /// Φ-membership checks dispatched to the SC checker.
    PhiChecksSc,
    /// Φ-membership checks dispatched to the LC checker.
    PhiChecksLc,
    /// Φ-membership checks dispatched to the NN checker.
    PhiChecksNn,
    /// Φ-membership checks dispatched to the NW checker.
    PhiChecksNw,
    /// Φ-membership checks dispatched to the WN checker.
    PhiChecksWn,
    /// Φ-membership checks dispatched to the WW checker.
    PhiChecksWw,
    /// Φ-membership checks dispatched to the validity-only (Any) checker.
    PhiChecksAny,
    /// SC search prefixes refuted from the per-pair memo table.
    ScMemoHits,
    /// SC search prefixes explored and inserted into the memo table.
    ScMemoMisses,
    /// Membership checks that reused a caller-provided scratch
    /// (`contains_with`) instead of allocating fresh checker state.
    ScratchReuse,
    /// Pairs pushed onto the Δ* worklist (initial seed + cascades).
    WorklistPushes,
    /// Pairs drained from the Δ* worklist for rechecking.
    WorklistPops,
    /// Tasks quarantined after panicking twice (sweep or fixpoint).
    Quarantines,
    /// Snapshot records appended to a checkpoint journal.
    CkptRecords,
    /// Deadline polls performed by supervised workers (counted only when
    /// a deadline is configured).
    DeadlinePolls,
    /// Operations successfully revealed by the online (Δ*) simulator.
    OnlineReveals,
    /// Online reveals that jammed (no admissible observer extension).
    OnlineJams,
    /// Membership checks answered by a brute-force oracle.
    OracleChecks,
    /// Fast-vs-oracle verdict comparisons made by the conformance
    /// harness.
    ConformanceChecks,
    /// Lane words evaluated by the lane64 engine (one per flushed
    /// [`crate::model::lane::LanePack`], full or underfull).
    LaneWords,
    /// Observer lanes occupied across those words (occupancy =
    /// `lane_slots / (64 · lane_words)`).
    LaneSlots,
    /// Lane kernels that aborted early because every valid lane was
    /// already dead (violation or infeasibility on all of them).
    LaneEarlyExits,
    /// Survivor-mask words materialised or rescanned by the lane Δ*
    /// fixpoint (Stage A mask words written plus cascade block words
    /// examined). Deterministic: a pure function of the universe, the
    /// model, and the bound.
    LaneFixpointWords,
    /// Survivor bits cleared by the lane fixpoint's masked deletions
    /// (equals the scalar worklist's `deleted` total). Deterministic.
    LaneDeletionsMasked,
    /// Final survivor-set population (surviving (C, Φ) bits) reported
    /// once when the lane fixpoint converges. Deterministic.
    LaneSurvivorPop,
    /// Steal attempts made by idle workers of the threaded BACKER
    /// executor (one per deque/injector probe). Timing-dependent by
    /// nature — never part of any bit-identity check.
    StealAttempts,
    /// Perturbations (yields, busy-spin delays) actually injected by a
    /// `PerturbPlan` inside the threaded executor. The *decisions* are a
    /// pure function of (seed, position), but how many positions each
    /// worker visits per run is scheduling-dependent, so this counter is
    /// in the timing-dependent class too.
    PerturbInjected,
    /// Request payloads the serve handler received (every frame that
    /// reached parsing, whatever its fate). Deterministic for a fixed
    /// request stream.
    ServeRequests,
    /// Requests answered with an `ok` reply.
    ServeServed,
    /// Requests shed at admission with an `overloaded` reply.
    /// Timing-dependent: depends on how requests overlap in flight.
    ServeShed,
    /// Requests whose handler panicked and was quarantined into a
    /// `degraded` reply. Deterministic under a seeded `ServeFaultPlan`.
    ServeDegraded,
    /// Requests cut short by their deadline budget into a `partial`
    /// reply. Timing-dependent (wall-clock budget).
    ServeDeadlineExpired,
    /// Request payloads rejected with a line-numbered `error` reply
    /// (bad framing, bad UTF-8, parse failures).
    ServeFrameErrors,
    /// Verdict-cache lookups answered from the cache. Deterministic for
    /// a fixed request order; `hits + misses` equals total lookups in
    /// every schedule.
    ServeCacheHits,
    /// Verdict-cache lookups that recomputed via `contains_with`.
    ServeCacheMisses,
    /// Verdict-cache entries evicted to hold the capacity bound.
    ServeCacheEvictions,
    /// Connections the server accepted over its lifetime.
    ServeConnections,
    /// Candidate-row membership probes made by `OnlineSession::reveal`
    /// (one per observer extension tested against the model).
    OnlineProbes,
    /// Full-DAG clones taken by `Computation::extend`/`augment` — the
    /// quadratic path the in-place `Computation::push` avoids.
    DagClones,
    /// Nodes revealed to the streaming (`ccmm watch`) checker.
    WatchReveals,
    /// Sampled prefixes where the streaming verdict disagreed with the
    /// batch checker (must stay 0).
    WatchDivergences,
}

/// Number of distinct counters.
pub const NUM_COUNTERS: usize = 44;

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::PosetsScanned,
        Counter::LabellingsScanned,
        Counter::PairsChecked,
        Counter::PhiChecksSc,
        Counter::PhiChecksLc,
        Counter::PhiChecksNn,
        Counter::PhiChecksNw,
        Counter::PhiChecksWn,
        Counter::PhiChecksWw,
        Counter::PhiChecksAny,
        Counter::ScMemoHits,
        Counter::ScMemoMisses,
        Counter::ScratchReuse,
        Counter::WorklistPushes,
        Counter::WorklistPops,
        Counter::Quarantines,
        Counter::CkptRecords,
        Counter::DeadlinePolls,
        Counter::OnlineReveals,
        Counter::OnlineJams,
        Counter::OracleChecks,
        Counter::ConformanceChecks,
        Counter::LaneWords,
        Counter::LaneSlots,
        Counter::LaneEarlyExits,
        Counter::LaneFixpointWords,
        Counter::LaneDeletionsMasked,
        Counter::LaneSurvivorPop,
        Counter::StealAttempts,
        Counter::PerturbInjected,
        Counter::ServeRequests,
        Counter::ServeServed,
        Counter::ServeShed,
        Counter::ServeDegraded,
        Counter::ServeDeadlineExpired,
        Counter::ServeFrameErrors,
        Counter::ServeCacheHits,
        Counter::ServeCacheMisses,
        Counter::ServeCacheEvictions,
        Counter::ServeConnections,
        Counter::OnlineProbes,
        Counter::DagClones,
        Counter::WatchReveals,
        Counter::WatchDivergences,
    ];

    /// The counter's stable snake_case name, used as its key in metrics
    /// files and `SweepRecord.counters`.
    pub fn name(self) -> &'static str {
        match self {
            Counter::PosetsScanned => "posets_scanned",
            Counter::LabellingsScanned => "labellings_scanned",
            Counter::PairsChecked => "pairs_checked",
            Counter::PhiChecksSc => "phi_checks_sc",
            Counter::PhiChecksLc => "phi_checks_lc",
            Counter::PhiChecksNn => "phi_checks_nn",
            Counter::PhiChecksNw => "phi_checks_nw",
            Counter::PhiChecksWn => "phi_checks_wn",
            Counter::PhiChecksWw => "phi_checks_ww",
            Counter::PhiChecksAny => "phi_checks_any",
            Counter::ScMemoHits => "sc_memo_hits",
            Counter::ScMemoMisses => "sc_memo_misses",
            Counter::ScratchReuse => "scratch_reuse",
            Counter::WorklistPushes => "worklist_pushes",
            Counter::WorklistPops => "worklist_pops",
            Counter::Quarantines => "quarantines",
            Counter::CkptRecords => "ckpt_records",
            Counter::DeadlinePolls => "deadline_polls",
            Counter::OnlineReveals => "online_reveals",
            Counter::OnlineJams => "online_jams",
            Counter::OracleChecks => "oracle_checks",
            Counter::ConformanceChecks => "conformance_checks",
            Counter::LaneWords => "lane_words",
            Counter::LaneSlots => "lane_slots",
            Counter::LaneEarlyExits => "lane_early_exits",
            Counter::LaneFixpointWords => "lane_fixpoint_words",
            Counter::LaneDeletionsMasked => "lane_deletions_masked",
            Counter::LaneSurvivorPop => "lane_survivor_pop",
            Counter::StealAttempts => "steal_attempts",
            Counter::PerturbInjected => "perturb_injected",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeServed => "serve_served",
            Counter::ServeShed => "serve_shed",
            Counter::ServeDegraded => "serve_degraded",
            Counter::ServeDeadlineExpired => "serve_deadline_expired",
            Counter::ServeFrameErrors => "serve_frame_errors",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeCacheMisses => "serve_cache_misses",
            Counter::ServeCacheEvictions => "serve_cache_evictions",
            Counter::ServeConnections => "serve_connections",
            Counter::OnlineProbes => "online_probes",
            Counter::DagClones => "dag_clones",
            Counter::WatchReveals => "watch_reveals",
            Counter::WatchDivergences => "watch_divergences",
        }
    }
}

/// One completed span: a named interval on the process-local monotonic
/// clock, tagged with the recording thread's telemetry id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (e.g. `sweep/memberships`).
    pub name: &'static str,
    /// Telemetry id of the thread that recorded the span.
    pub thread: u64,
    /// Start, microseconds since the telemetry epoch.
    pub start_us: u64,
    /// End, microseconds since the telemetry epoch.
    pub end_us: u64,
}

/// Master switch for counter recording.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Switch for span recording (usually tied to `--trace`).
static EVENTS: AtomicBool = AtomicBool::new(false);
/// Switch for the stderr progress heartbeat (`--progress`).
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// Monotonic timestamp (µs) of the last heartbeat actually printed.
static PROGRESS_LAST_US: AtomicU64 = AtomicU64::new(0);
/// Monotonic timestamp (µs) when the current progress phase started.
static PROGRESS_START_US: AtomicU64 = AtomicU64::new(0);
/// Next telemetry thread id.
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

/// Minimum interval between progress heartbeats.
const PROGRESS_INTERVAL_US: u64 = 500_000;

/// Per-thread counter sink: one atomic cell per [`Counter`].
struct Sink {
    cells: [AtomicU64; NUM_COUNTERS],
}

impl Sink {
    fn new() -> Self {
        Sink { cells: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Sink>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Sink>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn events() -> &'static Mutex<Vec<SpanEvent>> {
    static EVENTS_BUF: OnceLock<Mutex<Vec<SpanEvent>>> = OnceLock::new();
    EVENTS_BUF.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LOCAL: (Arc<Sink>, u64) = {
        let sink = Arc::new(Sink::new());
        registry().lock().expect("telemetry registry poisoned").push(Arc::clone(&sink));
        (sink, NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed))
    };
}

/// Microseconds since the process-local telemetry epoch (the first call
/// to any timestamped hook). Monotonic, never wall-clock.
pub fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Turns counter recording on or off. Counters accumulated so far are
/// kept; use [`snapshot_and_reset`] to read and clear them.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether counter recording is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off.
pub fn set_events(on: bool) {
    EVENTS.store(on, Ordering::Relaxed);
}

/// Turns the stderr progress heartbeat on or off, resetting its ETA
/// clock.
pub fn set_progress(on: bool) {
    let now = now_us();
    PROGRESS_START_US.store(now, Ordering::Relaxed);
    PROGRESS_LAST_US.store(0, Ordering::Relaxed);
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Adds `n` to counter `c` in this thread's sink. A relaxed load and a
/// branch when telemetry is off; a no-op at compile time without the
/// `telemetry` feature.
#[inline]
pub fn count(c: Counter, n: u64) {
    #[cfg(feature = "telemetry")]
    if ENABLED.load(Ordering::Relaxed) {
        LOCAL.with(|(sink, _)| sink.cells[c as usize].fetch_add(n, Ordering::Relaxed));
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (c, n);
}

/// Sums all per-thread sinks into one `[u64; NUM_COUNTERS]` snapshot
/// (indexed like [`Counter::ALL`]) and zeroes them, so successive phases
/// of one run get disjoint snapshots. Summation makes the merge
/// independent of thread scheduling.
pub fn snapshot_and_reset() -> [u64; NUM_COUNTERS] {
    let mut out = [0u64; NUM_COUNTERS];
    for sink in registry().lock().expect("telemetry registry poisoned").iter() {
        for (slot, cell) in out.iter_mut().zip(&sink.cells) {
            *slot += cell.swap(0, Ordering::Relaxed);
        }
    }
    out
}

/// An in-flight span; records a [`SpanEvent`] when dropped. Obtained
/// from [`span`]; inert (and allocation-free) when span recording is
/// off.
pub struct SpanGuard {
    open: Option<(&'static str, u64, u64)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, thread, start_us)) = self.open.take() {
            let ev = SpanEvent { name, thread, start_us, end_us: now_us() };
            events().lock().expect("telemetry event buffer poisoned").push(ev);
        }
    }
}

/// Opens a named span covering the guard's lifetime. When span recording
/// is off (or the `telemetry` feature is compiled out) the guard is
/// inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "telemetry")]
    if EVENTS.load(Ordering::Relaxed) {
        let thread = LOCAL.with(|(_, id)| *id);
        return SpanGuard { open: Some((name, thread, now_us())) };
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = name;
    SpanGuard { open: None }
}

/// Drains every recorded span event, oldest first.
pub fn drain_events() -> Vec<SpanEvent> {
    std::mem::take(&mut *events().lock().expect("telemetry event buffer poisoned"))
}

/// Progress heartbeat hook, called by the supervisor after each task
/// commit. Rate-limited to one stderr line per half second; a no-op
/// unless [`set_progress`] is on. ETA extrapolates the phase's elapsed
/// time over the remaining tasks.
#[inline]
pub fn progress_tick(done: usize, total: usize, quarantined: usize) {
    #[cfg(feature = "telemetry")]
    if PROGRESS.load(Ordering::Relaxed) {
        progress_tick_slow(done, total, quarantined);
    }
    #[cfg(not(feature = "telemetry"))]
    let _ = (done, total, quarantined);
}

#[cfg(feature = "telemetry")]
fn progress_tick_slow(done: usize, total: usize, quarantined: usize) {
    let now = now_us();
    let last = PROGRESS_LAST_US.load(Ordering::Relaxed);
    let due = last == 0 || now.saturating_sub(last) >= PROGRESS_INTERVAL_US;
    if !due
        || PROGRESS_LAST_US
            .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
    {
        return;
    }
    let start = PROGRESS_START_US.load(Ordering::Relaxed);
    let elapsed_s = now.saturating_sub(start) as f64 / 1e6;
    let eta = if done > 0 && total >= done {
        format!("{:.1}s", elapsed_s * (total - done) as f64 / done as f64)
    } else {
        "?".to_string()
    };
    let pct = if total > 0 { 100.0 * done as f64 / total as f64 } else { 100.0 };
    eprintln!(
        "progress: {done}/{total} tasks ({pct:.1}%), elapsed {elapsed_s:.1}s, eta {eta}, {quarantined} quarantined"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    // Telemetry state is process-global, so everything lives in one test
    // function — the test harness runs functions concurrently.
    #[test]
    fn counters_spans_and_snapshots_work_end_to_end() {
        assert!(!enabled());
        count(Counter::PairsChecked, 5);
        assert_eq!(snapshot_and_reset()[Counter::PairsChecked as usize], 0, "off = not recorded");

        set_enabled(true);
        count(Counter::PairsChecked, 5);
        count(Counter::PairsChecked, 2);
        count(Counter::Quarantines, 1);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| count(Counter::PairsChecked, 10));
            }
        });
        let snap = snapshot_and_reset();
        assert_eq!(snap[Counter::PairsChecked as usize], 37);
        assert_eq!(snap[Counter::Quarantines as usize], 1);
        assert_eq!(snap[Counter::WorklistPops as usize], 0);
        let zeroed = snapshot_and_reset();
        assert!(zeroed.iter().all(|&v| v == 0), "snapshot resets the sinks");
        set_enabled(false);

        // Spans: inert when off, recorded with ordered timestamps when on.
        drop(span("off"));
        assert!(drain_events().is_empty());
        set_events(true);
        {
            let _g = span("outer");
            let _inner = span("inner");
        }
        set_events(false);
        let evs = drain_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "inner", "inner guard drops first");
        assert_eq!(evs[1].name, "outer");
        for e in &evs {
            assert!(e.start_us <= e.end_us);
        }
        assert!(drain_events().is_empty(), "drain empties the buffer");

        // The name table is total and stable.
        assert_eq!(Counter::ALL.len(), NUM_COUNTERS);
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS, "counter names are unique");

        // Progress ticks never panic, on or off.
        progress_tick(1, 10, 0);
        set_progress(true);
        progress_tick(0, 10, 0);
        progress_tick(5, 10, 1);
        set_progress(false);
    }
}
