//! Exhaustive enumeration of valid observer functions.
//!
//! The validity conditions of Definition 2 constrain each table entry
//! `Φ(l, u)` independently: writes are forced to observe themselves, and
//! any other node may observe ⊥ or any write to `l` it does not strictly
//! precede. Enumeration is therefore a Cartesian product over the free
//! entries, and counting is a closed-form product.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::Location;
use ccmm_dag::NodeId;
use std::ops::ControlFlow;

/// One free table slot and its candidate values.
fn free_slots(c: &Computation) -> Vec<(Location, NodeId, Vec<Option<NodeId>>)> {
    let mut slots = Vec::new();
    for l in c.locations() {
        for u in c.nodes() {
            if c.op(u).is_write_to(l) {
                continue; // forced to Some(u) by Condition 2.3
            }
            let mut cands: Vec<Option<NodeId>> = vec![None];
            for &w in c.writes_to(l) {
                if !c.precedes(u, w) {
                    cands.push(Some(w));
                }
            }
            slots.push((l, u, cands));
        }
    }
    slots
}

/// [`free_slots`] in *node-major* order: slots sorted by `(node,
/// location)` instead of `(location, node)`, so every free slot of the
/// literally-last node trails every slot of the other nodes.
///
/// This order is what makes the lane fixpoint's extension blocks
/// contiguous (see `constructible::lanes`): when the last node of an
/// augmentation `aug_o(C)` succeeds every other node, the non-final
/// slots of `aug_o(C)` carry exactly `C`'s candidate lists in exactly
/// `C`'s node-major order (slots at locations `C` never mentions have a
/// single candidate, ⊥, and contribute nothing to the mixed-radix
/// index), so the node-major index factors as
/// `index(aug, Φ') = index(C, Φ'|_C) · E + lo` with `E` the product of
/// the last node's slot radices.
fn free_slots_node_major(c: &Computation) -> Vec<(Location, NodeId, Vec<Option<NodeId>>)> {
    let mut slots = free_slots(c);
    slots.sort_by_key(|&(l, u, _)| (u.index(), l.index()));
    slots
}

/// Calls `f` with every valid observer function for `c` in *node-major*
/// order (see [`free_slots_node_major`]); the slot visited first varies
/// slowest, so the enumeration index is the mixed-radix value of the
/// per-slot candidate positions. Same early-exit contract as
/// [`for_each_observer`].
pub fn for_each_observer_node_major<F>(c: &Computation, mut f: F) -> ControlFlow<()>
where
    F: FnMut(&ObserverFunction) -> ControlFlow<()>,
{
    let slots = free_slots_node_major(c);
    let mut phi = ObserverFunction::base(c);
    fn recurse<F>(
        slots: &[(Location, NodeId, Vec<Option<NodeId>>)],
        i: usize,
        phi: &mut ObserverFunction,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&ObserverFunction) -> ControlFlow<()>,
    {
        if i == slots.len() {
            return f(phi);
        }
        let (l, u, cands) = &slots[i];
        for &v in cands {
            phi.set(*l, *u, v);
            recurse(slots, i + 1, phi, f)?;
        }
        ControlFlow::Continue(())
    }
    recurse(&slots, 0, &mut phi, &mut f)
}

/// The shape of `c`'s node-major enumeration: `(observers, block)`,
/// where `observers` is the total count of valid observer functions and
/// `block` is the product of the last node's slot radices — the size `E`
/// of one contiguous extension block when `c` is an augmentation whose
/// last node succeeds every other node. `block` is 1 for the empty
/// computation.
pub fn node_major_shape(c: &Computation) -> (u64, u64) {
    let last = c.last_node();
    let mut observers = 1u64;
    let mut block = 1u64;
    for (_, u, cands) in free_slots_node_major(c) {
        let r = cands.len() as u64;
        observers = observers.checked_mul(r).expect("observer count overflows u64");
        if Some(u) == last {
            block *= r;
        }
    }
    (observers, block)
}

/// The node-major enumeration index of `phi` among `c`'s valid observer
/// functions, or `None` if `phi` is not one of them (some entry is not a
/// candidate of its slot). Forced entries (writes observing themselves)
/// are checked too.
pub fn node_major_index(c: &Computation, phi: &ObserverFunction) -> Option<u64> {
    if !phi.is_valid_for(c) {
        return None;
    }
    slot_index(&free_slots_node_major(c), phi)
}

/// The [`for_each_observer`] (location-major) enumeration index of
/// `phi`, or `None` if `phi` is not a valid observer function for `c`.
pub fn location_major_index(c: &Computation, phi: &ObserverFunction) -> Option<u64> {
    if !phi.is_valid_for(c) {
        return None;
    }
    slot_index(&free_slots(c), phi)
}

/// Mixed-radix index of `phi` over `slots` (first slot most
/// significant, matching the recursive enumerators).
fn slot_index(
    slots: &[(Location, NodeId, Vec<Option<NodeId>>)],
    phi: &ObserverFunction,
) -> Option<u64> {
    let mut idx = 0u64;
    for (l, u, cands) in slots {
        let d = cands.iter().position(|&v| v == phi.get(*l, *u))?;
        idx = idx * cands.len() as u64 + d as u64;
    }
    Some(idx)
}

/// Calls `f` with every valid observer function for `c`, reusing a single
/// buffer. Return `ControlFlow::Break(())` from `f` to stop early.
///
/// The count can be exponential in the number of nodes; intended for the
/// small computations of bounded universes.
pub fn for_each_observer<F>(c: &Computation, mut f: F) -> ControlFlow<()>
where
    F: FnMut(&ObserverFunction) -> ControlFlow<()>,
{
    let slots = free_slots(c);
    let mut phi = ObserverFunction::base(c);
    fn recurse<F>(
        slots: &[(Location, NodeId, Vec<Option<NodeId>>)],
        i: usize,
        phi: &mut ObserverFunction,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&ObserverFunction) -> ControlFlow<()>,
    {
        if i == slots.len() {
            return f(phi);
        }
        let (l, u, cands) = &slots[i];
        for &v in cands {
            phi.set(*l, *u, v);
            recurse(slots, i + 1, phi, f)?;
        }
        ControlFlow::Continue(())
    }
    recurse(&slots, 0, &mut phi, &mut f)
}

/// Collects all valid observer functions for `c`.
pub fn all_observers(c: &Computation) -> Vec<ObserverFunction> {
    let mut out = Vec::new();
    let _ = for_each_observer(c, |phi| {
        out.push(phi.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Collects the valid observer functions satisfying `pred`.
pub fn observers_where<P>(c: &Computation, mut pred: P) -> Vec<ObserverFunction>
where
    P: FnMut(&ObserverFunction) -> bool,
{
    let mut out = Vec::new();
    let _ = for_each_observer(c, |phi| {
        if pred(phi) {
            out.push(phi.clone());
        }
        ControlFlow::Continue(())
    });
    out
}

/// The number of valid observer functions for `c`, in closed form
/// (product of per-slot candidate counts).
pub fn count_observers(c: &Computation) -> u128 {
    free_slots(c).iter().map(|(_, _, cands)| cands.len() as u128).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn empty_computation_has_exactly_phi_epsilon() {
        let c = Computation::empty();
        let obs = all_observers(&c);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0], ObserverFunction::empty());
        assert_eq!(count_observers(&c), 1);
    }

    #[test]
    fn single_write_has_one_observer() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 1);
        let obs = all_observers(&c);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0], ObserverFunction::base(&c));
    }

    #[test]
    fn read_after_write_has_two_choices() {
        // W(0) -> R(0): the read sees ⊥ or the write.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        assert_eq!(count_observers(&c), 2);
        assert_eq!(all_observers(&c).len(), 2);
    }

    #[test]
    fn read_before_write_cannot_see_it() {
        // R(0) -> W(0): the read only sees ⊥.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 1);
    }

    #[test]
    fn incomparable_write_is_a_candidate() {
        // R(0) ∥ W(0).
        let c = Computation::from_edges(2, &[], vec![Op::Read(l(0)), Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 2);
    }

    #[test]
    fn nop_nodes_also_carry_observations() {
        // W(0) -> N: the paper gives memory semantics to all nodes.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Nop]);
        assert_eq!(count_observers(&c), 2);
    }

    #[test]
    fn counts_multiply_across_locations() {
        // W(0) ∥ W(1), plus a later read of each: reads have 2 choices
        // each; the writes also have free entries at the *other* location.
        let c = Computation::from_edges(
            4,
            &[(0, 2), (1, 2), (0, 3), (1, 3)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0)), Op::Read(l(1))],
        );
        // Free slots at l0: nodes 1 (can see w0? ¬(1≺0) yes → 2 cands),
        // 2 (2), 3 (2). At l1: nodes 0 (2), 2 (2), 3 (2). Total 2^6.
        assert_eq!(count_observers(&c), 64);
    }

    #[test]
    fn enumeration_matches_count_and_is_distinct() {
        let c = Computation::from_edges(
            3,
            &[(0, 1)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0))],
        );
        let obs = all_observers(&c);
        assert_eq!(obs.len() as u128, count_observers(&c));
        let set: std::collections::HashSet<_> = obs.iter().collect();
        assert_eq!(set.len(), obs.len());
        for phi in &obs {
            assert!(phi.is_valid_for(&c));
        }
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let c =
            Computation::from_edges(3, &[], vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))]);
        let mut seen = 0;
        let flow = for_each_observer(&c, |_| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, 2);
    }

    #[test]
    fn node_major_order_is_a_permutation_with_trailing_last_node_blocks() {
        use crate::universe::Universe;
        // Two locations so node-major and location-major genuinely differ.
        let u = Universe::new(3, 2);
        let _ = u.for_each_computation(|c| {
            let std: Vec<_> = all_observers(c);
            let mut nm = Vec::new();
            let _ = for_each_observer_node_major(c, |phi| {
                nm.push(phi.clone());
                ControlFlow::Continue(())
            });
            assert_eq!(std.len(), nm.len());
            let set: std::collections::HashSet<_> = std.iter().collect();
            for phi in &nm {
                assert!(set.contains(phi));
            }
            // Index functions agree with the enumeration positions.
            let (observers, block) = node_major_shape(c);
            assert_eq!(observers as usize, nm.len());
            assert!(block >= 1 && observers % block == 0);
            for (i, phi) in nm.iter().enumerate() {
                assert_eq!(node_major_index(c, phi), Some(i as u64));
            }
            for (i, phi) in std.iter().enumerate() {
                assert_eq!(location_major_index(c, phi), Some(i as u64));
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn node_major_index_factors_through_the_augmentation_parent() {
        use crate::universe::Universe;
        // For every C and op o: index(aug, Φ') = index(C, Φ'|C)·E + lo,
        // blocks are contiguous, and every Φ' in block b restricts to the
        // b-th node-major observer of C.
        let u = Universe::new(2, 2);
        let alphabet = u.alphabet();
        let _ = u.for_each_computation(|c| {
            let mut parents = Vec::new();
            let _ = for_each_observer_node_major(c, |phi| {
                parents.push(phi.clone());
                ControlFlow::Continue(())
            });
            for &o in &alphabet {
                let aug = c.augment(o);
                let (observers, block) = node_major_shape(&aug);
                let mut pos = 0u64;
                let _ = for_each_observer_node_major(&aug, |phi2| {
                    let b = (pos / block) as usize;
                    let parent = &parents[b];
                    assert!(
                        phi2.restricts_to(parent),
                        "block {b} of {aug:?} does not restrict to its parent observer"
                    );
                    pos += 1;
                    ControlFlow::Continue(())
                });
                assert_eq!(pos, observers);
                assert_eq!(observers, block * parents.len() as u64);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn invalid_observers_have_no_index() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        // The read observing a node that is not a write to l0.
        let bad = ObserverFunction::base(&c).with(l(0), ccmm_dag::NodeId::new(1), None);
        // `bad` is actually valid (⊥); corrupt the forced write entry.
        let mut worse = bad.clone();
        worse.set(l(0), ccmm_dag::NodeId::new(0), None);
        assert!(node_major_index(&c, &worse).is_none());
        assert!(location_major_index(&c, &worse).is_none());
    }

    #[test]
    fn observers_where_filters() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let sees_write =
            observers_where(&c, |phi| phi.get(l(0), ccmm_dag::NodeId::new(1)).is_some());
        assert_eq!(sees_write.len(), 1);
    }
}
