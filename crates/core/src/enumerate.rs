//! Exhaustive enumeration of valid observer functions.
//!
//! The validity conditions of Definition 2 constrain each table entry
//! `Φ(l, u)` independently: writes are forced to observe themselves, and
//! any other node may observe ⊥ or any write to `l` it does not strictly
//! precede. Enumeration is therefore a Cartesian product over the free
//! entries, and counting is a closed-form product.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::Location;
use ccmm_dag::NodeId;
use std::ops::ControlFlow;

/// One free table slot and its candidate values.
fn free_slots(c: &Computation) -> Vec<(Location, NodeId, Vec<Option<NodeId>>)> {
    let mut slots = Vec::new();
    for l in c.locations() {
        for u in c.nodes() {
            if c.op(u).is_write_to(l) {
                continue; // forced to Some(u) by Condition 2.3
            }
            let mut cands: Vec<Option<NodeId>> = vec![None];
            for &w in c.writes_to(l) {
                if !c.precedes(u, w) {
                    cands.push(Some(w));
                }
            }
            slots.push((l, u, cands));
        }
    }
    slots
}

/// Calls `f` with every valid observer function for `c`, reusing a single
/// buffer. Return `ControlFlow::Break(())` from `f` to stop early.
///
/// The count can be exponential in the number of nodes; intended for the
/// small computations of bounded universes.
pub fn for_each_observer<F>(c: &Computation, mut f: F) -> ControlFlow<()>
where
    F: FnMut(&ObserverFunction) -> ControlFlow<()>,
{
    let slots = free_slots(c);
    let mut phi = ObserverFunction::base(c);
    fn recurse<F>(
        slots: &[(Location, NodeId, Vec<Option<NodeId>>)],
        i: usize,
        phi: &mut ObserverFunction,
        f: &mut F,
    ) -> ControlFlow<()>
    where
        F: FnMut(&ObserverFunction) -> ControlFlow<()>,
    {
        if i == slots.len() {
            return f(phi);
        }
        let (l, u, cands) = &slots[i];
        for &v in cands {
            phi.set(*l, *u, v);
            recurse(slots, i + 1, phi, f)?;
        }
        ControlFlow::Continue(())
    }
    recurse(&slots, 0, &mut phi, &mut f)
}

/// Collects all valid observer functions for `c`.
pub fn all_observers(c: &Computation) -> Vec<ObserverFunction> {
    let mut out = Vec::new();
    let _ = for_each_observer(c, |phi| {
        out.push(phi.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Collects the valid observer functions satisfying `pred`.
pub fn observers_where<P>(c: &Computation, mut pred: P) -> Vec<ObserverFunction>
where
    P: FnMut(&ObserverFunction) -> bool,
{
    let mut out = Vec::new();
    let _ = for_each_observer(c, |phi| {
        if pred(phi) {
            out.push(phi.clone());
        }
        ControlFlow::Continue(())
    });
    out
}

/// The number of valid observer functions for `c`, in closed form
/// (product of per-slot candidate counts).
pub fn count_observers(c: &Computation) -> u128 {
    free_slots(c).iter().map(|(_, _, cands)| cands.len() as u128).product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn empty_computation_has_exactly_phi_epsilon() {
        let c = Computation::empty();
        let obs = all_observers(&c);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0], ObserverFunction::empty());
        assert_eq!(count_observers(&c), 1);
    }

    #[test]
    fn single_write_has_one_observer() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 1);
        let obs = all_observers(&c);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0], ObserverFunction::base(&c));
    }

    #[test]
    fn read_after_write_has_two_choices() {
        // W(0) -> R(0): the read sees ⊥ or the write.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        assert_eq!(count_observers(&c), 2);
        assert_eq!(all_observers(&c).len(), 2);
    }

    #[test]
    fn read_before_write_cannot_see_it() {
        // R(0) -> W(0): the read only sees ⊥.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 1);
    }

    #[test]
    fn incomparable_write_is_a_candidate() {
        // R(0) ∥ W(0).
        let c = Computation::from_edges(2, &[], vec![Op::Read(l(0)), Op::Write(l(0))]);
        assert_eq!(count_observers(&c), 2);
    }

    #[test]
    fn nop_nodes_also_carry_observations() {
        // W(0) -> N: the paper gives memory semantics to all nodes.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Nop]);
        assert_eq!(count_observers(&c), 2);
    }

    #[test]
    fn counts_multiply_across_locations() {
        // W(0) ∥ W(1), plus a later read of each: reads have 2 choices
        // each; the writes also have free entries at the *other* location.
        let c = Computation::from_edges(
            4,
            &[(0, 2), (1, 2), (0, 3), (1, 3)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0)), Op::Read(l(1))],
        );
        // Free slots at l0: nodes 1 (can see w0? ¬(1≺0) yes → 2 cands),
        // 2 (2), 3 (2). At l1: nodes 0 (2), 2 (2), 3 (2). Total 2^6.
        assert_eq!(count_observers(&c), 64);
    }

    #[test]
    fn enumeration_matches_count_and_is_distinct() {
        let c = Computation::from_edges(
            3,
            &[(0, 1)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0))],
        );
        let obs = all_observers(&c);
        assert_eq!(obs.len() as u128, count_observers(&c));
        let set: std::collections::HashSet<_> = obs.iter().collect();
        assert_eq!(set.len(), obs.len());
        for phi in &obs {
            assert!(phi.is_valid_for(&c));
        }
    }

    #[test]
    fn early_exit_stops_enumeration() {
        let c =
            Computation::from_edges(3, &[], vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))]);
        let mut seen = 0;
        let flow = for_each_observer(&c, |_| {
            seen += 1;
            if seen == 2 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(flow, ControlFlow::Break(()));
        assert_eq!(seen, 2);
    }

    #[test]
    fn observers_where_filters() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let sees_write =
            observers_where(&c, |phi| phi.get(l(0), ccmm_dag::NodeId::new(1)).is_some());
        assert_eq!(sees_write.len(), 1);
    }
}
