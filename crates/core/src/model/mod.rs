//! Memory models (Definition 3) and the six models studied in the paper.
//!
//! A memory model is a set of (computation, observer function) pairs; here
//! a model is anything implementing [`MemoryModel`], whose `contains`
//! decides membership. "Stronger" means ⊆ (Definition 4) — decided over
//! bounded universes by [`crate::relation`].
//!
//! The concrete models:
//!
//! * [`Sc`] — sequential consistency (Definition 17): one topological sort
//!   whose last-writer function is Φ at *every* location;
//! * [`Lc`] — location consistency / coherence (Definition 18): an
//!   independent topological sort per location;
//! * [`QDag`] — the Q-dag-consistency family (Definition 20), with the four
//!   predicates NN, NW, WN, WW of Section 5;
//! * [`AnyObserver`] — the weakest model (all valid pairs), a baseline.

pub mod brute;
pub mod composite;
pub mod dagcons;
pub mod lane;
pub mod lc;
pub mod sc;

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::telemetry::{self, Counter};

pub use composite::{Intersection, Union};
pub use dagcons::{DynQ, Nn, Nw, QDag, QPredicate, Wn, Ww};
pub use lane::{LanePack, LaneScratch, LANES};
pub use lc::Lc;
pub use sc::Sc;

/// Reusable working memory for membership checks.
///
/// The sweep hot loop runs millions of `contains` calls; a `CheckScratch`
/// owned by each worker lets every checker reuse its bitsets, last-writer
/// tables, memo sets and Kahn buffers instead of reallocating them per
/// pair. Pass it to [`MemoryModel::contains_with`]; plain
/// [`MemoryModel::contains`] remains the allocating convenience form.
#[derive(Default)]
pub struct CheckScratch {
    pub(crate) sc: sc::ScScratch,
    pub(crate) lc: lc::LcScratch,
    pub(crate) dag: dagcons::DagScratch,
}

impl CheckScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A memory model: a decidable set of (computation, observer) pairs.
///
/// Implementations must return `false` for pairs where `phi` is not a
/// valid observer function for `c` (Definition 3 restricts models to valid
/// pairs).
pub trait MemoryModel {
    /// A short human-readable name ("SC", "NN-dag", …).
    fn name(&self) -> &str;

    /// Membership test `(c, phi) ∈ Δ`.
    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool;

    /// Membership test reusing caller-provided scratch buffers.
    ///
    /// Semantically identical to [`contains`]; checkers with non-trivial
    /// working state (SC's memoised search, LC's block contraction, the
    /// Q-dag interval scan) override this to run allocation-free. The
    /// default ignores the scratch.
    ///
    /// [`contains`]: MemoryModel::contains
    fn contains_with(
        &self,
        c: &Computation,
        phi: &ObserverFunction,
        _scratch: &mut CheckScratch,
    ) -> bool {
        self.contains(c, phi)
    }

    /// Membership test for a pair just grown by one node: `c` extends a
    /// pair already known to be in the model by the final node `new`
    /// (highest-indexed, therefore maximal), and `phi` extends the
    /// committed observer function by `new`'s observation row only.
    ///
    /// Semantically identical to [`contains_with`] **under that
    /// precondition** — callers must not use it for arbitrary pairs.
    /// The default re-checks the whole pair; models whose membership is
    /// decomposable per node (validity-only [`AnyObserver`]) override it
    /// to probe just the new row, which is what makes the online
    /// session's reveal amortized near-O(degree) instead of O(n²).
    ///
    /// [`contains_with`]: MemoryModel::contains_with
    fn contains_incremental(
        &self,
        c: &Computation,
        phi: &ObserverFunction,
        _new: ccmm_dag::NodeId,
        scratch: &mut CheckScratch,
    ) -> bool {
        self.contains_with(c, phi, scratch)
    }

    /// Lane-parallel membership test: decide up to [`LANES`] observer
    /// functions packed into `phis` in one call, returning a verdict mask
    /// with bit `j` set iff lane `j`'s pair is in the model.
    ///
    /// Bits outside [`LanePack::used`] and lanes whose observer failed
    /// validation ([`LanePack::valid`] cleared) are always 0. The default
    /// extracts each valid lane and runs the scalar
    /// [`contains_with`](MemoryModel::contains_with); the hot models
    /// override this with SWAR kernels.
    fn contains_lanes(&self, c: &Computation, phis: &LanePack, s: &mut LaneScratch) -> u64 {
        let mut verdict = 0u64;
        let mut rem = phis.valid();
        while rem != 0 {
            let lane = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let phi = phis.extract(c, lane);
            if self.contains_with(c, &phi, &mut s.check) {
                verdict |= 1u64 << lane;
            }
        }
        verdict
    }
}

/// The weakest memory model: every valid (computation, observer) pair.
///
/// Equals NN-dag consistency with predicate `false`; useful as a baseline
/// and for testing the relation engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyObserver;

impl MemoryModel for AnyObserver {
    fn name(&self) -> &str {
        "Any"
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        phi.is_valid_for(c)
    }

    fn contains_incremental(
        &self,
        c: &Computation,
        phi: &ObserverFunction,
        new: ccmm_dag::NodeId,
        _scratch: &mut CheckScratch,
    ) -> bool {
        // Validity decomposes per (l, u) entry, and the prefix entries
        // were validated when they were committed, so only the new node's
        // row needs Definition 2. Condition 2.2 (¬(new ≺ observed)) holds
        // for free: the new node is maximal.
        if phi.node_count() != c.node_count() || phi.num_locations() != c.num_locations() {
            return false;
        }
        for l in c.locations() {
            let observed = phi.get(l, new);
            if c.op(new).is_write_to(l) {
                if observed != Some(new) {
                    return false;
                }
                continue;
            }
            if let Some(v) = observed {
                if !c.op(v).is_write_to(l) {
                    return false;
                }
                debug_assert!(!c.precedes(new, v), "the revealed node must be maximal");
            }
        }
        true
    }

    fn contains_lanes(&self, _c: &Computation, phis: &LanePack, _s: &mut LaneScratch) -> u64 {
        phis.valid()
    }
}

/// The six models of Figure 1 plus the [`AnyObserver`] baseline, as a
/// dynamic enum for experiment drivers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Sequential consistency.
    Sc,
    /// Location consistency (coherence).
    Lc,
    /// NN-dag consistency (strongest dag-consistent model).
    Nn,
    /// NW-dag consistency.
    Nw,
    /// WN-dag consistency.
    Wn,
    /// WW-dag consistency (the original dag consistency of \[BFJ+96b\]).
    Ww,
    /// All valid observer functions.
    Any,
}

impl Model {
    /// All models, strongest-first per Figure 1 (NW/WN order arbitrary).
    pub const ALL: [Model; 7] =
        [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww, Model::Any];

    /// The paper's name for the model.
    pub fn name(self) -> &'static str {
        match self {
            Model::Sc => "SC",
            Model::Lc => "LC",
            Model::Nn => "NN",
            Model::Nw => "NW",
            Model::Wn => "WN",
            Model::Ww => "WW",
            Model::Any => "Any",
        }
    }

    /// The telemetry counter tracking Φ checks dispatched to this model.
    fn phi_counter(self) -> Counter {
        match self {
            Model::Sc => Counter::PhiChecksSc,
            Model::Lc => Counter::PhiChecksLc,
            Model::Nn => Counter::PhiChecksNn,
            Model::Nw => Counter::PhiChecksNw,
            Model::Wn => Counter::PhiChecksWn,
            Model::Ww => Counter::PhiChecksWw,
            Model::Any => Counter::PhiChecksAny,
        }
    }

    /// Membership test, dispatching to the concrete checker.
    pub fn contains(self, c: &Computation, phi: &ObserverFunction) -> bool {
        telemetry::count(self.phi_counter(), 1);
        match self {
            Model::Sc => Sc.contains(c, phi),
            Model::Lc => Lc.contains(c, phi),
            Model::Nn => Nn::default().contains(c, phi),
            Model::Nw => Nw::default().contains(c, phi),
            Model::Wn => Wn::default().contains(c, phi),
            Model::Ww => Ww::default().contains(c, phi),
            Model::Any => AnyObserver.contains(c, phi),
        }
    }

    /// Whether the paper claims the model is constructible (Figure 1 and
    /// Theorem 19; NN, NW, WN are not constructible).
    pub fn paper_says_constructible(self) -> bool {
        matches!(self, Model::Sc | Model::Lc | Model::Ww | Model::Any)
    }
}

impl MemoryModel for Model {
    fn name(&self) -> &str {
        Model::name(*self)
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        Model::contains(*self, c, phi)
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        telemetry::count(self.phi_counter(), 1);
        telemetry::count(Counter::ScratchReuse, 1);
        match self {
            Model::Sc => Sc.contains_with(c, phi, s),
            Model::Lc => Lc.contains_with(c, phi, s),
            Model::Nn => Nn::default().contains_with(c, phi, s),
            Model::Nw => Nw::default().contains_with(c, phi, s),
            Model::Wn => Wn::default().contains_with(c, phi, s),
            Model::Ww => Ww::default().contains_with(c, phi, s),
            Model::Any => AnyObserver.contains(c, phi),
        }
    }

    fn contains_incremental(
        &self,
        c: &Computation,
        phi: &ObserverFunction,
        new: ccmm_dag::NodeId,
        s: &mut CheckScratch,
    ) -> bool {
        match self {
            Model::Any => {
                telemetry::count(self.phi_counter(), 1);
                AnyObserver.contains_incremental(c, phi, new, s)
            }
            _ => self.contains_with(c, phi, s),
        }
    }

    fn contains_lanes(&self, c: &Computation, phis: &LanePack, s: &mut LaneScratch) -> u64 {
        let slots = u64::from(phis.used().count_ones());
        telemetry::count(self.phi_counter(), slots);
        telemetry::count(Counter::ScratchReuse, slots);
        match self {
            Model::Sc => Sc.contains_lanes(c, phis, s),
            Model::Lc => Lc.contains_lanes(c, phis, s),
            Model::Nn => Nn::default().contains_lanes(c, phis, s),
            Model::Nw => Nw::default().contains_lanes(c, phis, s),
            Model::Wn => Wn::default().contains_lanes(c, phis, s),
            Model::Ww => Ww::default().contains_lanes(c, phis, s),
            Model::Any => AnyObserver.contains_lanes(c, phis, s),
        }
    }
}

impl std::fmt::Display for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Location, Op};

    #[test]
    fn any_rejects_invalid_observers() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(Location::new(0))]);
        let bad = ObserverFunction::bottom(1, 1); // write not self-observing
        assert!(!AnyObserver.contains(&c, &bad));
        assert!(AnyObserver.contains(&c, &ObserverFunction::base(&c)));
    }

    #[test]
    fn model_enum_names() {
        assert_eq!(Model::Sc.name(), "SC");
        assert_eq!(Model::Ww.name(), "WW");
        assert_eq!(Model::ALL.len(), 7);
    }

    #[test]
    fn empty_pair_in_every_model() {
        // Definition 3: {(ε, Φ_ε)} ⊆ Δ for every model.
        let c = Computation::empty();
        let phi = ObserverFunction::empty();
        for m in Model::ALL {
            assert!(m.contains(&c, &phi), "(ε, Φ_ε) missing from {m}");
        }
    }

    #[test]
    fn paper_constructibility_claims() {
        assert!(Model::Sc.paper_says_constructible());
        assert!(Model::Lc.paper_says_constructible());
        assert!(Model::Ww.paper_says_constructible());
        assert!(!Model::Nn.paper_says_constructible());
        assert!(!Model::Nw.paper_says_constructible());
        assert!(!Model::Wn.paper_says_constructible());
    }
}
