//! Model combinators: intersections and unions of memory models.
//!
//! Memory models are sets, so they compose set-theoretically. The
//! combinators make the paper's algebra executable:
//!
//! * Definition 8 builds Δ* as a **union** of constructible models, and
//!   Lemma 7 proves such unions are constructible — machine-checked in
//!   the tests;
//! * **intersections** of Q-dag-consistency models are again
//!   Q-dag-consistency models for the *disjunction* of the predicates
//!   (more triples constrained), e.g. `WN ∩ NW = QDag(WN-pred ∨ NW-pred)`
//!   — strictly between NN and both factors.

use crate::computation::Computation;
use crate::model::{CheckScratch, MemoryModel};
use crate::observer::ObserverFunction;

/// The intersection `A ∩ B` — at least as strong as both factors.
pub struct Intersection<A, B> {
    name: String,
    /// First factor.
    pub a: A,
    /// Second factor.
    pub b: B,
}

impl<A: MemoryModel, B: MemoryModel> Intersection<A, B> {
    /// Builds `a ∩ b`.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("({} ∩ {})", a.name(), b.name());
        Intersection { name, a, b }
    }
}

impl<A: MemoryModel, B: MemoryModel> MemoryModel for Intersection<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        self.a.contains(c, phi) && self.b.contains(c, phi)
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        self.a.contains_with(c, phi, s) && self.b.contains_with(c, phi, s)
    }
}

/// The union `A ∪ B` — at least as weak as both factors.
pub struct Union<A, B> {
    name: String,
    /// First member.
    pub a: A,
    /// Second member.
    pub b: B,
}

impl<A: MemoryModel, B: MemoryModel> Union<A, B> {
    /// Builds `a ∪ b`.
    pub fn new(a: A, b: B) -> Self {
        let name = format!("({} ∪ {})", a.name(), b.name());
        Union { name, a, b }
    }
}

impl<A: MemoryModel, B: MemoryModel> MemoryModel for Union<A, B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        self.a.contains(c, phi) || self.b.contains(c, phi)
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        self.a.contains_with(c, phi, s) || self.b.contains_with(c, phi, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, Model, Nn, Nw, Sc, Wn, Ww};
    use crate::props::{check_constructible_aug, check_monotonic};
    use crate::relation::{compare, Relation};
    use crate::universe::Universe;

    #[test]
    fn names_compose() {
        let m = Intersection::new(Sc, Lc);
        assert_eq!(m.name(), "(SC ∩ LC)");
        let u = Union::new(Sc, Lc);
        assert_eq!(u.name(), "(SC ∪ LC)");
    }

    #[test]
    fn intersection_with_superset_is_identity() {
        // LC ⊆ WW, so LC ∩ WW = LC.
        let u = Universe::new(3, 1);
        let m = Intersection::new(Lc, Ww::default());
        assert_eq!(compare(&m, &Lc, &u).relation, Relation::Equal);
    }

    #[test]
    fn union_with_superset_is_superset() {
        let u = Universe::new(3, 1);
        let m = Union::new(Lc, Ww::default());
        let ww: Ww = Ww::default();
        assert_eq!(compare(&m, &ww, &u).relation, Relation::Equal);
    }

    #[test]
    fn lemma_7_union_of_constructible_is_constructible() {
        // SC, LC and WW are constructible (Theorem 19 + Figure 1); all
        // three pairwise unions must pass the constructibility scan.
        let u = Universe::new(4, 1);
        assert!(check_constructible_aug(&Union::new(Sc, Ww::default()), &u).is_ok());
        assert!(check_constructible_aug(&Union::new(Sc, Lc), &u).is_ok());
        assert!(check_constructible_aug(&Union::new(Lc, Ww::default()), &u).is_ok());
    }

    #[test]
    fn unions_and_intersections_preserve_monotonicity() {
        let u = Universe::new(3, 1);
        assert!(check_monotonic(&Union::new(Lc, Wn::default()), &u).is_ok());
        assert!(check_monotonic(&Intersection::new(Nw::default(), Wn::default()), &u).is_ok());
    }

    #[test]
    fn wn_cap_nw_sits_strictly_between_nn_and_both() {
        // Intersection of Q-models = Q-model of the predicate disjunction:
        // stronger than each factor, weaker than NN (whose predicate is
        // `true`). At ≤ 4 nodes the intersection *coincides* with NN
        // (machine fact below); the smallest separator needs two isolated
        // writes plus a three-read chain observing x, y, x — the read-read
        // triple that only NN's unconditional predicate constrains.
        let u = Universe::new(4, 1);
        let meet = Intersection::new(Wn::default(), Nw::default());
        let nn: Nn = Nn::default();
        assert_eq!(compare(&nn, &meet, &u).relation, Relation::Equal, "NN = WN∩NW at ≤4 nodes");
        let wn: Wn = Wn::default();
        let nw: Nw = Nw::default();
        assert_eq!(compare(&meet, &wn, &u).relation, Relation::StrictlyStronger);
        assert_eq!(compare(&meet, &nw, &u).relation, Relation::StrictlyStronger);

        // The 5-node separator: x ∥ y writes; chain R(x) -> R(y) -> R(x).
        use crate::computation::Computation;
        use crate::observer::ObserverFunction;
        use crate::op::{Location, Op};
        use ccmm_dag::NodeId;
        let l0 = Location::new(0);
        let c = Computation::from_edges(
            5,
            &[(2, 3), (3, 4)],
            vec![Op::Write(l0), Op::Write(l0), Op::Read(l0), Op::Read(l0), Op::Read(l0)],
        );
        let phi = ObserverFunction::base(&c)
            .with(l0, NodeId::new(2), Some(NodeId::new(0)))
            .with(l0, NodeId::new(3), Some(NodeId::new(1)))
            .with(l0, NodeId::new(4), Some(NodeId::new(0)));
        assert!(meet.contains(&c, &phi), "x,y,x observation is in WN ∩ NW");
        assert!(!nn.contains(&c, &phi), "…but not in NN: strictness witnessed");
    }

    #[test]
    fn intersection_of_nonconstructible_can_stay_nonconstructible() {
        // WN ∩ NW inherits the Figure-4 failure mode.
        let u = Universe::new(5, 1);
        let meet = Intersection::new(Wn::default(), Nw::default());
        assert!(check_constructible_aug(&meet, &u).is_err());
    }

    #[test]
    fn union_of_incomparable_models_is_weaker_than_both() {
        let u = Universe::new(4, 1);
        let join = Union::new(Wn::default(), Nw::default());
        for m in [Model::Wn, Model::Nw] {
            let cmp = compare(&m, &join, &u);
            assert_eq!(cmp.relation, Relation::StrictlyStronger, "{m} vs union");
        }
        // But still stronger than WW? The union of two subsets of WW is a
        // subset of WW; strictness is a machine question:
        let ww: Ww = Ww::default();
        let cmp = compare(&join, &ww, &u);
        assert!(
            matches!(cmp.relation, Relation::StrictlyStronger | Relation::Equal),
            "WN ∪ NW ⊆ WW must hold, got {:?}",
            cmp.relation
        );
    }
}
