//! Bit-parallel lane kernels: 64 observer functions per `u64` word.
//!
//! The sweep hot loop asks the same membership question for one
//! computation `C` against many observer functions Φ. All of those Φ
//! share `C`'s dag, reachability closure, and write index — only the
//! observed-write table differs. This module packs up to [`LANES`]
//! observer functions into a [`LanePack`] (one per bit of a `u64` *lane
//! word*) and evaluates a model's condition on all of them in lockstep:
//! per-model kernels return a 64-bit verdict mask instead of a `bool`.
//!
//! **Layout.** For each `(location, node)` cell the pack stores a 64-byte
//! *column*: byte `j` is lane `j`'s observed value at that cell, encoded
//! as `0` for ⊥ and `i + 1` for the `i`-th write of
//! `Computation::writes_to(l)` (ascending node order — the same compact
//! write index the LC block decomposition and the SC packed memo keys
//! use). A column lives in 8 consecutive `u64` words, so the two
//! primitive questions every kernel asks — "which lanes observe ⊥ here?"
//! and "which lanes agree between two cells?" — reduce to branch-free
//! SWAR byte tests ([`zero_lanes`], [`eq_lanes`]).
//!
//! **Φ-lanes, not labelling-lanes.** Packing 64 labellings of one poset
//! would force every lane to re-derive its own writes index and validity
//! while sharing nothing but the dag shape; packing 64 Φ of one
//! `(poset, labelling)` shares the dag *and* the op labelling *and* the
//! reachability closure, and the structural scans (ancestor loops,
//! between-sets, Q-predicate tests, block contraction edges) amortize
//! across all 64 lanes. Orbit weights are untouched: a verdict mask
//! contributes `weight × popcount(verdict)` exactly as 64 scalar calls
//! would have.
//!
//! Invalid observers (Definition 2 violations) are recorded in the
//! pack's `valid` mask at push time; kernels mask every verdict by it,
//! matching the scalar contract that models contain only valid pairs.

use crate::computation::Computation;
use crate::model::dagcons::QPredicate;
use crate::model::sc::Sc;
use crate::model::CheckScratch;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use crate::telemetry::{self, Counter};
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;

/// Number of observer lanes per pack: one per bit of a `u64`.
pub const LANES: usize = 64;

const LOW7: u64 = 0x7f7f_7f7f_7f7f_7f7f;
const HIGH: u64 = 0x8080_8080_8080_8080;
/// Multiplier gathering the eight `0x80`-position bits of a word into
/// the top byte: byte `j` (weight `2^{8j}`) carries `2^{7-j}`, so bit
/// positions `8j + 7 - j + 7` are pairwise distinct and carry-free.
const GATHER: u64 = 0x0102_0408_1020_4080;

/// `0x80` set in every byte of `x` that is zero. Exact per byte: the
/// textbook `(x - LO) & !x & HI` haszero trick admits borrow propagation
/// across bytes (e.g. `0x0100` falsely flags its high byte), so we use
/// the carry-free form — `((x & 0x7f..) + 0x7f..) | x` has the high bit
/// of a byte set iff that byte is nonzero.
#[inline]
fn zero_bytes(x: u64) -> u64 {
    !(((x & LOW7) + LOW7) | x) & HIGH
}

/// Compacts a `0x80`-per-byte mask into the low 8 bits (byte `j` → bit
/// `j`).
#[inline]
fn movemask(m: u64) -> u8 {
    ((((m & HIGH) >> 7).wrapping_mul(GATHER)) >> 56) as u8
}

/// Lane mask of column bytes that are ⊥ (zero): bit `j` set iff lane
/// `j`'s byte in the column is zero. Columns may be truncated to their
/// occupied words ([`LanePack::col`]); lanes beyond the slice read as 0
/// in the mask, which every consumer bounds by `used`/`valid`.
#[inline]
pub(crate) fn zero_lanes(col: &[u64]) -> u64 {
    debug_assert!(col.len() <= 8);
    let mut out = 0u64;
    for (k, &w) in col.iter().enumerate() {
        out |= u64::from(movemask(zero_bytes(w))) << (8 * k);
    }
    out
}

/// Lane mask of byte-wise equality between two columns: bit `j` set iff
/// lane `j` observes the same value in both. Truncated like
/// [`zero_lanes`].
#[inline]
pub(crate) fn eq_lanes(a: &[u64], b: &[u64]) -> u64 {
    debug_assert!(a.len() <= 8 && a.len() == b.len());
    let mut out = 0u64;
    for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
        out |= u64::from(movemask(zero_bytes(x ^ y))) << (8 * k);
    }
    out
}

/// Lane mask of column bytes equal to the constant `b` (the byte
/// broadcast is one multiply). Truncated like [`zero_lanes`].
#[inline]
fn eq_const_lanes(col: &[u64], b: u8) -> u64 {
    let pat = u64::from(b).wrapping_mul(0x0101_0101_0101_0101);
    let mut out = 0u64;
    for (k, &w) in col.iter().enumerate() {
        out |= u64::from(movemask(zero_bytes(w ^ pat))) << (8 * k);
    }
    out
}

/// Up to [`LANES`] observer functions for one computation, packed
/// column-wise for the lane kernels.
#[derive(Default)]
pub struct LanePack {
    /// Column storage: cell `(l, u)` occupies the 8 words at
    /// `((l * n + u) * 8)..`, byte `j` of the column = lane `j`'s encoded
    /// observation.
    cols: Vec<u64>,
    /// `widx[l * n + w]` = 1-based index of node `w` in `writes_to(l)`,
    /// 0 when `w` is not a write to `l`.
    widx: Vec<u8>,
    /// Lanes whose Φ is a valid observer function for the computation.
    valid: u64,
    /// Lanes pushed so far.
    len: u32,
    /// Occupied column words, `⌈len / 8⌉` — [`col`] slices to this so the
    /// SWAR kernels never scan words no lane lives in.
    ///
    /// [`col`]: LanePack::col
    nwords: u32,
    /// Bumped on every mutation; keys the [`LaneScratch`] LC cache.
    generation: u64,
    num_locations: usize,
    node_count: usize,
}

impl LanePack {
    /// An empty pack; storage grows on [`prepare`] and is then reused.
    ///
    /// [`prepare`]: LanePack::prepare
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-shapes the pack for computation `c`, clearing all lanes and
    /// rebuilding the per-location write index. Reuses storage.
    pub fn prepare(&mut self, c: &Computation) {
        let (locs, n) = (c.num_locations(), c.node_count());
        self.num_locations = locs;
        self.node_count = n;
        self.cols.clear();
        self.cols.resize(locs * n * 8, 0);
        self.widx.clear();
        self.widx.resize(locs * n, 0);
        for l in c.locations() {
            let writes = c.writes_to(l);
            debug_assert!(writes.len() < 255, "write index must fit a byte");
            for (i, &w) in writes.iter().enumerate() {
                self.widx[l.index() * n + w.index()] = (i + 1) as u8;
            }
        }
        self.valid = 0;
        self.len = 0;
        self.nwords = 0;
        self.generation = self.generation.wrapping_add(1);
    }

    /// Drops all lanes (keeps the shape and write index of the current
    /// computation) so the pack can take the next batch of observers.
    /// Stale column bytes are *not* zeroed — every kernel result is
    /// masked by [`used`]/[`valid`], so leftover bytes in dropped lanes
    /// are unobservable.
    ///
    /// [`used`]: LanePack::used
    /// [`valid`]: LanePack::valid
    pub fn clear_lanes(&mut self) {
        self.valid = 0;
        self.len = 0;
        self.nwords = 0;
        self.generation = self.generation.wrapping_add(1);
    }

    /// Number of lanes pushed since the last [`prepare`]/[`clear_lanes`].
    ///
    /// [`prepare`]: LanePack::prepare
    /// [`clear_lanes`]: LanePack::clear_lanes
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no lanes are pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether all [`LANES`] lanes are occupied.
    pub fn is_full(&self) -> bool {
        self.len as usize == LANES
    }

    /// Mask of occupied lanes (lowest bits first, in push order).
    pub fn used(&self) -> u64 {
        if self.len as usize >= LANES {
            !0
        } else {
            (1u64 << self.len) - 1
        }
    }

    /// Mask of occupied lanes holding a *valid* observer function for
    /// the prepared computation. Kernel verdicts are subsets of this.
    pub fn valid(&self) -> u64 {
        self.valid
    }

    /// Packs `phi` into the next free lane and returns its index.
    /// Panics if the pack is full; the caller flushes at [`LANES`].
    pub fn push(&mut self, c: &Computation, phi: &ObserverFunction) -> usize {
        let valid = phi.is_valid_for(c);
        self.push_raw(c, phi, valid)
    }

    /// [`push`] for observers the caller already knows are valid — the
    /// exhaustive enumeration ([`for_each_observer`]) yields only valid
    /// Φ, so the sweep engines skip re-deriving Definition 2 per lane.
    ///
    /// [`push`]: LanePack::push
    /// [`for_each_observer`]: crate::enumerate::for_each_observer
    pub fn push_valid(&mut self, c: &Computation, phi: &ObserverFunction) -> usize {
        debug_assert!(phi.is_valid_for(c), "push_valid given an invalid observer");
        self.push_raw(c, phi, true)
    }

    fn push_raw(&mut self, c: &Computation, phi: &ObserverFunction, valid: bool) -> usize {
        assert!(!self.is_full(), "lane pack is full");
        let lane = self.len as usize;
        let n = self.node_count;
        let (word, shift) = (lane / 8, (lane % 8) * 8);
        for l in c.locations() {
            for u in c.nodes() {
                let byte = match phi.get(l, u) {
                    None => 0u8,
                    Some(w) => self.widx[l.index() * n + w.index()],
                };
                let idx = (l.index() * n + u.index()) * 8 + word;
                self.cols[idx] =
                    (self.cols[idx] & !(0xffu64 << shift)) | (u64::from(byte) << shift);
            }
        }
        if valid {
            self.valid |= 1u64 << lane;
        }
        self.len += 1;
        self.nwords = self.len.div_ceil(8);
        self.generation = self.generation.wrapping_add(1);
        lane
    }

    /// The column of cell `(l, u)`, truncated to the occupied words so
    /// underfull packs cost proportionally less SWAR work. Lanes beyond
    /// the slice read as 0 in every derived mask; consumers bound their
    /// results by [`used`]/[`valid`].
    ///
    /// [`used`]: LanePack::used
    /// [`valid`]: LanePack::valid
    #[inline]
    pub(crate) fn col(&self, l: Location, u: NodeId) -> &[u64] {
        let base = (l.index() * self.node_count + u.index()) * 8;
        &self.cols[base..base + self.nwords as usize]
    }

    /// 1-based index of `w` in `writes_to(l)` (0 when not a write to
    /// `l`) — the byte value a lane observing `w` at `l` carries.
    #[inline]
    fn widx_of(&self, l: Location, w: NodeId) -> u8 {
        self.widx[l.index() * self.node_count + w.index()]
    }

    /// Pack mutation counter; the [`LaneScratch`] LC cache keys on it.
    #[inline]
    fn generation(&self) -> u64 {
        self.generation
    }

    /// Lane `j`'s byte at cell `(l, u)`: 0 for ⊥, else 1-based write
    /// index.
    #[inline]
    fn byte(&self, l: Location, u: NodeId, lane: usize) -> u8 {
        (self.col(l, u)[lane / 8] >> ((lane % 8) * 8)) as u8
    }

    /// Reconstructs lane `lane`'s observer function. Only meaningful for
    /// occupied lanes; an *invalid* lane decodes to the nearest valid
    /// encoding (a non-write observation cannot be represented), which is
    /// fine because kernels never report invalid lanes as members.
    pub fn extract(&self, c: &Computation, lane: usize) -> ObserverFunction {
        debug_assert!(lane < self.len as usize);
        let mut phi = ObserverFunction::bottom(self.num_locations, self.node_count);
        for l in c.locations() {
            let writes = c.writes_to(l);
            for u in c.nodes() {
                let b = self.byte(l, u, lane);
                if b > 0 {
                    phi.set(l, u, Some(writes[b as usize - 1]));
                }
            }
        }
        phi
    }
}

/// Reusable working memory for the lane kernels: the Q-dag between-set,
/// the per-lane LC block-contraction buffers, the lane-parallel SC
/// search memo, and a [`CheckScratch`] for the rare per-lane SC
/// fallback (and the default per-lane trait path).
///
/// The `lc_cache` and `q_cache` memoise per pack generation: `Model::Sc`
/// prefilters through the LC kernel that `Model::Lc` also needs, and the
/// four Q-dag models share one structural scan ([`qdag_all_lanes`]) that
/// differs only in which triples each predicate counts — so a six-model
/// flush runs the LC kernel once and the Q-dag scan once. The caches key
/// on [`LanePack`]'s mutation counter, so a scratch must stay paired
/// with one pack stream — as every engine path does.
#[derive(Default)]
pub struct LaneScratch {
    pub(crate) mid: BitSet,
    adj: Vec<bool>,
    indeg: Vec<usize>,
    ready: Vec<usize>,
    placed: usize,
    lc_cache: Option<(u64, u64)>,
    q_cache: Option<(u64, [u64; 4])>,
    sc_table: Vec<(u32, u64)>,
    sc_epoch: u32,
    sc_indeg: Vec<usize>,
    pub(crate) check: CheckScratch,
}

impl LaneScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Q-dag consistency (Definition 20) on all lanes at once: the verdict
/// mask of lanes containing `(c, Φ_lane)`. The four named predicates
/// share one structural scan ([`qdag_all_lanes`]), cached per pack
/// generation, so a sweep evaluating several Q-dag models pays for the
/// ancestor/between walks once. Other (hypothetical) predicates take the
/// uncached single-model scan.
pub(crate) fn qdag_lanes<Q: QPredicate>(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> u64 {
    let slot = match Q::NAME {
        "NN" => 0,
        "NW" => 1,
        "WN" => 2,
        "WW" => 3,
        _ => return qdag_lanes_single::<Q>(c, p, s),
    };
    if let Some((generation, verdicts)) = s.q_cache {
        if generation == p.generation() {
            return verdicts[slot];
        }
    }
    let verdicts = qdag_all_lanes(c, p, s);
    s.q_cache = Some((p.generation(), verdicts));
    verdicts[slot]
}

/// The four Q-dag models in one fused scan: verdict masks in the order
/// `[NN, NW, WN, WW]`. Every predicate of Section 5 factors into "`u` is
/// ⊥-or-a-write" × "`v` is a write", so a violating triple is routed to
/// the models it fires under while the SWAR masks and the structural
/// walk (ancestors, between-sets) are computed once.
fn qdag_all_lanes(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> [u64; 4] {
    const NN: usize = 0;
    const NW: usize = 1;
    const WN: usize = 2;
    const WW: usize = 3;
    let valid = p.valid();
    if valid == 0 {
        return [0; 4];
    }
    let reach = c.reach();
    let mut viol = [0u64; 4];
    let mut saturated = [false; 4];
    'scan: for l in c.locations() {
        for w in c.nodes() {
            let col_w = p.col(l, w);
            let pending = !(viol[NN] & viol[NW] & viol[WN] & viol[WW]);
            // u = ⊥ case: Φ(l,⊥) = ⊥, so the premise needs Φ(l,w) = ⊥;
            // ⊥ counts as the virtual initial write, so the "W"-on-`u`
            // predicates always fire here.
            let bot_w = zero_lanes(col_w) & valid & pending;
            if bot_w != 0 {
                for v_idx in reach.ancestors(w).iter() {
                    let v = NodeId::new(v_idx);
                    let hit = bot_w & !zero_lanes(p.col(l, v));
                    if hit == 0 {
                        continue;
                    }
                    viol[NN] |= hit;
                    viol[WN] |= hit;
                    if c.op(v).is_write_to(l) {
                        viol[NW] |= hit;
                        viol[WW] |= hit;
                    }
                }
            }
            // u ∈ V case: lanes with Φ(l,u) = Φ(l,w) violate when some
            // middle v between u and w observes differently.
            for u_idx in reach.ancestors(w).iter() {
                let u = NodeId::new(u_idx);
                let eq_uw = eq_lanes(p.col(l, u), col_w) & valid & pending;
                if eq_uw == 0 {
                    continue;
                }
                let u_writes = c.op(u).is_write_to(l);
                reach.between_into(u, w, &mut s.mid);
                for v_idx in s.mid.iter() {
                    let v = NodeId::new(v_idx);
                    let hit = eq_uw & !eq_lanes(p.col(l, v), col_w);
                    if hit == 0 {
                        continue;
                    }
                    viol[NN] |= hit;
                    if u_writes {
                        viol[WN] |= hit;
                    }
                    if c.op(v).is_write_to(l) {
                        viol[NW] |= hit;
                        if u_writes {
                            viol[WW] |= hit;
                        }
                    }
                }
            }
            for m in 0..4 {
                if !saturated[m] && viol[m] & valid == valid {
                    saturated[m] = true;
                    telemetry::count(Counter::LaneEarlyExits, 1);
                }
            }
            if saturated == [true; 4] {
                break 'scan;
            }
        }
    }
    [valid & !viol[NN], valid & !viol[NW], valid & !viol[WN], valid & !viol[WW]]
}

/// The uncached single-predicate scan, for `QPredicate`s outside the
/// four named models. Mirrors `QDag::find_violation_with`, accumulating
/// a violation mask instead of returning the first triple.
fn qdag_lanes_single<Q: QPredicate>(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> u64 {
    let valid = p.valid();
    if valid == 0 {
        return 0;
    }
    let reach = c.reach();
    let mut viol = 0u64;
    for l in c.locations() {
        for w in c.nodes() {
            let col_w = p.col(l, w);
            // u = ⊥ case: Φ(l,⊥) = ⊥, so the premise needs Φ(l,w) = ⊥
            // and fires when any Q-ancestor v observes a write.
            let bot_w = zero_lanes(col_w) & valid & !viol;
            if bot_w != 0 {
                for v_idx in reach.ancestors(w).iter() {
                    let v = NodeId::new(v_idx);
                    if Q::holds(c, l, None, v, w) {
                        viol |= bot_w & !zero_lanes(p.col(l, v));
                    }
                }
            }
            // u ∈ V case: lanes with Φ(l,u) = Φ(l,w) violate when some
            // Q-middle v between u and w observes differently.
            for u_idx in reach.ancestors(w).iter() {
                let u = NodeId::new(u_idx);
                let eq_uw = eq_lanes(p.col(l, u), col_w) & valid & !viol;
                if eq_uw == 0 {
                    continue;
                }
                reach.between_into(u, w, &mut s.mid);
                for v_idx in s.mid.iter() {
                    let v = NodeId::new(v_idx);
                    if Q::holds(c, l, Some(u), v, w) {
                        viol |= eq_uw & !eq_lanes(p.col(l, v), col_w);
                    }
                }
            }
            if viol & valid == valid {
                telemetry::count(Counter::LaneEarlyExits, 1);
                return 0;
            }
        }
    }
    valid & !viol
}

/// Location consistency (Definition 18) on all lanes at once. Per
/// location: a lane-parallel ⊥-block edge prefilter over the dag edges
/// (an edge into the ⊥-block is infeasible under any sort), then a
/// per-surviving-lane Kahn over the block contraction — blocks are read
/// straight from the column bytes, which *are* the LC block indices.
pub(crate) fn lc_lanes(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> u64 {
    if let Some((generation, live)) = s.lc_cache {
        if generation == p.generation() {
            return live;
        }
    }
    let live = lc_lanes_uncached(c, p, s);
    s.lc_cache = Some((p.generation(), live));
    live
}

fn lc_lanes_uncached(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> u64 {
    let mut live = p.valid();
    if live == 0 {
        return 0;
    }
    for l in c.locations() {
        for (eu, ev) in c.dag().edges() {
            let (col_u, col_v) = (p.col(l, eu), p.col(l, ev));
            // Edge u→v with Φ(l,v) = ⊥ and Φ(l,u) ≠ Φ(l,v): a node
            // observing a write precedes a ⊥-observer.
            live &= !(zero_lanes(col_v) & !eq_lanes(col_u, col_v));
        }
        if live == 0 {
            telemetry::count(Counter::LaneEarlyExits, 1);
            return 0;
        }
        let nblocks = c.writes_to(l).len() + 1;
        if nblocks == 1 {
            continue; // only the ⊥-block: nothing to order
        }
        let mut rem = live;
        while rem != 0 {
            let lane = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            if !lane_block_order(c, p, l, lane, nblocks, s) {
                live &= !(1u64 << lane);
            }
        }
        if live == 0 {
            telemetry::count(Counter::LaneEarlyExits, 1);
            return 0;
        }
    }
    live
}

/// One lane's block-contraction acyclicity test for location `l` (the
/// Kahn half of `lc::lc_block_order_into`; the ⊥-edge case was already
/// filtered lane-parallel by the caller).
fn lane_block_order(
    c: &Computation,
    p: &LanePack,
    l: Location,
    lane: usize,
    nblocks: usize,
    s: &mut LaneScratch,
) -> bool {
    s.adj.clear();
    s.adj.resize(nblocks * nblocks, false);
    for (eu, ev) in c.dag().edges() {
        let (a, b) = (p.byte(l, eu, lane) as usize, p.byte(l, ev, lane) as usize);
        if a != b {
            debug_assert_ne!(b, 0, "⊥-edges were filtered lane-parallel");
            s.adj[a * nblocks + b] = true;
        }
    }
    s.indeg.clear();
    s.indeg.resize(nblocks, 0);
    for a in 0..nblocks {
        for b in 0..nblocks {
            if s.adj[a * nblocks + b] {
                s.indeg[b] += 1;
            }
        }
    }
    s.ready.clear();
    s.ready.extend((0..nblocks).filter(|&b| s.indeg[b] == 0));
    s.placed = 0;
    while let Some(b) = s.ready.pop() {
        s.placed += 1;
        for t in 0..nblocks {
            if s.adj[b * nblocks + t] {
                s.indeg[t] -= 1;
                if s.indeg[t] == 0 {
                    s.ready.push(t);
                }
            }
        }
    }
    s.placed == nblocks
}

/// Sequential consistency (Definition 17) on all lanes: the LC lane
/// kernel as an exact necessary prefilter (SC ⊆ LC, Figure 1), then
/// *one* memoised search over (scheduled-set, last-writer) states shared
/// by every surviving lane. The scalar search re-explores that state
/// space once per Φ; here each state is visited once and returns the
/// mask of lanes that can complete a per-step-consistent sort from it —
/// per-step consistency of appending node `u` is itself a SWAR test
/// (lane bytes at `(l, u)` vs the last-writer byte, [`eq_const_lanes`]).
/// Falls back to the per-lane scalar search when the state key does not
/// pack into two words (`n > 64` or more than 8 locations).
pub(crate) fn sc_lanes(c: &Computation, p: &LanePack, s: &mut LaneScratch) -> u64 {
    let feasible = lc_lanes(c, p, s);
    if feasible == 0 {
        return 0;
    }
    // The memo table is dense: index = last-writer mixed radix × 2^n +
    // scheduled set. Out-of-range shapes fall back to the per-lane
    // scalar search (unreachable at the bounded-universe sizes).
    let n = c.node_count();
    let mut strides = [0usize; 8];
    let mut radix = 1usize;
    if n < 20 && c.num_locations() <= 8 {
        for l in c.locations() {
            strides[l.index()] = radix;
            radix = radix.saturating_mul(c.writes_to(l).len() + 1);
        }
    }
    let table_size = radix.saturating_mul(1 << n.min(20));
    if n >= 20 || c.num_locations() > 8 || table_size > 1 << 20 {
        let mut verdict = 0u64;
        let mut rem = feasible;
        while rem != 0 {
            let lane = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let phi = p.extract(c, lane);
            if Sc::solve(c, &phi, &mut s.check.sc) {
                verdict |= 1u64 << lane;
            }
        }
        return verdict;
    }
    s.sc_epoch = s.sc_epoch.wrapping_add(1);
    if s.sc_epoch == 0 {
        s.sc_table.clear();
        s.sc_epoch = 1;
    }
    if s.sc_table.len() < table_size {
        s.sc_table.resize(table_size, (0, 0));
    }
    s.sc_indeg.clear();
    s.sc_indeg.extend(c.nodes().map(|u| c.dag().in_degree(u)));
    let mut search = ScLaneSearch {
        c,
        p,
        feasible,
        full: (1u64 << n) - 1,
        shift: n,
        strides,
        sched: 0,
        lasts: 0,
        last_dense: 0,
        indeg: &mut s.sc_indeg,
        table: &mut s.sc_table,
        epoch: s.sc_epoch,
    };
    search.run()
}

/// The lane-parallel SC search. `sched`/`lasts` are the packed state the
/// scalar `ScScratch` memo uses — node set in one word, last writer per
/// location at 8 bits (0 = ⊥, else 1-based write index, matching the
/// pack's column encoding so appendability is a byte compare).
/// `last_dense` tracks the mixed-radix value of `lasts` so the memo
/// index `last_dense << shift | sched` is maintained incrementally; the
/// epoch stamp makes table reuse across calls O(1).
struct ScLaneSearch<'a> {
    c: &'a Computation,
    p: &'a LanePack,
    /// LC-feasible valid lanes; every mask in the search lives below it.
    feasible: u64,
    full: u64,
    shift: usize,
    strides: [usize; 8],
    sched: u64,
    lasts: u64,
    last_dense: usize,
    indeg: &'a mut Vec<usize>,
    table: &'a mut Vec<(u32, u64)>,
    epoch: u32,
}

impl ScLaneSearch<'_> {
    /// Mask of lanes for which appending `u` now is per-step consistent:
    /// at every location `u` does not write, lane bytes at `(l, u)` must
    /// equal the current last-writer byte.
    fn appendable(&self, u: NodeId) -> u64 {
        let mut mask = self.feasible;
        for l in self.c.locations() {
            if self.c.op(u).is_write_to(l) {
                continue; // Φ(l, u) = u by Def. 2.3; satisfied on append.
            }
            let expected = (self.lasts >> (8 * l.index())) as u8;
            mask &= eq_const_lanes(self.p.col(l, u), expected);
            if mask == 0 {
                break;
            }
        }
        mask
    }

    /// Mask of lanes that can extend the current state to a full
    /// per-step-consistent topological sort. A function of the state
    /// alone, so each `(sched, lasts)` pair is solved once for all lanes.
    fn run(&mut self) -> u64 {
        if self.sched == self.full {
            return self.feasible;
        }
        let key = self.last_dense << self.shift | self.sched as usize;
        if self.table[key].0 == self.epoch {
            telemetry::count(Counter::ScMemoHits, 1);
            return self.table[key].1;
        }
        let mut out = 0u64;
        for u in self.c.nodes() {
            if self.sched >> u.index() & 1 == 1 || self.indeg[u.index()] != 0 {
                continue;
            }
            let can_append = self.appendable(u);
            if can_append == 0 {
                continue;
            }
            // Apply.
            self.sched |= 1u64 << u.index();
            for &v in self.c.dag().successors(u) {
                self.indeg[v.index()] -= 1;
            }
            let (saved, saved_dense) = (self.lasts, self.last_dense);
            if let Op::Write(l) = self.c.op(u) {
                let shift = 8 * l.index();
                let old = (self.lasts >> shift) as u8;
                let new = self.p.widx_of(l, u);
                self.lasts = (self.lasts & !(0xffu64 << shift)) | (u64::from(new) << shift);
                let stride = self.strides[l.index()];
                self.last_dense = self.last_dense - old as usize * stride + new as usize * stride;
            }
            let completes = self.run();
            // Undo.
            self.lasts = saved;
            self.last_dense = saved_dense;
            for &v in self.c.dag().successors(u) {
                self.indeg[v.index()] += 1;
            }
            self.sched &= !(1u64 << u.index());
            out |= can_append & completes;
            if out == self.feasible {
                break; // every lane already has a witness; `out` is maximal
            }
        }
        telemetry::count(Counter::ScMemoMisses, 1);
        self.table[key] = (self.epoch, out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_observer;
    use crate::model::{MemoryModel, Model};
    use crate::op::Op;
    use crate::universe::Universe;
    use std::ops::ControlFlow;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn swar_masks_are_exact_per_byte() {
        // The borrow-propagation counterexample for the textbook haszero
        // `(x - LO) & !x & HI`: in 0x0100 the nonzero byte 1 must NOT be
        // flagged, while every actually-zero byte must be.
        assert_eq!(zero_bytes(0x0100), HIGH & !0x8000);
        assert_eq!(zero_bytes(0), HIGH);
        assert_eq!(zero_bytes(!0), 0);
        // Nonzero bytes at positions 1, 3, 4, 6; zero bytes at 0, 2, 5, 7.
        assert_eq!(zero_bytes(0x0080_0001_ff00_7f00), 0x8000_8000_0080_0080);
        // movemask gathers byte-high-bits to the low byte, bit j = byte j.
        assert_eq!(movemask(HIGH), 0xff);
        assert_eq!(movemask(0x80), 0x01);
        assert_eq!(movemask(0x8000_0000_0000_0000), 0x80);
        assert_eq!(movemask(0x0080_8000_0000_8000), 0b0110_0010);
    }

    #[test]
    fn zero_and_eq_lanes_cover_all_64_lanes() {
        let mut a = [0u64; 8];
        let mut b = [0u64; 8];
        // Lane j gets byte value (j % 5) in a, (j % 3) in b.
        for j in 0..LANES {
            a[j / 8] |= ((j % 5) as u64) << ((j % 8) * 8);
            b[j / 8] |= ((j % 3) as u64) << ((j % 8) * 8);
        }
        let za = zero_lanes(&a);
        let eq = eq_lanes(&a, &b);
        for j in 0..LANES {
            assert_eq!(za >> j & 1 == 1, j % 5 == 0, "zero_lanes lane {j}");
            assert_eq!(eq >> j & 1 == 1, j % 5 == j % 3, "eq_lanes lane {j}");
        }
    }

    #[test]
    fn pack_round_trips_observers_in_push_order() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let mut p = LanePack::new();
        p.prepare(&c);
        let mut pushed = Vec::new();
        let _ = for_each_observer(&c, |phi| {
            pushed.push(phi.clone());
            p.push(&c, phi);
            ControlFlow::Continue(())
        });
        assert!(pushed.len() > 1 && pushed.len() <= LANES);
        assert_eq!(p.len(), pushed.len());
        assert_eq!(p.valid(), p.used(), "enumerated observers are all valid");
        for (j, phi) in pushed.iter().enumerate() {
            assert_eq!(&p.extract(&c, j), phi, "lane {j} round trip");
        }
    }

    #[test]
    fn invalid_lane_is_masked_out() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let mut p = LanePack::new();
        p.prepare(&c);
        p.push(&c, &ObserverFunction::base(&c));
        // Write not self-observing: invalid (Definition 2.3).
        p.push(&c, &ObserverFunction::bottom(1, 2));
        assert_eq!(p.used(), 0b11);
        assert_eq!(p.valid(), 0b01);
        let mut s = LaneScratch::new();
        for m in Model::ALL {
            assert_eq!(m.contains_lanes(&c, &p, &mut s) & 0b10, 0, "{m} accepted invalid lane");
        }
    }

    #[test]
    fn clear_lanes_keeps_shape_and_masks_stale_bytes() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let mut p = LanePack::new();
        p.prepare(&c);
        // First batch: a rejected-by-all Φ (initial value resurfaces).
        let bad = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), None);
        p.push(&c, &bad);
        p.clear_lanes();
        // Second batch: one accepted Φ in lane 0; lane 1+ holds stale
        // bytes from the first batch, which must not leak into verdicts.
        let good =
            ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), Some(n(0)));
        p.push(&c, &good);
        let mut s = LaneScratch::new();
        for m in [Model::Sc, Model::Lc, Model::Nn, Model::Ww] {
            assert_eq!(m.contains_lanes(&c, &p, &mut s), 0b01, "{m}");
        }
    }

    /// Exhaustive lane-vs-scalar differential over every computation of a
    /// small universe, all models, full packs and underfull tails.
    fn differential(bound: usize, locs: usize) {
        let u = Universe::new(bound, locs);
        let mut pack = LanePack::new();
        let mut ls = LaneScratch::new();
        let mut check = CheckScratch::new();
        let _ = u.for_each_computation(|c| {
            pack.prepare(c);
            let mut scalars: Vec<u64> = vec![0; Model::ALL.len()];
            let mut base = 0usize;
            let mut flush = |pack: &mut LanePack, scalars: &mut Vec<u64>, base: usize| {
                for (mi, m) in Model::ALL.iter().enumerate() {
                    let lanes = m.contains_lanes(c, pack, &mut ls);
                    assert_eq!(
                        lanes,
                        scalars[mi],
                        "{m} lane/scalar split on {c:?} (lanes {base}..{})",
                        base + pack.len()
                    );
                    scalars[mi] = 0;
                }
            };
            let _ = for_each_observer(c, |phi| {
                let lane = pack.push(c, phi);
                for (mi, m) in Model::ALL.iter().enumerate() {
                    if m.contains_with(c, phi, &mut check) {
                        scalars[mi] |= 1u64 << lane;
                    }
                }
                if pack.is_full() {
                    flush(&mut pack, &mut scalars, base);
                    base += LANES;
                    pack.clear_lanes();
                }
                ControlFlow::Continue(())
            });
            if !pack.is_empty() {
                flush(&mut pack, &mut scalars, base);
            }
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn lanes_match_scalar_exhaustively_bound_3() {
        differential(3, 1);
    }

    #[test]
    fn lanes_match_scalar_exhaustively_two_locations() {
        differential(2, 2);
    }
}
