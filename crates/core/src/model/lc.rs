//! Location consistency (Definition 18) — a polynomial-time checker.
//!
//! `(C, Φ) ∈ LC` iff for every location `l` there is a topological sort
//! `T_l ∈ TS(C)` with `Φ(l, ·) = W_{T_l}(l, ·)`. Naively this quantifies
//! over exponentially many sorts; totality of Φ collapses it to a
//! linear-time test per location:
//!
//! **Block decomposition.** Fix `l`. Every write to `l` observes itself
//! (Def. 2.3), so the nodes partition into the *⊥-block*
//! `{u : Φ(l,u) = ⊥}` and one *block* `S_w = {u : Φ(l,u) = w}` per write
//! `w`, whose only write is its head `w`.
//!
//! **Claim.** `Φ(l,·)` is a last-writer function of some sort iff the
//! *block contraction* digraph (an edge `A → B` whenever some dag edge
//! goes from a node of `A` to a node of `B`, `A ≠ B`) is acyclic and no
//! edge enters the ⊥-block.
//!
//! *Necessity:* by Theorem 15, the observers of `w` form a T-convex
//! interval starting at `w`; distinct blocks are disjoint intervals of
//! `T_l`, so contraction edges point forward in interval order (acyclic),
//! and a node observing ⊥ can have no predecessor that observes a write
//! (that write would precede it in `T_l`).
//!
//! *Sufficiency:* order blocks topologically with the ⊥-block first, and
//! each block internally by any topological order with its head `w` first
//! (`w` has no in-block ancestors, by Def. 2.2). The concatenation is a
//! topological sort of `C` whose last-writer function is exactly `Φ(l,·)`,
//! because each block contains exactly one write, at its front.

use crate::computation::Computation;
use crate::model::{CheckScratch, MemoryModel};
use crate::observer::ObserverFunction;
use crate::op::Location;
use ccmm_dag::NodeId;

/// Location consistency (also called *coherence* in the literature).
#[derive(Clone, Copy, Debug, Default)]
pub struct Lc;

/// Reusable LC buffers: per-node block assignment, the contraction
/// adjacency matrix, and the Kahn working vectors.
#[derive(Default)]
pub(crate) struct LcScratch {
    assign: Vec<usize>,
    block_of_write: Vec<usize>,
    adj: Vec<bool>,
    indeg: Vec<usize>,
    ready: Vec<usize>,
    order: Vec<usize>,
}

/// Block index per node for location `l`: 0 is the ⊥-block, `i + 1` the
/// block of the `i`-th write to `l`. Writes into `s.assign`.
fn block_assignment_into(c: &Computation, phi: &ObserverFunction, l: Location, s: &mut LcScratch) {
    let writes = c.writes_to(l);
    s.block_of_write.clear();
    s.block_of_write.resize(c.node_count(), usize::MAX);
    for (i, &w) in writes.iter().enumerate() {
        s.block_of_write[w.index()] = i + 1;
    }
    s.assign.clear();
    for u in c.nodes() {
        s.assign.push(match phi.get(l, u) {
            None => 0,
            Some(w) => s.block_of_write[w.index()],
        });
    }
}

/// Per-location feasibility: contraction digraph acyclic, ⊥-block a source.
fn location_ok(c: &Computation, phi: &ObserverFunction, l: Location, s: &mut LcScratch) -> bool {
    lc_block_order_into(c, phi, l, s)
}

/// Computes a topological order of the blocks for location `l` with the
/// ⊥-block first into `s.order`, or returns `false` if the contraction is
/// infeasible. Allocation-free once the scratch has grown.
fn lc_block_order_into(
    c: &Computation,
    phi: &ObserverFunction,
    l: Location,
    s: &mut LcScratch,
) -> bool {
    let nblocks = c.writes_to(l).len() + 1;
    block_assignment_into(c, phi, l, s);
    // Contraction adjacency (deduplicated via a matrix; nblocks is small
    // relative to nodes and bounded by writes + 1).
    s.adj.clear();
    s.adj.resize(nblocks * nblocks, false);
    for (u, v) in c.dag().edges() {
        let (a, b) = (s.assign[u.index()], s.assign[v.index()]);
        if a != b {
            if b == 0 {
                // An edge into the ⊥-block: some node observing a write
                // precedes a node observing ⊥ — impossible under any T.
                return false;
            }
            s.adj[a * nblocks + b] = true;
        }
    }
    // Kahn over blocks.
    s.indeg.clear();
    s.indeg.resize(nblocks, 0);
    for a in 0..nblocks {
        for b in 0..nblocks {
            if s.adj[a * nblocks + b] {
                s.indeg[b] += 1;
            }
        }
    }
    s.ready.clear();
    s.ready.extend((0..nblocks).filter(|&b| s.indeg[b] == 0));
    s.order.clear();
    while let Some(b) = s.ready.pop() {
        s.order.push(b);
        for t in 0..nblocks {
            if s.adj[b * nblocks + t] {
                s.indeg[t] -= 1;
                if s.indeg[t] == 0 {
                    s.ready.push(t);
                }
            }
        }
    }
    s.order.len() == nblocks
}

impl Lc {
    /// Produces, for each location, a witnessing topological sort `T_l`
    /// with `Φ(l,·) = W_{T_l}(l,·)`; `None` if `(c, phi) ∉ LC`.
    pub fn witness(c: &Computation, phi: &ObserverFunction) -> Option<Vec<Vec<NodeId>>> {
        if !phi.is_valid_for(c) {
            return None;
        }
        let global = ccmm_dag::topo::topo_sort(c.dag());
        let mut pos = vec![0usize; c.node_count()];
        for (i, u) in global.iter().enumerate() {
            pos[u.index()] = i;
        }
        let mut scratch = LcScratch::default();
        let mut out = Vec::with_capacity(c.num_locations());
        for l in c.locations() {
            if !lc_block_order_into(c, phi, l, &mut scratch) {
                return None;
            }
            let (block_order, assign) = (&scratch.order, &scratch.assign);
            let writes = c.writes_to(l);
            // Rank of each block in the chosen block order; ⊥-block must be
            // first among nonempty blocks — our Kahn treats it as a source
            // (no in-edges), but other sources may precede it. That is
            // harmless: blocks before the ⊥-block contain a write each,
            // and a ⊥-observer must not follow any write in T_l. Force the
            // ⊥-block to rank first to be safe.
            let mut rank = vec![0usize; block_order.len()];
            let mut r = 1;
            for &b in block_order {
                if b == 0 {
                    rank[0] = 0;
                } else {
                    rank[b] = r;
                    r += 1;
                }
            }
            // Sort nodes by (block rank, head-first, global topo position).
            let mut t: Vec<NodeId> = c.nodes().collect();
            t.sort_by_key(|&u| {
                let b = assign[u.index()];
                let is_head = b != 0 && writes[b - 1] == u;
                (rank[b], !is_head, pos[u.index()])
            });
            debug_assert!(ccmm_dag::topo::is_topological_sort(c.dag(), &t));
            out.push(t);
        }
        Some(out)
    }
}

impl MemoryModel for Lc {
    fn name(&self) -> &str {
        "LC"
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        let mut s = LcScratch::default();
        phi.is_valid_for(c) && c.locations().all(|l| location_ok(c, phi, l, &mut s))
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        phi.is_valid_for(c) && c.locations().all(|l| location_ok(c, phi, l, &mut s.lc))
    }

    fn contains_lanes(
        &self,
        c: &Computation,
        phis: &crate::model::LanePack,
        s: &mut crate::model::LaneScratch,
    ) -> u64 {
        crate::model::lane::lc_lanes(c, phis, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::last_writer::last_writer_function;
    use crate::op::Op;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn last_writer_functions_are_in_lc() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let _ = ccmm_dag::topo::for_each_topo_sort(c.dag(), |t| {
            let phi = last_writer_function(&c, t);
            assert!(Lc.contains(&c, &phi), "W_T ∉ LC for T={t:?}");
            std::ops::ControlFlow::Continue(())
        });
    }

    #[test]
    fn crossing_observations_rejected() {
        // Writes A ∥ B; C after both observes A, D after both observes B.
        // Blocks {A, C} and {B, D} constrain each other both ways: cycle.
        let c = Computation::from_edges(
            4,
            &[(0, 2), (1, 2), (0, 3), (1, 3)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let phi =
            ObserverFunction::base(&c).with(l(0), n(2), Some(n(0))).with(l(0), n(3), Some(n(1)));
        assert!(phi.is_valid_for(&c));
        assert!(!Lc.contains(&c, &phi));
        assert!(Lc::witness(&c, &phi).is_none());
    }

    #[test]
    fn bottom_after_write_observation_rejected() {
        // W -> R1 -> R2 with Φ(R1)=W, Φ(R2)=⊥: edge into the ⊥-block.
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), None);
        assert!(phi.is_valid_for(&c));
        assert!(!Lc.contains(&c, &phi));
    }

    #[test]
    fn bottom_after_preceding_write_rejected() {
        // W -> R1 -> R2 with Φ(R1)=⊥: every topological sort puts W before
        // R1, so R1's last writer cannot be ⊥. (Contrast with dag
        // consistency, where this Φ is NN-consistent only if R2 also
        // observes ⊥ — and even that fails NN via the u=⊥ triple.)
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let phi = ObserverFunction::base(&c).with(l(0), n(1), None).with(l(0), n(2), Some(n(0)));
        assert!(phi.is_valid_for(&c));
        assert!(!Lc.contains(&c, &phi));
    }

    #[test]
    fn incomparable_read_may_observe_bottom() {
        // W ∥ R: the read may be serialized before the write.
        let c = Computation::from_edges(2, &[], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let phi = ObserverFunction::base(&c); // read sees ⊥
        assert!(Lc.contains(&c, &phi));
        let ts = Lc::witness(&c, &phi).unwrap();
        let wt = last_writer_function(&c, &ts[0]);
        assert_eq!(wt.get(l(0), n(1)), None);
    }

    #[test]
    fn witness_reproduces_phi() {
        let c = Computation::from_edges(
            5,
            &[(0, 2), (1, 2), (2, 3), (2, 4)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0)), Op::Write(l(1))],
        );
        // The reads and the later write all observe B at l0; A is
        // serialized before B. (Node 4 follows node 2, which observes a
        // write at l0, so node 4 must observe one too.)
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(2), Some(n(1)))
            .with(l(0), n(3), Some(n(1)))
            .with(l(0), n(4), Some(n(1)));
        assert!(Lc.contains(&c, &phi));
        let ts = Lc::witness(&c, &phi).unwrap();
        assert_eq!(ts.len(), c.num_locations());
        for (li, t) in ts.iter().enumerate() {
            assert!(ccmm_dag::topo::is_topological_sort(c.dag(), t));
            let wt = last_writer_function(&c, t);
            for u in c.nodes() {
                assert_eq!(wt.get(l(li), u), phi.get(l(li), u), "location l{li}, node {u}");
            }
        }
    }

    #[test]
    fn per_location_independence() {
        // Two locations with *opposite* serialization of analogous
        // write pairs — allowed by LC, impossible for SC.
        let c = Computation::from_edges(
            6,
            &[(0, 4), (1, 4), (2, 4), (3, 4), (0, 5), (1, 5), (2, 5), (3, 5)],
            vec![
                Op::Write(l(0)),
                Op::Write(l(0)),
                Op::Write(l(1)),
                Op::Write(l(1)),
                Op::Read(l(0)),
                Op::Read(l(1)),
            ],
        );
        // l0 serializes 0 then 1; l1 serializes 3 then 2 — the two
        // locations pick *different* relative orders of their write pairs,
        // which LC permits because each location gets its own sort. (Both
        // readers follow every write, so their rows cannot stay ⊥.)
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(4), Some(n(1)))
            .with(l(0), n(5), Some(n(1)))
            .with(l(1), n(4), Some(n(2)))
            .with(l(1), n(5), Some(n(2)));
        assert!(phi.is_valid_for(&c));
        assert!(Lc.contains(&c, &phi));
    }

    #[test]
    fn invalid_observer_rejected() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(l(0))]);
        let bad = ObserverFunction::bottom(1, 1);
        assert!(!Lc.contains(&c, &bad));
    }

    #[test]
    fn empty_and_trivial_computations() {
        assert!(Lc.contains(&Computation::empty(), &ObserverFunction::empty()));
        let c = Computation::from_edges(1, &[], vec![Op::Nop]);
        assert!(Lc.contains(&c, &ObserverFunction::base(&c)));
    }
}
