//! Sequential consistency (Definition 17) — an exact membership solver.
//!
//! `(C, Φ) ∈ SC` iff one topological sort `T` satisfies
//! `Φ(l, ·) = W_T(l, ·)` at *every* location simultaneously. Verifying SC
//! is NP-complete in general \[GK94\], so no polynomial checker is expected;
//! we run a backtracking search over topological sorts with two exactness-
//! preserving prunings:
//!
//! * **Per-step consistency.** Appending node `u` to a partial sort is
//!   legal only if, for every location `l` that `u` does not write,
//!   `Φ(l, u)` equals the most recent write to `l` already scheduled. This
//!   is sound and complete: `W_T(l, u)` depends only on the prefix of `T`
//!   up to `u`.
//! * **State memoization.** The search state is fully described by
//!   (scheduled set, last-writer-per-location); orders reaching the same
//!   state are interchangeable, so failed states are cached.

use crate::computation::Computation;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::op::Op;
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;
use std::collections::HashSet;

/// Sequential consistency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sc;

struct Search<'a> {
    c: &'a Computation,
    phi: &'a ObserverFunction,
    scheduled: BitSet,
    last: Vec<Option<NodeId>>,
    indeg: Vec<usize>,
    order: Vec<NodeId>,
    failed: HashSet<(BitSet, Vec<Option<NodeId>>)>,
}

impl Search<'_> {
    /// Whether node `u` may be appended given the current last-writer state.
    fn appendable(&self, u: NodeId) -> bool {
        for l in self.c.locations() {
            if self.c.op(u).is_write_to(l) {
                continue; // Φ(l, u) = u by Def. 2.3; satisfied on append.
            }
            if self.phi.get(l, u) != self.last[l.index()] {
                return false;
            }
        }
        true
    }

    fn run(&mut self) -> bool {
        if self.order.len() == self.c.node_count() {
            return true;
        }
        let key = (self.scheduled.clone(), self.last.clone());
        if self.failed.contains(&key) {
            return false;
        }
        for u in self.c.nodes() {
            if self.scheduled.contains(u.index()) || self.indeg[u.index()] != 0 {
                continue;
            }
            if !self.appendable(u) {
                continue;
            }
            // Apply.
            self.scheduled.insert(u.index());
            self.order.push(u);
            for &v in self.c.dag().successors(u) {
                self.indeg[v.index()] -= 1;
            }
            let saved = if let Op::Write(l) = self.c.op(u) {
                let s = self.last[l.index()];
                self.last[l.index()] = Some(u);
                Some((l, s))
            } else {
                None
            };
            if self.run() {
                return true;
            }
            // Undo.
            if let Some((l, s)) = saved {
                self.last[l.index()] = s;
            }
            for &v in self.c.dag().successors(u) {
                self.indeg[v.index()] += 1;
            }
            self.order.pop();
            self.scheduled.remove(u.index());
        }
        self.failed.insert(key);
        false
    }
}

impl Sc {
    /// Finds a topological sort `T` with `Φ = W_T` everywhere, or `None`.
    pub fn witness(c: &Computation, phi: &ObserverFunction) -> Option<Vec<NodeId>> {
        if !phi.is_valid_for(c) {
            return None;
        }
        let n = c.node_count();
        let mut search = Search {
            c,
            phi,
            scheduled: BitSet::new(n),
            last: vec![None; c.num_locations()],
            indeg: (0..n).map(|u| c.dag().in_degree(NodeId::new(u))).collect(),
            order: Vec::with_capacity(n),
            failed: HashSet::new(),
        };
        search.run().then_some(search.order)
    }
}

impl MemoryModel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        Sc::witness(c, phi).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::last_writer::last_writer_function;
    use crate::model::lc::Lc;
    use crate::op::Location;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn last_writer_functions_are_in_sc() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (0, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        for t in ccmm_dag::topo::all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            let w = Sc::witness(&c, &phi).expect("W_T must be in SC");
            assert_eq!(last_writer_function(&c, &w), phi);
        }
    }

    #[test]
    fn sc_rejects_per_location_disagreement() {
        // Two locations, two threads (chains), IRIW-flavoured:
        // writers: A=W(0), B=W(1); readers observe in opposite orders.
        // r1 reads 0 then 1: sees A, ⊥ ⇒ A before r1, B after r1's read.
        // r2 reads 1 then 0: sees B, ⊥ ⇒ B before r2, A after.
        // Consistent with LC (per-location sorts) but not SC.
        let c = Computation::from_edges(
            6,
            &[(2, 3), (4, 5)],
            vec![
                Op::Write(l(0)), // 0 = A
                Op::Write(l(1)), // 1 = B
                Op::Read(l(0)),  // 2
                Op::Read(l(1)),  // 3
                Op::Read(l(1)),  // 4
                Op::Read(l(0)),  // 5
            ],
        );
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(2), Some(n(0)))
            .with(l(0), n(3), Some(n(0))) // forced: follows a node observing A
            .with(l(1), n(4), Some(n(1)))
            .with(l(1), n(5), Some(n(1))); // forced: follows a node observing B
        assert!(phi.is_valid_for(&c));
        assert!(Lc.contains(&c, &phi), "independent per-location sorts exist");
        assert!(!Sc.contains(&c, &phi), "no single sort serializes both");
    }

    #[test]
    fn witness_is_topological_and_reproduces_phi() {
        let c = Computation::from_edges(
            5,
            &[(0, 2), (1, 2), (2, 3), (2, 4)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0)), Op::Read(l(1)), Op::Write(l(0))],
        );
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(1), Some(n(0))) // serialize the writers: A then B
            .with(l(0), n(2), Some(n(0)))
            .with(l(1), n(2), Some(n(1)))
            .with(l(1), n(3), Some(n(1)))
            .with(l(0), n(3), Some(n(0)))
            .with(l(1), n(4), Some(n(1)));
        let w = Sc::witness(&c, &phi).expect("phi should be SC");
        assert!(ccmm_dag::topo::is_topological_sort(c.dag(), &w));
        assert_eq!(last_writer_function(&c, &w), phi);
    }

    #[test]
    fn sc_respects_program_order() {
        // R(0) -> W(0): read must see ⊥ under any model; with Φ(read)=⊥
        // SC holds.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Write(l(0))]);
        let phi = ObserverFunction::base(&c);
        assert!(Sc.contains(&c, &phi));
    }

    #[test]
    fn invalid_observer_rejected() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(l(0))]);
        assert!(!Sc.contains(&c, &ObserverFunction::bottom(1, 1)));
    }

    #[test]
    fn empty_computation_in_sc() {
        assert!(Sc.contains(&Computation::empty(), &ObserverFunction::empty()));
    }

    #[test]
    fn sc_subset_of_lc_on_enumeration() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let mut sc_count = 0;
        let mut lc_count = 0;
        let _ = crate::enumerate::for_each_observer(&c, |phi| {
            let in_sc = Sc.contains(&c, phi);
            let in_lc = Lc.contains(&c, phi);
            if in_sc {
                sc_count += 1;
                assert!(in_lc, "SC ⊆ LC violated by {phi:?}");
            }
            if in_lc {
                lc_count += 1;
            }
            std::ops::ControlFlow::Continue(())
        });
        assert!(sc_count > 0);
        assert!(lc_count >= sc_count);
    }

    #[test]
    fn deep_memoization_terminates() {
        // A wide antichain of writes with an unreachable Φ: the memo table
        // keeps the search polynomial enough to finish fast.
        let k = 8;
        let mut ops = vec![Op::Write(l(0)); k];
        ops.push(Op::Read(l(0)));
        let edges: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
        let c = Computation::from_edges(k + 1, &edges, ops);
        // The read observes ⊥ — impossible, every sort has writes first.
        let phi = ObserverFunction::base(&c);
        assert!(!Sc.contains(&c, &phi));
    }
}
