//! Sequential consistency (Definition 17) — an exact membership solver.
//!
//! `(C, Φ) ∈ SC` iff one topological sort `T` satisfies
//! `Φ(l, ·) = W_T(l, ·)` at *every* location simultaneously. Verifying SC
//! is NP-complete in general \[GK94\], so no polynomial checker is expected;
//! we run a backtracking search over topological sorts with two exactness-
//! preserving prunings:
//!
//! * **Per-step consistency.** Appending node `u` to a partial sort is
//!   legal only if, for every location `l` that `u` does not write,
//!   `Φ(l, u)` equals the most recent write to `l` already scheduled. This
//!   is sound and complete: `W_T(l, u)` depends only on the prefix of `T`
//!   up to `u`.
//! * **State memoization.** The search state is fully described by
//!   (scheduled set, last-writer-per-location); orders reaching the same
//!   state are interchangeable, so failed states are cached.

use crate::computation::Computation;
use crate::model::{CheckScratch, MemoryModel};
use crate::observer::ObserverFunction;
use crate::op::Op;
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;
use std::collections::HashSet;

/// Sequential consistency.
#[derive(Clone, Copy, Debug, Default)]
pub struct Sc;

/// Reusable SC-search state: schedule bitset, last-writer table, Kahn
/// in-degrees, the order under construction, and the failed-state memo.
/// Small instances (`n ≤ 64`, `≤ 8` locations) pack memo keys into two
/// machine words; larger ones fall back to the general representation.
pub(crate) struct ScScratch {
    scheduled: BitSet,
    sched_mask: u64,
    last: Vec<Option<NodeId>>,
    indeg: Vec<usize>,
    order: Vec<NodeId>,
    failed_packed: HashSet<(u64, u64)>,
    failed_general: HashSet<(BitSet, Vec<Option<NodeId>>)>,
}

impl Default for ScScratch {
    fn default() -> Self {
        ScScratch {
            scheduled: BitSet::new(0),
            sched_mask: 0,
            last: Vec::new(),
            indeg: Vec::new(),
            order: Vec::new(),
            failed_packed: HashSet::new(),
            failed_general: HashSet::new(),
        }
    }
}

impl ScScratch {
    fn prepare(&mut self, c: &Computation) {
        let n = c.node_count();
        self.scheduled.reset(n);
        self.sched_mask = 0;
        self.last.clear();
        self.last.resize(c.num_locations(), None);
        self.indeg.clear();
        self.indeg.extend((0..n).map(|u| c.dag().in_degree(NodeId::new(u))));
        self.order.clear();
        self.failed_packed.clear();
        self.failed_general.clear();
    }
}

struct Search<'a> {
    c: &'a Computation,
    phi: &'a ObserverFunction,
    s: &'a mut ScScratch,
    /// Memo keys fit in `(u64, u64)`: node set in the first word, last
    /// writers at 8 bits per location (0 = ⊥, else index + 1) in the second.
    packed: bool,
}

impl Search<'_> {
    /// Whether node `u` may be appended given the current last-writer state.
    fn appendable(&self, u: NodeId) -> bool {
        for l in self.c.locations() {
            if self.c.op(u).is_write_to(l) {
                continue; // Φ(l, u) = u by Def. 2.3; satisfied on append.
            }
            if self.phi.get(l, u) != self.s.last[l.index()] {
                return false;
            }
        }
        true
    }

    fn packed_key(&self) -> (u64, u64) {
        let mut lasts = 0u64;
        for (i, w) in self.s.last.iter().enumerate() {
            lasts |= w.map_or(0, |u| u.index() as u64 + 1) << (8 * i);
        }
        (self.s.sched_mask, lasts)
    }

    fn run(&mut self) -> bool {
        if self.s.order.len() == self.c.node_count() {
            return true;
        }
        if self.packed {
            if self.s.failed_packed.contains(&self.packed_key()) {
                crate::telemetry::count(crate::telemetry::Counter::ScMemoHits, 1);
                return false;
            }
        } else if self.s.failed_general.contains(&(self.s.scheduled.clone(), self.s.last.clone())) {
            crate::telemetry::count(crate::telemetry::Counter::ScMemoHits, 1);
            return false;
        }
        for u in self.c.nodes() {
            if self.s.scheduled.contains(u.index()) || self.s.indeg[u.index()] != 0 {
                continue;
            }
            if !self.appendable(u) {
                continue;
            }
            // Apply.
            self.s.scheduled.insert(u.index());
            self.s.sched_mask |= 1u64.wrapping_shl(u.index() as u32);
            self.s.order.push(u);
            for &v in self.c.dag().successors(u) {
                self.s.indeg[v.index()] -= 1;
            }
            let saved = if let Op::Write(l) = self.c.op(u) {
                let s = self.s.last[l.index()];
                self.s.last[l.index()] = Some(u);
                Some((l, s))
            } else {
                None
            };
            if self.run() {
                return true;
            }
            // Undo.
            if let Some((l, s)) = saved {
                self.s.last[l.index()] = s;
            }
            for &v in self.c.dag().successors(u) {
                self.s.indeg[v.index()] += 1;
            }
            self.s.order.pop();
            self.s.sched_mask &= !1u64.wrapping_shl(u.index() as u32);
            self.s.scheduled.remove(u.index());
        }
        crate::telemetry::count(crate::telemetry::Counter::ScMemoMisses, 1);
        if self.packed {
            let key = self.packed_key();
            self.s.failed_packed.insert(key);
        } else {
            self.s.failed_general.insert((self.s.scheduled.clone(), self.s.last.clone()));
        }
        false
    }
}

impl Sc {
    /// Runs the membership search with caller-provided scratch; on success
    /// the witnessing sort is left in `s.order`.
    pub(crate) fn solve(c: &Computation, phi: &ObserverFunction, s: &mut ScScratch) -> bool {
        if !phi.is_valid_for(c) {
            return false;
        }
        s.prepare(c);
        let packed = c.node_count() <= 64 && c.num_locations() <= 8;
        Search { c, phi, s, packed }.run()
    }

    /// Finds a topological sort `T` with `Φ = W_T` everywhere, or `None`.
    pub fn witness(c: &Computation, phi: &ObserverFunction) -> Option<Vec<NodeId>> {
        let mut s = ScScratch::default();
        Sc::solve(c, phi, &mut s).then(|| std::mem::take(&mut s.order))
    }
}

impl MemoryModel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        Sc::witness(c, phi).is_some()
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        Sc::solve(c, phi, &mut s.sc)
    }

    fn contains_lanes(
        &self,
        c: &Computation,
        phis: &crate::model::LanePack,
        s: &mut crate::model::LaneScratch,
    ) -> u64 {
        crate::model::lane::sc_lanes(c, phis, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::last_writer::last_writer_function;
    use crate::model::lc::Lc;
    use crate::op::Location;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn last_writer_functions_are_in_sc() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (0, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let _ = ccmm_dag::topo::for_each_topo_sort(c.dag(), |t| {
            let phi = last_writer_function(&c, t);
            let w = Sc::witness(&c, &phi).expect("W_T must be in SC");
            assert_eq!(last_writer_function(&c, &w), phi);
            std::ops::ControlFlow::Continue(())
        });
    }

    #[test]
    fn sc_rejects_per_location_disagreement() {
        // Two locations, two threads (chains), IRIW-flavoured:
        // writers: A=W(0), B=W(1); readers observe in opposite orders.
        // r1 reads 0 then 1: sees A, ⊥ ⇒ A before r1, B after r1's read.
        // r2 reads 1 then 0: sees B, ⊥ ⇒ B before r2, A after.
        // Consistent with LC (per-location sorts) but not SC.
        let c = Computation::from_edges(
            6,
            &[(2, 3), (4, 5)],
            vec![
                Op::Write(l(0)), // 0 = A
                Op::Write(l(1)), // 1 = B
                Op::Read(l(0)),  // 2
                Op::Read(l(1)),  // 3
                Op::Read(l(1)),  // 4
                Op::Read(l(0)),  // 5
            ],
        );
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(2), Some(n(0)))
            .with(l(0), n(3), Some(n(0))) // forced: follows a node observing A
            .with(l(1), n(4), Some(n(1)))
            .with(l(1), n(5), Some(n(1))); // forced: follows a node observing B
        assert!(phi.is_valid_for(&c));
        assert!(Lc.contains(&c, &phi), "independent per-location sorts exist");
        assert!(!Sc.contains(&c, &phi), "no single sort serializes both");
    }

    #[test]
    fn witness_is_topological_and_reproduces_phi() {
        let c = Computation::from_edges(
            5,
            &[(0, 2), (1, 2), (2, 3), (2, 4)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0)), Op::Read(l(1)), Op::Write(l(0))],
        );
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(1), Some(n(0))) // serialize the writers: A then B
            .with(l(0), n(2), Some(n(0)))
            .with(l(1), n(2), Some(n(1)))
            .with(l(1), n(3), Some(n(1)))
            .with(l(0), n(3), Some(n(0)))
            .with(l(1), n(4), Some(n(1)));
        let w = Sc::witness(&c, &phi).expect("phi should be SC");
        assert!(ccmm_dag::topo::is_topological_sort(c.dag(), &w));
        assert_eq!(last_writer_function(&c, &w), phi);
    }

    #[test]
    fn sc_respects_program_order() {
        // R(0) -> W(0): read must see ⊥ under any model; with Φ(read)=⊥
        // SC holds.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Write(l(0))]);
        let phi = ObserverFunction::base(&c);
        assert!(Sc.contains(&c, &phi));
    }

    #[test]
    fn invalid_observer_rejected() {
        let c = Computation::from_edges(1, &[], vec![Op::Write(l(0))]);
        assert!(!Sc.contains(&c, &ObserverFunction::bottom(1, 1)));
    }

    #[test]
    fn empty_computation_in_sc() {
        assert!(Sc.contains(&Computation::empty(), &ObserverFunction::empty()));
    }

    #[test]
    fn sc_subset_of_lc_on_enumeration() {
        let c = Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let mut sc_count = 0;
        let mut lc_count = 0;
        let _ = crate::enumerate::for_each_observer(&c, |phi| {
            let in_sc = Sc.contains(&c, phi);
            let in_lc = Lc.contains(&c, phi);
            if in_sc {
                sc_count += 1;
                assert!(in_lc, "SC ⊆ LC violated by {phi:?}");
            }
            if in_lc {
                lc_count += 1;
            }
            std::ops::ControlFlow::Continue(())
        });
        assert!(sc_count > 0);
        assert!(lc_count >= sc_count);
    }

    #[test]
    fn deep_memoization_terminates() {
        // A wide antichain of writes with an unreachable Φ: the memo table
        // keeps the search polynomial enough to finish fast.
        let k = 8;
        let mut ops = vec![Op::Write(l(0)); k];
        ops.push(Op::Read(l(0)));
        let edges: Vec<(usize, usize)> = (0..k).map(|i| (i, k)).collect();
        let c = Computation::from_edges(k + 1, &edges, ops);
        // The read observes ⊥ — impossible, every sort has writes first.
        let phi = ObserverFunction::base(&c);
        assert!(!Sc.contains(&c, &phi));
    }
}
