//! Q-dag consistency (Definition 20) and the four predicates of Section 5.
//!
//! For a predicate `Q` on `(l, u, v, w)`, the model contains `(C, Φ)` iff
//! for all locations `l` and all `u ≺ v ≺ w` (with `u` possibly ⊥) such
//! that `Q(l, u, v, w)` holds:
//!
//! ```text
//! Φ(l, u) = Φ(l, w)  ⟹  Φ(l, v) = Φ(l, u)
//! ```
//!
//! Strengthening `Q` *weakens* the model. The four named predicates
//! ("W" = write, "N" = don't care; first letter constrains `u`, second
//! constrains `v`):
//!
//! | name | condition on (u, v)                        |
//! |------|--------------------------------------------|
//! | NN   | always                                     |
//! | NW   | `op(v) = W(l)`                             |
//! | WN   | `u = ⊥` or `op(u) = W(l)`                  |
//! | WW   | (`u = ⊥` or `op(u) = W(l)`) and `op(v) = W(l)` |
//!
//! **On ⊥ in the `u` position.** `⊥` stands for the initial state of the
//! location — a *virtual initial write* preceding every node. Treating it
//! as a write in the "W" predicates is forced by two cross-checks against
//! the paper:
//!
//! 1. WW must coincide with the original dag consistency of \[BFJ+96b\],
//!    whose masking condition ("no node observes a write that a write on
//!    its own path overwrote") forbids observing the initial value past a
//!    write — exactly the `u = ⊥` WW triples.
//! 2. Figure 1 annotates WW as the *only* constructible model of the
//!    four. If `⊥` did not count as a write for `u`, the final node of
//!    any augmentation could always observe ⊥ (no write-endpoint triple
//!    fires against ⊥), making WN constructible and contradicting both
//!    Figure 1 and the paper's Section 7 ("we were surprised to discover
//!    that WN is not constructible"). With the virtual initial write, our
//!    exhaustive constructibility scan (experiment E4) reproduces the
//!    paper's annotations exactly.
//!
//! NN is the strongest dag-consistent model (Theorem 21); WN is the
//! revision of \[BFJ+96a\].

use crate::computation::Computation;
use crate::model::{CheckScratch, MemoryModel};
use crate::observer::ObserverFunction;
use crate::op::Location;
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;

/// Reusable Q-dag buffers: the strictly-between node set.
pub(crate) struct DagScratch {
    mid: BitSet,
}

impl Default for DagScratch {
    fn default() -> Self {
        DagScratch { mid: BitSet::new(0) }
    }
}

/// A dag-consistency predicate `Q(l, u, v, w)`.
///
/// `u` is `None` for ⊥ (which precedes every node); `v` and `w` are always
/// real nodes because `u ≺ v ≺ w` forces them to be.
pub trait QPredicate {
    /// The predicate's name, used in the model name ("NN", "WW", …).
    const NAME: &'static str;

    /// Evaluates `Q(l, u, v, w)` on computation `c`.
    fn holds(c: &Computation, l: Location, u: Option<NodeId>, v: NodeId, w: NodeId) -> bool;
}

/// NN: no conditions — the strongest dag-consistent model.
#[derive(Clone, Copy, Debug, Default)]
pub struct NnPred;

impl QPredicate for NnPred {
    const NAME: &'static str = "NN";
    #[inline]
    fn holds(_: &Computation, _: Location, _: Option<NodeId>, _: NodeId, _: NodeId) -> bool {
        true
    }
}

/// NW: the middle node `v` writes `l`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NwPred;

impl QPredicate for NwPred {
    const NAME: &'static str = "NW";
    #[inline]
    fn holds(c: &Computation, l: Location, _: Option<NodeId>, v: NodeId, _: NodeId) -> bool {
        c.op(v).is_write_to(l)
    }
}

/// WN: the first node `u` writes `l`, where ⊥ counts as the virtual
/// initial write (see the module docs).
#[derive(Clone, Copy, Debug, Default)]
pub struct WnPred;

impl QPredicate for WnPred {
    const NAME: &'static str = "WN";
    #[inline]
    fn holds(c: &Computation, l: Location, u: Option<NodeId>, _: NodeId, _: NodeId) -> bool {
        u.is_none_or(|u| c.op(u).is_write_to(l))
    }
}

/// WW: both `u` and `v` write `l` — the weakest of the four.
#[derive(Clone, Copy, Debug, Default)]
pub struct WwPred;

impl QPredicate for WwPred {
    const NAME: &'static str = "WW";
    #[inline]
    fn holds(c: &Computation, l: Location, u: Option<NodeId>, v: NodeId, w: NodeId) -> bool {
        WnPred::holds(c, l, u, v, w) && NwPred::holds(c, l, u, v, w)
    }
}

/// The Q-dag-consistency model for predicate `Q`.
#[derive(Clone, Copy, Debug, Default)]
pub struct QDag<Q>(std::marker::PhantomData<Q>);

/// NN-dag consistency.
pub type Nn = QDag<NnPred>;
/// NW-dag consistency.
pub type Nw = QDag<NwPred>;
/// WN-dag consistency.
pub type Wn = QDag<WnPred>;
/// WW-dag consistency (the original dag consistency).
pub type Ww = QDag<WwPred>;

impl<Q: QPredicate> QDag<Q> {
    /// The model value (zero-sized).
    pub fn new() -> Self {
        QDag(std::marker::PhantomData)
    }

    /// Finds the first violated instance of Condition 20.1, as
    /// `(l, u, v, w)` with `u = None` meaning ⊥; `None` if consistent.
    pub fn find_violation(
        c: &Computation,
        phi: &ObserverFunction,
    ) -> Option<(Location, Option<NodeId>, NodeId, NodeId)> {
        Self::find_violation_with(c, phi, &mut DagScratch::default())
    }

    /// [`find_violation`] reusing caller-provided scratch buffers.
    ///
    /// [`find_violation`]: QDag::find_violation
    pub(crate) fn find_violation_with(
        c: &Computation,
        phi: &ObserverFunction,
        s: &mut DagScratch,
    ) -> Option<(Location, Option<NodeId>, NodeId, NodeId)> {
        let reach = c.reach();
        for l in c.locations() {
            for w in c.nodes() {
                let phi_w = phi.get(l, w);
                // u = ⊥ case: Φ(l,⊥) = ⊥, so the premise needs Φ(l,w) = ⊥,
                // and v ranges over all ancestors of w.
                if phi_w.is_none() {
                    for v_idx in reach.ancestors(w).iter() {
                        let v = NodeId::new(v_idx);
                        if Q::holds(c, l, None, v, w) && phi.get(l, v).is_some() {
                            return Some((l, None, v, w));
                        }
                    }
                }
                // u ∈ V case.
                for u_idx in reach.ancestors(w).iter() {
                    let u = NodeId::new(u_idx);
                    if phi.get(l, u) != phi_w {
                        continue;
                    }
                    reach.between_into(u, w, &mut s.mid);
                    for v_idx in s.mid.iter() {
                        let v = NodeId::new(v_idx);
                        if Q::holds(c, l, Some(u), v, w) && phi.get(l, v) != phi_w {
                            return Some((l, Some(u), v, w));
                        }
                    }
                }
            }
        }
        None
    }
}

impl<Q: QPredicate> MemoryModel for QDag<Q> {
    fn name(&self) -> &str {
        Q::NAME
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        phi.is_valid_for(c) && Self::find_violation(c, phi).is_none()
    }

    fn contains_with(&self, c: &Computation, phi: &ObserverFunction, s: &mut CheckScratch) -> bool {
        phi.is_valid_for(c) && Self::find_violation_with(c, phi, &mut s.dag).is_none()
    }

    fn contains_lanes(
        &self,
        c: &Computation,
        phis: &crate::model::LanePack,
        s: &mut crate::model::LaneScratch,
    ) -> u64 {
        crate::model::lane::qdag_lanes::<Q>(c, phis, s)
    }
}

/// A Q-dag-consistency model with a runtime predicate, for exploring the
/// model family beyond the four named members.
pub struct DynQ {
    name: String,
    #[allow(clippy::type_complexity)]
    pred: Box<dyn Fn(&Computation, Location, Option<NodeId>, NodeId, NodeId) -> bool + Send + Sync>,
}

impl DynQ {
    /// Builds a model from a named predicate closure.
    pub fn new<F>(name: impl Into<String>, pred: F) -> Self
    where
        F: Fn(&Computation, Location, Option<NodeId>, NodeId, NodeId) -> bool
            + Send
            + Sync
            + 'static,
    {
        DynQ { name: name.into(), pred: Box::new(pred) }
    }
}

impl MemoryModel for DynQ {
    fn name(&self) -> &str {
        &self.name
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        if !phi.is_valid_for(c) {
            return false;
        }
        let reach = c.reach();
        for l in c.locations() {
            for w in c.nodes() {
                let phi_w = phi.get(l, w);
                for u in std::iter::once(None)
                    .chain(reach.ancestors(w).iter().map(|i| Some(NodeId::new(i))))
                {
                    let phi_u = match u {
                        None => None,
                        Some(u) => phi.get(l, u),
                    };
                    if phi_u != phi_w {
                        continue;
                    }
                    let mids: Vec<NodeId> = match u {
                        None => reach.ancestors(w).iter().map(NodeId::new).collect(),
                        Some(u) => reach.between(u, w).iter().map(NodeId::new).collect(),
                    };
                    for v in mids {
                        if (self.pred)(c, l, u, v, w) && phi.get(l, v) != phi_w {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// Chain W(0) -> R(0) -> R(0).
    fn chain_wrr() -> Computation {
        Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        )
    }

    #[test]
    fn resurfacing_initial_value_violates_all_four() {
        // W -> R(sees W) -> R(sees ⊥): the initial value resurfaces after
        // the write was observed. The triple (⊥, W, R2) fires under every
        // predicate — ⊥ is the virtual initial write, W is a write middle
        // — so all four dag-consistent models reject (this is the
        // "masking" anomaly the original WW dag consistency already
        // forbade).
        let c = chain_wrr();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), None);
        assert!(phi.is_valid_for(&c));
        assert!(!Nn::new().contains(&c, &phi));
        assert!(!Wn::new().contains(&c, &phi));
        assert!(!Nw::new().contains(&c, &phi));
        assert!(!Ww::new().contains(&c, &phi));
    }

    #[test]
    fn steady_observation_is_nn_consistent() {
        let c = chain_wrr();
        let phi =
            ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), Some(n(0)));
        assert!(Nn::new().contains(&c, &phi));
        assert!(Nw::new().contains(&c, &phi));
        assert!(Wn::new().contains(&c, &phi));
        assert!(Ww::new().contains(&c, &phi));
    }

    #[test]
    fn bottom_after_preceding_write_violates_all_four() {
        // Φ(R1)=⊥ with the write preceding: the triple (⊥, W, R1) has
        // Φ(⊥)=⊥=Φ(R1) but Φ(W)=W, with ⊥ the virtual initial write and
        // W a write middle — every predicate fires. A node cannot observe
        // the initial value once a write precedes it, under any
        // dag-consistent model.
        let c = chain_wrr();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), None).with(l(0), n(2), Some(n(0)));
        assert!(phi.is_valid_for(&c));
        assert!(!Nn::new().contains(&c, &phi));
        assert!(!Wn::new().contains(&c, &phi));
        assert!(!Nw::new().contains(&c, &phi));
        assert!(!Ww::new().contains(&c, &phi));
    }

    #[test]
    fn bottom_before_any_write_is_fine_everywhere() {
        // R(⊥) -> W -> R(W): monotone progression from the initial value.
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let phi = ObserverFunction::base(&c).with(l(0), n(2), Some(n(1)));
        assert!(Nn::new().contains(&c, &phi));
        assert!(Wn::new().contains(&c, &phi));
        assert!(Nw::new().contains(&c, &phi));
        assert!(Ww::new().contains(&c, &phi));
    }

    #[test]
    fn wn_violation_with_write_endpoint() {
        // W(0)=A -> R=B -> R=C, Φ(B)=⊥?? invalid: B after A can see ⊥.
        // Build: A=W, B observes A, C observes A, middle B' observes other
        // write D (incomparable). Chain A -> B -> C, D incomparable.
        let c = Computation::from_edges(
            4,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0)), Op::Write(l(0))],
        );
        let phi = ObserverFunction::base(&c)
            .with(l(0), n(1), Some(n(3))) // middle sees D
            .with(l(0), n(2), Some(n(0))); // endpoint sees A again
        assert!(phi.is_valid_for(&c));
        // u=A(write) ≺ B ≺ C, Φ(A)=A=Φ(C), Φ(B)=D ≠ A: violates WN and NN.
        assert!(!Wn::new().contains(&c, &phi));
        assert!(!Nn::new().contains(&c, &phi));
        // NW: needs middle to be a write; B is a read — no violation.
        assert!(Nw::new().contains(&c, &phi));
        assert!(Ww::new().contains(&c, &phi));
    }

    #[test]
    fn nw_violation_with_write_middle() {
        // A=W -> D=W -> C=R with Φ(C)=A: middle is a write observing
        // itself, endpoints both observe A.
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let phi = ObserverFunction::base(&c).with(l(0), n(2), Some(n(0)));
        assert!(phi.is_valid_for(&c));
        // u=A ≺ v=D ≺ w=C: Φ(A)=A=Φ(C), Φ(D)=D≠A, op(v)=W: violates NW,
        // WW, WN (op(u)=W too), NN.
        assert!(!Nw::new().contains(&c, &phi));
        assert!(!Ww::new().contains(&c, &phi));
        assert!(!Wn::new().contains(&c, &phi));
        assert!(!Nn::new().contains(&c, &phi));
    }

    #[test]
    fn theorem_21_nn_strongest_on_samples() {
        // Every NN pair is in every Q-model: spot-check via enumeration on
        // a small computation (the exhaustive version lives in relation.rs).
        let c = Computation::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let mut checked = 0;
        let _ = crate::enumerate::for_each_observer(&c, |phi| {
            if Nn::new().contains(&c, phi) {
                assert!(Nw::new().contains(&c, phi));
                assert!(Wn::new().contains(&c, phi));
                assert!(Ww::new().contains(&c, phi));
                checked += 1;
            }
            std::ops::ControlFlow::Continue(())
        });
        assert!(checked > 0);
    }

    #[test]
    fn dynq_matches_static_counterparts() {
        let c = chain_wrr();
        let dyn_nn = DynQ::new("NN-dyn", |_, _, _, _, _| true);
        let dyn_ww = DynQ::new("WW-dyn", |c: &Computation, l, u, v, _| {
            u.is_none_or(|u| c.op(u).is_write_to(l)) && c.op(v).is_write_to(l)
        });
        let _ = crate::enumerate::for_each_observer(&c, |phi| {
            assert_eq!(dyn_nn.contains(&c, phi), Nn::new().contains(&c, phi));
            assert_eq!(dyn_ww.contains(&c, phi), Ww::new().contains(&c, phi));
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(dyn_nn.name(), "NN-dyn");
    }

    #[test]
    fn find_violation_reports_triple() {
        let c = chain_wrr();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), None);
        let v = Nn::find_violation(&c, &phi);
        assert!(v.is_some());
        let (loc, u, mid, w) = v.unwrap();
        assert_eq!(loc, l(0));
        assert_eq!(u, None);
        // Ancestors of n2 are scanned in index order, so n0 (which also
        // observes a non-⊥ value) is reported before n1.
        assert_eq!(mid, n(0));
        assert_eq!(w, n(2));
    }

    #[test]
    fn invalid_observer_not_in_any_qmodel() {
        let c = chain_wrr();
        let bad = ObserverFunction::bottom(1, 3); // write not self-observing
        assert!(!Nn::new().contains(&c, &bad));
        assert!(!Ww::new().contains(&c, &bad));
    }
}
