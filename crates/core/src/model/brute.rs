//! Brute-force reference checkers, straight off Definitions 17, 18, 20.
//!
//! These quantify over all topological sorts (or all triples) with no
//! algorithmic shortcuts. They exist to cross-validate the production
//! checkers — every optimized checker in this crate is property-tested
//! against its brute-force twin on random small computations.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use ccmm_dag::topo::for_each_topo_sort;
use ccmm_dag::NodeId;
use std::ops::ControlFlow;

/// Whether `Φ` agrees with the last-writer function of sort `t` — at every
/// location, or only at `only` when given. Scans the sort once, updating
/// the `last` buffer in place (a write observes itself, so each node's
/// own write is applied *before* comparison).
fn sort_matches(
    c: &Computation,
    phi: &ObserverFunction,
    t: &[NodeId],
    only: Option<Location>,
    last: &mut Vec<Option<NodeId>>,
) -> bool {
    last.clear();
    last.resize(c.num_locations(), None);
    for &u in t {
        if let Op::Write(l) = c.op(u) {
            last[l.index()] = Some(u);
        }
        match only {
            Some(l) => {
                if phi.get(l, u) != last[l.index()] {
                    return false;
                }
            }
            None => {
                for l in c.locations() {
                    if phi.get(l, u) != last[l.index()] {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Definition 17 verbatim: `∃T ∈ TS(C)` with `Φ = W_T` at every location.
pub fn sc_brute(c: &Computation, phi: &ObserverFunction) -> bool {
    if !phi.is_valid_for(c) {
        return false;
    }
    let mut last = Vec::new();
    for_each_topo_sort(c.dag(), |t| {
        if sort_matches(c, phi, t, None, &mut last) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    })
    .is_break()
}

/// Definition 18 verbatim: for each `l`, `∃T ∈ TS(C)` with
/// `Φ(l,·) = W_T(l,·)`.
pub fn lc_brute(c: &Computation, phi: &ObserverFunction) -> bool {
    if !phi.is_valid_for(c) {
        return false;
    }
    let mut last = Vec::new();
    c.locations().all(|l| {
        for_each_topo_sort(c.dag(), |t| {
            if sort_matches(c, phi, t, Some(l), &mut last) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .is_break()
    })
}

/// Definition 20 verbatim for a predicate closure: iterate all
/// `(l, u, v, w)` with `u ≺ v ≺ w` (including `u = ⊥`).
pub fn qdag_brute<Q>(c: &Computation, phi: &ObserverFunction, q: Q) -> bool
where
    Q: Fn(&Computation, Location, Option<NodeId>, NodeId, NodeId) -> bool,
{
    if !phi.is_valid_for(c) {
        return false;
    }
    for l in c.locations() {
        for w in c.nodes() {
            for v in c.nodes() {
                if !c.precedes(v, w) {
                    continue;
                }
                // u = ⊥ (⊥ ≺ v always holds).
                if q(c, l, None, v, w) && phi.get(l, w).is_none() && phi.get(l, v).is_some() {
                    return false;
                }
                for u in c.nodes() {
                    if !c.precedes(u, v) {
                        continue;
                    }
                    if q(c, l, Some(u), v, w)
                        && phi.get(l, u) == phi.get(l, w)
                        && phi.get(l, v) != phi.get(l, u)
                    {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_observer;
    use crate::model::dagcons::{Nn, Nw, QPredicate, Wn, Ww};
    use crate::model::{Lc, MemoryModel, Sc};
    use crate::op::Op;
    use std::ops::ControlFlow;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// A handful of small computations with interesting structure.
    fn fixtures() -> Vec<Computation> {
        vec![
            // Diamond, one location.
            Computation::from_edges(
                4,
                &[(0, 1), (0, 2), (1, 3), (2, 3)],
                vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
            ),
            // Two independent chains, two locations.
            Computation::from_edges(
                4,
                &[(0, 1), (2, 3)],
                vec![Op::Write(l(0)), Op::Read(l(1)), Op::Write(l(1)), Op::Read(l(0))],
            ),
            // Antichain of writes plus a sink read.
            Computation::from_edges(
                4,
                &[(0, 3), (1, 3), (2, 3)],
                vec![Op::Write(l(0)), Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0))],
            ),
            // Nops mixed in.
            Computation::from_edges(
                4,
                &[(0, 1), (1, 2), (1, 3)],
                vec![Op::Nop, Op::Write(l(0)), Op::Read(l(0)), Op::Nop],
            ),
        ]
    }

    #[test]
    fn sc_checker_matches_brute_force() {
        for c in fixtures() {
            let _ = for_each_observer(&c, |phi| {
                assert_eq!(Sc.contains(&c, phi), sc_brute(&c, phi), "SC mismatch on {c:?} {phi:?}");
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn lc_checker_matches_brute_force() {
        for c in fixtures() {
            let _ = for_each_observer(&c, |phi| {
                assert_eq!(Lc.contains(&c, phi), lc_brute(&c, phi), "LC mismatch on {c:?} {phi:?}");
                ControlFlow::Continue(())
            });
        }
    }

    #[test]
    fn qdag_checkers_match_brute_force() {
        for c in fixtures() {
            let _ = for_each_observer(&c, |phi| {
                assert_eq!(
                    Nn::new().contains(&c, phi),
                    qdag_brute(&c, phi, |c, l, u, v, w| {
                        crate::model::dagcons::NnPred::holds(c, l, u, v, w)
                    }),
                    "NN mismatch on {c:?} {phi:?}"
                );
                assert_eq!(
                    Ww::new().contains(&c, phi),
                    qdag_brute(&c, phi, |c, l, u, v, w| {
                        crate::model::dagcons::WwPred::holds(c, l, u, v, w)
                    }),
                    "WW mismatch on {c:?} {phi:?}"
                );
                assert_eq!(
                    Nw::new().contains(&c, phi),
                    qdag_brute(&c, phi, |c, l, u, v, w| {
                        crate::model::dagcons::NwPred::holds(c, l, u, v, w)
                    }),
                    "NW mismatch"
                );
                assert_eq!(
                    Wn::new().contains(&c, phi),
                    qdag_brute(&c, phi, |c, l, u, v, w| {
                        crate::model::dagcons::WnPred::holds(c, l, u, v, w)
                    }),
                    "WN mismatch"
                );
                ControlFlow::Continue(())
            });
        }
    }
}
