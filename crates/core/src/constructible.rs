//! The bounded constructible version Δ* (Definition 8, Theorem 9).
//!
//! `Δ*` is the union of all constructible models stronger than `Δ` — the
//! weakest constructible strengthening. On an unbounded universe it is the
//! greatest fixpoint of "every augmentation admits a compatible
//! extension" (the Theorem 12 condition); we compute that fixpoint on a
//! bounded universe:
//!
//! 1. materialise `S₀ = {(C, Φ) ∈ Δ : |V_C| ≤ max_nodes}`;
//! 2. repeatedly delete `(C, Φ)` with `|V_C| < max_nodes` for which some
//!    op `o` has **no** `Φ'` on `aug_o(C)` with `(aug_o(C), Φ') ∈ Sᵢ` and
//!    `Φ'|_C = Φ`;
//! 3. stop at the fixpoint.
//!
//! Pairs at the size boundary are never deleted (their augmentations lie
//! outside the universe), so the result *over-approximates* `Δ*`: it is
//! exact in the limit, and each deletion pass pushes exactness one size
//! level down from the boundary. Two invariants hold unconditionally and
//! are tested: `LC ⊆ fixpoint(NN) ⊆ NN` at every size, and the fixpoint
//! is sandwiched between `Δ*` and `Δ`. Experiment E8 reports, per size,
//! whether `fixpoint(NN) = LC` — the machine-checkable face of
//! Theorem 23.

pub mod lanes;

use crate::computation::Computation;
use crate::enumerate::for_each_observer;
use crate::fault::{payload_string, FaultPlan};
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::props::any_extension;
use crate::sweep::supervisor::Quarantined;
use crate::sweep::{sweep_computations, SweepConfig};
use crate::telemetry::{self, Counter};
use crate::universe::Universe;
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The result of the bounded Δ* fixpoint computation.
pub struct BoundedConstructible {
    /// Surviving pairs, keyed by computation.
    pairs: HashMap<Computation, HashSet<ObserverFunction>>,
    /// The universe bound used.
    pub max_nodes: usize,
    /// Number of fixpoint passes until convergence.
    pub passes: usize,
    /// Pairs deleted in total.
    pub deleted: usize,
    /// Initial-pass extension checks that panicked twice and were
    /// quarantined (worklist only; `task_idx` is the interior-computation
    /// check index, `size` its node count). Quarantined computations keep
    /// all their pairs — deleting nothing preserves the fixpoint's
    /// over-approximation invariant (`Δ* ⊆` result `⊆ Δ`) — so a
    /// non-empty list means the result may over-approximate more loosely
    /// than an undisturbed run, never that it under-approximates.
    pub quarantined: Vec<Quarantined>,
}

impl BoundedConstructible {
    /// Computes the bounded fixpoint of `model` over `u`.
    pub fn compute<M: MemoryModel>(model: &M, u: &Universe) -> Self {
        // Materialise S₀.
        let mut pairs: HashMap<Computation, HashSet<ObserverFunction>> = HashMap::new();
        let _ = u.for_each_computation(|c| {
            let mut set = HashSet::new();
            let _ = for_each_observer(c, |phi| {
                if model.contains(c, phi) {
                    set.insert(phi.clone());
                }
                ControlFlow::Continue(())
            });
            pairs.insert(c.clone(), set);
            ControlFlow::Continue(())
        });

        let alphabet = u.alphabet();
        let mut passes = 0;
        let mut deleted = 0;
        loop {
            passes += 1;
            let mut to_delete: Vec<(Computation, ObserverFunction)> = Vec::new();
            for (c, set) in &pairs {
                if c.node_count() >= u.max_nodes {
                    continue; // boundary: augmentation out of reach
                }
                for phi in set {
                    for &o in &alphabet {
                        let aug = c.augment(o);
                        let survivors = pairs
                            .get(&aug)
                            .expect("universe is closed under augmentation below the bound");
                        let ok = any_extension(&aug, phi, |phi2| survivors.contains(phi2));
                        if !ok {
                            to_delete.push((c.clone(), phi.clone()));
                            break;
                        }
                    }
                }
            }
            if to_delete.is_empty() {
                break;
            }
            deleted += to_delete.len();
            for (c, phi) in to_delete {
                pairs.get_mut(&c).expect("key present").remove(&phi);
            }
        }
        BoundedConstructible {
            pairs,
            max_nodes: u.max_nodes,
            passes,
            deleted,
            quarantined: Vec::new(),
        }
    }

    /// Computes the same bounded fixpoint as [`compute`], by a worklist
    /// (semi-naïve) algorithm with a parallel base materialisation.
    ///
    /// [`compute`] re-scans the whole universe after every deletion pass.
    /// But a pair `(C, Φ)` can only *newly* fail the extension condition
    /// when some augmentation of `C` loses a member — and deleting
    /// `(D, Ψ)` affects exactly one candidate: `D` is an augmentation of
    /// at most one computation (its final node must succeed every other
    /// node; removing it gives the parent `C` with indices unchanged),
    /// and `Ψ` restricts to exactly one parent observer `Φ = Ψ|_C`. So
    /// after the initial full pass, each deletion enqueues one
    /// `(parent, Φ|, op)` re-check instead of a universe scan. Deletion
    /// is monotone and the condition anti-monotone in the survivor sets,
    /// so the worklist converges to the same greatest fixpoint in any
    /// processing order — survivors, and hence `deleted`, are identical
    /// to [`compute`]'s. `passes` counts worklist rounds (initial pass +
    /// cascade generations), which may differ from the naïve pass count.
    ///
    /// [`compute`]: BoundedConstructible::compute
    pub fn compute_worklist<M: MemoryModel + Sync>(
        model: &M,
        u: &Universe,
        cfg: &SweepConfig,
    ) -> Self {
        Self::compute_worklist_supervised(model, u, cfg, &FaultPlan::none())
    }

    /// [`compute_worklist`] under supervision: every initial-pass
    /// extension check runs under `catch_unwind` with `fault`'s
    /// [`FaultPlan::before_fixpoint_check`] hook. A panicking check is
    /// retried once; a second panic quarantines that computation's checks
    /// (reported in [`BoundedConstructible::quarantined`], identifying
    /// which augmentation step failed) and conservatively *keeps* its
    /// pairs, so the run completes with an explicit degraded report
    /// instead of aborting the whole fixpoint.
    ///
    /// [`compute_worklist`]: BoundedConstructible::compute_worklist
    pub fn compute_worklist_supervised<M: MemoryModel + Sync>(
        model: &M,
        u: &Universe,
        cfg: &SweepConfig,
        fault: &FaultPlan,
    ) -> Self {
        // Materialise S₀ with a parallel sweep (poset-granular shards).
        // The fixpoint keys survivor sets by *labelled* computation (every
        // augmentation of every member must be present), so the
        // materialisation always runs the labelled enumeration even when
        // the caller's config asks for a canonical sweep.
        let cfg = &SweepConfig { canonical: false, ..*cfg };
        let chunks = sweep_computations(
            u,
            cfg,
            Vec::new,
            |acc: &mut Vec<(Computation, HashSet<ObserverFunction>)>, _, c, _| {
                let mut set = HashSet::new();
                let _ = for_each_observer(c, |phi| {
                    if model.contains(c, phi) {
                        set.insert(phi.clone());
                    }
                    ControlFlow::Continue(())
                });
                acc.push((c.clone(), set));
            },
        )
        // Completeness here is a soundness requirement: the fixpoint
        // assumes the universe is closed under augmentation, so a
        // degraded/partial materialisation must not be silently used.
        .expect_complete("Δ* materialisation");
        let mut pairs: HashMap<Computation, HashSet<ObserverFunction>> =
            chunks.into_iter().flatten().collect();

        // Initial full pass, parallelised over computations: the survivor
        // map is only read here, so workers share it immutably and report
        // pairs that fail some op's extension condition.
        let alphabet = u.alphabet();
        let interior: Vec<&Computation> =
            pairs.keys().filter(|c| c.node_count() < u.max_nodes).collect();
        let check_one = |c: &Computation, phi: &ObserverFunction| -> bool {
            alphabet.iter().all(|&o| {
                let aug = c.augment(o);
                let survivors =
                    pairs.get(&aug).expect("universe is closed under augmentation below the bound");
                any_extension(&aug, phi, |phi2| survivors.contains(phi2))
            })
        };
        // Each interior computation's checks run under `catch_unwind`
        // (retried once, quarantined on a second panic — the quarantined
        // computation keeps its pairs, preserving the fixpoint's
        // over-approximation invariant), so one panicking augmentation
        // step degrades the result instead of aborting the run.
        let next = AtomicUsize::new(0);
        let quarantine = Mutex::new(Vec::new());
        let worker = || {
            let mut q = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&c) = interior.get(i) else { break };
                let attempt = || {
                    fault.before_fixpoint_check(i);
                    let mut failed = Vec::new();
                    for phi in &pairs[c] {
                        if !check_one(c, phi) {
                            failed.push((c.clone(), phi.clone()));
                        }
                    }
                    failed
                };
                match catch_unwind(AssertUnwindSafe(attempt)) {
                    Ok(failed) => q.extend(failed),
                    Err(_first) => match catch_unwind(AssertUnwindSafe(attempt)) {
                        Ok(failed) => q.extend(failed),
                        Err(second) => {
                            telemetry::count(Counter::Quarantines, 1);
                            quarantine.lock().unwrap().push(Quarantined {
                                task_idx: i,
                                size: c.node_count(),
                                payload: payload_string(second),
                            });
                        }
                    },
                }
            }
            q
        };
        let mut queue: Vec<(Computation, ObserverFunction)> = if cfg.threads == 1 {
            worker()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..cfg.threads).map(|_| s.spawn(worker)).collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        // Checks are caught above, so a worker can only die
                        // outside the quarantined region — propagate that
                        // panic unchanged rather than masking it.
                        h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))
                    })
                    .collect()
            })
        };
        let mut quarantined = quarantine.into_inner().unwrap();
        quarantined.sort_by_key(|q| q.task_idx);

        // Worklist cascade: apply a round of deletions, re-check only the
        // unique augmentation parents of what was deleted.
        let mut passes = 1;
        let mut deleted = 0;
        telemetry::count(Counter::WorklistPushes, queue.len() as u64);
        while !queue.is_empty() {
            telemetry::count(Counter::WorklistPops, queue.len() as u64);
            let mut recheck: Vec<(Computation, ObserverFunction, Computation)> = Vec::new();
            for (c, phi) in queue.drain(..) {
                let set = pairs.get_mut(&c).expect("key present");
                if !set.remove(&phi) {
                    continue; // deleted earlier this cascade
                }
                deleted += 1;
                if let Some((parent, pphi)) = augmentation_parent(&c, &phi) {
                    if pairs.get(&parent).is_some_and(|s| s.contains(&pphi)) {
                        recheck.push((parent, pphi, c.clone()));
                    }
                }
            }
            let mut next_queue = Vec::new();
            for (parent, pphi, aug) in recheck {
                if !pairs.get(&parent).is_some_and(|s| s.contains(&pphi)) {
                    continue;
                }
                let survivors = pairs.get(&aug).expect("augmentation is in the universe");
                if !any_extension(&aug, &pphi, |phi2| survivors.contains(phi2)) {
                    next_queue.push((parent, pphi));
                }
            }
            queue = next_queue;
            telemetry::count(Counter::WorklistPushes, queue.len() as u64);
            if !queue.is_empty() {
                passes += 1;
            }
        }
        BoundedConstructible { pairs, max_nodes: u.max_nodes, passes, deleted, quarantined }
    }

    /// Whether `(c, phi)` survived the fixpoint. Exact for `Δ*` only when
    /// `c` is small enough relative to the bound (see module docs).
    pub fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        self.pairs.get(c).is_some_and(|s| s.contains(phi))
    }

    /// Number of surviving pairs for computations of exactly `n` nodes.
    pub fn pairs_of_size(&self, n: usize) -> usize {
        self.pairs.iter().filter(|(c, _)| c.node_count() == n).map(|(_, s)| s.len()).sum()
    }

    /// Total surviving pairs.
    pub fn total_pairs(&self) -> usize {
        self.pairs.values().map(HashSet::len).sum()
    }

    /// Iterates over surviving pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Computation, &ObserverFunction)> {
        self.pairs.iter().flat_map(|(c, s)| s.iter().map(move |phi| (c, phi)))
    }

    /// Compares the survivors of size `n` against a model: returns
    /// `(survivors, in_model, agreements)` where `agreements` counts pairs
    /// on which membership coincides over all valid observers of size-`n`
    /// computations.
    pub fn agreement_with<M: MemoryModel>(
        &self,
        model: &M,
        n: usize,
        u: &Universe,
    ) -> SizeAgreement {
        let mut out = SizeAgreement { size: n, survivors: 0, in_model: 0, disagreements: 0 };
        let mut f = |c: &Computation| {
            let _ = for_each_observer(c, |phi| {
                let in_fix = self.contains(c, phi);
                let in_m = model.contains(c, phi);
                if in_fix {
                    out.survivors += 1;
                }
                if in_m {
                    out.in_model += 1;
                }
                if in_fix != in_m {
                    out.disagreements += 1;
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(n, &mut f);
        out
    }
}

/// Inverts Definition 11 structurally: if `c`'s final node succeeds every
/// other node, `c = aug_o(parent)` for exactly one `parent` (drop the
/// final node; indices are unchanged) — returns `(parent, psi|_parent)`,
/// the unique pair whose extension condition mentions `(c, psi)`.
/// Returns `None` when `c` is empty or not an augmentation.
///
/// The restriction always succeeds: `psi` is valid for `c`, and no old
/// node can observe the final node's write (it precedes it), so every
/// retained entry stays in range.
fn augmentation_parent(
    c: &Computation,
    psi: &ObserverFunction,
) -> Option<(Computation, ObserverFunction)> {
    let last = c.last_node()?;
    let n = c.node_count();
    for u in 0..n - 1 {
        if !c.precedes(NodeId::new(u), last) {
            return None;
        }
    }
    let mut keep = BitSet::full(n);
    keep.remove(last.index());
    let (parent, _) = c.prefix(&keep).expect("dropping the final node keeps a prefix");
    let phi = psi
        .restrict(parent.num_locations(), parent.node_count())
        .expect("old nodes cannot observe the final node");
    Some((parent, phi))
}

/// Exact `k`-step survival test for a single pair, without materialising
/// any universe: `(C, Φ)` survives `k` steps iff it is in the model and,
/// for `k > 0`, every augmentation admits an extension that survives
/// `k − 1` steps.
///
/// The extension operator is co-continuous (each condition quantifies
/// over the finitely many final-row candidates), so by Kleene iteration
/// `(C, Φ) ∈ Δ*` **iff it survives every finite `k`** — deep lookahead
/// converges to the true constructible version from above. This is the
/// tool behind experiment E11's probe of the paper's open problem
/// (is `LC ⊊ NW*`? `LC ⊊ WN*`?).
pub fn survives_lookahead<M: MemoryModel>(
    model: &M,
    c: &Computation,
    phi: &ObserverFunction,
    k: usize,
    alphabet: &[crate::op::Op],
) -> bool {
    let mut memo: HashMap<(Computation, ObserverFunction, usize), bool> = HashMap::new();
    fn go<M: MemoryModel>(
        model: &M,
        c: &Computation,
        phi: &ObserverFunction,
        k: usize,
        alphabet: &[crate::op::Op],
        memo: &mut HashMap<(Computation, ObserverFunction, usize), bool>,
    ) -> bool {
        if !model.contains(c, phi) {
            return false;
        }
        if k == 0 {
            return true;
        }
        let key = (c.clone(), phi.clone(), k);
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let mut ok = true;
        'ops: for &o in alphabet {
            let aug = c.augment(o);
            let mut found = false;
            let found_ref = &mut found;
            let _ = crate::props::any_extension(&aug, phi, |phi2| {
                if go(model, &aug, phi2, k - 1, alphabet, memo) {
                    *found_ref = true;
                    true
                } else {
                    false
                }
            });
            if !found {
                ok = false;
                break 'ops;
            }
        }
        memo.insert(key, ok);
        ok
    }
    go(model, c, phi, k, alphabet, &mut memo)
}

/// Per-size agreement between a fixpoint and a reference model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeAgreement {
    /// Computation size compared at.
    pub size: usize,
    /// Pairs surviving the fixpoint at this size.
    pub survivors: usize,
    /// Pairs in the reference model at this size.
    pub in_model: usize,
    /// Pairs on which the two disagree.
    pub disagreements: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, Nn, Sc};

    #[test]
    fn constructible_model_is_its_own_fixpoint() {
        let u = Universe::new(3, 1);
        let fix = BoundedConstructible::compute(&Lc, &u);
        assert_eq!(fix.deleted, 0, "LC is constructible; nothing deleted");
        assert_eq!(fix.passes, 1);
        // Same for SC.
        let fix_sc = BoundedConstructible::compute(&Sc, &u);
        assert_eq!(fix_sc.deleted, 0);
    }

    #[test]
    fn theorem_23_lc_equals_nn_star_small() {
        // Bounded check of LC = NN*: with a 5-node bound, sizes ≤ 4 are
        // past at least one deletion pass; the paper predicts exact
        // agreement with LC at every size below the boundary.
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        for n in 0..u.max_nodes {
            let agree = fix.agreement_with(&Lc, n, &u);
            assert_eq!(agree.disagreements, 0, "NN* ≠ LC at size {n}: {agree:?}");
        }
    }

    #[test]
    fn fixpoint_sandwiched_between_lc_and_nn() {
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        for (c, phi) in fix.iter() {
            assert!(Nn::new().contains(c, phi), "fixpoint ⊆ NN violated");
        }
        // LC ⊆ fixpoint at every size (LC is constructible and ⊆ NN, so it
        // survives every pass).
        let _ = u.for_each_computation(|c| {
            let _ = for_each_observer(c, |phi| {
                if Lc.contains(c, phi) {
                    assert!(fix.contains(c, phi), "LC ⊄ fixpoint at {c:?} {phi:?}");
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn lookahead_kills_figure4_pair() {
        // The Figure-4 prefix pair is in NN but dies at lookahead 1.
        let w = crate::witness::figure4_prefix();
        let alphabet = crate::op::Op::all(1);
        assert!(survives_lookahead(&Nn::default(), &w.computation, &w.phi, 0, &alphabet));
        assert!(!survives_lookahead(&Nn::default(), &w.computation, &w.phi, 1, &alphabet));
    }

    #[test]
    fn lookahead_spares_lc_pairs() {
        // LC is constructible: its pairs survive any finite lookahead.
        let c = crate::computation::Computation::from_edges(
            3,
            &[(0, 1)],
            vec![
                crate::op::Op::Write(crate::op::Location::new(0)),
                crate::op::Op::Read(crate::op::Location::new(0)),
                crate::op::Op::Write(crate::op::Location::new(0)),
            ],
        );
        let phi = crate::observer::ObserverFunction::base(&c).with(
            crate::op::Location::new(0),
            ccmm_dag::NodeId::new(1),
            Some(ccmm_dag::NodeId::new(0)),
        );
        assert!(Lc.contains(&c, &phi));
        let alphabet = crate::op::Op::all(1);
        for k in 0..4 {
            assert!(survives_lookahead(&Lc, &c, &phi, k, &alphabet), "k={k}");
        }
        // And since LC ⊆ NN with LC constructible, it also survives in NN.
        for k in 0..4 {
            assert!(survives_lookahead(&Nn::default(), &c, &phi, k, &alphabet), "k={k}");
        }
    }

    #[test]
    fn lookahead_agrees_with_bounded_fixpoint() {
        // For pairs of size s in a bound-b universe, the fixpoint applies
        // (b - s) levels of lookahead... at least one pass; cross-check
        // 2-node pairs in a 4-bound universe against 2-step lookahead.
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::default(), &u);
        let alphabet = u.alphabet();
        let mut f = |c: &Computation| {
            let _ = for_each_observer(c, |phi| {
                if Nn::default().contains(c, phi) {
                    let deep = survives_lookahead(&Nn::default(), c, phi, 2, &alphabet);
                    let in_fix = fix.contains(c, phi);
                    // fixpoint lookahead ≥ 2 here, so fixpoint ⊆ deep.
                    assert!(!in_fix || deep, "fixpoint kept a 2-step-dead pair");
                }
                std::ops::ControlFlow::Continue(())
            });
            std::ops::ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(2, &mut f);
    }

    /// Asserts that two fixpoints kept exactly the same survivor sets,
    /// by scanning every pair of the universe.
    fn assert_same_survivors(a: &BoundedConstructible, b: &BoundedConstructible, u: &Universe) {
        assert_eq!(a.total_pairs(), b.total_pairs());
        assert_eq!(a.deleted, b.deleted, "deletion counts differ");
        for n in 0..=u.max_nodes {
            assert_eq!(a.pairs_of_size(n), b.pairs_of_size(n), "size {n} differs");
        }
        let _ = u.for_each_computation(|c| {
            let _ = for_each_observer(c, |phi| {
                assert_eq!(
                    a.contains(c, phi),
                    b.contains(c, phi),
                    "survivor sets differ at {c:?} {phi:?}"
                );
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn worklist_matches_naive_fixpoint_for_nn() {
        // NN actually deletes at the 4-node bound (3-node prefixes die),
        // so this exercises the cascade, serial and multi-threaded.
        let u = Universe::new(4, 1);
        let naive = BoundedConstructible::compute(&Nn::default(), &u);
        for threads in [1, 4] {
            let cfg = crate::sweep::SweepConfig::with_threads(threads);
            let wl = BoundedConstructible::compute_worklist(&Nn::default(), &u, &cfg);
            assert_same_survivors(&naive, &wl, &u);
        }
    }

    #[test]
    fn worklist_matches_naive_for_constructible_models() {
        let u = Universe::new(3, 1);
        let cfg = crate::sweep::SweepConfig::with_threads(2);
        for_each_model_pair(&u, &cfg);
        // Two locations as well — locations interact with the restriction
        // in `augmentation_parent`.
        let u2 = Universe::new(3, 2);
        let naive = BoundedConstructible::compute(&Lc, &u2);
        let wl = BoundedConstructible::compute_worklist(&Lc, &u2, &cfg);
        assert_same_survivors(&naive, &wl, &u2);
    }

    fn for_each_model_pair(u: &Universe, cfg: &crate::sweep::SweepConfig) {
        let naive_lc = BoundedConstructible::compute(&Lc, u);
        let wl_lc = BoundedConstructible::compute_worklist(&Lc, u, cfg);
        assert_same_survivors(&naive_lc, &wl_lc, u);
        assert_eq!(wl_lc.deleted, 0);
        assert_eq!(wl_lc.passes, 1, "constructible model: no cascade rounds");
        let naive_sc = BoundedConstructible::compute(&Sc, u);
        let wl_sc = BoundedConstructible::compute_worklist(&Sc, u, cfg);
        assert_same_survivors(&naive_sc, &wl_sc, u);
    }

    #[test]
    fn fixpoint_quarantine_degrades_instead_of_aborting() {
        // A persistent panic in one initial-pass check must not abort the
        // fixpoint: the computation is quarantined (pairs kept) and the
        // result stays a sound over-approximation.
        let u = Universe::new(4, 1);
        let cfg = crate::sweep::SweepConfig::with_threads(2);
        let naive = BoundedConstructible::compute(&Nn::default(), &u);
        let fault = FaultPlan::none().panic_at_fixpoint(0);
        let fix =
            BoundedConstructible::compute_worklist_supervised(&Nn::default(), &u, &cfg, &fault);
        assert_eq!(fix.quarantined.len(), 1);
        assert_eq!(fix.quarantined[0].task_idx, 0);
        assert!(fix.quarantined[0].payload.contains("fixpoint check 0"));
        // Conservative keep: never fewer survivors than the clean run,
        // and every survivor is still in the model.
        assert!(fix.total_pairs() >= naive.total_pairs());
        for (c, phi) in fix.iter() {
            assert!(Nn::default().contains(c, phi), "quarantine broke fixpoint ⊆ NN");
        }
    }

    #[test]
    fn fixpoint_transient_fault_heals_identically() {
        // A once-fault is healed by the serial retry: the result must be
        // bit-identical to the undisturbed fixpoint, with nothing
        // quarantined.
        let u = Universe::new(4, 1);
        let cfg = crate::sweep::SweepConfig::with_threads(2);
        let naive = BoundedConstructible::compute(&Nn::default(), &u);
        let fault = FaultPlan::none().panic_once_at_fixpoint(1);
        let fix =
            BoundedConstructible::compute_worklist_supervised(&Nn::default(), &u, &cfg, &fault);
        assert!(fix.quarantined.is_empty());
        assert_same_survivors(&naive, &fix, &u);
    }

    #[test]
    fn augmentation_parent_inverts_augment() {
        use crate::op::{Location, Op};
        let c = Computation::from_edges(
            2,
            &[(0, 1)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0))],
        );
        for phi in crate::enumerate::all_observers(&c) {
            for o in [Op::Nop, Op::Write(Location::new(1))] {
                let aug = c.augment(o);
                // Any extension of phi onto aug must restrict back to
                // exactly (c, phi).
                any_extension(&aug, &phi, |psi| {
                    let (parent, pphi) =
                        augmentation_parent(&aug, psi).expect("aug is an augmentation");
                    assert_eq!(parent, c);
                    assert_eq!(pphi, phi);
                    false // keep enumerating
                });
            }
        }
        // A non-augmentation (final node incomparable to node 0) has no
        // augmentation parent.
        let fork = Computation::from_edges(2, &[], vec![Op::Nop, Op::Nop]);
        let psi = ObserverFunction::base(&fork);
        assert!(augmentation_parent(&fork, &psi).is_none());
        // The empty computation has none either.
        let empty = Computation::empty();
        assert!(augmentation_parent(&empty, &ObserverFunction::empty()).is_none());
    }

    #[test]
    fn nn_fixpoint_actually_deletes() {
        // NN is not constructible, so the fixpoint must remove pairs
        // (the size-4 crossing pairs of Figure 4 are below a 5-node
        // boundary only when max_nodes = 5; at max_nodes = 4 deletions
        // happen at size 3 or smaller — verify *some* deletion occurs at
        // the 5-node bound).
        let u = Universe::new(5, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        assert!(fix.deleted > 0, "NN fixpoint deleted nothing");
        assert!(fix.passes >= 2);
    }
}
