//! The bounded constructible version Δ* (Definition 8, Theorem 9).
//!
//! `Δ*` is the union of all constructible models stronger than `Δ` — the
//! weakest constructible strengthening. On an unbounded universe it is the
//! greatest fixpoint of "every augmentation admits a compatible
//! extension" (the Theorem 12 condition); we compute that fixpoint on a
//! bounded universe:
//!
//! 1. materialise `S₀ = {(C, Φ) ∈ Δ : |V_C| ≤ max_nodes}`;
//! 2. repeatedly delete `(C, Φ)` with `|V_C| < max_nodes` for which some
//!    op `o` has **no** `Φ'` on `aug_o(C)` with `(aug_o(C), Φ') ∈ Sᵢ` and
//!    `Φ'|_C = Φ`;
//! 3. stop at the fixpoint.
//!
//! Pairs at the size boundary are never deleted (their augmentations lie
//! outside the universe), so the result *over-approximates* `Δ*`: it is
//! exact in the limit, and each deletion pass pushes exactness one size
//! level down from the boundary. Two invariants hold unconditionally and
//! are tested: `LC ⊆ fixpoint(NN) ⊆ NN` at every size, and the fixpoint
//! is sandwiched between `Δ*` and `Δ`. Experiment E8 reports, per size,
//! whether `fixpoint(NN) = LC` — the machine-checkable face of
//! Theorem 23.

use crate::computation::Computation;
use crate::enumerate::for_each_observer;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::props::any_extension;
use crate::universe::Universe;
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;

/// The result of the bounded Δ* fixpoint computation.
pub struct BoundedConstructible {
    /// Surviving pairs, keyed by computation.
    pairs: HashMap<Computation, HashSet<ObserverFunction>>,
    /// The universe bound used.
    pub max_nodes: usize,
    /// Number of fixpoint passes until convergence.
    pub passes: usize,
    /// Pairs deleted in total.
    pub deleted: usize,
}

impl BoundedConstructible {
    /// Computes the bounded fixpoint of `model` over `u`.
    pub fn compute<M: MemoryModel>(model: &M, u: &Universe) -> Self {
        // Materialise S₀.
        let mut pairs: HashMap<Computation, HashSet<ObserverFunction>> = HashMap::new();
        let _ = u.for_each_computation(|c| {
            let mut set = HashSet::new();
            let _ = for_each_observer(c, |phi| {
                if model.contains(c, phi) {
                    set.insert(phi.clone());
                }
                ControlFlow::Continue(())
            });
            pairs.insert(c.clone(), set);
            ControlFlow::Continue(())
        });

        let alphabet = u.alphabet();
        let mut passes = 0;
        let mut deleted = 0;
        loop {
            passes += 1;
            let mut to_delete: Vec<(Computation, ObserverFunction)> = Vec::new();
            for (c, set) in &pairs {
                if c.node_count() >= u.max_nodes {
                    continue; // boundary: augmentation out of reach
                }
                for phi in set {
                    for &o in &alphabet {
                        let aug = c.augment(o);
                        let survivors = pairs
                            .get(&aug)
                            .expect("universe is closed under augmentation below the bound");
                        let ok = any_extension(&aug, phi, |phi2| survivors.contains(phi2));
                        if !ok {
                            to_delete.push((c.clone(), phi.clone()));
                            break;
                        }
                    }
                }
            }
            if to_delete.is_empty() {
                break;
            }
            deleted += to_delete.len();
            for (c, phi) in to_delete {
                pairs.get_mut(&c).expect("key present").remove(&phi);
            }
        }
        BoundedConstructible { pairs, max_nodes: u.max_nodes, passes, deleted }
    }

    /// Whether `(c, phi)` survived the fixpoint. Exact for `Δ*` only when
    /// `c` is small enough relative to the bound (see module docs).
    pub fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        self.pairs.get(c).is_some_and(|s| s.contains(phi))
    }

    /// Number of surviving pairs for computations of exactly `n` nodes.
    pub fn pairs_of_size(&self, n: usize) -> usize {
        self.pairs
            .iter()
            .filter(|(c, _)| c.node_count() == n)
            .map(|(_, s)| s.len())
            .sum()
    }

    /// Total surviving pairs.
    pub fn total_pairs(&self) -> usize {
        self.pairs.values().map(HashSet::len).sum()
    }

    /// Iterates over surviving pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Computation, &ObserverFunction)> {
        self.pairs.iter().flat_map(|(c, s)| s.iter().map(move |phi| (c, phi)))
    }

    /// Compares the survivors of size `n` against a model: returns
    /// `(survivors, in_model, agreements)` where `agreements` counts pairs
    /// on which membership coincides over all valid observers of size-`n`
    /// computations.
    pub fn agreement_with<M: MemoryModel>(&self, model: &M, n: usize, u: &Universe) -> SizeAgreement {
        let mut out = SizeAgreement { size: n, survivors: 0, in_model: 0, disagreements: 0 };
        let mut f = |c: &Computation| {
            let _ = for_each_observer(c, |phi| {
                let in_fix = self.contains(c, phi);
                let in_m = model.contains(c, phi);
                if in_fix {
                    out.survivors += 1;
                }
                if in_m {
                    out.in_model += 1;
                }
                if in_fix != in_m {
                    out.disagreements += 1;
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(n, &mut f);
        out
    }
}

/// Exact `k`-step survival test for a single pair, without materialising
/// any universe: `(C, Φ)` survives `k` steps iff it is in the model and,
/// for `k > 0`, every augmentation admits an extension that survives
/// `k − 1` steps.
///
/// The extension operator is co-continuous (each condition quantifies
/// over the finitely many final-row candidates), so by Kleene iteration
/// `(C, Φ) ∈ Δ*` **iff it survives every finite `k`** — deep lookahead
/// converges to the true constructible version from above. This is the
/// tool behind experiment E11's probe of the paper's open problem
/// (is `LC ⊊ NW*`? `LC ⊊ WN*`?).
pub fn survives_lookahead<M: MemoryModel>(
    model: &M,
    c: &Computation,
    phi: &ObserverFunction,
    k: usize,
    alphabet: &[crate::op::Op],
) -> bool {
    let mut memo: HashMap<(Computation, ObserverFunction, usize), bool> = HashMap::new();
    fn go<M: MemoryModel>(
        model: &M,
        c: &Computation,
        phi: &ObserverFunction,
        k: usize,
        alphabet: &[crate::op::Op],
        memo: &mut HashMap<(Computation, ObserverFunction, usize), bool>,
    ) -> bool {
        if !model.contains(c, phi) {
            return false;
        }
        if k == 0 {
            return true;
        }
        let key = (c.clone(), phi.clone(), k);
        if let Some(&v) = memo.get(&key) {
            return v;
        }
        let mut ok = true;
        'ops: for &o in alphabet {
            let aug = c.augment(o);
            let mut found = false;
            let found_ref = &mut found;
            let _ = crate::props::any_extension(&aug, phi, |phi2| {
                if go(model, &aug, phi2, k - 1, alphabet, memo) {
                    *found_ref = true;
                    true
                } else {
                    false
                }
            });
            if !found {
                ok = false;
                break 'ops;
            }
        }
        memo.insert(key, ok);
        ok
    }
    go(model, c, phi, k, alphabet, &mut memo)
}

/// Per-size agreement between a fixpoint and a reference model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeAgreement {
    /// Computation size compared at.
    pub size: usize,
    /// Pairs surviving the fixpoint at this size.
    pub survivors: usize,
    /// Pairs in the reference model at this size.
    pub in_model: usize,
    /// Pairs on which the two disagree.
    pub disagreements: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, Nn, Sc};

    #[test]
    fn constructible_model_is_its_own_fixpoint() {
        let u = Universe::new(3, 1);
        let fix = BoundedConstructible::compute(&Lc, &u);
        assert_eq!(fix.deleted, 0, "LC is constructible; nothing deleted");
        assert_eq!(fix.passes, 1);
        // Same for SC.
        let fix_sc = BoundedConstructible::compute(&Sc, &u);
        assert_eq!(fix_sc.deleted, 0);
    }

    #[test]
    fn theorem_23_lc_equals_nn_star_small() {
        // Bounded check of LC = NN*: with a 5-node bound, sizes ≤ 4 are
        // past at least one deletion pass; the paper predicts exact
        // agreement with LC at every size below the boundary.
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        for n in 0..u.max_nodes {
            let agree = fix.agreement_with(&Lc, n, &u);
            assert_eq!(
                agree.disagreements, 0,
                "NN* ≠ LC at size {n}: {agree:?}"
            );
        }
    }

    #[test]
    fn fixpoint_sandwiched_between_lc_and_nn() {
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        for (c, phi) in fix.iter() {
            assert!(Nn::new().contains(c, phi), "fixpoint ⊆ NN violated");
        }
        // LC ⊆ fixpoint at every size (LC is constructible and ⊆ NN, so it
        // survives every pass).
        let _ = u.for_each_computation(|c| {
            let _ = for_each_observer(c, |phi| {
                if Lc.contains(c, phi) {
                    assert!(fix.contains(c, phi), "LC ⊄ fixpoint at {c:?} {phi:?}");
                }
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn lookahead_kills_figure4_pair() {
        // The Figure-4 prefix pair is in NN but dies at lookahead 1.
        let w = crate::witness::figure4_prefix();
        let alphabet = crate::op::Op::all(1);
        assert!(survives_lookahead(&Nn::default(), &w.computation, &w.phi, 0, &alphabet));
        assert!(!survives_lookahead(&Nn::default(), &w.computation, &w.phi, 1, &alphabet));
    }

    #[test]
    fn lookahead_spares_lc_pairs() {
        // LC is constructible: its pairs survive any finite lookahead.
        let c = crate::computation::Computation::from_edges(
            3,
            &[(0, 1)],
            vec![
                crate::op::Op::Write(crate::op::Location::new(0)),
                crate::op::Op::Read(crate::op::Location::new(0)),
                crate::op::Op::Write(crate::op::Location::new(0)),
            ],
        );
        let phi = crate::observer::ObserverFunction::base(&c).with(
            crate::op::Location::new(0),
            ccmm_dag::NodeId::new(1),
            Some(ccmm_dag::NodeId::new(0)),
        );
        assert!(Lc.contains(&c, &phi));
        let alphabet = crate::op::Op::all(1);
        for k in 0..4 {
            assert!(survives_lookahead(&Lc, &c, &phi, k, &alphabet), "k={k}");
        }
        // And since LC ⊆ NN with LC constructible, it also survives in NN.
        for k in 0..4 {
            assert!(survives_lookahead(&Nn::default(), &c, &phi, k, &alphabet), "k={k}");
        }
    }

    #[test]
    fn lookahead_agrees_with_bounded_fixpoint() {
        // For pairs of size s in a bound-b universe, the fixpoint applies
        // (b - s) levels of lookahead... at least one pass; cross-check
        // 2-node pairs in a 4-bound universe against 2-step lookahead.
        let u = Universe::new(4, 1);
        let fix = BoundedConstructible::compute(&Nn::default(), &u);
        let alphabet = u.alphabet();
        let mut f = |c: &Computation| {
            let _ = for_each_observer(c, |phi| {
                if Nn::default().contains(c, phi) {
                    let deep = survives_lookahead(&Nn::default(), c, phi, 2, &alphabet);
                    let in_fix = fix.contains(c, phi);
                    // fixpoint lookahead ≥ 2 here, so fixpoint ⊆ deep.
                    assert!(!in_fix || deep, "fixpoint kept a 2-step-dead pair");
                }
                std::ops::ControlFlow::Continue(())
            });
            std::ops::ControlFlow::Continue(())
        };
        let _ = u.for_each_computation_of_size(2, &mut f);
    }

    #[test]
    fn nn_fixpoint_actually_deletes() {
        // NN is not constructible, so the fixpoint must remove pairs
        // (the size-4 crossing pairs of Figure 4 are below a 5-node
        // boundary only when max_nodes = 5; at max_nodes = 4 deletions
        // happen at size 3 or smaller — verify *some* deletion occurs at
        // the 5-node bound).
        let u = Universe::new(5, 1);
        let fix = BoundedConstructible::compute(&Nn::new(), &u);
        assert!(fix.deleted > 0, "NN fixpoint deleted nothing");
        assert!(fix.passes >= 2);
    }
}
