//! Lane-parallel bounded Δ* fixpoint: survivor sets as `u64` verdict
//! masks over node-major observer columns.
//!
//! The scalar worklist ([`BoundedConstructible::compute_worklist`])
//! keys survivor sets by `HashMap<Computation, HashSet<ObserverFunction>>`
//! — every membership query hashes a whole observer table, every
//! cascade re-check re-enumerates extension candidates one `HashSet`
//! probe at a time. This module replaces that representation with a
//! flat bit arena:
//!
//! * Every labelled computation in the universe gets an [`Entry`]: a
//!   contiguous run of mask words in which bit `p` is the survivor flag
//!   of the `p`-th observer in **node-major** enumeration order
//!   ([`for_each_observer_node_major`]).
//! * Node-major order sorts free observer slots by `(node, location)`,
//!   so the final node's slots always form the least-significant digits
//!   of the mixed-radix observer index. Because augmentation appends a
//!   node that succeeds every existing node, the order is *recursively*
//!   self-consistent: for an augmentation `A = C·o` with last-node slot
//!   radix product `E`, observer `p` of `C` extends exactly to the
//!   block `[p·E, (p+1)·E)` of `A`'s observers, and conversely
//!   `index(A, Φ′) / E = index(C, Φ′|_C)`. The `Δ*` extension
//!   condition "some extension of `Φ` survives in `A`" is therefore a
//!   single aligned block-emptiness test on `A`'s mask — one word-AND
//!   covers up to 64 scalar `HashSet` probes — and deletion
//!   propagation to the unique augmentation parent is a shift
//!   (`parent bit = p / E`) instead of an observer-table restriction.
//!   Masking is exact: clearing bit `p` removes exactly the pair the
//!   scalar path removes, and a block emptiness flip is exactly the
//!   scalar `any_extension` condition turning false, so the greatest
//!   fixpoint (and `deleted`) is bit-identical to the scalar worklist.
//!
//! Stage A (mask materialisation) runs under the full supervisor
//! machinery — work-stealing shards, deadlines, quarantine,
//! checkpoint/resume — via [`sweep_supervised_ckpt`], filling each
//! task's mask words either with the lane engine (64 observers per
//! [`LanePack`] word through [`MemoryModel::contains_lanes`]) or the
//! scalar kernel (bit-at-a-time; same bits, used for journal interop
//! and differential tests). Stage B (the cascade) is a serial
//! worklist over the arena mirroring the scalar algorithm's rounds,
//! counters, and quarantine semantics exactly.
//!
//! Checkpoint records are *incremental*: each snapshot journals only
//! the mask groups completed since the previous record (plus the full
//! frontier), so the journal stays proportional to the state instead
//! of quadratic in it; decoding folds every record of the journal.

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ccmm_dag::{Dag, NodeId};

use crate::ckpt::{get_u64, put_u64, Checkpoint, CkptWriter};
use crate::computation::Computation;
use crate::enumerate::{for_each_observer_node_major, node_major_index, node_major_shape};
use crate::fault::{payload_string, FaultPlan};
use crate::model::{CheckScratch, LanePack, LaneScratch, MemoryModel};
use crate::observer::ObserverFunction;
use crate::op::Op;
use crate::sweep::supervisor::{
    sweep_supervised_ckpt, CkptSink, Frontier, Merge, Quarantined, Supervised, Supervisor,
    SweepStatus,
};
use crate::sweep::{for_each_labelling, materialize, LabelScratch, SweepConfig};
use crate::telemetry::{self, Counter};
use crate::universe::Universe;

#[cfg(doc)]
use crate::constructible::BoundedConstructible;

/// One completed task's survivor-mask words: all `kⁿ` labellings of one
/// poset, in labelling order, each labelling's mask starting on a fresh
/// word boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MaskGroup {
    /// Dense labelled-task index (position in the labelled task list).
    pub task: u64,
    /// Mask words, concatenated per labelling.
    pub words: Vec<u64>,
}

/// Checkpointable Stage-A state of the lane fixpoint: the mask groups
/// of every completed shard, in completion order.
#[derive(Debug, Default)]
pub struct MaskState {
    /// Completed groups (unordered across tasks; each task appears once).
    pub groups: Vec<MaskGroup>,
    // High-water mark of groups already written to the journal, so each
    // checkpoint record is incremental. Interior mutability because the
    // encode hook only gets `&MaskState`; records are serialised under
    // the supervisor's checkpoint mutex, so the `Cell` is never raced.
    journaled: Cell<usize>,
}

impl Merge for MaskState {
    fn merge(&mut self, other: Self) {
        self.groups.extend(other.groups);
    }
}

/// Serialises the groups completed since the last snapshot:
/// `frontier ‖ ngroups ‖ (task ‖ nwords ‖ words…)*`.
pub fn encode_masks_snapshot(frontier: &Frontier, state: &MaskState) -> Vec<u8> {
    let from = state.journaled.get();
    let fresh = &state.groups[from..];
    let mut out = Vec::new();
    frontier.encode_into(&mut out);
    put_u64(&mut out, fresh.len() as u64);
    for g in fresh {
        put_u64(&mut out, g.task);
        put_u64(&mut out, g.words.len() as u64);
        for &w in &g.words {
            put_u64(&mut out, w);
        }
    }
    state.journaled.set(state.groups.len());
    out
}

/// Folds every record of a fixpoint journal back into `(frontier,
/// state)`. Records are incremental, so groups concatenate across
/// records and the *last* record's frontier wins. Returns `None` on a
/// torn or malformed journal.
pub fn decode_masks_journal(ckpt: &Checkpoint) -> Option<(Frontier, MaskState)> {
    let mut frontier = Frontier::default();
    let mut groups = Vec::new();
    for rec in &ckpt.snapshots {
        let mut at: &[u8] = rec;
        frontier = Frontier::decode_from(&mut at)?;
        let n = get_u64(&mut at)? as usize;
        for _ in 0..n {
            let task = get_u64(&mut at)?;
            let nwords = get_u64(&mut at)? as usize;
            let mut words = Vec::with_capacity(nwords);
            for _ in 0..nwords {
                words.push(get_u64(&mut at)?);
            }
            groups.push(MaskGroup { task, words });
        }
    }
    let journaled = Cell::new(groups.len());
    Some((frontier, MaskState { groups, journaled }))
}

impl MaskState {
    fn group_for(&mut self, task: usize) -> &mut Vec<u64> {
        if self.groups.last().is_none_or(|g| g.task != task as u64) {
            self.groups.push(MaskGroup { task: task as u64, words: Vec::new() });
        }
        &mut self.groups.last_mut().expect("just pushed").words
    }
}

// ---------------------------------------------------------------------
// Layout: dense metadata for every labelled task and labelling.
// ---------------------------------------------------------------------

/// Per labelled computation: where its mask lives and how it factors
/// through augmentation.
#[derive(Clone, Copy, Debug)]
struct Entry {
    /// First word of this labelling's mask in the arena.
    off: u64,
    /// Number of observers (mask bits; tail bits of the last word are 0).
    observers: u32,
    /// Block size `E`: product of the final node's slot radices. The
    /// parent observer of bit `p` is bit `p / block` of the parent
    /// entry, and conversely parent bit `q` extends to exactly
    /// `[q·block, (q+1)·block)` here.
    block: u32,
}

#[derive(Clone, Debug)]
struct TaskMeta {
    size: usize,
    /// Index of this task's first entry; labellings are contiguous, one
    /// entry per base-`k` op assignment (digit of node 0 fastest).
    entry_base: usize,
    /// Number of labellings, `k^size`.
    labellings: u64,
    /// Task whose poset is this one minus its final node — present iff
    /// the final node succeeds every other node (the unique
    /// augmentation parent shape).
    parent: Option<u32>,
    /// Task whose poset is this one plus a new final node above all —
    /// present iff `size < max_nodes`.
    aug: Option<u32>,
}

struct Layout {
    k: usize,
    metas: Vec<TaskMeta>,
    entries: Vec<Entry>,
    words_len: u64,
    /// `(node count, closure bits over u<v pairs)` → task position.
    key_map: HashMap<(u8, u64), u32>,
}

/// Bit-packs the edges among the first `n` nodes of a naturally
/// labelled dag: pair `(u, v)` with `u < v` at bit `v(v−1)/2 + u`.
fn sub_key(dag: &Dag, n: usize) -> u64 {
    assert!(n <= 11, "lane fixpoint packs closures into u64 (≤ 11 nodes)");
    let mut bits = 0u64;
    let mut i = 0;
    for v in 1..n {
        for u in 0..v {
            if dag.has_edge(NodeId::new(u), NodeId::new(v)) {
                bits |= 1 << i;
            }
            i += 1;
        }
    }
    bits
}

/// Key of `dag` augmented with a new final node above every node.
fn aug_key(dag: &Dag) -> u64 {
    let n = dag.node_count();
    let mut bits = sub_key(dag, n);
    let base = n * n.saturating_sub(1) / 2;
    for u in 0..n {
        bits |= 1 << (base + u);
    }
    bits
}

fn build_layout(u: &Universe) -> Layout {
    let alphabet = u.alphabet();
    let k = alphabet.len();
    let tasks = materialize(u, false);
    let mut key_map = HashMap::with_capacity(tasks.len());
    for (pos, t) in tasks.iter().enumerate() {
        debug_assert_eq!(t.idx, pos, "labelled tasks are dense");
        key_map.insert((t.size as u8, sub_key(&t.dag, t.size)), pos as u32);
    }
    let identity: Vec<Vec<usize>> = vec![(0..k).collect()];
    let mut scratch = LabelScratch::new();
    let mut metas = Vec::with_capacity(tasks.len());
    let mut entries = Vec::new();
    let mut words_len = 0u64;
    for t in &tasks {
        let n = t.size;
        let parent =
            if n > 0 && (0..n - 1).all(|us| t.dag.has_edge(NodeId::new(us), NodeId::new(n - 1))) {
                let key = (n as u8 - 1, sub_key(&t.dag, n - 1));
                Some(*key_map.get(&key).expect("prefix poset is enumerated"))
            } else {
                None
            };
        let aug = if n < u.max_nodes {
            let key = (n as u8 + 1, aug_key(&t.dag));
            Some(*key_map.get(&key).expect("universe is closed under augmentation below the bound"))
        } else {
            None
        };
        let entry_base = entries.len();
        let _ = for_each_labelling(&alphabet, &identity, t, &mut scratch, &mut |c, _w| {
            let (observers, block) = node_major_shape(c);
            entries.push(Entry {
                off: words_len,
                observers: u32::try_from(observers).expect("observer count fits u32"),
                block: u32::try_from(block).expect("block size fits u32"),
            });
            words_len += observers.div_ceil(64);
            ControlFlow::Continue(())
        });
        let labellings = (entries.len() - entry_base) as u64;
        metas.push(TaskMeta { size: n, entry_base, labellings, parent, aug });
    }
    Layout { k, metas, entries, words_len, key_map }
}

fn entry_words(e: &Entry) -> usize {
    (e.observers as usize).div_ceil(64)
}

/// Entries are laid out in task order, so the owning task of entry `e`
/// is found by partition point on `entry_base`.
fn owner(metas: &[TaskMeta], e: usize) -> usize {
    metas.partition_point(|m| m.entry_base <= e) - 1
}

/// Copies completed mask groups into a zeroed arena. Tasks with no
/// group (Stage-A quarantine kept the shard out of the state) are
/// filled all-ones masked to their observer counts — the conservative
/// *keep* that preserves the fixpoint's over-approximation invariant.
fn fill_arena(layout: &Layout, state: MaskState) -> Vec<u64> {
    let mut words = vec![0u64; layout.words_len as usize];
    let mut have = vec![false; layout.metas.len()];
    for g in state.groups {
        let t = g.task as usize;
        let meta = &layout.metas[t];
        let start = layout.entries[meta.entry_base].off as usize;
        let last = &layout.entries[meta.entry_base + meta.labellings as usize - 1];
        let end = last.off as usize + entry_words(last);
        assert!(!have[t], "task {t} journalled twice");
        assert_eq!(end - start, g.words.len(), "mask group length mismatch for task {t}");
        words[start..end].copy_from_slice(&g.words);
        have[t] = true;
    }
    for (t, meta) in layout.metas.iter().enumerate() {
        if have[t] {
            continue;
        }
        for e in &layout.entries[meta.entry_base..meta.entry_base + meta.labellings as usize] {
            let off = e.off as usize;
            let nw = entry_words(e);
            for w in &mut words[off..off + nw] {
                *w = !0;
            }
            let tail = e.observers % 64;
            if nw > 0 && tail != 0 {
                words[off + nw - 1] = (1u64 << tail) - 1;
            }
        }
    }
    words
}

/// Whether the `len`-bit block starting at bit `start` of an entry's
/// mask slice is all zeros. Counts the words it examines toward
/// [`Counter::LaneFixpointWords`].
pub(crate) fn block_empty(words: &[u64], start: u64, len: u64) -> bool {
    debug_assert!(len > 0);
    let end = start + len;
    telemetry::count(Counter::LaneFixpointWords, (end - 1) / 64 - start / 64 + 1);
    let mut bit = start;
    while bit < end {
        let w = (bit / 64) as usize;
        let off = bit % 64;
        let span = (64 - off).min(end - bit);
        let mask = if span == 64 { !0 } else { ((1u64 << span) - 1) << off };
        if words[w] & mask != 0 {
            return false;
        }
        bit += span;
    }
    true
}

// ---------------------------------------------------------------------
// Stage A: mask materialisation under the supervisor.
// ---------------------------------------------------------------------

fn materialize_masks<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
    resume: Option<(Frontier, MaskState)>,
    ckpt: Option<(&mut CkptWriter, usize)>,
    lanes: bool,
) -> Supervised<MaskState> {
    let encode = |s: &MaskState, f: &Frontier| encode_masks_snapshot(f, s);
    let sink = ckpt.map(|(writer, every)| CkptSink { writer, every, encode: &encode });
    sweep_supervised_ckpt(
        u,
        cfg,
        sup,
        resume,
        sink,
        MaskState::default,
        || (LanePack::new(), LaneScratch::new(), CheckScratch::new()),
        |acc, xs, idx, c, _w| {
            let (pack, lscr, check) = xs;
            let words = acc.group_for(idx);
            if lanes {
                pack.prepare(c);
                let flush = |pack: &mut LanePack, lscr: &mut LaneScratch| {
                    let used = pack.used();
                    telemetry::count(Counter::LaneWords, 1);
                    telemetry::count(Counter::LaneSlots, u64::from(used.count_ones()));
                    telemetry::count(Counter::LaneFixpointWords, 1);
                    let verdict = model.contains_lanes(c, pack, lscr) & used;
                    pack.clear_lanes();
                    verdict
                };
                let _ = for_each_observer_node_major(c, |phi| {
                    pack.push_valid(c, phi);
                    if pack.is_full() {
                        let v = flush(pack, lscr);
                        words.push(v);
                    }
                    ControlFlow::Continue(())
                });
                if !pack.is_empty() {
                    let v = flush(pack, lscr);
                    words.push(v);
                }
            } else {
                let mut word = 0u64;
                let mut bit = 0u32;
                let _ = for_each_observer_node_major(c, |phi| {
                    if model.contains_with(c, phi, check) {
                        word |= 1 << bit;
                    }
                    bit += 1;
                    if bit == 64 {
                        telemetry::count(Counter::LaneFixpointWords, 1);
                        words.push(word);
                        word = 0;
                        bit = 0;
                    }
                    ControlFlow::Continue(())
                });
                if bit > 0 {
                    telemetry::count(Counter::LaneFixpointWords, 1);
                    words.push(word);
                }
            }
        },
    )
}

// ---------------------------------------------------------------------
// Stage B: serial masked worklist cascade.
// ---------------------------------------------------------------------

struct FixOutcome {
    passes: usize,
    deleted: usize,
    quarantined: Vec<Quarantined>,
}

fn entry_slice<'a>(words: &'a [u64], e: &Entry) -> &'a [u64] {
    &words[e.off as usize..e.off as usize + entry_words(e)]
}

fn run_fixpoint(layout: &Layout, words: &mut [u64], fault: &FaultPlan) -> FixOutcome {
    // Initial full pass: for every surviving bit of every interior
    // entry, test each op's extension block in the augmentation's mask.
    // One interior *computation* is one supervised check (mirroring the
    // scalar path's per-computation quarantine granularity), retried
    // once under catch_unwind and quarantined — keeping its bits — on a
    // second panic.
    let mut queue: Vec<(u32, u32)> = Vec::new();
    let mut quarantined = Vec::new();
    let mut check_idx = 0usize;
    for meta in &layout.metas {
        let Some(aug_task) = meta.aug else { continue };
        let aug_meta = &layout.metas[aug_task as usize];
        for ord in 0..meta.labellings {
            let e = meta.entry_base + ord as usize;
            let i = check_idx;
            check_idx += 1;
            let attempt = || {
                fault.before_fixpoint_check(i);
                let mut doomed: Vec<(u32, u32)> = Vec::new();
                let entry = &layout.entries[e];
                let off = entry.off as usize;
                for wi in 0..entry_words(entry) {
                    let mut w = words[off + wi];
                    while w != 0 {
                        let p = (wi as u32) * 64 + w.trailing_zeros();
                        w &= w - 1;
                        for j in 0..layout.k as u64 {
                            let a = aug_meta.entry_base + (ord + j * meta.labellings) as usize;
                            let ae = &layout.entries[a];
                            let block = u64::from(ae.block);
                            if block_empty(entry_slice(words, ae), u64::from(p) * block, block) {
                                doomed.push((e as u32, p));
                                break;
                            }
                        }
                    }
                }
                doomed
            };
            match catch_unwind(AssertUnwindSafe(attempt)) {
                Ok(doomed) => queue.extend(doomed),
                Err(_first) => match catch_unwind(AssertUnwindSafe(attempt)) {
                    Ok(doomed) => queue.extend(doomed),
                    Err(second) => {
                        telemetry::count(Counter::Quarantines, 1);
                        quarantined.push(Quarantined {
                            task_idx: i,
                            size: meta.size,
                            payload: payload_string(second),
                        });
                    }
                },
            }
        }
    }

    // Cascade: clear a round of bits, push the unique augmentation
    // parent of each cleared bit for re-check, evaluate re-checks after
    // the round. Identical round structure, counters, and `passes`
    // accounting to the scalar worklist.
    let mut passes = 1;
    let mut deleted = 0usize;
    telemetry::count(Counter::WorklistPushes, queue.len() as u64);
    while !queue.is_empty() {
        telemetry::count(Counter::WorklistPops, queue.len() as u64);
        let mut recheck: Vec<(u32, u32, u32)> = Vec::new();
        for (e, p) in queue.drain(..) {
            let entry = &layout.entries[e as usize];
            let w = entry.off as usize + (p / 64) as usize;
            let m = 1u64 << (p % 64);
            if words[w] & m == 0 {
                continue; // deleted earlier this cascade
            }
            words[w] &= !m;
            deleted += 1;
            telemetry::count(Counter::LaneDeletionsMasked, 1);
            let t = owner(&layout.metas, e as usize);
            let meta = &layout.metas[t];
            if let Some(pt) = meta.parent {
                let pmeta = &layout.metas[pt as usize];
                let ord = e as usize - meta.entry_base;
                let pe = pmeta.entry_base + ord % pmeta.labellings as usize;
                let pb = p / entry.block;
                let pentry = &layout.entries[pe];
                debug_assert_eq!(
                    u64::from(pentry.observers) * u64::from(entry.block),
                    u64::from(entry.observers),
                    "augmentation factorisation"
                );
                let pw = pentry.off as usize + (pb / 64) as usize;
                if words[pw] & (1u64 << (pb % 64)) != 0 {
                    recheck.push((pe as u32, pb, e));
                }
            }
        }
        let mut next: Vec<(u32, u32)> = Vec::new();
        for (pe, pb, ce) in recheck {
            let pentry = &layout.entries[pe as usize];
            let pw = pentry.off as usize + (pb / 64) as usize;
            if words[pw] & (1u64 << (pb % 64)) == 0 {
                continue;
            }
            let centry = &layout.entries[ce as usize];
            let block = u64::from(centry.block);
            if block_empty(entry_slice(words, centry), u64::from(pb) * block, block) {
                next.push((pe, pb));
            }
        }
        queue = next;
        telemetry::count(Counter::WorklistPushes, queue.len() as u64);
        if !queue.is_empty() {
            passes += 1;
        }
    }
    FixOutcome { passes, deleted, quarantined }
}

// ---------------------------------------------------------------------
// Public result type.
// ---------------------------------------------------------------------

/// The bounded Δ* fixpoint computed lane-parallel over mask words.
/// Survivors, `deleted`, and `passes` are bit-identical to
/// [`BoundedConstructible::compute_worklist`] on the same universe.
pub struct LaneConstructible {
    alphabet: Vec<Op>,
    metas: Vec<TaskMeta>,
    entries: Vec<Entry>,
    key_map: HashMap<(u8, u64), u32>,
    words: Vec<u64>,
    /// The universe bound the fixpoint was computed at.
    pub max_nodes: usize,
    /// Worklist rounds (initial pass + cascade generations).
    pub passes: usize,
    /// Pairs deleted by the fixpoint.
    pub deleted: usize,
    /// Stage-A shard and Stage-B check quarantine reports (empty on a
    /// clean run). Stage-B entries use initial-pass check indices.
    pub quarantined: Vec<Quarantined>,
}

impl LaneConstructible {
    fn empty(u: &Universe) -> Self {
        LaneConstructible {
            alphabet: u.alphabet(),
            metas: Vec::new(),
            entries: Vec::new(),
            key_map: HashMap::new(),
            words: Vec::new(),
            max_nodes: u.max_nodes,
            passes: 0,
            deleted: 0,
            quarantined: Vec::new(),
        }
    }

    /// Computes the fixpoint with the lane engine, panicking unless the
    /// run completes cleanly. See [`Self::compute_supervised`].
    pub fn compute<M: MemoryModel + Sync>(model: &M, u: &Universe, cfg: &SweepConfig) -> Self {
        Self::compute_supervised(model, u, cfg, &Supervisor::none(), None, None, true)
            .expect_complete("lane Δ* fixpoint")
    }

    /// Computes the fixpoint under full supervision: Stage A
    /// (materialisation) honours deadlines, checkpoints to `ckpt`
    /// (`(writer, every)`), resumes from a decoded journal, and
    /// quarantines panicking shards (their masks are conservatively
    /// kept all-ones); Stage B mirrors the scalar worklist's
    /// per-computation quarantine. `lanes` selects the lane kernel
    /// ([`MemoryModel::contains_lanes`]) or the scalar kernel for Stage
    /// A — the journals and results are bit-identical either way, so a
    /// journal written by one engine resumes under the other.
    ///
    /// A `Killed`/`Partial` Stage A returns an empty value carrying the
    /// status and frontier; the fixpoint only runs on a complete
    /// (possibly degraded) materialisation.
    pub fn compute_supervised<M: MemoryModel + Sync>(
        model: &M,
        u: &Universe,
        cfg: &SweepConfig,
        sup: &Supervisor,
        resume: Option<(Frontier, MaskState)>,
        ckpt: Option<(&mut CkptWriter, usize)>,
        lanes: bool,
    ) -> Supervised<Self> {
        // The fixpoint keys survivors by labelled computation, so Stage
        // A always runs the labelled enumeration (as the scalar path
        // does) even under a canonical config.
        let cfg = &SweepConfig { canonical: false, ..*cfg };
        let stage_a = materialize_masks(model, u, cfg, sup, resume, ckpt, lanes);
        if matches!(stage_a.status, SweepStatus::Partial | SweepStatus::Killed) {
            return stage_a.map(|_| Self::empty(u));
        }
        let Supervised { value, mut status, mut quarantined, frontier, total_tasks, ckpt_error } =
            stage_a;
        let layout = build_layout(u);
        let mut words = fill_arena(&layout, value);
        let out = run_fixpoint(&layout, &mut words, &sup.fault);
        if !out.quarantined.is_empty() {
            status = status.max(SweepStatus::Degraded);
        }
        quarantined.extend(out.quarantined);
        let value = LaneConstructible {
            alphabet: u.alphabet(),
            metas: layout.metas,
            entries: layout.entries,
            key_map: layout.key_map,
            words,
            max_nodes: u.max_nodes,
            passes: out.passes,
            deleted: out.deleted,
            quarantined: quarantined.clone(),
        };
        telemetry::count(Counter::LaneSurvivorPop, value.total_pairs() as u64);
        Supervised { value, status, quarantined, frontier, total_tasks, ckpt_error }
    }

    /// Whether `(c, phi)` survived the fixpoint. Matches the scalar
    /// [`BoundedConstructible::contains`] on every computation of the
    /// universe: an unknown shape (too large, backward edge, op outside
    /// the alphabet, non-enumerated closure) is simply not a survivor.
    pub fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        let n = c.node_count();
        if n > self.max_nodes || n > 11 {
            return false;
        }
        for (a, b) in c.dag().edges() {
            if a.index() >= b.index() {
                return false; // tasks are naturally labelled
            }
        }
        let Some(&t) = self.key_map.get(&(n as u8, sub_key(c.dag(), n))) else {
            return false;
        };
        let meta = &self.metas[t as usize];
        let mut ord = 0u64;
        for v in (0..n).rev() {
            let Some(d) = self.alphabet.iter().position(|&o| o == c.op(NodeId::new(v))) else {
                return false;
            };
            ord = ord * self.alphabet.len() as u64 + d as u64;
        }
        let e = &self.entries[meta.entry_base + ord as usize];
        let Some(p) = node_major_index(c, phi) else {
            return false;
        };
        debug_assert!(p < u64::from(e.observers));
        self.words[e.off as usize + (p / 64) as usize] & (1u64 << (p % 64)) != 0
    }

    /// Total surviving pairs (mask population count).
    pub fn total_pairs(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Surviving pairs for computations of exactly `n` nodes.
    pub fn pairs_of_size(&self, n: usize) -> usize {
        self.metas
            .iter()
            .filter(|m| m.size == n)
            .flat_map(|m| &self.entries[m.entry_base..m.entry_base + m.labellings as usize])
            .map(|e| {
                entry_slice(&self.words, e).iter().map(|w| w.count_ones() as usize).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructible::BoundedConstructible;
    use crate::enumerate::for_each_observer;
    use crate::model::{Lc, Nn};

    fn cfg(threads: usize) -> SweepConfig {
        SweepConfig { threads, ..SweepConfig::default() }
    }

    fn assert_matches_scalar<M: MemoryModel + Sync>(
        model: &M,
        u: &Universe,
        lane: &LaneConstructible,
    ) {
        let scalar = BoundedConstructible::compute_worklist(model, u, &cfg(1));
        assert_eq!(lane.total_pairs(), scalar.total_pairs());
        assert_eq!(lane.deleted, scalar.deleted);
        assert_eq!(lane.passes, scalar.passes);
        for n in 0..=u.max_nodes {
            assert_eq!(lane.pairs_of_size(n), scalar.pairs_of_size(n), "size {n}");
        }
        let _ = u.for_each_computation(|c| {
            let _ = for_each_observer(c, |phi| {
                assert_eq!(
                    lane.contains(c, phi),
                    scalar.contains(c, phi),
                    "pair disagreement on {c:?} / {phi:?}"
                );
                ControlFlow::Continue(())
            });
            ControlFlow::Continue(())
        });
    }

    #[test]
    fn lane_fixpoint_matches_scalar_worklist() {
        for &(b, l) in &[(3, 1), (4, 1), (3, 2)] {
            let u = Universe::new(b, l);
            let lane = LaneConstructible::compute(&Nn::default(), &u, &cfg(1));
            assert_matches_scalar(&Nn::default(), &u, &lane);
        }
    }

    #[test]
    fn lane_fixpoint_matches_scalar_worklist_threaded_and_lc() {
        let u = Universe::new(3, 2);
        let lane = LaneConstructible::compute(&Lc, &u, &cfg(4));
        assert_matches_scalar(&Lc, &u, &lane);
    }

    #[test]
    fn scalar_kernel_stage_a_is_bit_identical_to_lanes() {
        let u = Universe::new(4, 1);
        let lane = LaneConstructible::compute(&Nn::default(), &u, &cfg(1));
        let scalar_kernel = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg(2),
            &Supervisor::none(),
            None,
            None,
            false,
        )
        .expect_complete("scalar-kernel fixpoint");
        assert_eq!(lane.words, scalar_kernel.words);
        assert_eq!(lane.deleted, scalar_kernel.deleted);
        assert_eq!(lane.passes, scalar_kernel.passes);
    }

    #[test]
    fn kill_and_resume_is_bit_identical_across_engines() {
        let path = std::env::temp_dir().join(format!("ccmm-lanefix-resume-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let u = Universe::new(4, 1);
        let clean = LaneConstructible::compute(&Nn::default(), &u, &cfg(1));

        let sup = Supervisor::with_fault(FaultPlan::none().kill_after_records(2));
        let mut writer = CkptWriter::create(&path, "lanefix-test").expect("create journal");
        let killed = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg(1),
            &sup,
            None,
            Some((&mut writer, 4)),
            true,
        );
        assert_eq!(killed.status, SweepStatus::Killed);
        drop(writer);

        let ckpt = Checkpoint::load(&path).expect("journal readable");
        let (frontier, state) = decode_masks_journal(&ckpt).expect("journal decodes");
        assert!(!frontier.is_empty(), "kill happened after a checkpoint");
        // Resume with the *scalar* kernel: journals interoperate.
        let mut writer = CkptWriter::append_to(&path).expect("reopen journal");
        let resumed = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg(1),
            &Supervisor::none(),
            Some((frontier, state)),
            Some((&mut writer, 4)),
            false,
        )
        .expect_complete("resumed fixpoint");
        assert_eq!(resumed.words, clean.words);
        assert_eq!(resumed.deleted, clean.deleted);
        assert_eq!(resumed.passes, clean.passes);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fixpoint_quarantine_keeps_bits_and_degrades() {
        let u = Universe::new(3, 1);
        let clean = LaneConstructible::compute(&Nn::default(), &u, &cfg(1));
        let sup = Supervisor::with_fault(FaultPlan::none().panic_at_fixpoint(0));
        let out = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg(1),
            &sup,
            None,
            None,
            true,
        );
        assert_eq!(out.status, SweepStatus::Degraded);
        assert_eq!(out.quarantined.len(), 1);
        assert!(out.quarantined[0].payload.contains("fixpoint check 0"));
        // Quarantine keeps pairs: the degraded run over-approximates.
        assert!(out.value.total_pairs() >= clean.total_pairs());
        // Healing fault (panics once, retry succeeds) is not degraded.
        let sup = Supervisor::with_fault(FaultPlan::none().panic_once_at_fixpoint(0));
        let healed = LaneConstructible::compute_supervised(
            &Nn::default(),
            &u,
            &cfg(1),
            &sup,
            None,
            None,
            true,
        );
        assert_eq!(healed.status, SweepStatus::Complete);
        assert_eq!(healed.value.total_pairs(), clean.total_pairs());
    }
}
