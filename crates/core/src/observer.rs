//! Observer functions (Definition 2).
//!
//! An observer function `Φ : L × (V ∪ {⊥}) → V ∪ {⊥}` assigns to every
//! node, at every location, the write it *observes*. The three validity
//! conditions of Definition 2:
//!
//! 1. an observed node is a write to that location;
//! 2. a node never strictly precedes the node it observes
//!    (hence `Φ(l, ⊥) = ⊥`, since ⊥ precedes everything);
//! 3. a write observes itself.
//!
//! `⊥` is represented by `None`; the `⊥` row of the table is implicit
//! (always `None`). The table stores `Φ(l, u)` for `l` in
//! `0..num_locations` and `u` in `0..node_count`.

use crate::computation::Computation;
use crate::error::CoreError;
use crate::op::Location;
use ccmm_dag::NodeId;

/// An observer function for a computation with `node_count` nodes over
/// `num_locations` locations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ObserverFunction {
    /// `table[l][u] = Φ(l, u)`, `None` meaning ⊥.
    table: Vec<Vec<Option<NodeId>>>,
    node_count: usize,
}

serde::impl_serde_struct!(ObserverFunction { table, node_count });

impl ObserverFunction {
    /// The everywhere-⊥ function (valid iff the computation has no writes).
    pub fn bottom(num_locations: usize, node_count: usize) -> Self {
        ObserverFunction { table: vec![vec![None; node_count]; num_locations], node_count }
    }

    /// The unique observer function `Φ_ε` of the empty computation.
    pub fn empty() -> Self {
        ObserverFunction { table: Vec::new(), node_count: 0 }
    }

    /// Builds the *canonical base* for a computation: writes observe
    /// themselves (forced by Condition 2.3), everything else ⊥.
    pub fn base(c: &Computation) -> Self {
        let mut phi = Self::bottom(c.num_locations(), c.node_count());
        for l in c.locations() {
            for &w in c.writes_to(l) {
                phi.set(l, w, Some(w));
            }
        }
        phi
    }

    /// Builds Φ from a closure evaluated on every `(l, u)` pair.
    pub fn from_fn<F>(c: &Computation, mut f: F) -> Self
    where
        F: FnMut(Location, NodeId) -> Option<NodeId>,
    {
        let mut phi = Self::bottom(c.num_locations(), c.node_count());
        for l in c.locations() {
            for u in c.nodes() {
                phi.set(l, u, f(l, u));
            }
        }
        phi
    }

    /// Number of locations in the table.
    #[inline]
    pub fn num_locations(&self) -> usize {
        self.table.len()
    }

    /// Number of nodes in the table.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// `Φ(l, u)`. Out-of-range locations read as ⊥ (a computation with no
    /// ops on `l` forces ⊥ there anyway).
    #[inline]
    pub fn get(&self, l: Location, u: NodeId) -> Option<NodeId> {
        self.table.get(l.index()).and_then(|row| row[u.index()])
    }

    /// Sets `Φ(l, u) = v`.
    #[inline]
    pub fn set(&mut self, l: Location, u: NodeId, v: Option<NodeId>) {
        self.table[l.index()][u.index()] = v;
    }

    /// Builder-style `set`, for constructing witnesses in tests/examples.
    pub fn with(mut self, l: Location, u: NodeId, v: Option<NodeId>) -> Self {
        self.set(l, u, v);
        self
    }

    /// Appends one node in place: every location gains a ⊥ entry for the
    /// new node (set it afterwards with [`set`](ObserverFunction::set)).
    /// The incremental online session extends Φ by a column per reveal
    /// instead of rebuilding the whole `L × n` table.
    pub fn push_node(&mut self) -> NodeId {
        let new = NodeId::new(self.node_count);
        for row in &mut self.table {
            row.push(None);
        }
        self.node_count += 1;
        new
    }

    /// Removes the most recently appended node's column, undoing one
    /// [`push_node`](ObserverFunction::push_node). No-op at zero nodes.
    pub fn pop_node(&mut self) {
        if self.node_count == 0 {
            return;
        }
        for row in &mut self.table {
            row.pop();
        }
        self.node_count -= 1;
    }

    /// Appends `extra` fresh all-⊥ location rows (used when an extension
    /// introduces ops on locations the base table has never seen).
    pub fn push_locations(&mut self, extra: usize) {
        for _ in 0..extra {
            self.table.push(vec![None; self.node_count]);
        }
    }

    /// Drops location rows beyond `num_locations`, undoing
    /// [`push_locations`](ObserverFunction::push_locations) when a jammed
    /// reveal is rolled back. No-op if the table is already that small.
    pub fn truncate_locations(&mut self, num_locations: usize) {
        self.table.truncate(num_locations);
    }

    /// Checks Definition 2 against `c`, reporting the first violation.
    pub fn validate(&self, c: &Computation) -> Result<(), CoreError> {
        if self.node_count != c.node_count() || self.table.len() != c.num_locations() {
            return Err(CoreError::ObserverShapeMismatch {
                expected: (c.num_locations(), c.node_count()),
                found: (self.table.len(), self.node_count),
            });
        }
        for l in c.locations() {
            for u in c.nodes() {
                let observed = self.get(l, u);
                // Condition 2.3: writes observe themselves.
                if c.op(u).is_write_to(l) {
                    if observed != Some(u) {
                        return Err(CoreError::WriteNotSelfObserving { location: l, node: u });
                    }
                    continue;
                }
                if let Some(v) = observed {
                    // Condition 2.1: observed node is a write to l.
                    if !c.op(v).is_write_to(l) {
                        return Err(CoreError::ObservedNotAWrite {
                            location: l,
                            node: u,
                            observed: v,
                        });
                    }
                    // Condition 2.2: ¬(u ≺ v).
                    if c.precedes(u, v) {
                        return Err(CoreError::ObserverPrecedes {
                            location: l,
                            node: u,
                            observed: v,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether this is a valid observer function for `c`.
    pub fn is_valid_for(&self, c: &Computation) -> bool {
        self.validate(c).is_ok()
    }

    /// Whether `self` (on an extension) restricts to `base` on the first
    /// `base.node_count()` nodes, i.e. `Φ'|_C = Φ` where `C` consists of
    /// the lowest-numbered nodes.
    ///
    /// Locations of `self` beyond `base`'s range must be ⊥ on the base
    /// nodes: the base function is not defined there, and a non-⊥ value
    /// would point at a write outside the base computation.
    pub fn restricts_to(&self, base: &ObserverFunction) -> bool {
        debug_assert!(base.node_count <= self.node_count);
        for l in 0..self.num_locations() {
            let loc = Location::new(l);
            for u in 0..base.node_count {
                let node = NodeId::new(u);
                let here = self.get(loc, node);
                let there = if l < base.num_locations() { base.get(loc, node) } else { None };
                if here != there {
                    return false;
                }
            }
        }
        // Locations present in base but not in self read as ⊥ in self, so
        // they must be ⊥ in base too.
        for l in self.num_locations()..base.num_locations() {
            let loc = Location::new(l);
            for u in 0..base.node_count {
                if base.get(loc, NodeId::new(u)).is_some() {
                    return false;
                }
            }
        }
        true
    }

    /// The restriction of `self` to the first `node_count` nodes and
    /// `num_locations` locations (for initial-segment prefixes).
    ///
    /// Returns `None` if some retained entry points at a dropped node —
    /// in that case `Φ'|_C` is not an observer function for the prefix.
    pub fn restrict(&self, num_locations: usize, node_count: usize) -> Option<ObserverFunction> {
        let mut out = ObserverFunction::bottom(num_locations, node_count);
        for l in 0..num_locations {
            let loc = Location::new(l);
            for u in 0..node_count {
                let v = if l < self.num_locations() { self.get(loc, NodeId::new(u)) } else { None };
                if let Some(v) = v {
                    if v.index() >= node_count {
                        return None;
                    }
                }
                out.set(loc, NodeId::new(u), v);
            }
        }
        Some(out)
    }

    /// Pretty multi-line rendering, one row per location.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (l, row) in self.table.iter().enumerate() {
            s.push_str(&format!("l{l}: "));
            for (u, v) in row.iter().enumerate() {
                if u > 0 {
                    s.push(' ');
                }
                match v {
                    Some(w) => s.push_str(&format!("n{u}→n{}", w.index())),
                    None => s.push_str(&format!("n{u}→⊥")),
                }
            }
            s.push('\n');
        }
        s
    }
}

impl std::fmt::Debug for ObserverFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Φ{{")?;
        for (l, row) in self.table.iter().enumerate() {
            if l > 0 {
                write!(f, "; ")?;
            }
            write!(f, "l{l}:[")?;
            for (u, v) in row.iter().enumerate() {
                if u > 0 {
                    write!(f, ",")?;
                }
                match v {
                    Some(w) => write!(f, "{}", w.index())?,
                    None => write!(f, "⊥")?,
                }
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// W(0) -> R(0), plus an incomparable W(0).
    fn comp() -> Computation {
        Computation::from_edges(
            3,
            &[(0, 1)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0))],
        )
    }

    #[test]
    fn base_is_valid() {
        let c = comp();
        let phi = ObserverFunction::base(&c);
        assert!(phi.is_valid_for(&c));
        assert_eq!(phi.get(l(0), n(0)), Some(n(0)));
        assert_eq!(phi.get(l(0), n(2)), Some(n(2)));
        assert_eq!(phi.get(l(0), n(1)), None);
    }

    #[test]
    fn read_observing_preceding_write_is_valid() {
        let c = comp();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0)));
        assert!(phi.is_valid_for(&c));
    }

    #[test]
    fn read_observing_incomparable_write_is_valid() {
        let c = comp();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(2)));
        assert!(phi.is_valid_for(&c), "dag consistency allows observing incomparable writes");
    }

    #[test]
    fn condition_2_1_rejects_non_write_target() {
        let c = comp();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(1)));
        assert!(matches!(phi.validate(&c), Err(CoreError::ObservedNotAWrite { .. })));
    }

    #[test]
    fn condition_2_2_rejects_observing_the_future() {
        // R(0) -> W(0): the read precedes the write.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Write(l(0))]);
        let phi = ObserverFunction::base(&c).with(l(0), n(0), Some(n(1)));
        assert!(matches!(phi.validate(&c), Err(CoreError::ObserverPrecedes { .. })));
    }

    #[test]
    fn condition_2_3_requires_self_observation() {
        let c = comp();
        let mut phi = ObserverFunction::base(&c);
        phi.set(l(0), n(0), None);
        assert!(matches!(phi.validate(&c), Err(CoreError::WriteNotSelfObserving { .. })));
        let mut phi2 = ObserverFunction::base(&c);
        phi2.set(l(0), n(0), Some(n(2)));
        assert!(matches!(phi2.validate(&c), Err(CoreError::WriteNotSelfObserving { .. })));
    }

    #[test]
    fn shape_mismatch_detected() {
        let c = comp();
        let phi = ObserverFunction::bottom(1, 2);
        assert!(matches!(phi.validate(&c), Err(CoreError::ObserverShapeMismatch { .. })));
    }

    #[test]
    fn empty_observer_for_empty_computation() {
        let c = Computation::empty();
        let phi = ObserverFunction::empty();
        assert!(phi.is_valid_for(&c));
    }

    #[test]
    fn restriction_roundtrip() {
        let c = comp();
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(0)));
        // Extend: new node 3 reading l0, observing node 2.
        let c2 = c.extend(&[n(1)], Op::Read(l(0)));
        let mut phi2 = ObserverFunction::bottom(1, 4);
        for u in 0..3 {
            phi2.set(l(0), n(u), phi.get(l(0), n(u)));
        }
        phi2.set(l(0), n(3), Some(n(2)));
        assert!(phi2.is_valid_for(&c2));
        assert!(phi2.restricts_to(&phi));
        let back = phi2.restrict(1, 3).unwrap();
        assert_eq!(back, phi);
    }

    #[test]
    fn restricts_to_fails_on_difference() {
        let c = comp();
        let phi = ObserverFunction::base(&c);
        let changed = phi.clone().with(l(0), n(1), Some(n(0)));
        assert!(!changed.restricts_to(&phi) || phi == changed);
        // Same shape, different entry on a base node.
        assert!(!changed.restricts_to(&ObserverFunction::base(&c).with(l(0), n(1), Some(n(2)))));
    }

    #[test]
    fn restrict_fails_when_pointing_outside() {
        let c = comp();
        // Node 1 observes node 2, which a 2-node prefix drops.
        let phi = ObserverFunction::base(&c).with(l(0), n(1), Some(n(2)));
        assert!(phi.restrict(1, 2).is_none());
    }

    #[test]
    fn extra_location_rows_must_be_bottom_for_restriction() {
        // Base over 0 locations (all nops), extension introduces l0.
        let c0 = Computation::from_edges(1, &[], vec![Op::Nop]);
        let phi0 = ObserverFunction::base(&c0);
        let c1 = c0.extend(&[], Op::Write(l(0)));
        // The new write is incomparable with node 0, so node 0 *may*
        // observe it — but then the restriction no longer matches phi0.
        let good = ObserverFunction::base(&c1);
        let bad = ObserverFunction::base(&c1).with(l(0), n(0), Some(n(1)));
        assert!(good.is_valid_for(&c1));
        assert!(bad.is_valid_for(&c1));
        assert!(good.restricts_to(&phi0));
        assert!(!bad.restricts_to(&phi0));
    }

    #[test]
    fn render_and_debug_are_readable() {
        let c = comp();
        let phi = ObserverFunction::base(&c);
        assert!(phi.render().contains("n0→n0"));
        assert!(format!("{phi:?}").contains("l0:"));
    }
}
