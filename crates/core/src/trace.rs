//! Post-mortem verification of value traces.
//!
//! The paper frames computations as "a means for post mortem analysis, to
//! verify whether a system meets a specification by checking its behavior
//! after it has finished executing" (§1), citing \[GK94\]'s verification of
//! sequential consistency. This module is that analysis: given a
//! computation, the values its writes stored, and the values its reads
//! returned — but *not* which write each read observed — decide whether
//! the trace is consistent with a memory model.
//!
//! Two constraint-directed checkers cover the classical questions:
//!
//! * [`explain_sc`] — is the trace sequentially consistent? (\[GK94\]'s
//!   NP-complete problem; exact memoised search over one global
//!   serialization, checking each constrained read as it is scheduled.)
//! * [`explain_lc`] — is the trace location consistent (coherent)? (An
//!   independent serialization search per location, constrained only by
//!   that location's reads.)
//!
//! For the dag-consistency models, whose conditions relate *unobserved*
//! entries, [`explain_exhaustive`] enumerates completions — exponential,
//! for analysis of small computations only.

use crate::computation::Computation;
use crate::exec::Value;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use ccmm_dag::bitset::BitSet;
use ccmm_dag::NodeId;
use std::collections::{HashMap, HashSet};

/// A value trace: what each write stored and each read returned.
#[derive(Clone, Debug)]
pub struct ValueTrace {
    /// `write_values[w]` = value stored by write node `w` (entries for
    /// non-writes are ignored).
    pub write_values: Vec<Value>,
    /// Observed result per read node (node, value). Reads omitted here
    /// are unconstrained.
    pub read_values: Vec<(NodeId, Value)>,
    /// The initial value of every location.
    pub initial: Value,
}

impl ValueTrace {
    /// A trace with token write values (`w.index() + 1`) and the given
    /// read observations, over initial value 0.
    pub fn with_tokens(c: &Computation, read_values: Vec<(NodeId, Value)>) -> Self {
        ValueTrace {
            write_values: (0..c.node_count()).map(|i| i as Value + 1).collect(),
            read_values,
            initial: 0,
        }
    }

    /// The value the trace claims node `u` read, if recorded.
    pub fn expected(&self, u: NodeId) -> Option<Value> {
        self.read_values.iter().find(|(r, _)| *r == u).map(|&(_, v)| v)
    }

    fn value_of(&self, w: Option<NodeId>) -> Value {
        match w {
            Some(w) => self.write_values.get(w.index()).copied().unwrap_or(self.initial),
            None => self.initial,
        }
    }
}

/// A serialization search constrained by recorded read values.
///
/// `locs = None` means all locations are constrained against one global
/// order (SC); `locs = Some(l)` constrains only reads of `l` (the
/// per-location LC subproblem).
fn search_serialization(
    c: &Computation,
    trace: &ValueTrace,
    only: Option<Location>,
) -> Option<Vec<NodeId>> {
    let n = c.node_count();
    let constrained: HashMap<NodeId, Value> = trace
        .read_values
        .iter()
        .filter(|(r, _)| match (only, c.op(*r)) {
            (Some(l), Op::Read(rl)) => rl == l,
            (None, _) => true,
            _ => false,
        })
        .copied()
        .collect();
    let num_tracked = match only {
        Some(_) => 1,
        None => c.num_locations(),
    };
    let track_idx = |l: Location| -> usize {
        match only {
            Some(_) => 0,
            None => l.index(),
        }
    };

    struct S<'a> {
        c: &'a Computation,
        trace: &'a ValueTrace,
        constrained: HashMap<NodeId, Value>,
        only: Option<Location>,
        scheduled: BitSet,
        last: Vec<Option<NodeId>>,
        indeg: Vec<usize>,
        order: Vec<NodeId>,
        failed: HashSet<(BitSet, Vec<Option<NodeId>>)>,
    }

    impl S<'_> {
        fn tracked(&self, l: Location) -> bool {
            self.only.is_none_or(|o| o == l)
        }

        fn run(&mut self, track_idx: &dyn Fn(Location) -> usize) -> bool {
            if self.order.len() == self.c.node_count() {
                return true;
            }
            let key = (self.scheduled.clone(), self.last.clone());
            if self.failed.contains(&key) {
                return false;
            }
            for u in self.c.nodes() {
                if self.scheduled.contains(u.index()) || self.indeg[u.index()] != 0 {
                    continue;
                }
                // Check the recorded value, if any, against the current
                // last writer of the read's location.
                if let Some(&want) = self.constrained.get(&u) {
                    if let Op::Read(l) = self.c.op(u) {
                        if self.tracked(l) {
                            let have = self.trace.value_of(self.last[track_idx(l)]);
                            if have != want {
                                continue;
                            }
                        }
                    }
                }
                self.scheduled.insert(u.index());
                self.order.push(u);
                for &v in self.c.dag().successors(u) {
                    self.indeg[v.index()] -= 1;
                }
                let saved = if let Op::Write(l) = self.c.op(u) {
                    if self.tracked(l) {
                        let i = track_idx(l);
                        let s = self.last[i];
                        self.last[i] = Some(u);
                        Some((i, s))
                    } else {
                        None
                    }
                } else {
                    None
                };
                if self.run(track_idx) {
                    return true;
                }
                if let Some((i, s)) = saved {
                    self.last[i] = s;
                }
                for &v in self.c.dag().successors(u) {
                    self.indeg[v.index()] += 1;
                }
                self.order.pop();
                self.scheduled.remove(u.index());
            }
            self.failed.insert(key);
            false
        }
    }

    let mut s = S {
        c,
        trace,
        constrained,
        only,
        scheduled: BitSet::new(n),
        last: vec![None; num_tracked],
        indeg: (0..n).map(|u| c.dag().in_degree(NodeId::new(u))).collect(),
        order: Vec::with_capacity(n),
        failed: HashSet::new(),
    };
    s.run(&track_idx).then_some(s.order)
}

/// \[GK94\]-style post-mortem check: finds a single serialization of the
/// whole computation under which every recorded read returns its recorded
/// value — i.e. the trace is sequentially consistent. Returns the
/// serialization.
///
/// ```
/// use ccmm_core::{Computation, Location, Op};
/// use ccmm_core::trace::{explain_sc, ValueTrace};
/// use ccmm_dag::NodeId;
///
/// // W(x) -> R(x): the read logged the write's token.
/// let l = Location::new(0);
/// let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l), Op::Read(l)]);
/// let good = ValueTrace::with_tokens(&c, vec![(NodeId::new(1), 1)]);
/// assert!(explain_sc(&c, &good).is_some());
/// // A read value nothing wrote is unexplainable.
/// let bad = ValueTrace::with_tokens(&c, vec![(NodeId::new(1), 9)]);
/// assert!(explain_sc(&c, &bad).is_none());
/// ```
pub fn explain_sc(c: &Computation, trace: &ValueTrace) -> Option<Vec<NodeId>> {
    search_serialization(c, trace, None)
}

/// Post-mortem coherence check: finds one serialization per location
/// explaining that location's recorded reads — i.e. the trace is location
/// consistent. Returns a serialization per location.
pub fn explain_lc(c: &Computation, trace: &ValueTrace) -> Option<Vec<Vec<NodeId>>> {
    c.locations().map(|l| search_serialization(c, trace, Some(l))).collect()
}

/// Whether the trace is sequentially consistent.
pub fn is_sc_trace(c: &Computation, trace: &ValueTrace) -> bool {
    explain_sc(c, trace).is_some()
}

/// Whether the trace is location consistent.
pub fn is_lc_trace(c: &Computation, trace: &ValueTrace) -> bool {
    explain_lc(c, trace).is_some()
}

/// Exhaustive fallback for arbitrary models: enumerate every observer
/// function compatible with the recorded values and test membership.
/// Exponential in the number of *unconstrained* table entries — small
/// computations only.
pub fn explain_exhaustive<M: MemoryModel>(
    c: &Computation,
    trace: &ValueTrace,
    model: &M,
) -> Option<ObserverFunction> {
    let constrained: HashMap<NodeId, Value> = trace.read_values.iter().copied().collect();
    let mut slots: Vec<(Location, NodeId, Vec<Option<NodeId>>)> = Vec::new();
    for l in c.locations() {
        for u in c.nodes() {
            if c.op(u).is_write_to(l) {
                continue;
            }
            let constraint = match c.op(u) {
                Op::Read(rl) if rl == l => constrained.get(&u).copied(),
                _ => None,
            };
            let mut cands: Vec<Option<NodeId>> = Vec::new();
            if constraint.is_none_or(|v| v == trace.initial) {
                cands.push(None);
            }
            for &w in c.writes_to(l) {
                if c.precedes(u, w) {
                    continue;
                }
                if constraint.is_none_or(|v| trace.write_values.get(w.index()) == Some(&v)) {
                    cands.push(Some(w));
                }
            }
            if cands.is_empty() {
                return None;
            }
            slots.push((l, u, cands));
        }
    }
    fn recurse<M: MemoryModel>(
        c: &Computation,
        model: &M,
        slots: &[(Location, NodeId, Vec<Option<NodeId>>)],
        i: usize,
        phi: &mut ObserverFunction,
    ) -> bool {
        if i == slots.len() {
            return model.contains(c, phi);
        }
        let (l, u, cands) = &slots[i];
        for &v in cands {
            phi.set(*l, *u, v);
            if recurse(c, model, slots, i + 1, phi) {
                return true;
            }
        }
        false
    }
    let mut phi = ObserverFunction::base(c);
    recurse(c, model, &slots, 0, &mut phi).then_some(phi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::last_writer::last_writer_function;
    use crate::model::Nn;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// The store-buffering shape: W(x);R(y) ∥ W(y);R(x).
    fn sb() -> Computation {
        Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(1)), Op::Write(l(1)), Op::Read(l(0))],
        )
    }

    #[test]
    fn sb_both_stale_is_lc_not_sc() {
        let c = sb();
        let trace = ValueTrace::with_tokens(&c, vec![(n(1), 0), (n(3), 0)]);
        assert!(!is_sc_trace(&c, &trace), "both-stale SB forbidden by SC");
        assert!(is_lc_trace(&c, &trace));
        let sorts = explain_lc(&c, &trace).unwrap();
        assert_eq!(sorts.len(), 2);
        for t in &sorts {
            assert!(ccmm_dag::topo::is_topological_sort(c.dag(), t));
        }
    }

    #[test]
    fn sb_success_outcome_is_sc() {
        let c = sb();
        // Read y sees the write to y (token 3), read x sees write to x.
        let trace = ValueTrace::with_tokens(&c, vec![(n(1), 3), (n(3), 1)]);
        let t = explain_sc(&c, &trace).expect("SC admits the interleaved outcome");
        assert!(ccmm_dag::topo::is_topological_sort(c.dag(), &t));
        // Replay: the serialization really produces the recorded values.
        let phi = last_writer_function(&c, &t);
        assert_eq!(trace.value_of(phi.get(l(1), n(1))), 3);
        assert_eq!(trace.value_of(phi.get(l(0), n(3))), 1);
    }

    #[test]
    fn ambiguous_values_resolve_to_a_consistent_writer() {
        // Two writes store the SAME value 7; a read of 7 after both is
        // explainable despite the ambiguity.
        let c = Computation::from_edges(
            3,
            &[(0, 2), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let trace =
            ValueTrace { write_values: vec![7, 7, 0], read_values: vec![(n(2), 7)], initial: 0 };
        assert!(is_sc_trace(&c, &trace));
        assert!(is_lc_trace(&c, &trace));
    }

    #[test]
    fn impossible_value_is_unexplainable() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        // The read claims to have seen 42, which nothing wrote.
        let trace =
            ValueTrace { write_values: vec![5, 0], read_values: vec![(n(1), 42)], initial: 0 };
        assert!(!is_sc_trace(&c, &trace));
        assert!(!is_lc_trace(&c, &trace));
        assert!(explain_exhaustive(&c, &trace, &crate::model::AnyObserver).is_none());
    }

    #[test]
    fn initial_value_must_be_plausible() {
        // Read strictly after the only write cannot return the initial
        // value under LC.
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Write(l(0)), Op::Read(l(0))]);
        let trace =
            ValueTrace { write_values: vec![5, 0], read_values: vec![(n(1), 0)], initial: 0 };
        assert!(!is_lc_trace(&c, &trace));
        assert!(!is_sc_trace(&c, &trace));
        // …but the weakest model accepts it (Φ(read) = ⊥ is valid).
        assert!(explain_exhaustive(&c, &trace, &crate::model::AnyObserver).is_some());
    }

    #[test]
    fn unconstrained_reads_are_free() {
        let c = sb();
        let trace = ValueTrace::with_tokens(&c, vec![]); // nothing recorded
        assert!(is_sc_trace(&c, &trace));
        assert!(is_lc_trace(&c, &trace));
    }

    #[test]
    fn exhaustive_explains_dag_models_on_small_inputs() {
        // A CoRR-backwards trace: rejected by LC, accepted by NN.
        let c = Computation::from_edges(
            4,
            &[(0, 1), (2, 3)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let trace = ValueTrace::with_tokens(&c, vec![(n(2), 2), (n(3), 1)]);
        assert!(!is_lc_trace(&c, &trace));
        assert!(explain_exhaustive(&c, &trace, &Nn::default()).is_some());
    }

    #[test]
    fn sc_and_lc_traces_agree_with_membership_semantics() {
        // Cross-validate the constraint-directed searches against the
        // exhaustive explainers on every outcome of a small computation.
        let c = sb();
        for v1 in [0u64, 3] {
            for v3 in [0u64, 1] {
                let trace = ValueTrace::with_tokens(&c, vec![(n(1), v1), (n(3), v3)]);
                assert_eq!(
                    is_sc_trace(&c, &trace),
                    explain_exhaustive(&c, &trace, &crate::model::Sc).is_some(),
                    "SC mismatch on ({v1},{v3})"
                );
                assert_eq!(
                    is_lc_trace(&c, &trace),
                    explain_exhaustive(&c, &trace, &crate::model::Lc).is_some(),
                    "LC mismatch on ({v1},{v3})"
                );
            }
        }
    }

    #[test]
    fn scales_to_analysis_sized_race_free_traces() {
        // ~100-node layered computation, full read log: the directed
        // searches finish fast where exhaustive enumeration cannot.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let dag = ccmm_dag::generate::layered_dag(5, 5, 2, &mut rng);
        let nn = dag.node_count();
        let ops: Vec<Op> = (0..nn)
            .map(|i| if i % 2 == 0 { Op::Write(l(i % 3)) } else { Op::Read(l((i + 1) % 3)) })
            .collect();
        let c = Computation::new(dag, ops).unwrap();
        let t = ccmm_dag::topo::topo_sort(c.dag());
        let phi = last_writer_function(&c, &t);
        let trace = ValueTrace::with_tokens(
            &c,
            c.nodes()
                .filter_map(|u| match c.op(u) {
                    Op::Read(rl) => Some((u, phi.get(rl, u).map_or(0, |w| w.index() as u64 + 1))),
                    _ => None,
                })
                .collect(),
        );
        assert!(is_sc_trace(&c, &trace));
        assert!(is_lc_trace(&c, &trace));
    }
}
