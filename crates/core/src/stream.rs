//! Streaming SC/LC membership checking for series-parallel traces.
//!
//! The batch checkers ([`crate::model::Sc`], [`crate::model::Lc`]) need
//! the dense pair — a transitive closure and an L×n observer table — so
//! they cannot exist at 10⁶ nodes. This module checks membership
//! *on-the-fly*, race-detector style: nodes arrive in commit order with
//! the single observation the executing processor made at the node's own
//! location, and the checker keeps only O(L + n) state:
//!
//! * an [`SpOrder`] two-extension realizer (4 bytes/node) answering
//!   `u ≺ v` in O(1) for series-parallel dags;
//! * a [`LastWriterIndex`] — the commit-order last writer per location;
//! * the per-location committed write lists.
//!
//! **The checked pair.** The execution defines the total observer
//! function `Φ̂(l, u) = obs(u)` when `u`'s op touches `l`, and
//! `Φ̂(l, u) = W_T(l, u)` otherwise, where `T` is the commit order — the
//! paper's device (§4) of extending memory semantics to all nodes via the
//! last-writer function (Definition 13). Since `W_T ∈ SC ⊆ LC`
//! (Theorem 14), every verdict reduces to the entries the execution
//! actually chose.
//!
//! **Per-access predicates.**
//!
//! * *Validity* (Definition 2): a write observes itself; a read's
//!   observed node must be a committed write to the same location.
//! * *Streaming SC*: the access observes the commit-order last writer,
//!   i.e. its entry agrees with `W_T` — then `Φ̂ = W_T` exactly and `T`
//!   itself witnesses `(C, Φ̂) ∈ SC`.
//! * *Streaming LC*: the observed write is not *superseded* — there is no
//!   write `w'` with `w ≺ w' ≺ u` in the dag — and an access observing ⊥
//!   has no dag-preceding write at all.
//!
//! For **race-free** programs (every pair of conflicting accesses
//! ordered — the determinate Cilk workloads `ccmm watch` streams) these
//! predicates are *exact*: all writes to a location are totally ordered
//! by ≺, so `W_T` at an access equals its unique dag-last writer, a stale
//! observation fails every topological sort (the superseding write sits
//! between it and the access in all of them), and the block-contraction
//! cycles of the batch LC checker collapse to exactly the supersession
//! and ⊥-after-write cases. For racy inputs the predicates remain sound
//! in one direction (batch membership ⇒ streaming pass), but a crossing
//! pair of stale observations of concurrent writes can pass streaming
//! while failing the batch checker; `ccmm watch`'s conformance sampler
//! pins the race-free equivalence.

use crate::last_writer::LastWriterIndex;
use crate::op::{Location, Op};
use ccmm_dag::{NodeId, SpOrder};

/// Per-access verdict triple returned by [`StreamChecker::commit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessVerdict {
    /// Definition-2 validity of this access's observation.
    pub valid: bool,
    /// The access observed the commit-order last writer.
    pub sc: bool,
    /// The observation is not superseded (and ⊥ only without a
    /// dag-preceding write).
    pub lc: bool,
}

impl AccessVerdict {
    const PASS: AccessVerdict = AccessVerdict { valid: true, sc: true, lc: true };
}

/// Cumulative verdicts over every access committed so far.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamVerdicts {
    /// Nodes committed.
    pub nodes: usize,
    /// All observations were Definition-2 valid.
    pub valid: bool,
    /// `(C, Φ̂) ∈ SC`, witnessed by the commit order.
    pub sc: bool,
    /// `(C, Φ̂) ∈ LC` (exact for race-free traces).
    pub lc: bool,
    /// Number of accesses failing the validity predicate.
    pub validity_violations: u64,
    /// Number of accesses failing the SC predicate.
    pub sc_violations: u64,
    /// Number of accesses failing the LC predicate.
    pub lc_violations: u64,
}

/// The streaming membership checker. Feed nodes in commit order via
/// [`commit`](StreamChecker::commit); read cumulative verdicts at any
/// prefix via [`verdicts`](StreamChecker::verdicts).
#[derive(Debug)]
pub struct StreamChecker {
    sp: SpOrder,
    last: LastWriterIndex,
    /// `writes[l]` = committed writes to `l`, in commit order.
    writes: Vec<Vec<NodeId>>,
    committed: usize,
    validity_violations: u64,
    sc_violations: u64,
    lc_violations: u64,
}

impl StreamChecker {
    /// A checker for a trace whose precedence order is `sp`, over
    /// `num_locations` locations.
    pub fn new(sp: SpOrder, num_locations: usize) -> Self {
        StreamChecker {
            sp,
            last: LastWriterIndex::new(num_locations),
            writes: vec![Vec::new(); num_locations],
            committed: 0,
            validity_violations: 0,
            sc_violations: 0,
            lc_violations: 0,
        }
    }

    /// Number of nodes committed so far.
    pub fn committed(&self) -> usize {
        self.committed
    }

    /// The precedence realizer (for callers that need `≺` themselves).
    pub fn sp(&self) -> &SpOrder {
        &self.sp
    }

    /// Commits the next node (they must arrive in creation = commit
    /// order) with the observation the execution made at its own
    /// location, and returns this access's verdict. `Nop` nodes always
    /// pass. Cost: O(W_l) against the location's committed write list.
    pub fn commit(&mut self, u: NodeId, op: Op, observed: Option<NodeId>) -> AccessVerdict {
        assert_eq!(u.index(), self.committed, "nodes must be committed in creation order");
        assert!(u.index() < self.sp.node_count(), "node beyond the trace");
        self.committed += 1;
        crate::telemetry::count(crate::telemetry::Counter::WatchReveals, 1);
        let Some(l) = op.location() else {
            return AccessVerdict::PASS;
        };
        let verdict = self.check_access(u, op, l, observed);
        if !verdict.valid {
            self.validity_violations += 1;
        }
        if !verdict.sc {
            self.sc_violations += 1;
        }
        if !verdict.lc {
            self.lc_violations += 1;
        }
        self.last.observe(u, op);
        if matches!(op, Op::Write(_)) {
            if l.index() >= self.writes.len() {
                self.writes.resize(l.index() + 1, Vec::new());
            }
            self.writes[l.index()].push(u);
        }
        verdict
    }

    fn check_access(
        &self,
        u: NodeId,
        op: Op,
        l: Location,
        observed: Option<NodeId>,
    ) -> AccessVerdict {
        let committed_writes: &[NodeId] =
            self.writes.get(l.index()).map_or(&[], |ws| ws.as_slice());
        if let Op::Write(_) = op {
            // Definition 2.3: a write observes itself; with `u` maximal in
            // the committed prefix both SC (`W_T(l, u) = u`) and LC hold.
            let valid = observed == Some(u);
            return AccessVerdict { valid, sc: valid, lc: valid };
        }
        match observed {
            Some(w) => {
                // Valid iff `w` is a committed write to `l` (being
                // committed means `w < u`, so ¬(u ≺ w) is automatic).
                let valid = committed_writes.binary_search(&w).is_ok();
                let sc = valid && self.last.last(l) == Some(w);
                // Superseded: some write `w'` with `w ≺ w' ≺ u`.
                let lc = valid
                    && !committed_writes
                        .iter()
                        .any(|&w2| self.sp.precedes(w, w2) && self.sp.precedes(w2, u));
                AccessVerdict { valid, sc, lc }
            }
            None => {
                // ⊥ is always valid; SC needs the commit-order last
                // writer to be ⊥ too; LC needs no dag-preceding write.
                let sc = self.last.last(l).is_none();
                let lc = !committed_writes.iter().any(|&w| self.sp.precedes(w, u));
                AccessVerdict { valid: true, sc, lc }
            }
        }
    }

    /// Cumulative verdicts for the committed prefix.
    pub fn verdicts(&self) -> StreamVerdicts {
        StreamVerdicts {
            nodes: self.committed,
            valid: self.validity_violations == 0,
            sc: self.validity_violations == 0 && self.sc_violations == 0,
            lc: self.validity_violations == 0 && self.lc_violations == 0,
            validity_violations: self.validity_violations,
            sc_violations: self.sc_violations,
            lc_violations: self.lc_violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccmm_dag::Dag;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// A serial chain 0 → 1 → … → k-1: hebrew order = creation order.
    fn chain_sp(k: usize) -> SpOrder {
        let edges: Vec<(usize, usize)> = (0..k.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        let dag = Dag::from_edges(k, &edges).unwrap();
        SpOrder::new(&dag, (0..k as u32).collect()).unwrap()
    }

    /// The diamond 0 → {1, 2} → 3 (1 ∥ 2): hebrew reverses the branches.
    fn diamond_sp() -> SpOrder {
        let dag = Dag::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        SpOrder::new(&dag, vec![0, 2, 1, 3]).unwrap()
    }

    #[test]
    fn race_free_chain_passes_everything() {
        let mut ck = StreamChecker::new(chain_sp(3), 1);
        assert_eq!(ck.commit(n(0), Op::Write(l(0)), Some(n(0))), AccessVerdict::PASS);
        assert_eq!(ck.commit(n(1), Op::Read(l(0)), Some(n(0))), AccessVerdict::PASS);
        assert_eq!(ck.commit(n(2), Op::Read(l(0)), Some(n(0))), AccessVerdict::PASS);
        let v = ck.verdicts();
        assert!(v.valid && v.sc && v.lc);
        assert_eq!(v.nodes, 3);
    }

    #[test]
    fn superseded_observation_fails_lc_and_sc() {
        // W(0) → W(1) → R observing the first write: superseded.
        let mut ck = StreamChecker::new(chain_sp(3), 1);
        ck.commit(n(0), Op::Write(l(0)), Some(n(0)));
        ck.commit(n(1), Op::Write(l(0)), Some(n(1)));
        let v = ck.commit(n(2), Op::Read(l(0)), Some(n(0)));
        assert!(v.valid);
        assert!(!v.sc);
        assert!(!v.lc);
        let total = ck.verdicts();
        assert!(!total.sc && !total.lc && total.valid);
        assert_eq!(total.lc_violations, 1);
    }

    #[test]
    fn bottom_after_preceding_write_fails_lc() {
        let mut ck = StreamChecker::new(chain_sp(2), 1);
        ck.commit(n(0), Op::Write(l(0)), Some(n(0)));
        let v = ck.commit(n(1), Op::Read(l(0)), None);
        assert!(v.valid, "⊥ is always a valid observation");
        assert!(!v.lc, "the write precedes the read in the dag");
        assert!(!v.sc);
    }

    #[test]
    fn concurrent_write_may_be_missed_under_lc_but_not_sc() {
        // Diamond: node 1 writes, node 2 (concurrent) reads ⊥. LC allows
        // it (2 serializes before 1 in some sort); commit-order SC does
        // not (1 committed first).
        let mut ck = StreamChecker::new(diamond_sp(), 1);
        ck.commit(n(0), Op::Nop, None);
        ck.commit(n(1), Op::Write(l(0)), Some(n(1)));
        let v = ck.commit(n(2), Op::Read(l(0)), None);
        assert!(v.valid && v.lc);
        assert!(!v.sc);
        let total = ck.verdicts();
        assert!(total.lc && !total.sc);
    }

    #[test]
    fn observing_a_non_write_is_invalid() {
        let mut ck = StreamChecker::new(chain_sp(3), 1);
        ck.commit(n(0), Op::Nop, None);
        ck.commit(n(1), Op::Write(l(0)), Some(n(1)));
        let v = ck.commit(n(2), Op::Read(l(0)), Some(n(0)));
        assert!(!v.valid, "node 0 is not a write to l0");
        assert!(!ck.verdicts().valid);
    }

    #[test]
    fn write_must_observe_itself() {
        let mut ck = StreamChecker::new(chain_sp(2), 1);
        ck.commit(n(0), Op::Write(l(0)), Some(n(0)));
        let v = ck.commit(n(1), Op::Write(l(0)), Some(n(0)));
        assert!(!v.valid);
    }

    #[test]
    #[should_panic(expected = "creation order")]
    fn out_of_order_commit_rejected() {
        let mut ck = StreamChecker::new(chain_sp(3), 1);
        ck.commit(n(1), Op::Nop, None);
    }
}
