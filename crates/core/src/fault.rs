//! Deterministic fault injection for the sweep supervisor.
//!
//! A [`FaultPlan`] names faults by *structural position* — panic at task
//! N, delay at task N, kill after K checkpoint records — never by wall
//! clock or ambient randomness, so every injected failure reproduces
//! exactly under `cargo test` and in CI. Seeded variants derive their
//! positions from a splitmix64 stream over the plan's `seed`, keeping
//! even "random" placement a pure function of the spec string.
//!
//! The plan is consulted by the supervised sweep engine
//! ([`crate::sweep::supervisor`]), the Δ* worklist fixpoint
//! ([`crate::constructible`]), and the checkpoint writer
//! ([`crate::ckpt`]). An empty plan (the default) injects nothing and
//! costs a branch per hook.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Sentinel for "no resolved seeded target".
const NONE: usize = usize::MAX;

/// A deterministic fault-injection plan (see the module docs).
///
/// Built with [`FaultPlan::none`], the builder methods, or parsed from a
/// spec string ([`FaultPlan::from_spec`]) of comma-separated entries:
///
/// ```text
/// panic-at-task=7          panic the worker scanning task 7 (every attempt)
/// panic-once-at-task=7     panic only the first attempt (the retry heals)
/// delay-at-task=7:25       sleep 25 ms before scanning task 7
/// kill-after-ckpt=2        simulate a crash after 2 checkpoint records
/// panic-at-fixpoint=3      panic the Δ* initial-pass check of computation 3
/// panic-once-at-fixpoint=3 same, first attempt only
/// panic-at-task=seeded     derive the task index from `seed` at resolve time
/// seed=42                  the seed for seeded placements (default 0)
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_at_task: Option<usize>,
    panic_task_seeded: bool,
    panic_task_once: bool,
    delay_at_task: Option<(usize, u64)>,
    kill_after_records: Option<usize>,
    panic_at_fixpoint: Option<usize>,
    panic_fixpoint_once: bool,
    seed: u64,
    resolved_task: AtomicUsize,
    task_fired: AtomicUsize,
    fixpoint_fired: AtomicUsize,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        FaultPlan { resolved_task: AtomicUsize::new(NONE), ..FaultPlan::default() }
    }

    /// Panic every attempt at sweep task `idx`.
    pub fn panic_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = false;
        self
    }

    /// Panic only the first attempt at sweep task `idx` (the supervisor's
    /// serial retry succeeds — the "transient fault" shape).
    pub fn panic_once_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = true;
        self
    }

    /// Sleep `delay` before scanning task `idx`.
    pub fn delay_at_task(mut self, idx: usize, delay: Duration) -> Self {
        self.delay_at_task = Some((idx, delay.as_millis() as u64));
        self
    }

    /// Simulate a crash after `k` checkpoint records have been written in
    /// this run: the supervisor stops all workers and reports a killed
    /// partial sweep, leaving the checkpoint file exactly as a real kill
    /// would.
    pub fn kill_after_records(mut self, k: usize) -> Self {
        self.kill_after_records = Some(k);
        self
    }

    /// Panic every attempt at Δ* initial-pass check `idx`.
    pub fn panic_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = false;
        self
    }

    /// Panic only the first attempt at Δ* initial-pass check `idx`.
    pub fn panic_once_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = true;
        self
    }

    /// Parses the comma-separated spec grammar (see the type docs).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (key, value) =
                entry.split_once('=').ok_or_else(|| format!("fault entry `{entry}` needs ="))?;
            let parse = |v: &str| -> Result<usize, String> {
                v.parse().map_err(|_| format!("bad number in fault entry `{entry}`"))
            };
            match key {
                "panic-at-task" | "panic-once-at-task" => {
                    if value == "seeded" {
                        plan.panic_task_seeded = true;
                    } else {
                        plan.panic_at_task = Some(parse(value)?);
                    }
                    plan.panic_task_once = key == "panic-once-at-task";
                }
                "delay-at-task" => {
                    let (idx, ms) = value
                        .split_once(':')
                        .ok_or_else(|| format!("delay entry `{entry}` needs task:millis"))?;
                    plan.delay_at_task = Some((parse(idx)?, parse(ms)? as u64));
                }
                "kill-after-ckpt" => plan.kill_after_records = Some(parse(value)?),
                "panic-at-fixpoint" | "panic-once-at-fixpoint" => {
                    plan.panic_at_fixpoint = Some(parse(value)?);
                    plan.panic_fixpoint_once = key == "panic-once-at-fixpoint";
                }
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| format!("bad seed in fault entry `{entry}`"))?;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_at_task.is_none()
            && !self.panic_task_seeded
            && self.delay_at_task.is_none()
            && self.kill_after_records.is_none()
            && self.panic_at_fixpoint.is_none()
    }

    /// Resolves seeded placements against the actual task count. Called
    /// once by the supervisor before distributing work; idempotent.
    pub fn resolve(&self, num_tasks: usize) {
        if self.panic_task_seeded && num_tasks > 0 {
            self.resolved_task.store(splitmix64(self.seed) as usize % num_tasks, Ordering::Relaxed);
        }
    }

    /// Like [`FaultPlan::resolve`], but picks from an explicit list of
    /// task indices — canonical sweeps have gaps in their global index
    /// space, so the seeded target must be drawn from the indices that
    /// actually exist.
    pub fn resolve_indices(&self, ids: &[usize]) {
        if self.panic_task_seeded && !ids.is_empty() {
            let pick = ids[splitmix64(self.seed) as usize % ids.len()];
            self.resolved_task.store(pick, Ordering::Relaxed);
        }
    }

    fn panic_target(&self) -> Option<usize> {
        self.panic_at_task.or({
            let r = self.resolved_task.load(Ordering::Relaxed);
            (r != NONE).then_some(r)
        })
    }

    /// Hook: called by every worker (and by the serial retry) before
    /// scanning sweep task `idx`. May sleep; may panic (the injected
    /// fault). `once` faults fire only on the first attempt.
    pub fn before_task(&self, idx: usize) {
        if let Some((t, ms)) = self.delay_at_task {
            if t == idx {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.panic_target() == Some(idx) {
            let prior = self.task_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_task_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at task {idx}"));
            }
        }
    }

    /// Hook: called before the Δ* initial-pass extension check of
    /// interior computation `idx`.
    pub fn before_fixpoint_check(&self, idx: usize) {
        if self.panic_at_fixpoint == Some(idx) {
            let prior = self.fixpoint_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_fixpoint_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at fixpoint check {idx}"));
            }
        }
    }

    /// Hook: consulted after each checkpoint record; true means "the
    /// process dies now" (simulated by the supervisor as a hard stop).
    pub fn should_kill(&self, records_written: usize) -> bool {
        self.kill_after_records.is_some_and(|k| records_written >= k)
    }
}

/// splitmix64: the standard 64-bit mix, used to derive seeded fault
/// positions deterministically.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a caught panic payload as a string (String and &str payloads
/// verbatim, anything else a placeholder).
pub fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for i in 0..100 {
            plan.before_task(i);
            plan.before_fixpoint_check(i);
        }
        assert!(!plan.should_kill(1000));
    }

    #[test]
    fn spec_round_trip_and_panics() {
        let plan = FaultPlan::from_spec("panic-at-task=3,kill-after-ckpt=2").unwrap();
        assert!(!plan.is_empty());
        plan.before_task(2);
        let err = std::panic::catch_unwind(|| plan.before_task(3)).unwrap_err();
        assert!(payload_string(err).contains("panic at task 3"));
        // Persistent faults fire on the retry too.
        assert!(std::panic::catch_unwind(|| plan.before_task(3)).is_err());
        assert!(!plan.should_kill(1));
        assert!(plan.should_kill(2));
        assert!(plan.should_kill(3));
    }

    #[test]
    fn once_faults_heal_on_retry() {
        let plan = FaultPlan::from_spec("panic-once-at-task=5").unwrap();
        assert!(std::panic::catch_unwind(|| plan.before_task(5)).is_err());
        plan.before_task(5); // retry succeeds
        let fx = FaultPlan::from_spec("panic-once-at-fixpoint=1").unwrap();
        assert!(std::panic::catch_unwind(|| fx.before_fixpoint_check(1)).is_err());
        fx.before_fixpoint_check(1);
    }

    #[test]
    fn seeded_target_is_deterministic_and_in_range() {
        let a = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        let b = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        a.resolve(17);
        b.resolve(17);
        let t = a.panic_target().unwrap();
        assert!(t < 17);
        assert_eq!(Some(t), b.panic_target(), "same seed, same target");
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(FaultPlan::from_spec("panic-at-task").is_err());
        assert!(FaultPlan::from_spec("panic-at-task=x").is_err());
        assert!(FaultPlan::from_spec("delay-at-task=3").is_err());
        assert!(FaultPlan::from_spec("frobnicate=1").is_err());
    }
}
