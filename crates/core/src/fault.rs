//! Deterministic fault injection for the sweep supervisor.
//!
//! A [`FaultPlan`] names faults by *structural position* — panic at task
//! N, delay at task N, kill after K checkpoint records — never by wall
//! clock or ambient randomness, so every injected failure reproduces
//! exactly under `cargo test` and in CI. Seeded variants derive their
//! positions from a splitmix64 stream over the plan's `seed`, keeping
//! even "random" placement a pure function of the spec string.
//!
//! The plan is consulted by the supervised sweep engine
//! ([`crate::sweep::supervisor`]), the Δ* worklist fixpoint
//! ([`crate::constructible`]), and the checkpoint writer
//! ([`crate::ckpt`]). An empty plan (the default) injects nothing and
//! costs a branch per hook.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Sentinel for "no resolved seeded target".
const NONE: usize = usize::MAX;

/// A deterministic fault-injection plan (see the module docs).
///
/// Built with [`FaultPlan::none`], the builder methods, or parsed from a
/// spec string ([`FaultPlan::from_spec`]) of comma-separated entries:
///
/// ```text
/// panic-at-task=7          panic the worker scanning task 7 (every attempt)
/// panic-once-at-task=7     panic only the first attempt (the retry heals)
/// delay-at-task=7:25       sleep 25 ms before scanning task 7
/// kill-after-ckpt=2        simulate a crash after 2 checkpoint records
/// panic-at-fixpoint=3      panic the Δ* initial-pass check of computation 3
/// panic-once-at-fixpoint=3 same, first attempt only
/// io-error-at-record=2     fail the write of checkpoint record 2 with an I/O error
/// panic-at-task=seeded     derive the task index from `seed` at resolve time
/// seed=42                  the seed for seeded placements (default 0)
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_at_task: Option<usize>,
    panic_task_seeded: bool,
    panic_task_once: bool,
    delay_at_task: Option<(usize, u64)>,
    kill_after_records: Option<usize>,
    panic_at_fixpoint: Option<usize>,
    panic_fixpoint_once: bool,
    io_error_at_record: Option<usize>,
    seed: u64,
    resolved_task: AtomicUsize,
    task_fired: AtomicUsize,
    fixpoint_fired: AtomicUsize,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        FaultPlan { resolved_task: AtomicUsize::new(NONE), ..FaultPlan::default() }
    }

    /// Panic every attempt at sweep task `idx`.
    pub fn panic_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = false;
        self
    }

    /// Panic only the first attempt at sweep task `idx` (the supervisor's
    /// serial retry succeeds — the "transient fault" shape).
    pub fn panic_once_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = true;
        self
    }

    /// Sleep `delay` before scanning task `idx`.
    pub fn delay_at_task(mut self, idx: usize, delay: Duration) -> Self {
        self.delay_at_task = Some((idx, delay.as_millis() as u64));
        self
    }

    /// Simulate a crash after `k` checkpoint records have been written in
    /// this run: the supervisor stops all workers and reports a killed
    /// partial sweep, leaving the checkpoint file exactly as a real kill
    /// would.
    pub fn kill_after_records(mut self, k: usize) -> Self {
        self.kill_after_records = Some(k);
        self
    }

    /// Panic every attempt at Δ* initial-pass check `idx`.
    pub fn panic_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = false;
        self
    }

    /// Panic only the first attempt at Δ* initial-pass check `idx`.
    pub fn panic_once_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = true;
        self
    }

    /// Fail the write of checkpoint record `k` (1-based) with an
    /// injected I/O error — the "disk full / permission lost mid-run"
    /// shape. The supervisor maps the failure to a `Degraded`
    /// completion, never a panic: the sweep's verdicts stay exact, only
    /// resumability is lost.
    pub fn io_error_at_record(mut self, k: usize) -> Self {
        self.io_error_at_record = Some(k);
        self
    }

    /// Parses the comma-separated spec grammar (see the type docs).
    /// Errors name the 1-based entry that failed, so a long spec pasted
    /// into a CLI flag points at the offending clause, not just the
    /// string. Parsing never panics; [`std::fmt::Display`] renders the
    /// canonical spec back, and parse ∘ display ∘ parse is the identity
    /// (pinned by `tests/proptest_fault.rs`).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for (pos, entry) in spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .enumerate()
            .map(|(i, e)| (i + 1, e))
        {
            let at = |msg: String| format!("fault spec entry {pos} (`{entry}`): {msg}");
            let (key, value) = entry.split_once('=').ok_or_else(|| at("needs key=value".into()))?;
            let parse = |v: &str| -> Result<usize, String> {
                v.parse().map_err(|_| at(format!("`{v}` is not a number")))
            };
            match key {
                "panic-at-task" | "panic-once-at-task" => {
                    if value == "seeded" {
                        plan.panic_task_seeded = true;
                    } else {
                        plan.panic_at_task = Some(parse(value)?);
                    }
                    plan.panic_task_once = key == "panic-once-at-task";
                }
                "delay-at-task" => {
                    let (idx, ms) =
                        value.split_once(':').ok_or_else(|| at("needs task:millis".into()))?;
                    plan.delay_at_task = Some((parse(idx)?, parse(ms)? as u64));
                }
                "kill-after-ckpt" => plan.kill_after_records = Some(parse(value)?),
                "io-error-at-record" => plan.io_error_at_record = Some(parse(value)?),
                "panic-at-fixpoint" | "panic-once-at-fixpoint" => {
                    plan.panic_at_fixpoint = Some(parse(value)?);
                    plan.panic_fixpoint_once = key == "panic-once-at-fixpoint";
                }
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| at(format!("`{value}` is not a valid seed")))?;
                }
                other => return Err(at(format!("unknown fault key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_at_task.is_none()
            && !self.panic_task_seeded
            && self.delay_at_task.is_none()
            && self.kill_after_records.is_none()
            && self.panic_at_fixpoint.is_none()
            && self.io_error_at_record.is_none()
    }

    /// Resolves seeded placements against the actual task count. Called
    /// once by the supervisor before distributing work; idempotent.
    pub fn resolve(&self, num_tasks: usize) {
        if self.panic_task_seeded && num_tasks > 0 {
            self.resolved_task.store(splitmix64(self.seed) as usize % num_tasks, Ordering::Relaxed);
        }
    }

    /// Like [`FaultPlan::resolve`], but picks from an explicit list of
    /// task indices — canonical sweeps have gaps in their global index
    /// space, so the seeded target must be drawn from the indices that
    /// actually exist.
    pub fn resolve_indices(&self, ids: &[usize]) {
        if self.panic_task_seeded && !ids.is_empty() {
            let pick = ids[splitmix64(self.seed) as usize % ids.len()];
            self.resolved_task.store(pick, Ordering::Relaxed);
        }
    }

    fn panic_target(&self) -> Option<usize> {
        self.panic_at_task.or({
            let r = self.resolved_task.load(Ordering::Relaxed);
            (r != NONE).then_some(r)
        })
    }

    /// Hook: called by every worker (and by the serial retry) before
    /// scanning sweep task `idx`. May sleep; may panic (the injected
    /// fault). `once` faults fire only on the first attempt.
    pub fn before_task(&self, idx: usize) {
        if let Some((t, ms)) = self.delay_at_task {
            if t == idx {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.panic_target() == Some(idx) {
            let prior = self.task_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_task_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at task {idx}"));
            }
        }
    }

    /// Hook: called before the Δ* initial-pass extension check of
    /// interior computation `idx`.
    pub fn before_fixpoint_check(&self, idx: usize) {
        if self.panic_at_fixpoint == Some(idx) {
            let prior = self.fixpoint_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_fixpoint_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at fixpoint check {idx}"));
            }
        }
    }

    /// Hook: consulted after each checkpoint record; true means "the
    /// process dies now" (simulated by the supervisor as a hard stop).
    pub fn should_kill(&self, records_written: usize) -> bool {
        self.kill_after_records.is_some_and(|k| records_written >= k)
    }

    /// Hook: consulted before writing checkpoint record `record_idx`
    /// (1-based); true means the write must fail with an injected
    /// [`std::io::Error`] instead of reaching the disk.
    pub fn io_error_at(&self, record_idx: usize) -> bool {
        self.io_error_at_record == Some(record_idx)
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the canonical spec string: parsing the output reproduces
    /// the plan exactly (`from_spec ∘ to_string` is the identity on
    /// parsed plans). Entries appear in a fixed order regardless of the
    /// order they were parsed in; an empty plan renders as the empty
    /// string, which `from_spec` accepts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut entry = |f: &mut std::fmt::Formatter<'_>, s: String| -> std::fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        let task_key = if self.panic_task_once { "panic-once-at-task" } else { "panic-at-task" };
        if let Some(t) = self.panic_at_task {
            entry(f, format!("{task_key}={t}"))?;
        }
        if self.panic_task_seeded {
            entry(f, format!("{task_key}=seeded"))?;
        }
        if let Some((idx, ms)) = self.delay_at_task {
            entry(f, format!("delay-at-task={idx}:{ms}"))?;
        }
        if let Some(k) = self.kill_after_records {
            entry(f, format!("kill-after-ckpt={k}"))?;
        }
        if let Some(k) = self.io_error_at_record {
            entry(f, format!("io-error-at-record={k}"))?;
        }
        if let Some(i) = self.panic_at_fixpoint {
            let key = if self.panic_fixpoint_once {
                "panic-once-at-fixpoint"
            } else {
                "panic-at-fixpoint"
            };
            entry(f, format!("{key}={i}"))?;
        }
        if self.seed != 0 {
            entry(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// A deterministic schedule-perturbation plan for the threaded BACKER
/// executor (`ccmm_backer::threads` consumes it via
/// `ccmm_backer::perturb`). Where [`FaultPlan`] breaks a sweep on
/// purpose, a `PerturbPlan` merely *jostles* an executor — injected
/// yields, busy-spin delays, and steal-victim rotation at structural
/// positions — so the scheduler explores interleavings plain CI would
/// never reach. Every decision is a pure function of
/// `(seed, structural position)`: the same plan injects the same
/// perturbations at the same nodes on every run, even though the OS
/// interleaving that results is not itself reproducible.
///
/// Spec grammar (comma-separated, like [`FaultPlan::from_spec`]):
///
/// ```text
/// yield=1/K      yield_now() before positions where hash(seed,pos) % K == 0
/// spin=1/K:S     busy-spin S iterations at positions where the hash hits
/// steal=rotate   rotate each worker's steal-victim scan start per attempt
/// seed=N         the seed all decision hashes derive from (default 0)
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerturbPlan {
    yield_den: u32,
    spin_den: u32,
    spin_iters: u32,
    steal_rotate: bool,
    seed: u64,
}

impl PerturbPlan {
    /// The empty plan: injects nothing, scans steal victims in index
    /// order — the executor behaves exactly as without a plan.
    pub fn none() -> Self {
        PerturbPlan::default()
    }

    /// The stress harness default: yield at half the positions, spin 64
    /// iterations at an eighth of them, rotate steal victims.
    pub fn aggressive(seed: u64) -> Self {
        PerturbPlan { yield_den: 2, spin_den: 8, spin_iters: 64, steal_rotate: true, seed }
    }

    /// Replaces the seed, keeping the injection shape (used to derive
    /// per-iteration plans from one parsed spec).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.yield_den == 0 && self.spin_den == 0 && !self.steal_rotate
    }

    /// Parses the spec grammar (see the type docs). Same error contract
    /// as [`FaultPlan::from_spec`]: entry-numbered errors, never panics,
    /// and `from_spec ∘ to_string` is the identity.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = PerturbPlan::none();
        for (pos, entry) in spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .enumerate()
            .map(|(i, e)| (i + 1, e))
        {
            let at = |msg: String| format!("perturb spec entry {pos} (`{entry}`): {msg}");
            let (key, value) = entry.split_once('=').ok_or_else(|| at("needs key=value".into()))?;
            let ratio = |v: &str| -> Result<u32, String> {
                let den = v
                    .strip_prefix("1/")
                    .ok_or_else(|| at(format!("`{v}` is not a 1/K ratio")))?
                    .parse::<u32>()
                    .map_err(|_| at(format!("`{v}` is not a 1/K ratio")))?;
                if den == 0 {
                    return Err(at("ratio denominator must be at least 1".into()));
                }
                Ok(den)
            };
            match key {
                "yield" => plan.yield_den = ratio(value)?,
                "spin" => {
                    let (r, iters) =
                        value.split_once(':').ok_or_else(|| at("needs 1/K:iters".into()))?;
                    plan.spin_den = ratio(r)?;
                    plan.spin_iters =
                        iters.parse().map_err(|_| at(format!("`{iters}` is not a number")))?;
                }
                "steal" => match value {
                    "rotate" => plan.steal_rotate = true,
                    other => return Err(at(format!("unknown steal mode `{other}`"))),
                },
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| at(format!("`{value}` is not a valid seed")))?;
                }
                other => return Err(at(format!("unknown perturb key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// The decision hash: a pure function of the plan seed, a salt
    /// distinguishing the decision kind, and the structural position.
    fn decide(&self, salt: u64, pos: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(salt.wrapping_mul(0xA24B_AED4_963E_E407) ^ pos))
    }

    /// Whether to yield before structural position `pos` in phase
    /// `phase` (the executor uses distinct phases for "before executing
    /// a node" and "before notifying its successors").
    pub fn yield_at(&self, phase: u64, pos: usize) -> bool {
        self.yield_den != 0
            && self.decide(phase << 1, pos as u64).is_multiple_of(self.yield_den as u64)
    }

    /// Busy-spin iterations to inject before position `pos` in `phase`
    /// (0 = none).
    pub fn spin_at(&self, phase: u64, pos: usize) -> u32 {
        if self.spin_den != 0
            && self.decide((phase << 1) | 1, pos as u64).is_multiple_of(self.spin_den as u64)
        {
            self.spin_iters
        } else {
            0
        }
    }

    /// The steal-victim index worker `me` should try first on its
    /// `attempt`-th steal attempt. Without `steal=rotate` this is always
    /// 0 (scan in index order, the un-perturbed behaviour).
    pub fn steal_start(&self, me: usize, attempt: u64, num_victims: usize) -> usize {
        if self.steal_rotate && num_victims > 0 {
            (self.decide(0x57EA_1000 ^ me as u64, attempt) % num_victims as u64) as usize
        } else {
            0
        }
    }
}

impl std::fmt::Display for PerturbPlan {
    /// Canonical spec rendering; same identity contract as
    /// [`FaultPlan`]'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut entry = |f: &mut std::fmt::Formatter<'_>, s: String| -> std::fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        if self.yield_den != 0 {
            entry(f, format!("yield=1/{}", self.yield_den))?;
        }
        if self.spin_den != 0 {
            entry(f, format!("spin=1/{}:{}", self.spin_den, self.spin_iters))?;
        }
        if self.steal_rotate {
            entry(f, "steal=rotate".to_string())?;
        }
        if self.seed != 0 {
            entry(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// The faults a [`ServeFaultPlan`] injects into one request, resolved
/// at admission from the request's global index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeFault {
    /// Panic the handler (quarantined into a `degraded` reply).
    pub panic: bool,
    /// Close the connection without replying (client sees EOF).
    pub drop_conn: bool,
    /// Write only a prefix of the reply frame, then close (client sees
    /// a torn frame).
    pub truncate: bool,
    /// Sleep this long before replying (0 = no delay).
    pub delay_ms: u64,
}

/// A deterministic fault plan for the `ccmm serve` daemon — the
/// request/response sibling of [`FaultPlan`] (batch sweeps) and
/// [`PerturbPlan`] (executor schedules). Faults are named by *global
/// request index* (the order the server admitted them), either exactly
/// (`panic-at-request=7`) or at a seeded 1/K rate (`panic=1/13`); rate
/// decisions hash `(seed, kind, index)` through splitmix64, so a spec
/// string plus a request trace replays every injected fault exactly.
///
/// Spec grammar (comma-separated, same contract as
/// [`FaultPlan::from_spec`]: entry-numbered errors, never panics,
/// `from_spec ∘ to_string` is the identity):
///
/// ```text
/// panic-at-request=N      panic the handler of request N (0-based)
/// drop-at-request=N       close request N's connection without replying
/// truncate-at-request=N   send request N a torn reply frame, then close
/// delay-at-request=N:MS   sleep MS ms before replying to request N
/// panic=1/K               panic where hash(seed,kind,idx) % K == 0
/// drop=1/K                drop at the same seeded rate shape
/// truncate=1/K            truncate at the seeded rate
/// delay=1/K:MS            delay MS ms at the seeded rate
/// seed=S                  the seed rate decisions derive from (default 0)
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    panic_at: Option<u64>,
    drop_at: Option<u64>,
    truncate_at: Option<u64>,
    delay_at: Option<(u64, u64)>,
    panic_den: u64,
    drop_den: u64,
    truncate_den: u64,
    delay_den: u64,
    delay_ms: u64,
    seed: u64,
}

impl ServeFaultPlan {
    /// The empty plan: every request is served faithfully.
    pub fn none() -> Self {
        ServeFaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == ServeFaultPlan::none()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Parses the spec grammar (see the type docs).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = ServeFaultPlan::none();
        for (pos, entry) in spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .enumerate()
            .map(|(i, e)| (i + 1, e))
        {
            let at = |msg: String| format!("serve fault spec entry {pos} (`{entry}`): {msg}");
            let (key, value) = entry.split_once('=').ok_or_else(|| at("needs key=value".into()))?;
            let num = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| at(format!("`{v}` is not a number")))
            };
            let ratio = |v: &str| -> Result<u64, String> {
                let den = num(v
                    .strip_prefix("1/")
                    .ok_or_else(|| at(format!("`{v}` is not a 1/K ratio")))?)?;
                if den == 0 {
                    return Err(at("ratio denominator must be at least 1".into()));
                }
                Ok(den)
            };
            match key {
                "panic-at-request" => plan.panic_at = Some(num(value)?),
                "drop-at-request" => plan.drop_at = Some(num(value)?),
                "truncate-at-request" => plan.truncate_at = Some(num(value)?),
                "delay-at-request" => {
                    let (idx, ms) =
                        value.split_once(':').ok_or_else(|| at("needs request:millis".into()))?;
                    plan.delay_at = Some((num(idx)?, num(ms)?));
                }
                "panic" => plan.panic_den = ratio(value)?,
                "drop" => plan.drop_den = ratio(value)?,
                "truncate" => plan.truncate_den = ratio(value)?,
                "delay" => {
                    let (r, ms) =
                        value.split_once(':').ok_or_else(|| at("needs 1/K:millis".into()))?;
                    plan.delay_den = ratio(r)?;
                    plan.delay_ms = num(ms)?;
                }
                "seed" => plan.seed = num(value)?,
                other => return Err(at(format!("unknown serve fault key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// The rate-decision hash: pure in `(seed, kind salt, request idx)`.
    fn hits(&self, den: u64, salt: u64, idx: u64) -> bool {
        den != 0
            && splitmix64(self.seed ^ splitmix64(salt.wrapping_mul(0xA24B_AED4_963E_E407) ^ idx))
                .is_multiple_of(den)
    }

    /// Resolves the faults to inject into request `idx` (the server's
    /// global admission index). Pure: the same plan and index always
    /// resolve to the same [`ServeFault`].
    pub fn action(&self, idx: u64) -> ServeFault {
        ServeFault {
            panic: self.panic_at == Some(idx) || self.hits(self.panic_den, 1, idx),
            drop_conn: self.drop_at == Some(idx) || self.hits(self.drop_den, 2, idx),
            truncate: self.truncate_at == Some(idx) || self.hits(self.truncate_den, 3, idx),
            delay_ms: if self.delay_at.is_some_and(|(i, _)| i == idx) {
                self.delay_at.unwrap().1
            } else if self.hits(self.delay_den, 4, idx) {
                self.delay_ms
            } else {
                0
            },
        }
    }
}

impl std::fmt::Display for ServeFaultPlan {
    /// Canonical spec rendering; same identity contract as
    /// [`FaultPlan`]'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut entry = |f: &mut std::fmt::Formatter<'_>, s: String| -> std::fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        if let Some(i) = self.panic_at {
            entry(f, format!("panic-at-request={i}"))?;
        }
        if let Some(i) = self.drop_at {
            entry(f, format!("drop-at-request={i}"))?;
        }
        if let Some(i) = self.truncate_at {
            entry(f, format!("truncate-at-request={i}"))?;
        }
        if let Some((i, ms)) = self.delay_at {
            entry(f, format!("delay-at-request={i}:{ms}"))?;
        }
        if self.panic_den != 0 {
            entry(f, format!("panic=1/{}", self.panic_den))?;
        }
        if self.drop_den != 0 {
            entry(f, format!("drop=1/{}", self.drop_den))?;
        }
        if self.truncate_den != 0 {
            entry(f, format!("truncate=1/{}", self.truncate_den))?;
        }
        if self.delay_den != 0 {
            entry(f, format!("delay=1/{}:{}", self.delay_den, self.delay_ms))?;
        }
        if self.seed != 0 {
            entry(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// splitmix64: the standard 64-bit mix, used to derive seeded fault
/// positions deterministically.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a caught panic payload as a string (String and &str payloads
/// verbatim, anything else a placeholder).
pub fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for i in 0..100 {
            plan.before_task(i);
            plan.before_fixpoint_check(i);
        }
        assert!(!plan.should_kill(1000));
    }

    #[test]
    fn spec_round_trip_and_panics() {
        let plan = FaultPlan::from_spec("panic-at-task=3,kill-after-ckpt=2").unwrap();
        assert!(!plan.is_empty());
        plan.before_task(2);
        let err = std::panic::catch_unwind(|| plan.before_task(3)).unwrap_err();
        assert!(payload_string(err).contains("panic at task 3"));
        // Persistent faults fire on the retry too.
        assert!(std::panic::catch_unwind(|| plan.before_task(3)).is_err());
        assert!(!plan.should_kill(1));
        assert!(plan.should_kill(2));
        assert!(plan.should_kill(3));
    }

    #[test]
    fn once_faults_heal_on_retry() {
        let plan = FaultPlan::from_spec("panic-once-at-task=5").unwrap();
        assert!(std::panic::catch_unwind(|| plan.before_task(5)).is_err());
        plan.before_task(5); // retry succeeds
        let fx = FaultPlan::from_spec("panic-once-at-fixpoint=1").unwrap();
        assert!(std::panic::catch_unwind(|| fx.before_fixpoint_check(1)).is_err());
        fx.before_fixpoint_check(1);
    }

    #[test]
    fn seeded_target_is_deterministic_and_in_range() {
        let a = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        let b = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        a.resolve(17);
        b.resolve(17);
        let t = a.panic_target().unwrap();
        assert!(t < 17);
        assert_eq!(Some(t), b.panic_target(), "same seed, same target");
    }

    #[test]
    fn bad_specs_are_rejected_with_entry_numbers() {
        assert!(FaultPlan::from_spec("panic-at-task").is_err());
        assert!(FaultPlan::from_spec("panic-at-task=x").is_err());
        assert!(FaultPlan::from_spec("delay-at-task=3").is_err());
        assert!(FaultPlan::from_spec("frobnicate=1").is_err());
        let err = FaultPlan::from_spec("kill-after-ckpt=2,delay-at-task=3").unwrap_err();
        assert!(err.contains("entry 2"), "error must point at the failing entry: {err}");
        assert!(err.contains("delay-at-task=3"), "error must quote the entry: {err}");
    }

    #[test]
    fn display_round_trips_the_spec() {
        for spec in [
            "",
            "panic-at-task=3",
            "panic-once-at-task=seeded,seed=9",
            "panic-at-task=7,delay-at-task=2:25,kill-after-ckpt=1,panic-once-at-fixpoint=4,seed=3",
        ] {
            let plan = FaultPlan::from_spec(spec).unwrap();
            let rendered = plan.to_string();
            let again = FaultPlan::from_spec(&rendered).unwrap();
            assert_eq!(rendered, again.to_string(), "display must be a fixpoint for `{spec}`");
        }
        // Out-of-order input canonicalises.
        let plan = FaultPlan::from_spec("seed=5,panic-at-task=seeded").unwrap();
        assert_eq!(plan.to_string(), "panic-at-task=seeded,seed=5");
    }

    #[test]
    fn perturb_plan_spec_round_trips_and_decides_deterministically() {
        let plan = PerturbPlan::from_spec("yield=1/2,spin=1/8:64,steal=rotate,seed=42").unwrap();
        assert_eq!(plan, PerturbPlan::aggressive(42));
        assert_eq!(PerturbPlan::from_spec(&plan.to_string()).unwrap(), plan);
        assert_eq!(PerturbPlan::from_spec("").unwrap(), PerturbPlan::none());
        assert!(PerturbPlan::none().is_empty());
        assert_eq!(PerturbPlan::none().to_string(), "");

        // Decisions are pure functions of (seed, phase, position).
        let twin = PerturbPlan::aggressive(42);
        for pos in 0..64 {
            assert_eq!(plan.yield_at(0, pos), twin.yield_at(0, pos));
            assert_eq!(plan.spin_at(1, pos), twin.spin_at(1, pos));
            assert_eq!(plan.steal_start(1, pos as u64, 4), twin.steal_start(1, pos as u64, 4));
            assert!(plan.steal_start(1, pos as u64, 4) < 4);
        }
        // A different seed decides differently somewhere.
        let other = PerturbPlan::aggressive(43);
        assert!((0..64).any(|p| plan.yield_at(0, p) != other.yield_at(0, p)));
        // The empty plan never perturbs and scans victims in order.
        let none = PerturbPlan::none();
        for pos in 0..16 {
            assert!(!none.yield_at(0, pos));
            assert_eq!(none.spin_at(0, pos), 0);
            assert_eq!(none.steal_start(0, pos as u64, 4), 0);
        }
    }

    #[test]
    fn io_error_arm_round_trips_and_fires_once() {
        let plan = FaultPlan::from_spec("io-error-at-record=2").unwrap();
        assert!(!plan.is_empty());
        assert!(!plan.io_error_at(1));
        assert!(plan.io_error_at(2));
        assert!(!plan.io_error_at(3), "exactly record 2, not every record after");
        assert_eq!(plan.to_string(), "io-error-at-record=2");
        let again = FaultPlan::from_spec(&plan.to_string()).unwrap();
        assert_eq!(again.to_string(), plan.to_string());
        assert!(!FaultPlan::none().io_error_at(1));
        assert!(FaultPlan::from_spec("io-error-at-record=x").is_err());
    }

    #[test]
    fn serve_fault_plan_round_trips_and_is_deterministic() {
        let spec = "panic-at-request=7,delay-at-request=2:25,panic=1/13,drop=1/17,\
                    truncate=1/19,delay=1/29:5,seed=42";
        let plan = ServeFaultPlan::from_spec(spec).unwrap();
        assert!(!plan.is_empty());
        assert_eq!(ServeFaultPlan::from_spec(&plan.to_string()).unwrap(), plan);
        assert_eq!(plan.to_string(), spec.replace(char::is_whitespace, ""));
        assert_eq!(ServeFaultPlan::from_spec("").unwrap(), ServeFaultPlan::none());
        assert_eq!(ServeFaultPlan::none().to_string(), "");

        // Exact placements fire at exactly their index.
        assert!(plan.action(7).panic);
        assert_eq!(plan.action(2).delay_ms, 25);
        // Rate decisions are pure in (seed, kind, index)…
        let twin = ServeFaultPlan::from_spec(spec).unwrap();
        for idx in 0..512 {
            assert_eq!(plan.action(idx), twin.action(idx));
        }
        // …actually fire somewhere at roughly the asked rate…
        let fired = (0..512).filter(|&i| plan.action(i).drop_conn).count();
        assert!(fired > 0 && fired < 128, "1/17 over 512 requests fired {fired} times");
        // …and move when the seed does.
        let other = ServeFaultPlan::from_spec(&spec.replace("seed=42", "seed=43")).unwrap();
        assert!((0..512).any(|i| plan.action(i) != other.action(i)));
        // The empty plan never injects.
        assert_eq!(ServeFaultPlan::none().action(0), ServeFault::default());
    }

    #[test]
    fn serve_fault_bad_specs_are_entry_numbered_errors() {
        for bad in
            ["panic=2", "panic=1/0", "delay=1/4", "delay-at-request=3", "zap=1", "panic-at-request"]
        {
            let err = ServeFaultPlan::from_spec(bad).unwrap_err();
            assert!(err.contains("entry 1"), "`{bad}` → {err}");
        }
        let err = ServeFaultPlan::from_spec("seed=1,drop=1/x").unwrap_err();
        assert!(err.contains("entry 2") && err.contains("drop=1/x"), "{err}");
    }

    #[test]
    fn perturb_bad_specs_are_entry_numbered_errors() {
        for bad in ["yield=2", "yield=1/0", "spin=1/4", "steal=shuffle", "zap=1", "yield"] {
            let err = PerturbPlan::from_spec(bad).unwrap_err();
            assert!(err.contains("entry 1"), "`{bad}` → {err}");
        }
        let err = PerturbPlan::from_spec("seed=1,spin=1/2:x").unwrap_err();
        assert!(err.contains("entry 2") && err.contains("spin=1/2:x"), "{err}");
    }
}
