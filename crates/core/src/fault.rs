//! Deterministic fault injection for the sweep supervisor.
//!
//! A [`FaultPlan`] names faults by *structural position* — panic at task
//! N, delay at task N, kill after K checkpoint records — never by wall
//! clock or ambient randomness, so every injected failure reproduces
//! exactly under `cargo test` and in CI. Seeded variants derive their
//! positions from a splitmix64 stream over the plan's `seed`, keeping
//! even "random" placement a pure function of the spec string.
//!
//! The plan is consulted by the supervised sweep engine
//! ([`crate::sweep::supervisor`]), the Δ* worklist fixpoint
//! ([`crate::constructible`]), and the checkpoint writer
//! ([`crate::ckpt`]). An empty plan (the default) injects nothing and
//! costs a branch per hook.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Sentinel for "no resolved seeded target".
const NONE: usize = usize::MAX;

/// A deterministic fault-injection plan (see the module docs).
///
/// Built with [`FaultPlan::none`], the builder methods, or parsed from a
/// spec string ([`FaultPlan::from_spec`]) of comma-separated entries:
///
/// ```text
/// panic-at-task=7          panic the worker scanning task 7 (every attempt)
/// panic-once-at-task=7     panic only the first attempt (the retry heals)
/// delay-at-task=7:25       sleep 25 ms before scanning task 7
/// kill-after-ckpt=2        simulate a crash after 2 checkpoint records
/// panic-at-fixpoint=3      panic the Δ* initial-pass check of computation 3
/// panic-once-at-fixpoint=3 same, first attempt only
/// panic-at-task=seeded     derive the task index from `seed` at resolve time
/// seed=42                  the seed for seeded placements (default 0)
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_at_task: Option<usize>,
    panic_task_seeded: bool,
    panic_task_once: bool,
    delay_at_task: Option<(usize, u64)>,
    kill_after_records: Option<usize>,
    panic_at_fixpoint: Option<usize>,
    panic_fixpoint_once: bool,
    seed: u64,
    resolved_task: AtomicUsize,
    task_fired: AtomicUsize,
    fixpoint_fired: AtomicUsize,
}

impl FaultPlan {
    /// The empty plan: injects nothing.
    pub fn none() -> Self {
        FaultPlan { resolved_task: AtomicUsize::new(NONE), ..FaultPlan::default() }
    }

    /// Panic every attempt at sweep task `idx`.
    pub fn panic_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = false;
        self
    }

    /// Panic only the first attempt at sweep task `idx` (the supervisor's
    /// serial retry succeeds — the "transient fault" shape).
    pub fn panic_once_at_task(mut self, idx: usize) -> Self {
        self.panic_at_task = Some(idx);
        self.panic_task_once = true;
        self
    }

    /// Sleep `delay` before scanning task `idx`.
    pub fn delay_at_task(mut self, idx: usize, delay: Duration) -> Self {
        self.delay_at_task = Some((idx, delay.as_millis() as u64));
        self
    }

    /// Simulate a crash after `k` checkpoint records have been written in
    /// this run: the supervisor stops all workers and reports a killed
    /// partial sweep, leaving the checkpoint file exactly as a real kill
    /// would.
    pub fn kill_after_records(mut self, k: usize) -> Self {
        self.kill_after_records = Some(k);
        self
    }

    /// Panic every attempt at Δ* initial-pass check `idx`.
    pub fn panic_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = false;
        self
    }

    /// Panic only the first attempt at Δ* initial-pass check `idx`.
    pub fn panic_once_at_fixpoint(mut self, idx: usize) -> Self {
        self.panic_at_fixpoint = Some(idx);
        self.panic_fixpoint_once = true;
        self
    }

    /// Parses the comma-separated spec grammar (see the type docs).
    /// Errors name the 1-based entry that failed, so a long spec pasted
    /// into a CLI flag points at the offending clause, not just the
    /// string. Parsing never panics; [`std::fmt::Display`] renders the
    /// canonical spec back, and parse ∘ display ∘ parse is the identity
    /// (pinned by `tests/proptest_fault.rs`).
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none();
        for (pos, entry) in spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .enumerate()
            .map(|(i, e)| (i + 1, e))
        {
            let at = |msg: String| format!("fault spec entry {pos} (`{entry}`): {msg}");
            let (key, value) = entry.split_once('=').ok_or_else(|| at("needs key=value".into()))?;
            let parse = |v: &str| -> Result<usize, String> {
                v.parse().map_err(|_| at(format!("`{v}` is not a number")))
            };
            match key {
                "panic-at-task" | "panic-once-at-task" => {
                    if value == "seeded" {
                        plan.panic_task_seeded = true;
                    } else {
                        plan.panic_at_task = Some(parse(value)?);
                    }
                    plan.panic_task_once = key == "panic-once-at-task";
                }
                "delay-at-task" => {
                    let (idx, ms) =
                        value.split_once(':').ok_or_else(|| at("needs task:millis".into()))?;
                    plan.delay_at_task = Some((parse(idx)?, parse(ms)? as u64));
                }
                "kill-after-ckpt" => plan.kill_after_records = Some(parse(value)?),
                "panic-at-fixpoint" | "panic-once-at-fixpoint" => {
                    plan.panic_at_fixpoint = Some(parse(value)?);
                    plan.panic_fixpoint_once = key == "panic-once-at-fixpoint";
                }
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| at(format!("`{value}` is not a valid seed")))?;
                }
                other => return Err(at(format!("unknown fault key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panic_at_task.is_none()
            && !self.panic_task_seeded
            && self.delay_at_task.is_none()
            && self.kill_after_records.is_none()
            && self.panic_at_fixpoint.is_none()
    }

    /// Resolves seeded placements against the actual task count. Called
    /// once by the supervisor before distributing work; idempotent.
    pub fn resolve(&self, num_tasks: usize) {
        if self.panic_task_seeded && num_tasks > 0 {
            self.resolved_task.store(splitmix64(self.seed) as usize % num_tasks, Ordering::Relaxed);
        }
    }

    /// Like [`FaultPlan::resolve`], but picks from an explicit list of
    /// task indices — canonical sweeps have gaps in their global index
    /// space, so the seeded target must be drawn from the indices that
    /// actually exist.
    pub fn resolve_indices(&self, ids: &[usize]) {
        if self.panic_task_seeded && !ids.is_empty() {
            let pick = ids[splitmix64(self.seed) as usize % ids.len()];
            self.resolved_task.store(pick, Ordering::Relaxed);
        }
    }

    fn panic_target(&self) -> Option<usize> {
        self.panic_at_task.or({
            let r = self.resolved_task.load(Ordering::Relaxed);
            (r != NONE).then_some(r)
        })
    }

    /// Hook: called by every worker (and by the serial retry) before
    /// scanning sweep task `idx`. May sleep; may panic (the injected
    /// fault). `once` faults fire only on the first attempt.
    pub fn before_task(&self, idx: usize) {
        if let Some((t, ms)) = self.delay_at_task {
            if t == idx {
                std::thread::sleep(Duration::from_millis(ms));
            }
        }
        if self.panic_target() == Some(idx) {
            let prior = self.task_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_task_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at task {idx}"));
            }
        }
    }

    /// Hook: called before the Δ* initial-pass extension check of
    /// interior computation `idx`.
    pub fn before_fixpoint_check(&self, idx: usize) {
        if self.panic_at_fixpoint == Some(idx) {
            let prior = self.fixpoint_fired.fetch_add(1, Ordering::Relaxed);
            if !self.panic_fixpoint_once || prior == 0 {
                std::panic::panic_any(format!("injected fault: panic at fixpoint check {idx}"));
            }
        }
    }

    /// Hook: consulted after each checkpoint record; true means "the
    /// process dies now" (simulated by the supervisor as a hard stop).
    pub fn should_kill(&self, records_written: usize) -> bool {
        self.kill_after_records.is_some_and(|k| records_written >= k)
    }
}

impl std::fmt::Display for FaultPlan {
    /// Renders the canonical spec string: parsing the output reproduces
    /// the plan exactly (`from_spec ∘ to_string` is the identity on
    /// parsed plans). Entries appear in a fixed order regardless of the
    /// order they were parsed in; an empty plan renders as the empty
    /// string, which `from_spec` accepts.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut entry = |f: &mut std::fmt::Formatter<'_>, s: String| -> std::fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        let task_key = if self.panic_task_once { "panic-once-at-task" } else { "panic-at-task" };
        if let Some(t) = self.panic_at_task {
            entry(f, format!("{task_key}={t}"))?;
        }
        if self.panic_task_seeded {
            entry(f, format!("{task_key}=seeded"))?;
        }
        if let Some((idx, ms)) = self.delay_at_task {
            entry(f, format!("delay-at-task={idx}:{ms}"))?;
        }
        if let Some(k) = self.kill_after_records {
            entry(f, format!("kill-after-ckpt={k}"))?;
        }
        if let Some(i) = self.panic_at_fixpoint {
            let key = if self.panic_fixpoint_once {
                "panic-once-at-fixpoint"
            } else {
                "panic-at-fixpoint"
            };
            entry(f, format!("{key}={i}"))?;
        }
        if self.seed != 0 {
            entry(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// A deterministic schedule-perturbation plan for the threaded BACKER
/// executor (`ccmm_backer::threads` consumes it via
/// `ccmm_backer::perturb`). Where [`FaultPlan`] breaks a sweep on
/// purpose, a `PerturbPlan` merely *jostles* an executor — injected
/// yields, busy-spin delays, and steal-victim rotation at structural
/// positions — so the scheduler explores interleavings plain CI would
/// never reach. Every decision is a pure function of
/// `(seed, structural position)`: the same plan injects the same
/// perturbations at the same nodes on every run, even though the OS
/// interleaving that results is not itself reproducible.
///
/// Spec grammar (comma-separated, like [`FaultPlan::from_spec`]):
///
/// ```text
/// yield=1/K      yield_now() before positions where hash(seed,pos) % K == 0
/// spin=1/K:S     busy-spin S iterations at positions where the hash hits
/// steal=rotate   rotate each worker's steal-victim scan start per attempt
/// seed=N         the seed all decision hashes derive from (default 0)
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PerturbPlan {
    yield_den: u32,
    spin_den: u32,
    spin_iters: u32,
    steal_rotate: bool,
    seed: u64,
}

impl PerturbPlan {
    /// The empty plan: injects nothing, scans steal victims in index
    /// order — the executor behaves exactly as without a plan.
    pub fn none() -> Self {
        PerturbPlan::default()
    }

    /// The stress harness default: yield at half the positions, spin 64
    /// iterations at an eighth of them, rotate steal victims.
    pub fn aggressive(seed: u64) -> Self {
        PerturbPlan { yield_den: 2, spin_den: 8, spin_iters: 64, steal_rotate: true, seed }
    }

    /// Replaces the seed, keeping the injection shape (used to derive
    /// per-iteration plans from one parsed spec).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.yield_den == 0 && self.spin_den == 0 && !self.steal_rotate
    }

    /// Parses the spec grammar (see the type docs). Same error contract
    /// as [`FaultPlan::from_spec`]: entry-numbered errors, never panics,
    /// and `from_spec ∘ to_string` is the identity.
    pub fn from_spec(spec: &str) -> Result<Self, String> {
        let mut plan = PerturbPlan::none();
        for (pos, entry) in spec
            .split(',')
            .map(str::trim)
            .filter(|e| !e.is_empty())
            .enumerate()
            .map(|(i, e)| (i + 1, e))
        {
            let at = |msg: String| format!("perturb spec entry {pos} (`{entry}`): {msg}");
            let (key, value) = entry.split_once('=').ok_or_else(|| at("needs key=value".into()))?;
            let ratio = |v: &str| -> Result<u32, String> {
                let den = v
                    .strip_prefix("1/")
                    .ok_or_else(|| at(format!("`{v}` is not a 1/K ratio")))?
                    .parse::<u32>()
                    .map_err(|_| at(format!("`{v}` is not a 1/K ratio")))?;
                if den == 0 {
                    return Err(at("ratio denominator must be at least 1".into()));
                }
                Ok(den)
            };
            match key {
                "yield" => plan.yield_den = ratio(value)?,
                "spin" => {
                    let (r, iters) =
                        value.split_once(':').ok_or_else(|| at("needs 1/K:iters".into()))?;
                    plan.spin_den = ratio(r)?;
                    plan.spin_iters =
                        iters.parse().map_err(|_| at(format!("`{iters}` is not a number")))?;
                }
                "steal" => match value {
                    "rotate" => plan.steal_rotate = true,
                    other => return Err(at(format!("unknown steal mode `{other}`"))),
                },
                "seed" => {
                    plan.seed =
                        value.parse().map_err(|_| at(format!("`{value}` is not a valid seed")))?;
                }
                other => return Err(at(format!("unknown perturb key `{other}`"))),
            }
        }
        Ok(plan)
    }

    /// The decision hash: a pure function of the plan seed, a salt
    /// distinguishing the decision kind, and the structural position.
    fn decide(&self, salt: u64, pos: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(salt.wrapping_mul(0xA24B_AED4_963E_E407) ^ pos))
    }

    /// Whether to yield before structural position `pos` in phase
    /// `phase` (the executor uses distinct phases for "before executing
    /// a node" and "before notifying its successors").
    pub fn yield_at(&self, phase: u64, pos: usize) -> bool {
        self.yield_den != 0
            && self.decide(phase << 1, pos as u64).is_multiple_of(self.yield_den as u64)
    }

    /// Busy-spin iterations to inject before position `pos` in `phase`
    /// (0 = none).
    pub fn spin_at(&self, phase: u64, pos: usize) -> u32 {
        if self.spin_den != 0
            && self.decide((phase << 1) | 1, pos as u64).is_multiple_of(self.spin_den as u64)
        {
            self.spin_iters
        } else {
            0
        }
    }

    /// The steal-victim index worker `me` should try first on its
    /// `attempt`-th steal attempt. Without `steal=rotate` this is always
    /// 0 (scan in index order, the un-perturbed behaviour).
    pub fn steal_start(&self, me: usize, attempt: u64, num_victims: usize) -> usize {
        if self.steal_rotate && num_victims > 0 {
            (self.decide(0x57EA_1000 ^ me as u64, attempt) % num_victims as u64) as usize
        } else {
            0
        }
    }
}

impl std::fmt::Display for PerturbPlan {
    /// Canonical spec rendering; same identity contract as
    /// [`FaultPlan`]'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut sep = "";
        let mut entry = |f: &mut std::fmt::Formatter<'_>, s: String| -> std::fmt::Result {
            write!(f, "{sep}{s}")?;
            sep = ",";
            Ok(())
        };
        if self.yield_den != 0 {
            entry(f, format!("yield=1/{}", self.yield_den))?;
        }
        if self.spin_den != 0 {
            entry(f, format!("spin=1/{}:{}", self.spin_den, self.spin_iters))?;
        }
        if self.steal_rotate {
            entry(f, "steal=rotate".to_string())?;
        }
        if self.seed != 0 {
            entry(f, format!("seed={}", self.seed))?;
        }
        Ok(())
    }
}

/// splitmix64: the standard 64-bit mix, used to derive seeded fault
/// positions deterministically.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Renders a caught panic payload as a string (String and &str payloads
/// verbatim, anything else a placeholder).
pub fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for i in 0..100 {
            plan.before_task(i);
            plan.before_fixpoint_check(i);
        }
        assert!(!plan.should_kill(1000));
    }

    #[test]
    fn spec_round_trip_and_panics() {
        let plan = FaultPlan::from_spec("panic-at-task=3,kill-after-ckpt=2").unwrap();
        assert!(!plan.is_empty());
        plan.before_task(2);
        let err = std::panic::catch_unwind(|| plan.before_task(3)).unwrap_err();
        assert!(payload_string(err).contains("panic at task 3"));
        // Persistent faults fire on the retry too.
        assert!(std::panic::catch_unwind(|| plan.before_task(3)).is_err());
        assert!(!plan.should_kill(1));
        assert!(plan.should_kill(2));
        assert!(plan.should_kill(3));
    }

    #[test]
    fn once_faults_heal_on_retry() {
        let plan = FaultPlan::from_spec("panic-once-at-task=5").unwrap();
        assert!(std::panic::catch_unwind(|| plan.before_task(5)).is_err());
        plan.before_task(5); // retry succeeds
        let fx = FaultPlan::from_spec("panic-once-at-fixpoint=1").unwrap();
        assert!(std::panic::catch_unwind(|| fx.before_fixpoint_check(1)).is_err());
        fx.before_fixpoint_check(1);
    }

    #[test]
    fn seeded_target_is_deterministic_and_in_range() {
        let a = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        let b = FaultPlan::from_spec("panic-at-task=seeded,seed=42").unwrap();
        a.resolve(17);
        b.resolve(17);
        let t = a.panic_target().unwrap();
        assert!(t < 17);
        assert_eq!(Some(t), b.panic_target(), "same seed, same target");
    }

    #[test]
    fn bad_specs_are_rejected_with_entry_numbers() {
        assert!(FaultPlan::from_spec("panic-at-task").is_err());
        assert!(FaultPlan::from_spec("panic-at-task=x").is_err());
        assert!(FaultPlan::from_spec("delay-at-task=3").is_err());
        assert!(FaultPlan::from_spec("frobnicate=1").is_err());
        let err = FaultPlan::from_spec("kill-after-ckpt=2,delay-at-task=3").unwrap_err();
        assert!(err.contains("entry 2"), "error must point at the failing entry: {err}");
        assert!(err.contains("delay-at-task=3"), "error must quote the entry: {err}");
    }

    #[test]
    fn display_round_trips_the_spec() {
        for spec in [
            "",
            "panic-at-task=3",
            "panic-once-at-task=seeded,seed=9",
            "panic-at-task=7,delay-at-task=2:25,kill-after-ckpt=1,panic-once-at-fixpoint=4,seed=3",
        ] {
            let plan = FaultPlan::from_spec(spec).unwrap();
            let rendered = plan.to_string();
            let again = FaultPlan::from_spec(&rendered).unwrap();
            assert_eq!(rendered, again.to_string(), "display must be a fixpoint for `{spec}`");
        }
        // Out-of-order input canonicalises.
        let plan = FaultPlan::from_spec("seed=5,panic-at-task=seeded").unwrap();
        assert_eq!(plan.to_string(), "panic-at-task=seeded,seed=5");
    }

    #[test]
    fn perturb_plan_spec_round_trips_and_decides_deterministically() {
        let plan = PerturbPlan::from_spec("yield=1/2,spin=1/8:64,steal=rotate,seed=42").unwrap();
        assert_eq!(plan, PerturbPlan::aggressive(42));
        assert_eq!(PerturbPlan::from_spec(&plan.to_string()).unwrap(), plan);
        assert_eq!(PerturbPlan::from_spec("").unwrap(), PerturbPlan::none());
        assert!(PerturbPlan::none().is_empty());
        assert_eq!(PerturbPlan::none().to_string(), "");

        // Decisions are pure functions of (seed, phase, position).
        let twin = PerturbPlan::aggressive(42);
        for pos in 0..64 {
            assert_eq!(plan.yield_at(0, pos), twin.yield_at(0, pos));
            assert_eq!(plan.spin_at(1, pos), twin.spin_at(1, pos));
            assert_eq!(plan.steal_start(1, pos as u64, 4), twin.steal_start(1, pos as u64, 4));
            assert!(plan.steal_start(1, pos as u64, 4) < 4);
        }
        // A different seed decides differently somewhere.
        let other = PerturbPlan::aggressive(43);
        assert!((0..64).any(|p| plan.yield_at(0, p) != other.yield_at(0, p)));
        // The empty plan never perturbs and scans victims in order.
        let none = PerturbPlan::none();
        for pos in 0..16 {
            assert!(!none.yield_at(0, pos));
            assert_eq!(none.spin_at(0, pos), 0);
            assert_eq!(none.steal_start(0, pos as u64, 4), 0);
        }
    }

    #[test]
    fn perturb_bad_specs_are_entry_numbered_errors() {
        for bad in ["yield=2", "yield=1/0", "spin=1/4", "steal=shuffle", "zap=1", "yield"] {
            let err = PerturbPlan::from_spec(bad).unwrap_err();
            assert!(err.contains("entry 1"), "`{bad}` → {err}");
        }
        let err = PerturbPlan::from_spec("seed=1,spin=1/2:x").unwrap_err();
        assert!(err.contains("entry 2") && err.contains("spin=1/2:x"), "{err}");
    }
}
