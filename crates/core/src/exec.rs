//! Concrete value semantics on top of observer functions.
//!
//! The theory abstracts data away; an [`Execution`] puts it back: assign
//! each write a value, and every node's view of location `l` is the value
//! written by `Φ(l, u)` (or the location's initial value for ⊥). This is
//! what the figures' `W0` / `R1` annotations mean, and what the litmus
//! harness reports.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use ccmm_dag::NodeId;
use std::collections::HashMap;

/// The value a read returns.
pub type Value = u64;

/// A concrete execution: a computation, an observer function, write
/// values, and initial memory values.
pub struct Execution<'a> {
    c: &'a Computation,
    phi: &'a ObserverFunction,
    write_values: HashMap<NodeId, Value>,
    initial: Value,
}

impl<'a> Execution<'a> {
    /// Builds an execution where write node `w` writes the value
    /// `w.index() + 1` and memory is initially `0` — all writes thus carry
    /// distinct nonzero tokens, making observations directly readable.
    pub fn with_token_values(c: &'a Computation, phi: &'a ObserverFunction) -> Self {
        let mut write_values = HashMap::new();
        for l in c.locations() {
            for &w in c.writes_to(l) {
                write_values.insert(w, w.index() as Value + 1);
            }
        }
        Execution { c, phi, write_values, initial: 0 }
    }

    /// Overrides the value written by `w`.
    pub fn set_write_value(&mut self, w: NodeId, v: Value) {
        assert!(matches!(self.c.op(w), Op::Write(_)), "{w} is not a write node");
        self.write_values.insert(w, v);
    }

    /// Overrides the initial memory value.
    pub fn set_initial(&mut self, v: Value) {
        self.initial = v;
    }

    /// The value node `u` sees at location `l`.
    pub fn view(&self, l: Location, u: NodeId) -> Value {
        match self.phi.get(l, u) {
            Some(w) => *self.write_values.get(&w).expect("observed node is a write"),
            None => self.initial,
        }
    }

    /// The value returned by read node `u` (panics if `u` is not a read).
    pub fn read_result(&self, u: NodeId) -> Value {
        match self.c.op(u) {
            Op::Read(l) => self.view(l, u),
            other => panic!("{u} is {other}, not a read"),
        }
    }

    /// Results of all reads, in node order, as `(node, location, value)`.
    pub fn all_read_results(&self) -> Vec<(NodeId, Location, Value)> {
        self.c
            .nodes()
            .filter_map(|u| match self.c.op(u) {
                Op::Read(l) => Some((u, l, self.view(l, u))),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    fn setup() -> (Computation, ObserverFunction) {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
        );
        let phi =
            ObserverFunction::base(&c).with(l(0), n(1), Some(n(0))).with(l(0), n(2), Some(n(0)));
        (c, phi)
    }

    #[test]
    fn token_values_flow_to_reads() {
        let (c, phi) = setup();
        let e = Execution::with_token_values(&c, &phi);
        assert_eq!(e.read_result(n(1)), 1); // node 0's token is 0+1
        assert_eq!(e.read_result(n(2)), 1);
    }

    #[test]
    fn bottom_reads_initial_value() {
        let c = Computation::from_edges(1, &[], vec![Op::Read(l(0))]);
        let phi = ObserverFunction::base(&c);
        let mut e = Execution::with_token_values(&c, &phi);
        assert_eq!(e.read_result(n(0)), 0);
        e.set_initial(99);
        assert_eq!(e.read_result(n(0)), 99);
    }

    #[test]
    fn custom_write_values() {
        let (c, phi) = setup();
        let mut e = Execution::with_token_values(&c, &phi);
        e.set_write_value(n(0), 42);
        assert_eq!(e.read_result(n(1)), 42);
    }

    #[test]
    fn all_read_results_lists_reads_only() {
        let (c, phi) = setup();
        let e = Execution::with_token_values(&c, &phi);
        let rs = e.all_read_results();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0], (n(1), l(0), 1));
    }

    #[test]
    #[should_panic(expected = "not a read")]
    fn read_result_panics_on_write() {
        let (c, phi) = setup();
        let e = Execution::with_token_values(&c, &phi);
        e.read_result(n(0));
    }
}
