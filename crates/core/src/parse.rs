//! A small text format for computations and observer functions.
//!
//! One node per line, in topological (index) order:
//!
//! ```text
//! # comments and blank lines are ignored
//! n0: W(0)
//! n1: R(0) <- n0
//! n2: N    <- n0 n1
//! ```
//!
//! `<-` lists direct predecessors. Observer functions use one line per
//! location: `l0: n0 _ n0` gives `Φ(l0, ·)` for nodes `n0, n1, n2` in
//! order, `_` meaning ⊥. [`render_computation`] and [`render_observer`]
//! invert the parsers, and round-tripping is property-tested.
//!
//! The parsers accept arbitrary (including non-ASCII) input and never
//! panic: every malformed token becomes a line-numbered [`ParseError`].

#![warn(clippy::unwrap_used, clippy::expect_used)]

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use ccmm_dag::{Dag, NodeId};

/// A parse failure, with a line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_node(tok: &str, line: usize) -> Result<NodeId, ParseError> {
    let rest = tok
        .strip_prefix('n')
        .ok_or_else(|| err(line, format!("expected node like n3, got `{tok}`")))?;
    rest.parse::<usize>()
        .map(NodeId::new)
        .map_err(|_| err(line, format!("bad node index in `{tok}`")))
}

fn parse_op(tok: &str, line: usize) -> Result<Op, ParseError> {
    if tok == "N" {
        return Ok(Op::Nop);
    }
    // Split off the first *character*, not the first byte: `split_at(1)`
    // would panic on a multi-byte UTF-8 op name (and on an empty token).
    let mut chars = tok.chars();
    let kind =
        chars.next().ok_or_else(|| err(line, "expected R(i), W(i) or N, got an empty op"))?;
    let rest = chars.as_str();
    let inner = rest
        .strip_prefix('(')
        .and_then(|s| s.strip_suffix(')'))
        .ok_or_else(|| err(line, format!("expected R(i), W(i) or N, got `{tok}`")))?;
    // Accept both `W(0)` and `W(l0)`.
    let inner = inner.strip_prefix('l').unwrap_or(inner);
    let loc: usize = inner.parse().map_err(|_| err(line, format!("bad location in `{tok}`")))?;
    match kind {
        'R' => Ok(Op::Read(Location::new(loc))),
        'W' => Ok(Op::Write(Location::new(loc))),
        _ => Err(err(line, format!("unknown op `{tok}`"))),
    }
}

/// Parses the computation format described in the module docs.
pub fn parse_computation(text: &str) -> Result<Computation, ParseError> {
    let mut ops: Vec<Op> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) =
            line.split_once(':').ok_or_else(|| err(lineno, "expected `nK: OP [<- preds]`"))?;
        let node = parse_node(head.trim(), lineno)?;
        if node.index() != ops.len() {
            return Err(err(
                lineno,
                format!("nodes must appear in order; expected n{}, got {}", ops.len(), head.trim()),
            ));
        }
        let (op_part, preds_part) = match rest.split_once("<-") {
            Some((o, p)) => (o.trim(), Some(p.trim())),
            None => (rest.trim(), None),
        };
        ops.push(parse_op(op_part, lineno)?);
        if let Some(preds) = preds_part {
            for tok in preds.split_whitespace() {
                let p = parse_node(tok, lineno)?;
                if p.index() >= node.index() {
                    return Err(err(
                        lineno,
                        format!("predecessor {tok} must have a smaller index than {head}"),
                    ));
                }
                edges.push((p.index(), node.index()));
            }
        }
    }
    let dag =
        Dag::from_edges(ops.len(), &edges).map_err(|e| err(0, format!("graph error: {e}")))?;
    Computation::new(dag, ops).map_err(|e| err(0, format!("computation error: {e}")))
}

/// Renders a computation in the parseable format (predecessors = direct
/// dag edges).
pub fn render_computation(c: &Computation) -> String {
    let mut out = String::new();
    for u in c.nodes() {
        out.push_str(&format!("n{}: {}", u.index(), c.op(u)));
        let preds = c.dag().predecessors(u);
        if !preds.is_empty() {
            out.push_str(" <-");
            for p in preds {
                out.push_str(&format!(" n{}", p.index()));
            }
        }
        out.push('\n');
    }
    out
}

/// Parses an observer function: one line per location, `lK: v v v …`
/// with one value per node (`nJ` or `_`).
pub fn parse_observer(text: &str, c: &Computation) -> Result<ObserverFunction, ParseError> {
    let mut phi = ObserverFunction::bottom(c.num_locations(), c.node_count());
    let mut seen = vec![false; c.num_locations()];
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (head, rest) =
            line.split_once(':').ok_or_else(|| err(lineno, "expected `lK: entries…`"))?;
        let lraw = head.trim().strip_prefix('l').ok_or_else(|| {
            err(lineno, format!("expected location like l0, got `{}`", head.trim()))
        })?;
        let loc: usize =
            lraw.parse().map_err(|_| err(lineno, format!("bad location `{}`", head.trim())))?;
        if loc >= c.num_locations() {
            return Err(err(lineno, format!("location l{loc} out of range")));
        }
        if std::mem::replace(&mut seen[loc], true) {
            return Err(err(lineno, format!("duplicate row for l{loc}")));
        }
        let entries: Vec<&str> = rest.split_whitespace().collect();
        if entries.len() != c.node_count() {
            return Err(err(
                lineno,
                format!("row l{loc} has {} entries for {} nodes", entries.len(), c.node_count()),
            ));
        }
        for (ui, tok) in entries.iter().enumerate() {
            let v = if *tok == "_" { None } else { Some(parse_node(tok, lineno)?) };
            phi.set(Location::new(loc), NodeId::new(ui), v);
        }
    }
    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(err(0, format!("missing row for l{missing}")));
    }
    Ok(phi)
}

/// Renders an observer function in the parseable format.
pub fn render_observer(phi: &ObserverFunction) -> String {
    let mut out = String::new();
    for l in 0..phi.num_locations() {
        out.push_str(&format!("l{l}:"));
        for u in 0..phi.node_count() {
            match phi.get(Location::new(l), NodeId::new(u)) {
                Some(w) => out.push_str(&format!(" n{}", w.index())),
                None => out.push_str(" _"),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_computation() {
        let text = "\
# message passing writer
n0: W(0)
n1: W(1) <- n0
n2: R(1)
n3: R(0) <- n2
";
        let c = parse_computation(text).unwrap();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.op(NodeId::new(1)), Op::Write(Location::new(1)));
        assert!(c.precedes(NodeId::new(0), NodeId::new(1)));
        assert!(!c.precedes(NodeId::new(1), NodeId::new(2)));
    }

    #[test]
    fn parse_accepts_l_prefix_locations() {
        let c = parse_computation("n0: W(l3)\n").unwrap();
        assert_eq!(c.op(NodeId::new(0)), Op::Write(Location::new(3)));
        assert_eq!(c.num_locations(), 4);
    }

    #[test]
    fn computation_roundtrip() {
        let c = crate::witness::figure4_prefix().computation;
        let text = render_computation(&c);
        let back = parse_computation(&text).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn observer_roundtrip() {
        let w = crate::witness::figure2();
        let text = render_observer(&w.phi);
        let back = parse_observer(&text, &w.computation).unwrap();
        assert_eq!(back, w.phi);
    }

    #[test]
    fn parse_errors_are_located() {
        let e = parse_computation("n0: W(0)\nn2: R(0)\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("expected n1"));

        let e = parse_computation("n0: X(0)\n").unwrap_err();
        assert!(e.message.contains("unknown op") || e.message.contains("expected R"));

        let e = parse_computation("n0: N <- n0\n").unwrap_err();
        assert!(e.message.contains("smaller index"));
    }

    #[test]
    fn multibyte_and_empty_ops_error_instead_of_panicking() {
        // A multi-byte first character used to panic `split_at(1)`.
        let e = parse_computation("n0: Ω(0)\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown op"), "{e}");
        let e = parse_computation("n0: ✗\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_computation("n0:\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("empty op"), "{e}");
        // Observer rows with non-ASCII node tokens error too.
        let c = parse_computation("n0: W(0)\n").unwrap();
        assert!(parse_observer("l0: ñ0\n", &c).is_err());
    }

    #[test]
    fn observer_errors_are_located() {
        let c = parse_computation("n0: W(0)\nn1: R(0) <- n0\n").unwrap();
        let e = parse_observer("l0: n0\n", &c).unwrap_err();
        assert!(e.message.contains("2 nodes"));
        let e = parse_observer("l5: n0 n0\n", &c).unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = parse_observer("", &c).unwrap_err();
        assert!(e.message.contains("missing row"));
        let e = parse_observer("l0: n0 _\nl0: n0 _\n", &c).unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn parsed_pairs_flow_into_the_checkers() {
        let ctext = "\
n0: W(0)
n1: R(0) <- n0
";
        let otext = "l0: n0 n0\n";
        let c = parse_computation(ctext).unwrap();
        let phi = parse_observer(otext, &c).unwrap();
        assert!(crate::model::Model::Sc.contains(&c, &phi));
        let stale = parse_observer("l0: n0 _\n", &c).unwrap();
        assert!(!crate::model::Model::Ww.contains(&c, &stale));
    }
}
