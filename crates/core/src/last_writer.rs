//! Last-writer functions (Definition 13).
//!
//! Given a topological sort `T` of a computation, the last-writer function
//! `W_T(l, u)` is the most recent write to `l` at or before `u` in `T`
//! (or ⊥ if none). Theorem 14 says it exists and is unique; Theorem 16
//! says it is an observer function. Both are machine-checked in the tests
//! below and by property tests.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::Op;
use ccmm_dag::NodeId;

/// Computes the last-writer function `W_T` for the topological sort
/// `order` of `c` (Definition 13), as an [`ObserverFunction`].
///
/// Panics in debug builds if `order` is not a topological sort of `c`.
pub fn last_writer_function(c: &Computation, order: &[NodeId]) -> ObserverFunction {
    debug_assert!(
        ccmm_dag::topo::is_topological_sort(c.dag(), order),
        "order is not a topological sort"
    );
    let mut phi = ObserverFunction::bottom(c.num_locations(), c.node_count());
    // last[l] = most recent write to l seen so far in T.
    let mut last: Vec<Option<NodeId>> = vec![None; c.num_locations()];
    for &u in order {
        if let Op::Write(l) = c.op(u) {
            last[l.index()] = Some(u);
        }
        for l in c.locations() {
            phi.set(l, u, last[l.index()]);
        }
    }
    phi
}

/// Checks Definition 13 directly: whether `phi` is *the* last-writer
/// function of `order` (conditions 13.1–13.3). Used to cross-validate
/// [`last_writer_function`] (Theorem 14 uniqueness).
pub fn is_last_writer_function(c: &Computation, order: &[NodeId], phi: &ObserverFunction) -> bool {
    if !ccmm_dag::topo::is_topological_sort(c.dag(), order) {
        return false;
    }
    let mut pos = vec![usize::MAX; c.node_count()];
    for (i, u) in order.iter().enumerate() {
        pos[u.index()] = i;
    }
    for l in c.locations() {
        for u in c.nodes() {
            match phi.get(l, u) {
                Some(w) => {
                    // 13.1: w writes l. 13.2: w ⪯_T u.
                    if !c.op(w).is_write_to(l) || pos[w.index()] > pos[u.index()] {
                        return false;
                    }
                    // 13.3: no write to l strictly between w and u in T.
                    for x in &order[pos[w.index()] + 1..=pos[u.index()]] {
                        if c.op(*x).is_write_to(l) {
                            return false;
                        }
                    }
                }
                None => {
                    // No write to l at or before u in T.
                    for x in &order[..=pos[u.index()]] {
                        if c.op(*x).is_write_to(l) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Location;
    use ccmm_dag::topo::all_topo_sorts;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// W(0); R(0); W(0); R(0) in a chain.
    fn chain_warw() -> Computation {
        Computation::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        )
    }

    #[test]
    fn chain_last_writer() {
        let c = chain_warw();
        let order: Vec<NodeId> = (0..4).map(n).collect();
        let phi = last_writer_function(&c, &order);
        assert_eq!(phi.get(l(0), n(0)), Some(n(0)));
        assert_eq!(phi.get(l(0), n(1)), Some(n(0)));
        assert_eq!(phi.get(l(0), n(2)), Some(n(2)));
        assert_eq!(phi.get(l(0), n(3)), Some(n(2)));
    }

    #[test]
    fn theorem_16_last_writer_is_observer_function() {
        let c = chain_warw();
        for t in all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            assert!(phi.is_valid_for(&c), "W_T invalid for T={t:?}");
        }
    }

    #[test]
    fn no_write_yields_bottom() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Nop]);
        let order = vec![n(0), n(1)];
        let phi = last_writer_function(&c, &order);
        assert_eq!(phi.get(l(0), n(0)), None);
        assert_eq!(phi.get(l(0), n(1)), None);
    }

    #[test]
    fn order_matters_for_incomparable_writes() {
        // Two incomparable writes; a read after both.
        let c = Computation::from_edges(
            3,
            &[(0, 2), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let phi01 = last_writer_function(&c, &[n(0), n(1), n(2)]);
        let phi10 = last_writer_function(&c, &[n(1), n(0), n(2)]);
        assert_eq!(phi01.get(l(0), n(2)), Some(n(1)));
        assert_eq!(phi10.get(l(0), n(2)), Some(n(0)));
    }

    #[test]
    fn definition_13_agreement() {
        let c = chain_warw();
        let order: Vec<NodeId> = (0..4).map(n).collect();
        let phi = last_writer_function(&c, &order);
        assert!(is_last_writer_function(&c, &order, &phi));
        // Perturb one entry: no longer the last-writer function.
        let bad = phi.clone().with(l(0), n(3), Some(n(0)));
        assert!(!is_last_writer_function(&c, &order, &bad));
        let bad2 = phi.with(l(0), n(1), None);
        assert!(!is_last_writer_function(&c, &order, &bad2));
    }

    #[test]
    fn theorem_15_convexity() {
        // For any T and u with W_T(l,u)=w, every v with w ≺_T v ⪯_T u has
        // W_T(l,v) = w.
        let c = Computation::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Nop],
        );
        for t in all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            let mut pos = [0; 5];
            for (i, u) in t.iter().enumerate() {
                pos[u.index()] = i;
            }
            for u in c.nodes() {
                if let Some(w) = phi.get(l(0), u) {
                    for v in c.nodes() {
                        if pos[w.index()] < pos[v.index()] && pos[v.index()] <= pos[u.index()] {
                            assert_eq!(phi.get(l(0), v), Some(w));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multiple_locations_tracked_independently() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0))],
        );
        let phi = last_writer_function(&c, &[n(0), n(1), n(2)]);
        assert_eq!(phi.get(l(0), n(2)), Some(n(0)));
        assert_eq!(phi.get(l(1), n(2)), Some(n(1)));
        assert_eq!(phi.get(l(1), n(0)), None);
    }
}
