//! Last-writer functions (Definition 13).
//!
//! Given a topological sort `T` of a computation, the last-writer function
//! `W_T(l, u)` is the most recent write to `l` at or before `u` in `T`
//! (or ⊥ if none). Theorem 14 says it exists and is unique; Theorem 16
//! says it is an observer function. Both are machine-checked in the tests
//! below and by property tests.

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::Op;
use ccmm_dag::NodeId;

/// Computes the last-writer function `W_T` for the topological sort
/// `order` of `c` (Definition 13), as an [`ObserverFunction`].
///
/// Panics in debug builds if `order` is not a topological sort of `c`.
pub fn last_writer_function(c: &Computation, order: &[NodeId]) -> ObserverFunction {
    debug_assert!(
        ccmm_dag::topo::is_topological_sort(c.dag(), order),
        "order is not a topological sort"
    );
    let mut phi = ObserverFunction::bottom(c.num_locations(), c.node_count());
    // last[l] = most recent write to l seen so far in T.
    let mut last: Vec<Option<NodeId>> = vec![None; c.num_locations()];
    for &u in order {
        if let Op::Write(l) = c.op(u) {
            last[l.index()] = Some(u);
        }
        for l in c.locations() {
            phi.set(l, u, last[l.index()]);
        }
    }
    phi
}

/// Checks Definition 13 directly: whether `phi` is *the* last-writer
/// function of `order` (conditions 13.1–13.3). Used to cross-validate
/// [`last_writer_function`] (Theorem 14 uniqueness).
pub fn is_last_writer_function(c: &Computation, order: &[NodeId], phi: &ObserverFunction) -> bool {
    if !ccmm_dag::topo::is_topological_sort(c.dag(), order) {
        return false;
    }
    let mut pos = vec![usize::MAX; c.node_count()];
    for (i, u) in order.iter().enumerate() {
        pos[u.index()] = i;
    }
    for l in c.locations() {
        for u in c.nodes() {
            match phi.get(l, u) {
                Some(w) => {
                    // 13.1: w writes l. 13.2: w ⪯_T u.
                    if !c.op(w).is_write_to(l) || pos[w.index()] > pos[u.index()] {
                        return false;
                    }
                    // 13.3: no write to l strictly between w and u in T.
                    for x in &order[pos[w.index()] + 1..=pos[u.index()]] {
                        if c.op(*x).is_write_to(l) {
                            return false;
                        }
                    }
                }
                None => {
                    // No write to l at or before u in T.
                    for x in &order[..=pos[u.index()]] {
                        if c.op(*x).is_write_to(l) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

/// A streaming per-location last-writer index: the O(L)-space state that
/// makes `W_T(l, ·)` answerable in O(1) while a computation is *revealed*
/// in commit order, without materializing the dense L×n table that
/// [`last_writer_function`] builds.
///
/// Feed it each node in the order `T` via [`observe`](Self::observe);
/// [`last`](Self::last) then answers `W_T(l, u)` for the node `u` just
/// observed (and, by Definition 13 convexity, for any later node until the
/// next write to `l`). This is exactly the index the streaming `ccmm watch`
/// checker uses to complete a harvested observer function to a full
/// last-writer function on the fly.
#[derive(Clone, Debug, Default)]
pub struct LastWriterIndex {
    last: Vec<Option<NodeId>>,
}

impl LastWriterIndex {
    /// An empty index covering `num_locations` locations (all ⊥).
    pub fn new(num_locations: usize) -> Self {
        LastWriterIndex { last: vec![None; num_locations] }
    }

    /// Number of tracked locations.
    pub fn num_locations(&self) -> usize {
        self.last.len()
    }

    /// Feeds the next node of the commit order: a `W(l)` becomes the
    /// current last writer of `l`; reads and nops change nothing. Grows
    /// the location range on demand.
    pub fn observe(&mut self, u: NodeId, op: Op) {
        if let Op::Write(l) = op {
            if l.index() >= self.last.len() {
                self.last.resize(l.index() + 1, None);
            }
            self.last[l.index()] = Some(u);
        }
    }

    /// The most recent write to `l` at or before the last observed node —
    /// `W_T(l, u)` for the current frontier node `u`. `None` for
    /// never-written (or out-of-range) locations.
    #[inline]
    pub fn last(&self, l: crate::op::Location) -> Option<NodeId> {
        self.last.get(l.index()).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Location;
    use ccmm_dag::topo::all_topo_sorts;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// W(0); R(0); W(0); R(0) in a chain.
    fn chain_warw() -> Computation {
        Computation::from_edges(
            4,
            &[(0, 1), (1, 2), (2, 3)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        )
    }

    #[test]
    fn chain_last_writer() {
        let c = chain_warw();
        let order: Vec<NodeId> = (0..4).map(n).collect();
        let phi = last_writer_function(&c, &order);
        assert_eq!(phi.get(l(0), n(0)), Some(n(0)));
        assert_eq!(phi.get(l(0), n(1)), Some(n(0)));
        assert_eq!(phi.get(l(0), n(2)), Some(n(2)));
        assert_eq!(phi.get(l(0), n(3)), Some(n(2)));
    }

    #[test]
    fn theorem_16_last_writer_is_observer_function() {
        let c = chain_warw();
        for t in all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            assert!(phi.is_valid_for(&c), "W_T invalid for T={t:?}");
        }
    }

    #[test]
    fn no_write_yields_bottom() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Read(l(0)), Op::Nop]);
        let order = vec![n(0), n(1)];
        let phi = last_writer_function(&c, &order);
        assert_eq!(phi.get(l(0), n(0)), None);
        assert_eq!(phi.get(l(0), n(1)), None);
    }

    #[test]
    fn order_matters_for_incomparable_writes() {
        // Two incomparable writes; a read after both.
        let c = Computation::from_edges(
            3,
            &[(0, 2), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let phi01 = last_writer_function(&c, &[n(0), n(1), n(2)]);
        let phi10 = last_writer_function(&c, &[n(1), n(0), n(2)]);
        assert_eq!(phi01.get(l(0), n(2)), Some(n(1)));
        assert_eq!(phi10.get(l(0), n(2)), Some(n(0)));
    }

    #[test]
    fn definition_13_agreement() {
        let c = chain_warw();
        let order: Vec<NodeId> = (0..4).map(n).collect();
        let phi = last_writer_function(&c, &order);
        assert!(is_last_writer_function(&c, &order, &phi));
        // Perturb one entry: no longer the last-writer function.
        let bad = phi.clone().with(l(0), n(3), Some(n(0)));
        assert!(!is_last_writer_function(&c, &order, &bad));
        let bad2 = phi.with(l(0), n(1), None);
        assert!(!is_last_writer_function(&c, &order, &bad2));
    }

    #[test]
    fn theorem_15_convexity() {
        // For any T and u with W_T(l,u)=w, every v with w ≺_T v ⪯_T u has
        // W_T(l,v) = w.
        let c = Computation::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Nop],
        );
        for t in all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            let mut pos = [0; 5];
            for (i, u) in t.iter().enumerate() {
                pos[u.index()] = i;
            }
            for u in c.nodes() {
                if let Some(w) = phi.get(l(0), u) {
                    for v in c.nodes() {
                        if pos[w.index()] < pos[v.index()] && pos[v.index()] <= pos[u.index()] {
                            assert_eq!(phi.get(l(0), v), Some(w));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_index_agrees_with_dense_last_writer_function() {
        // Feeding any topological sort through LastWriterIndex must answer
        // W_T(l, u) identically to the dense table, at every step.
        let c = Computation::from_edges(
            5,
            &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(1))],
        );
        for t in all_topo_sorts(c.dag()) {
            let phi = last_writer_function(&c, &t);
            let mut idx = LastWriterIndex::new(c.num_locations());
            for &u in &t {
                idx.observe(u, c.op(u));
                for loc in c.locations() {
                    assert_eq!(idx.last(loc), phi.get(loc, u), "T={t:?} u={u} l={loc}");
                }
            }
        }
    }

    #[test]
    fn streaming_index_grows_locations_on_demand() {
        let mut idx = LastWriterIndex::new(0);
        assert_eq!(idx.num_locations(), 0);
        assert_eq!(idx.last(l(3)), None);
        idx.observe(n(0), Op::Write(l(3)));
        assert_eq!(idx.num_locations(), 4);
        assert_eq!(idx.last(l(3)), Some(n(0)));
        assert_eq!(idx.last(l(0)), None);
        idx.observe(n(1), Op::Read(l(3)));
        assert_eq!(idx.last(l(3)), Some(n(0)));
        idx.observe(n(2), Op::Write(l(3)));
        assert_eq!(idx.last(l(3)), Some(n(2)));
    }

    #[test]
    fn multiple_locations_tracked_independently() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(0))],
        );
        let phi = last_writer_function(&c, &[n(0), n(1), n(2)]);
        assert_eq!(phi.get(l(0), n(2)), Some(n(0)));
        assert_eq!(phi.get(l(1), n(2)), Some(n(1)));
        assert_eq!(phi.get(l(1), n(0)), None);
    }
}
