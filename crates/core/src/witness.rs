//! The paper's witness computations (Figures 2, 3, 4) as library values.
//!
//! The SPAA'98 text renders its figures as prose; these are faithful
//! semantic reconstructions — each value is verified (in tests and by
//! experiment E2–E4) to have exactly the membership pattern the paper
//! states:
//!
//! * [`figure2`]: a pair in **WW ∩ NW** but neither **WN** nor **NN**;
//! * [`figure3`]: a pair in **WW ∩ WN** but neither **NW** nor **NN**;
//! * [`figure4_prefix`]/[`figure4_full`]: a pair in **NN** (but not LC) whose one-node extension
//!   by a non-write admits *no* compatible observer function — the
//!   witness that NN is not constructible, and simultaneously a witness
//!   that `LC ⊊ NN` (Theorem 22).

use crate::computation::Computation;
use crate::observer::ObserverFunction;
use crate::op::{Location, Op};
use ccmm_dag::NodeId;

fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

fn l0() -> Location {
    Location::new(0)
}

/// A paper witness: a computation, an observer function, and node names
/// matching the paper's lettering.
#[derive(Clone, Debug)]
pub struct Witness {
    /// The computation.
    pub computation: Computation,
    /// The observer function.
    pub phi: ObserverFunction,
    /// Human-readable node names (paper lettering), indexed by node.
    pub names: Vec<&'static str>,
}

/// Figure 2: in WW and NW but not WN or NN.
///
/// One location. Nodes (paper lettering):
///
/// ```text
///   A:W(l)  ──► C:R(l)  ──► B:R(l)
///      │
///      └────► D:W(l)
///
///   Φ(A)=A   Φ(C)=D   Φ(B)=A   Φ(D)=D
/// ```
///
/// Node `C` sees the *other* write `D` between two observations of `A`
/// along the chain `A ≺ C ≺ B`. With `u = A` a write, the WN predicate
/// fires on `(A, C, B)`: WN (and NN) are violated. No triple has a write
/// *middle* (`D` has no descendants), so NW and WW hold.
pub fn figure2() -> Witness {
    let c = Computation::from_edges(
        4,
        &[(0, 1), (1, 2), (0, 3)],
        vec![Op::Write(l0()), Op::Read(l0()), Op::Read(l0()), Op::Write(l0())],
    );
    let phi = ObserverFunction::base(&c)
        .with(l0(), n(1), Some(n(3))) // C observes D
        .with(l0(), n(2), Some(n(0))); // B observes A
    Witness { computation: c, phi, names: vec!["A", "C", "B", "D"] }
}

/// Figure 3: in WW and WN but not NW or NN.
///
/// One location. Nodes:
///
/// ```text
///   A:R(l) ──► B:W(l) ──► C:R(l)        D:W(l)  (incomparable)
///
///   Φ(A)=D   Φ(B)=B   Φ(C)=D   Φ(D)=D
/// ```
///
/// The chain `A ≺ B ≺ C` has the write `B` in the middle with both
/// endpoints observing `D`: the NW predicate fires (and NN), so NW and NN
/// are violated. Every triple whose *first* node is a write would need
/// `B` or `D` as `u`; `B ≺ C` has no middle and `D` precedes nothing, so
/// WN (and WW) hold.
pub fn figure3() -> Witness {
    let c = Computation::from_edges(
        4,
        &[(0, 1), (1, 2)],
        vec![Op::Read(l0()), Op::Write(l0()), Op::Read(l0()), Op::Write(l0())],
    );
    let phi = ObserverFunction::base(&c)
        .with(l0(), n(0), Some(n(3))) // A observes D
        .with(l0(), n(2), Some(n(3))); // C observes D
    Witness { computation: c, phi, names: vec!["A", "B", "C", "D"] }
}

/// Figure 4, prefix part: the pair `(C, Φ)` in NN — but not LC — whose
/// extension is blocked.
///
/// ```text
///   A:W(l) ──► C:R(l)        Φ(C)=A
///        ╲  ╱
///         ╳
///        ╱  ╲
///   B:W(l) ──► D:R(l)        Φ(D)=B
/// ```
///
/// `A ∥ B` are writes; `C` and `D` follow both and observe them
/// *crosswise*. No chain of length 2 exists inside the prefix, so NN
/// holds vacuously. LC fails: serialising `l` forces `A` before `C`'s
/// block and `B` before `D`'s block both ways around — the block
/// contraction has a 2-cycle.
pub fn figure4_prefix() -> Witness {
    let c = Computation::from_edges(
        4,
        &[(0, 2), (1, 2), (0, 3), (1, 3)],
        vec![Op::Write(l0()), Op::Write(l0()), Op::Read(l0()), Op::Read(l0())],
    );
    let phi = ObserverFunction::base(&c)
        .with(l0(), n(2), Some(n(0))) // C observes A
        .with(l0(), n(3), Some(n(1))); // D observes B
    Witness { computation: c, phi, names: vec!["A", "B", "C", "D"] }
}

/// Figure 4, full computation: the prefix extended by the node `F`
/// (labelled `op`, any non-write) succeeding `C` and `D`.
///
/// For `op` a read or no-op there is **no** observer function `Φ'` with
/// `Φ'|_C = Φ` that is NN-consistent: `Φ'(l, F) = A` is killed by the
/// triple `(A, D, F)`, `Φ'(l, F) = B` by `(B, C, F)`, and `Φ'(l, F) = ⊥`
/// by `(⊥, A, F)`. Hence NN is not constructible (Definition 6 fails).
pub fn figure4_full(op: Op) -> Computation {
    figure4_prefix().computation.extend(&[n(2), n(3)], op)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, MemoryModel, Model, Nn, Sc};
    use crate::props::any_extension;

    #[test]
    fn figure2_membership_pattern() {
        let w = figure2();
        assert!(w.phi.is_valid_for(&w.computation));
        assert!(Model::Ww.contains(&w.computation, &w.phi), "Fig 2 ∈ WW");
        assert!(Model::Nw.contains(&w.computation, &w.phi), "Fig 2 ∈ NW");
        assert!(!Model::Wn.contains(&w.computation, &w.phi), "Fig 2 ∉ WN");
        assert!(!Model::Nn.contains(&w.computation, &w.phi), "Fig 2 ∉ NN");
    }

    #[test]
    fn figure3_membership_pattern() {
        let w = figure3();
        assert!(w.phi.is_valid_for(&w.computation));
        assert!(Model::Ww.contains(&w.computation, &w.phi), "Fig 3 ∈ WW");
        assert!(Model::Wn.contains(&w.computation, &w.phi), "Fig 3 ∈ WN");
        assert!(!Model::Nw.contains(&w.computation, &w.phi), "Fig 3 ∉ NW");
        assert!(!Model::Nn.contains(&w.computation, &w.phi), "Fig 3 ∉ NN");
    }

    #[test]
    fn figure4_prefix_in_nn_not_lc() {
        let w = figure4_prefix();
        assert!(Nn::new().contains(&w.computation, &w.phi), "Fig 4 prefix ∈ NN");
        assert!(!Lc.contains(&w.computation, &w.phi), "Fig 4 prefix ∉ LC (Thm 22 strictness)");
        assert!(!Sc.contains(&w.computation, &w.phi));
    }

    #[test]
    fn figure4_extension_blocked_for_non_writes() {
        let w = figure4_prefix();
        for op in [Op::Read(l0()), Op::Nop] {
            let full = figure4_full(op);
            let blocked = !any_extension(&full, &w.phi, |phi2| Nn::new().contains(&full, phi2));
            assert!(blocked, "extension by {op} should be blocked");
        }
    }

    #[test]
    fn figure4_extension_allowed_for_write() {
        // The paper: "unless F writes to the memory location, there is no
        // way to extend Φ".
        let w = figure4_prefix();
        let full = figure4_full(Op::Write(l0()));
        assert!(any_extension(&full, &w.phi, |phi2| Nn::new().contains(&full, phi2)));
    }

    #[test]
    fn witnesses_have_names_for_each_node() {
        for w in [figure2(), figure3(), figure4_prefix()] {
            assert_eq!(w.names.len(), w.computation.node_count());
        }
    }

    #[test]
    fn witness_pattern_minimality() {
        // Machine-checked minimal sizes of the two separating patterns:
        // the Figure-3 pattern (WW ∩ WN, not NW/NN) first exists at 4
        // nodes — the paper's figure is minimal. The Figure-2 pattern
        // (WW ∩ NW, not WN/NN) has a degenerate 3-node instance whose
        // separating node observes ⊥; the paper's 4-node figure is the
        // smallest in which every observation is a real write (all reads
        // return defined values).
        use crate::relation::find_pair;
        use crate::universe::Universe;
        let u3 = Universe::new(3, 1);
        assert!(
            find_pair(&[&Model::Ww, &Model::Wn], &[&Model::Nw, &Model::Nn], &u3).is_none(),
            "unexpected 3-node Figure-3 witness"
        );
        assert!(
            find_pair(&[&Model::Ww, &Model::Nw], &[&Model::Wn, &Model::Nn], &u3).is_some(),
            "3-node ⊥-flavoured Figure-2 pattern should exist"
        );
        let u2 = Universe::new(2, 1);
        assert!(
            find_pair(&[&Model::Ww, &Model::Nw], &[&Model::Wn, &Model::Nn], &u2).is_none(),
            "no 2-node Figure-2 pattern"
        );
    }
}
