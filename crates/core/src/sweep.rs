//! Parallel universe sweeps: sharding the (poset × op-labelling) space.
//!
//! Every exhaustive checker in this crate walks the same space — all
//! naturally labelled posets of each size crossed with all op labellings
//! and all valid observer functions. This module shards that space across
//! worker threads: the *task* unit is one poset (all labellings of one
//! dag), materialised in serial enumeration order with a global index and
//! distributed through a work-stealing [`Injector`] under
//! [`std::thread::scope`].
//!
//! **Symmetry reduction.** Every property swept here is invariant under
//! dag isomorphism and under permutations of the location alphabet. With
//! [`SweepConfig::canonical`] set, the sweep enumerates only canonical
//! poset representatives ([`ccmm_dag::canon`]) weighted by orbit size,
//! and within each poset only location-canonical op labellings weighted
//! by their `S_k`-orbit, so weighted totals are *integer-identical* to
//! the labelled scan at a fraction of the work. Witnesses are also
//! bit-identical: the minimal witnessing poset is necessarily canonical
//! (its class representative is the first class member in enumeration
//! order and witnesses too, by invariance), and the first witnessing
//! labelling within it is necessarily location-canonical (ditto), so the
//! smallest-task-index merge returns exactly the serial labelled witness.
//!
//! Determinism is part of the contract, not an accident:
//!
//! * counting sweeps ([`compare_par`]) visit every pair exactly once
//!   (canonical mode: exactly once per orbit, weighted), so the merged
//!   totals are bit-identical to the serial scan;
//! * witness sweeps ([`check_complete_par`], [`check_monotonic_par`],
//!   [`check_constructible_aug_par`], and [`compare_par`]'s witnesses)
//!   resolve races by *smallest task index wins*. A task is scanned
//!   serially by exactly one worker, so "first witness within the minimal
//!   witnessing task" is exactly the witness the serial scan returns.
//!   A shared atomic best-index lets workers skip or abandon tasks that
//!   can no longer win — cooperative early exit without changing the
//!   answer.
//!
//! Thread count comes from [`SweepConfig`]: the `CCMM_THREADS` environment
//! variable when set, otherwise [`std::thread::available_parallelism`].

pub mod supervisor;

use crate::computation::Computation;
use crate::model::MemoryModel;
use crate::op::{Location, Op};
use crate::props::{ConstructibilityWitness, IncompleteWitness, MonotonicityWitness};
use crate::relation::{Comparison, LatticeRow, Relation};
use crate::universe::Universe;
use ccmm_dag::canon::for_each_canonical_poset;
use ccmm_dag::poset::{count_posets_fast, for_each_poset_indexed};
use ccmm_dag::Dag;
use crossbeam::deque::{Injector, Steal};
use std::ops::ControlFlow;
use std::time::Duration;
use supervisor::Supervisor;

/// How a sweep is parallelised and enumerated.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Number of worker threads (≥ 1).
    pub threads: usize,
    /// Sweep canonical poset representatives and location-canonical
    /// labellings only, weighting counts by orbit size (see the module
    /// docs). Totals and witnesses are identical to the labelled sweep.
    pub canonical: bool,
    /// Cooperative time budget, honoured by the supervised entry points
    /// ([`supervisor`]) and by [`sweep_computations`]: workers stop
    /// between tasks once it elapses and the sweep reports a partial
    /// result with its resume frontier. The `_par` wrappers cannot
    /// express partial results and panic if the deadline fires — set a
    /// deadline only when the caller inspects [`supervisor::SweepStatus`].
    pub deadline: Option<Duration>,
}

impl SweepConfig {
    /// `CCMM_THREADS` when set to a positive integer, otherwise the
    /// machine's available parallelism (1 if unknown).
    pub fn from_env() -> Self {
        let threads = std::env::var("CCMM_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        SweepConfig { threads, canonical: false, deadline: None }
    }

    /// A single-threaded sweep (the serial scan, run through the same
    /// engine).
    pub fn serial() -> Self {
        SweepConfig { threads: 1, canonical: false, deadline: None }
    }

    /// An explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a sweep needs at least one thread");
        SweepConfig { threads, canonical: false, deadline: None }
    }

    /// Enables or disables symmetry-reduced (canonical) enumeration.
    pub fn canonical(mut self, on: bool) -> Self {
        self.canonical = on;
        self
    }

    /// Sets the cooperative time budget (see the `deadline` field: only
    /// the supervised entry points can report the resulting partial
    /// sweep).
    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::from_env()
    }
}

/// One unit of sweep work: one poset, covering all its op labellings.
pub(crate) struct Task {
    /// Global index in serial enumeration order (sizes ascending, posets
    /// in `for_each_poset` order within a size). Canonical tasks keep
    /// their *labelled* global index, so smallest-index witness merging
    /// stays comparable with the labelled scan.
    pub(crate) idx: usize,
    /// Node count of the poset.
    pub(crate) size: usize,
    /// Number of labelled posets in this poset's isomorphism class
    /// (1 in labelled mode).
    pub(crate) weight: u64,
    /// The poset's transitive-closure dag.
    pub(crate) dag: Dag,
}

/// All tasks of the universe, in serial enumeration order. In canonical
/// mode, only class representatives — weighted by orbit, keeping their
/// labelled global indices.
pub(crate) fn materialize(u: &Universe, canonical: bool) -> Vec<Task> {
    let mut tasks = Vec::new();
    let mut base = 0usize;
    for n in 0..=u.max_nodes {
        if canonical {
            for_each_canonical_poset(n, |idx, dag, info| {
                tasks.push(Task { idx: base + idx, size: n, weight: info.orbit, dag: dag.clone() });
            });
        } else {
            for_each_poset_indexed(n, |idx, dag| {
                tasks.push(Task { idx: base + idx, size: n, weight: 1, dag: dag.clone() });
            });
        }
        base += count_posets_fast(n) as usize;
    }
    tasks
}

/// Per-worker labelling state: one reusable [`Computation`] retargeted per
/// task and relabelled per op labelling (zero allocation in the loop), the
/// base-`k` digit counter, and the op buffer.
pub(crate) struct LabelScratch {
    c: Computation,
    digits: Vec<usize>,
    ops: Vec<Op>,
}

impl LabelScratch {
    pub(crate) fn new() -> Self {
        LabelScratch { c: Computation::empty(), digits: Vec::new(), ops: Vec::new() }
    }
}

/// Digit maps of the location-permutation group: for each `π ∈ S_k`,
/// entry `d` is the alphabet index of `alphabet[d]` with `π` applied to
/// its location. The identity is included. Labelled sweeps pass
/// `num_locations = 0` (or 1), collapsing the group to the identity.
fn location_digit_maps(alphabet: &[Op], num_locations: usize) -> Vec<Vec<usize>> {
    let mut perms: Vec<Vec<usize>> = vec![Vec::new()];
    for i in 0..num_locations {
        perms = perms
            .into_iter()
            .flat_map(|p| {
                (0..=i).map(move |at| {
                    let mut q = p.clone();
                    q.insert(at, i);
                    q
                })
            })
            .collect();
    }
    perms
        .iter()
        .map(|p| {
            alphabet
                .iter()
                .map(|op| {
                    let moved = match *op {
                        Op::Nop => Op::Nop,
                        Op::Read(l) => Op::Read(Location::new(p[l.index()])),
                        Op::Write(l) => Op::Write(Location::new(p[l.index()])),
                    };
                    alphabet
                        .iter()
                        .position(|&o| o == moved)
                        .expect("alphabet is closed under location permutation")
                })
                .collect()
        })
        .collect()
}

/// Whether `digits` is the first member of its `S_k`-orbit in labelling
/// enumeration order (reversed-digit lexicographic: `digits[n-1]` most
/// significant, matching the base-`k` counter that increments `digits[0]`
/// fastest), and if so its orbit size `|S_k| / |Stab|`.
fn location_canonical_weight(digits: &[usize], maps: &[Vec<usize>]) -> (bool, u64) {
    let mut stabilizers = 0u64;
    for m in maps {
        let mut cmp = std::cmp::Ordering::Equal;
        for &d in digits.iter().rev() {
            cmp = m[d].cmp(&d);
            if cmp != std::cmp::Ordering::Equal {
                break;
            }
        }
        match cmp {
            std::cmp::Ordering::Less => return (false, 0),
            std::cmp::Ordering::Equal => stabilizers += 1,
            std::cmp::Ordering::Greater => {}
        }
    }
    (true, maps.len() as u64 / stabilizers)
}

/// Calls `f` with every op labelling of a task's poset, in the same
/// base-`k` digit-counter order as `Universe::for_each_computation_of_size`,
/// plus the labelling's universe multiplicity (poset orbit × location
/// orbit; 1 in labelled mode). With more than one digit map, only
/// location-canonical labellings are visited.
pub(crate) fn for_each_labelling<F>(
    alphabet: &[Op],
    maps: &[Vec<usize>],
    task: &Task,
    scratch: &mut LabelScratch,
    f: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&Computation, u64) -> ControlFlow<()>,
{
    let n = task.size;
    let k = alphabet.len();
    crate::telemetry::count(crate::telemetry::Counter::PosetsScanned, 1);
    scratch.c.retarget(&task.dag);
    scratch.digits.clear();
    scratch.digits.resize(n, 0);
    loop {
        let (canonical, loc_weight) = if maps.len() <= 1 {
            (true, 1)
        } else {
            location_canonical_weight(&scratch.digits, maps)
        };
        if canonical {
            crate::telemetry::count(crate::telemetry::Counter::LabellingsScanned, 1);
            scratch.ops.clear();
            scratch.ops.extend(scratch.digits.iter().map(|&d| alphabet[d]));
            scratch.c.refresh_ops(&scratch.ops);
            f(&scratch.c, task.weight * loc_weight)?;
        }
        let mut i = 0;
        loop {
            if i == n {
                return ControlFlow::Continue(());
            }
            scratch.digits[i] += 1;
            if scratch.digits[i] < k {
                break;
            }
            scratch.digits[i] = 0;
            i += 1;
        }
    }
}

/// The digit maps a config asks for: the full `S_k` group in canonical
/// mode, just the identity otherwise.
pub(crate) fn maps_for(u: &Universe, cfg: &SweepConfig, alphabet: &[Op]) -> Vec<Vec<usize>> {
    if cfg.canonical {
        location_digit_maps(alphabet, u.num_locations)
    } else {
        vec![(0..alphabet.len()).collect()]
    }
}

/// Pops the next task, absorbing `Retry`.
fn pop(injector: &Injector<Task>) -> Option<Task> {
    loop {
        match injector.steal() {
            Steal::Success(t) => return Some(t),
            Steal::Empty => return None,
            Steal::Retry => continue,
        }
    }
}

/// Runs `worker` on `cfg.threads` scoped threads over a shared task queue
/// and collects the per-worker results. With one thread the worker runs
/// on the caller's thread — no spawn, same code path.
fn run_workers<R, W>(tasks: Vec<Task>, threads: usize, worker: W) -> Vec<R>
where
    R: Send,
    W: Fn(&Injector<Task>) -> R + Sync,
{
    let injector = Injector::new();
    for t in tasks {
        injector.push(t);
    }
    if threads == 1 {
        return vec![worker(&injector)];
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(|| worker(&injector))).collect();
        // Task panics are caught per task inside the supervised engine,
        // so a panic escaping a worker is an infrastructure bug — re-raise
        // it instead of replacing it with a generic expect message.
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// The general sharded sweep: runs `work` once per computation of the
/// universe (canonical mode: once per isomorphism orbit), fanned out over
/// `cfg.threads` workers at poset granularity, each task folding into its
/// own fresh accumulator (seeded by `init`). Returns the per-task
/// accumulators — in completion order, so callers must merge them
/// commutatively — wrapped in a [`supervisor::Supervised`] verdict.
///
/// This runs through the supervised engine: a task that panics (twice —
/// one retry with rebuilt scratch) is quarantined and the sweep finishes
/// [`supervisor::SweepStatus::Degraded`] with every other task's
/// accumulator intact, instead of aborting the whole run; a configured
/// [`SweepConfig::deadline`] yields `Partial` with the completed-task
/// frontier. Callers that need totality use
/// [`supervisor::Supervised::expect_complete`].
///
/// `work` receives the computation's *task index* (the global poset
/// index) so callers can impose the serial order on merged results, and
/// the computation's universe multiplicity (1 in labelled mode) so
/// weighted counts reproduce labelled totals exactly.
pub fn sweep_computations<R, I, F>(
    u: &Universe,
    cfg: &SweepConfig,
    init: I,
    work: F,
) -> supervisor::Supervised<Vec<R>>
where
    R: Send,
    I: Fn() -> R + Sync,
    F: Fn(&mut R, usize, &Computation, u64) + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    supervisor::run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &crate::fault::FaultPlan::none(),
        supervisor::Frontier::new(),
        Vec::new(),
        None,
        LabelScratch::new,
        |task, scratch| {
            let mut acc = init();
            let _ = for_each_labelling(&alphabet, &maps, task, scratch, &mut |c, weight| {
                work(&mut acc, task.idx, c, weight);
                ControlFlow::Continue(())
            });
            vec![acc]
        },
        |all: &mut Vec<R>, mut acc, _| all.append(&mut acc),
    )
}

/// A witness tagged with the task index it was found in; merged by
/// smallest index, which reproduces the serial scan's first witness.
struct Keyed<W> {
    task_idx: usize,
    witness: W,
}

fn keep_min<W>(slot: &mut Option<Keyed<W>>, task_idx: usize, witness: impl FnOnce() -> W) {
    if slot.as_ref().is_none_or(|k| task_idx < k.task_idx) {
        *slot = Some(Keyed { task_idx, witness: witness() });
    }
}

/// Parallel [`crate::relation::compare`]: identical `Comparison` —
/// totals are exact (every pair visited exactly once) and the
/// `a_only`/`b_only` witnesses are the serial scan's first witnesses
/// (smallest task index, first in scan order within it). Runs through
/// the supervised engine with no faults injected; a real panic in model
/// code is quarantined, retried once, and re-raised here if it persists.
pub fn compare_par<A, B>(a: &A, b: &B, u: &Universe, cfg: &SweepConfig) -> Comparison
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    supervisor::compare_supervised(a, b, u, cfg, &Supervisor::none()).expect_complete("compare_par")
}

/// Decides only the [`Relation`] between two models, with cooperative
/// early exit: once witnesses in both directions exist the verdict is
/// `Incomparable` no matter what remains, so a shared flag per direction
/// lets every worker stop scanning. Existence of a witness is scan-order
/// independent, so the verdict is deterministic.
pub fn relation_par<A, B>(a: &A, b: &B, u: &Universe, cfg: &SweepConfig) -> Relation
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    supervisor::relation_supervised(a, b, u, cfg, &Supervisor::none())
        .expect_complete("relation_par")
}

/// Parallel [`crate::relation::lattice`]: the full pairwise relation
/// matrix, each cell decided by [`relation_par`].
pub fn lattice_par<M: MemoryModel + Sync>(
    models: &[M],
    u: &Universe,
    cfg: &SweepConfig,
) -> Vec<LatticeRow> {
    supervisor::lattice_supervised(models, u, cfg, &Supervisor::none())
        .expect_complete("lattice_par")
}

/// Parallel [`crate::props::check_complete`], returning the serial scan's
/// witness. (Large `Err` is deliberate: the witness is the product.)
#[allow(clippy::result_large_err)]
pub fn check_complete_par<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
) -> Result<(), IncompleteWitness> {
    match supervisor::check_complete_supervised(model, u, cfg, &Supervisor::none())
        .expect_complete("check_complete_par")
    {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

/// Parallel [`crate::props::check_monotonic`], returning the serial
/// scan's witness. (Large `Err` is deliberate: the witness is the
/// product.)
#[allow(clippy::result_large_err)]
pub fn check_monotonic_par<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
) -> Result<(), MonotonicityWitness> {
    match supervisor::check_monotonic_supervised(model, u, cfg, &Supervisor::none())
        .expect_complete("check_monotonic_par")
    {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

/// Parallel [`crate::props::check_constructible_aug`], returning the
/// serial scan's witness. (Large `Err` is deliberate: the witness is the
/// product.)
#[allow(clippy::result_large_err)]
pub fn check_constructible_aug_par<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
) -> Result<(), ConstructibilityWitness> {
    match supervisor::check_constructible_aug_supervised(model, u, cfg, &Supervisor::none())
        .expect_complete("check_constructible_aug_par")
    {
        Some(w) => Err(w),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AnyObserver, Lc, Model, Nn, Sc};
    use crate::observer::ObserverFunction;
    use crate::props::{check_complete, check_constructible_aug, check_monotonic};
    use crate::relation::compare;

    fn assert_same_comparison(serial: &Comparison, par: &Comparison) {
        assert_eq!(serial.relation, par.relation);
        assert_eq!(serial.both, par.both);
        assert_eq!(serial.a_total, par.a_total);
        assert_eq!(serial.b_total, par.b_total);
        assert_eq!(serial.pairs_checked, par.pairs_checked);
        let same_pair = |x: &Option<(Computation, ObserverFunction)>,
                         y: &Option<(Computation, ObserverFunction)>| {
            match (x, y) {
                (None, None) => true,
                (Some((c1, p1)), Some((c2, p2))) => c1 == c2 && p1 == p2,
                _ => false,
            }
        };
        assert!(same_pair(&serial.a_only, &par.a_only), "a_only witness differs");
        assert!(same_pair(&serial.b_only, &par.b_only), "b_only witness differs");
    }

    #[test]
    fn compare_par_is_bit_identical_to_serial() {
        let u = Universe::new(3, 1);
        for threads in [1, 2, 4, 7] {
            let cfg = SweepConfig::with_threads(threads);
            for (a, b) in [
                (Model::Lc, Model::Nn),
                (Model::Nn, Model::Lc),
                (Model::Sc, Model::Any),
                (Model::Nw, Model::Wn),
            ] {
                let serial = compare(&a, &b, &u);
                let par = compare_par(&a, &b, &u, &cfg);
                assert_same_comparison(&serial, &par);
            }
        }
    }

    #[test]
    fn compare_par_two_locations() {
        let u = Universe::new(3, 2);
        let serial = compare(&Sc, &Lc, &u);
        let par = compare_par(&Sc, &Lc, &u, &SweepConfig::with_threads(3));
        assert_same_comparison(&serial, &par);
    }

    #[test]
    fn relation_par_matches_compare() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(4);
        for (a, b) in [
            (Model::Sc, Model::Lc),
            (Model::Lc, Model::Ww),
            (Model::Ww, Model::Lc),
            (Model::Nw, Model::Wn),
        ] {
            assert_eq!(relation_par(&a, &b, &u, &cfg), compare(&a, &b, &u).relation);
        }
    }

    #[test]
    fn lattice_par_matches_serial_lattice() {
        let u = Universe::new(2, 1);
        let models = [Model::Sc, Model::Lc, Model::Nn, Model::Ww];
        let serial = crate::relation::lattice(&models, &u);
        let par = lattice_par(&models, &u, &SweepConfig::with_threads(4));
        for (sr, pr) in serial.iter().zip(&par) {
            assert_eq!(sr.name, pr.name);
            assert_eq!(sr.relations, pr.relations);
        }
    }

    #[test]
    fn parallel_props_agree_with_serial_on_passing_models() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(4);
        for m in [Model::Sc, Model::Lc, Model::Nn, Model::Ww] {
            assert_eq!(check_complete(&m, &u).is_ok(), check_complete_par(&m, &u, &cfg).is_ok());
            assert_eq!(check_monotonic(&m, &u).is_ok(), check_monotonic_par(&m, &u, &cfg).is_ok());
            assert_eq!(
                check_constructible_aug(&m, &u).is_ok(),
                check_constructible_aug_par(&m, &u, &cfg).is_ok()
            );
        }
    }

    #[test]
    fn parallel_constructibility_witness_matches_serial() {
        // NN fails constructibility at the 5-node bound; the parallel
        // search must return the exact witness the serial scan finds.
        let u = Universe::new(5, 1);
        let serial =
            check_constructible_aug(&Nn::default(), &u).expect_err("NN is not constructible");
        let par = check_constructible_aug_par(&Nn::default(), &u, &SweepConfig::with_threads(4))
            .expect_err("NN is not constructible (parallel)");
        assert_eq!(serial.c, par.c);
        assert_eq!(serial.phi, par.phi);
        assert_eq!(serial.extension, par.extension);
        assert_eq!(serial.op, par.op);
    }

    #[test]
    fn sweep_computations_counts_the_universe() {
        let u = Universe::new(3, 1);
        for threads in [1, 2, 4, 7] {
            let counts = sweep_computations(
                &u,
                &SweepConfig::with_threads(threads),
                || 0usize,
                |acc, _, _, _| *acc += 1,
            )
            .expect_complete("counting sweep");
            assert_eq!(counts.iter().sum::<usize>(), u.count_computations());
        }
    }

    #[test]
    fn canonical_weighted_counts_recover_closed_form() {
        // Orbit-weighted totals must equal the labelled universe size
        // *exactly*, at every bound and with a multi-location alphabet
        // (exercising the location quotient), at several thread counts.
        for (nodes, locs) in [(1, 1), (2, 1), (3, 1), (4, 1), (2, 2), (3, 2)] {
            let u = Universe::new(nodes, locs);
            for threads in [1, 2, 4] {
                let cfg = SweepConfig::with_threads(threads).canonical(true);
                let weighted =
                    sweep_computations(&u, &cfg, || 0u128, |acc, _, _, w| *acc += w as u128)
                        .expect_complete("weighted sweep");
                assert_eq!(
                    weighted.iter().sum::<u128>(),
                    u.count_computations_closed(),
                    "bound {nodes}, {locs} locations, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn unsupervised_panic_degrades_with_surviving_witnesses() {
        // A panicking task on the plain `sweep_computations` path must
        // quarantine and degrade — not abort the process — with every
        // other task's accumulator intact, serial and parallel alike.
        let u = Universe::new(3, 1);
        let clean = sweep_computations(
            &u,
            &SweepConfig::serial(),
            || (0usize, 0usize),
            |acc, idx, _, _| {
                acc.0 += 1;
                if idx == 1 {
                    acc.1 += 1;
                }
            },
        )
        .expect_complete("clean sweep");
        let total: usize = clean.iter().map(|(n, _)| n).sum();
        let task1: usize = clean.iter().map(|(_, n)| n).sum();
        assert!(task1 > 0, "task 1 does real work at this bound");
        for threads in [1, 2, 4] {
            let out = sweep_computations(
                &u,
                &SweepConfig::with_threads(threads),
                || 0usize,
                |acc, idx, _, _| {
                    assert!(idx != 1, "task 1 always panics");
                    *acc += 1;
                },
            );
            assert_eq!(out.status, supervisor::SweepStatus::Degraded, "{threads} threads");
            assert_eq!(out.quarantined.len(), 1);
            assert_eq!(out.quarantined[0].task_idx, 1);
            assert!(out.quarantined[0].payload.contains("always panics"));
            assert!(!out.frontier.contains(1));
            assert_eq!(out.frontier.len(), out.total_tasks - 1);
            assert_eq!(out.value.iter().sum::<usize>(), total - task1);
        }
    }

    #[test]
    fn canonical_compare_is_bit_identical_to_labelled() {
        // Same totals, same witnesses — including with two locations,
        // where the location quotient is non-trivial.
        for (nodes, locs) in [(3, 1), (3, 2)] {
            let u = Universe::new(nodes, locs);
            for threads in [1, 2, 4] {
                let cfg = SweepConfig::with_threads(threads).canonical(true);
                for (a, b) in [(Model::Lc, Model::Nn), (Model::Sc, Model::Lc)] {
                    let serial = compare(&a, &b, &u);
                    let canonical = compare_par(&a, &b, &u, &cfg);
                    assert_same_comparison(&serial, &canonical);
                }
            }
        }
    }

    #[test]
    fn canonical_witness_checks_match_labelled() {
        let u = Universe::new(4, 1);
        let cfg = SweepConfig::with_threads(2).canonical(true);
        // NN is complete and monotonic at this bound; WN fails
        // constructibility with a specific witness the canonical search
        // must reproduce exactly.
        assert!(check_complete_par(&Model::Nn, &u, &cfg).is_ok());
        assert!(check_monotonic_par(&Model::Nn, &u, &cfg).is_ok());
        let u5 = Universe::new(5, 1);
        let serial =
            check_constructible_aug(&Nn::default(), &u5).expect_err("NN is not constructible");
        let canonical = check_constructible_aug_par(&Nn::default(), &u5, &cfg)
            .expect_err("NN is not constructible (canonical)");
        assert_eq!(serial.c, canonical.c);
        assert_eq!(serial.phi, canonical.phi);
        assert_eq!(serial.extension, canonical.extension);
        assert_eq!(serial.op, canonical.op);
    }

    #[test]
    fn location_digit_maps_group_properties() {
        let u = Universe::new(2, 2);
        let alphabet = u.alphabet();
        let maps = location_digit_maps(&alphabet, 2);
        assert_eq!(maps.len(), 2, "S_2 has two elements");
        // Each map is a permutation of alphabet indices fixing Nop.
        for m in &maps {
            let mut seen = vec![false; alphabet.len()];
            for &i in m {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(m[0], 0, "Nop is fixed");
        }
        // Labelled mode: identity only.
        let id = maps_for(&u, &SweepConfig::serial(), &alphabet);
        assert_eq!(id, vec![(0..alphabet.len()).collect::<Vec<_>>()]);
    }

    #[test]
    fn config_env_and_constructors() {
        assert_eq!(SweepConfig::serial().threads, 1);
        assert_eq!(SweepConfig::with_threads(7).threads, 7);
        assert!(SweepConfig::from_env().threads >= 1);
    }

    #[test]
    fn relation_par_early_exit_on_incomparable() {
        // NW ∥ WN needs 4-node computations (Figure 1); with witnesses in
        // both directions the sweep can stop early yet must still say
        // Incomparable.
        let u = Universe::new(4, 1);
        let r = relation_par(&Model::Nw, &Model::Wn, &u, &SweepConfig::with_threads(2));
        assert_eq!(r, Relation::Incomparable);
        // And Equal when comparing a model to itself.
        let u3 = Universe::new(3, 1);
        assert_eq!(
            relation_par(&AnyObserver, &AnyObserver, &u3, &SweepConfig::with_threads(2)),
            Relation::Equal
        );
    }
}
