//! The online consistency game (Section 3's motivation, played out).
//!
//! "Suppose that, instead of being given completely at the beginning of
//! an execution, a computation is revealed one node at a time by an
//! adversary. … Constructibility says that this situation cannot happen:
//! if Φ is a valid observer function in a constructible model, then there
//! is always a way to extend Φ."
//!
//! An [`OnlineSession`] is that game: the adversary calls
//! [`OnlineSession::reveal`] with each new node's predecessors and op;
//! the session greedily commits an observation row keeping the cumulative
//! pair inside its model. For a **constructible** model any
//! membership-preserving choice works — the session can never jam. For a
//! nonconstructible model (NN, NW, WN) greedy play walks into traps:
//! revealing Figure 4 jams a greedy NN session, and no finite lookahead
//! fully saves it (a lookahead-∞ NN player *is* an LC player, by
//! Theorem 23).

use crate::computation::Computation;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use crate::op::Op;
use ccmm_dag::NodeId;

/// The online algorithm is stuck: no observation row for the newly
/// revealed node keeps the pair in the model.
#[derive(Clone, Debug)]
pub struct Stuck {
    /// The computation including the unplaceable node.
    pub computation: Computation,
    /// The committed observer function on the prefix.
    pub prefix_phi: ObserverFunction,
    /// The op of the node that could not be placed.
    pub op: Op,
}

impl std::fmt::Display for Stuck {
    /// A fixed-size summary: node/op counts plus at most
    /// [`Stuck::MAX_FRONTIER_SHOWN`] frontier nodes. Debug-printing the
    /// whole computation and observer here made every jam message O(L·n)
    /// — at streaming scale, megabytes per line. The full witness stays
    /// in the struct fields for programmatic consumers.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = &self.computation;
        let (mut writes, mut reads) = (0usize, 0usize);
        for op in c.ops() {
            match op {
                Op::Write(_) => writes += 1,
                Op::Read(_) => reads += 1,
                Op::Nop => {}
            }
        }
        write!(
            f,
            "online algorithm stuck placing {} ({} nodes: {writes} writes, {reads} reads over {} locations; frontier",
            self.op,
            c.node_count(),
            c.num_locations(),
        )?;
        let leaves = c.dag().leaves();
        for u in leaves.iter().take(Self::MAX_FRONTIER_SHOWN) {
            write!(f, " {u}:{}", c.op(*u))?;
        }
        if leaves.len() > Self::MAX_FRONTIER_SHOWN {
            write!(f, " …+{}", leaves.len() - Self::MAX_FRONTIER_SHOWN)?;
        }
        write!(f, ")")
    }
}

impl Stuck {
    /// Frontier nodes shown by the `Display` summary.
    pub const MAX_FRONTIER_SHOWN: usize = 8;
}

impl std::error::Error for Stuck {}

/// A running online game for model `M`.
pub struct OnlineSession<M> {
    model: M,
    /// Lookahead depth: a candidate row must survive this many steps of
    /// the exact extension test before being committed. 0 = pure greedy.
    pub lookahead: usize,
    /// Alphabet used for lookahead probing.
    alphabet: Vec<Op>,
    c: Computation,
    phi: ObserverFunction,
    /// Memoized checker working memory, reused across reveals.
    scratch: crate::model::CheckScratch,
    /// Set on the first jam: the session is poisoned — further reveals
    /// return the same [`Stuck`] without touching the committed state,
    /// which stays queryable (the last good prefix).
    jammed: Option<Stuck>,
}

impl<M: MemoryModel> OnlineSession<M> {
    /// Starts a session on the empty computation. `num_locations` sets
    /// the alphabet used by lookahead probing.
    pub fn new(model: M, num_locations: usize) -> Self {
        OnlineSession {
            model,
            lookahead: 0,
            alphabet: Op::all(num_locations),
            c: Computation::empty(),
            phi: ObserverFunction::empty(),
            scratch: crate::model::CheckScratch::new(),
            jammed: None,
        }
    }

    /// Sets the lookahead depth (builder style).
    pub fn with_lookahead(mut self, k: usize) -> Self {
        self.lookahead = k;
        self
    }

    /// The computation revealed so far.
    pub fn computation(&self) -> &Computation {
        &self.c
    }

    /// The observation rows committed so far.
    pub fn observer(&self) -> &ObserverFunction {
        &self.phi
    }

    /// Has a previous reveal jammed? A jammed session is poisoned: it
    /// refuses further reveals (returning the original [`Stuck`]) but the
    /// committed prefix stays queryable via [`computation`](Self::computation)
    /// and [`observer`](Self::observer).
    pub fn is_jammed(&self) -> bool {
        self.jammed.is_some()
    }

    /// The jam that poisoned this session, if any.
    pub fn jam(&self) -> Option<&Stuck> {
        self.jammed.as_ref()
    }

    /// The adversary reveals one node. The session extends the
    /// computation, searches for an observation row for the new node that
    /// keeps (C, Φ) in the model (and, with lookahead, survivable), and
    /// commits the first one found.
    ///
    /// Returns the committed row (one entry per location of the extended
    /// computation), or [`Stuck`].
    ///
    /// ```
    /// use ccmm_core::online::OnlineSession;
    /// use ccmm_core::{Lc, Location, Op};
    /// use ccmm_dag::NodeId;
    ///
    /// let mut game = OnlineSession::new(Lc, 1);
    /// game.reveal(&[], Op::Write(Location::new(0))).unwrap();
    /// let row = game.reveal(&[NodeId::new(0)], Op::Read(Location::new(0))).unwrap();
    /// // LC never jams (Theorem 19), and the committed row is in range.
    /// assert!(row[0].is_none() || row[0] == Some(NodeId::new(0)));
    /// ```
    // Witness-rich error types are the point of these APIs.
    #[allow(clippy::result_large_err)]
    pub fn reveal(&mut self, preds: &[NodeId], op: Op) -> Result<Vec<Option<NodeId>>, Stuck> {
        if let Some(jam) = &self.jammed {
            return Err(jam.clone());
        }
        let old_locs = self.phi.num_locations();
        let new = self.grow(preds, op);
        // Fast path: extend everything in place and commit the *first*
        // admissible row (identical to what `reveal_choose(.., |_| 0)`
        // would pick — the enumeration order is the same), early-exiting
        // instead of collecting and cloning every admissible Φ.
        let OnlineSession { model, lookahead, alphabet, c, phi, scratch, .. } = self;
        let c: &Computation = c;
        let found = crate::props::any_extension_in_place(c, phi, |phi2| {
            crate::telemetry::count(crate::telemetry::Counter::OnlineProbes, 1);
            model.contains_incremental(c, phi2, new, scratch)
                && (*lookahead == 0
                    || crate::constructible::survives_lookahead(
                        model, c, phi2, *lookahead, alphabet,
                    ))
        });
        if !found {
            return Err(self.jam_now(op, old_locs));
        }
        crate::telemetry::count(crate::telemetry::Counter::OnlineReveals, 1);
        Ok(self.c.locations().map(|l| self.phi.get(l, new)).collect())
    }

    /// Extends the committed state in place by one node: dag, closure,
    /// write index, and an all-⊥ observer column (plus location rows if
    /// the op names a new location).
    fn grow(&mut self, preds: &[NodeId], op: Op) -> NodeId {
        let new = self.c.push(preds, op).expect("extension preds in range");
        self.phi.push_node();
        let locs = self.c.num_locations();
        if locs > self.phi.num_locations() {
            let missing = locs - self.phi.num_locations();
            self.phi.push_locations(missing);
        }
        new
    }

    /// Rolls back the in-place extension after a failed reveal and
    /// poisons the session. The extended computation is cloned once into
    /// the witness; the committed state returns to the last good prefix.
    fn jam_now(&mut self, op: Op, old_locs: usize) -> Stuck {
        crate::telemetry::count(crate::telemetry::Counter::OnlineJams, 1);
        let extended = self.c.clone();
        self.c.pop_last();
        self.phi.pop_node();
        self.phi.truncate_locations(old_locs);
        let stuck = Stuck { computation: extended, prefix_phi: self.phi.clone(), op };
        self.jammed = Some(stuck.clone());
        stuck
    }

    /// Like [`reveal`](Self::reveal), but the caller picks among *all*
    /// admissible observer functions for the extended computation —
    /// `chooser` receives the candidates and returns an index. This is
    /// how the tests (and experiment E4's online demonstration) drive a
    /// membership-preserving but short-sighted NN player into the
    /// Figure-4 corner: every individual choice keeps NN, yet the chosen
    /// state has no future.
    // Witness-rich error types are the point of these APIs.
    #[allow(clippy::result_large_err)]
    pub fn reveal_choose<F>(
        &mut self,
        preds: &[NodeId],
        op: Op,
        chooser: F,
    ) -> Result<Vec<Option<NodeId>>, Stuck>
    where
        F: FnOnce(&[ObserverFunction]) -> usize,
    {
        if let Some(jam) = &self.jammed {
            return Err(jam.clone());
        }
        let old_locs = self.phi.num_locations();
        let new = self.grow(preds, op);
        let mut admissible: Vec<ObserverFunction> = Vec::new();
        {
            let OnlineSession { model, lookahead, alphabet, c, phi, scratch, .. } = self;
            let c: &Computation = c;
            let _ = crate::props::any_extension_in_place(c, phi, |phi2| {
                crate::telemetry::count(crate::telemetry::Counter::OnlineProbes, 1);
                let ok = model.contains_incremental(c, phi2, new, scratch)
                    && (*lookahead == 0
                        || crate::constructible::survives_lookahead(
                            model, c, phi2, *lookahead, alphabet,
                        ));
                if ok {
                    admissible.push(phi2.clone());
                }
                false // keep enumerating: collect every admissible row
            });
        }
        if admissible.is_empty() {
            return Err(self.jam_now(op, old_locs));
        }
        crate::telemetry::count(crate::telemetry::Counter::OnlineReveals, 1);
        let idx = chooser(&admissible).min(admissible.len() - 1);
        self.phi = admissible.swap_remove(idx);
        Ok(self.c.locations().map(|l| self.phi.get(l, new)).collect())
    }

    /// Replays a whole computation through the session in node order
    /// (nodes must be topologically numbered, as all our constructors
    /// guarantee). Returns the final observer function or the first jam.
    // Witness-rich error types are the point of these APIs.
    #[allow(clippy::result_large_err)]
    pub fn replay(mut self, c: &Computation) -> Result<ObserverFunction, Stuck> {
        for u in c.nodes() {
            let preds: Vec<NodeId> = c.dag().predecessors(u).to_vec();
            self.reveal(&preds, c.op(u))?;
        }
        Ok(self.phi)
    }
}

/// Convenience: can greedy play for `model` survive revealing `c` node by
/// node (with the given lookahead)?
pub fn greedy_survives<M: MemoryModel>(model: M, c: &Computation, lookahead: usize) -> bool {
    OnlineSession::new(model, c.num_locations()).with_lookahead(lookahead).replay(c).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, Nn, Sc, Ww};
    use crate::op::Location;

    fn l(i: usize) -> Location {
        Location::new(i)
    }

    #[test]
    fn session_tracks_revealed_computation() {
        let mut s = OnlineSession::new(Lc, 1);
        let row = s.reveal(&[], Op::Write(l(0))).unwrap();
        assert_eq!(row, vec![Some(NodeId::new(0))]);
        let row = s.reveal(&[NodeId::new(0)], Op::Read(l(0))).unwrap();
        // Greedy LC picks the first candidate the enumerator offers.
        assert!(row[0].is_none() || row[0] == Some(NodeId::new(0)));
        assert_eq!(s.computation().node_count(), 2);
        assert!(Lc.contains(s.computation(), s.observer()));
    }

    #[test]
    fn greedy_nn_jams_on_figure_4() {
        // Reveal A, B (parallel writes), then C observing... the greedy
        // session picks rows itself; to force the crossing we reveal C
        // and D and check whether ANY play survives F. Greedy may or may
        // not pick the trap — so instead drive the exact Figure-4 prefix
        // through `replay` and at least one reveal order must jam a
        // 0-lookahead NN session *if greedy happens to cross*. The robust
        // statement: the Figure-4 pair itself cannot place F.
        let w = crate::witness::figure4_prefix();
        let full = crate::witness::figure4_full(Op::Read(l(0)));
        let stuck =
            !crate::props::any_extension(&full, &w.phi, |p| Nn::default().contains(&full, p));
        assert!(stuck);
        // And a greedy session with lookahead 1 refuses the trap early:
        // after revealing A, B, C(obs A), it will never commit D → B.
        let mut s = OnlineSession::new(Nn::default(), 1).with_lookahead(1);
        s.reveal(&[], Op::Write(l(0))).unwrap(); // A = n0
        s.reveal(&[], Op::Write(l(0))).unwrap(); // B = n1
        let row_c = s.reveal(&[NodeId::new(0), NodeId::new(1)], Op::Read(l(0))).unwrap();
        let row_d = s.reveal(&[NodeId::new(0), NodeId::new(1)], Op::Read(l(0))).unwrap();
        // The two reads must NOT observe different writes (the crossing
        // is exactly what lookahead-1 rejects).
        assert!(
            !(row_c[0] != row_d[0] && row_c[0].is_some() && row_d[0].is_some()),
            "lookahead-1 NN committed the Figure-4 trap: {row_c:?} vs {row_d:?}"
        );
        // It can still finish the computation.
        s.reveal(&[NodeId::new(2), NodeId::new(3)], Op::Read(l(0))).unwrap();
    }

    #[test]
    fn greedy_constructible_models_never_jam_on_random_reveals() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..30 {
            let dag = ccmm_dag::generate::gnp_dag(8, 0.3, &mut rng);
            let ops: Vec<Op> = (0..8)
                .map(|i| match i % 3 {
                    0 => Op::Write(l(i % 2)),
                    1 => Op::Read(l((i + 1) % 2)),
                    _ => Op::Nop,
                })
                .collect();
            let c = Computation::new(dag, ops).unwrap();
            assert!(greedy_survives(Lc, &c, 0), "greedy LC jammed on {c:?}");
            assert!(greedy_survives(Sc, &c, 0), "greedy SC jammed on {c:?}");
            assert!(greedy_survives(Ww::default(), &c, 0), "greedy WW jammed on {c:?}");
        }
    }

    #[test]
    fn short_sighted_nn_player_jams_on_figure_4_reveals() {
        // Every individual choice below keeps the pair in NN; the
        // *crossing* choice for D (pick the candidate observing the other
        // writer) leads to a state from which the final read cannot be
        // placed — the online face of nonconstructibility.
        let mut s = OnlineSession::new(Nn::default(), 1);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        s.reveal(&[], Op::Write(l(0))).unwrap(); // A
        s.reveal(&[], Op::Write(l(0))).unwrap(); // B
                                                 // C observes A (chooser: find the candidate whose new row is A).
        s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
            cands
                .iter()
                .position(|p| p.get(l(0), NodeId::new(2)) == Some(a))
                .expect("observing A keeps NN")
        })
        .unwrap();
        // D observes B — NN-consistent (no path relates C and D)...
        s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
            cands
                .iter()
                .position(|p| p.get(l(0), NodeId::new(3)) == Some(b))
                .expect("observing B keeps NN")
        })
        .unwrap();
        assert!(Nn::default().contains(s.computation(), s.observer()));
        // ...but not LC: the session has left the constructible core.
        assert!(!Lc.contains(s.computation(), s.observer()));
        // The adversary now reveals F after C and D: jam.
        let err = s
            .reveal(&[NodeId::new(2), NodeId::new(3)], Op::Read(l(0)))
            .expect_err("Figure 4 says this placement is impossible");
        assert_eq!(err.op, Op::Read(l(0)));
        assert_eq!(err.computation.node_count(), 5);
    }

    #[test]
    fn greedy_nn_jams_only_from_outside_lc() {
        // Theorem 23's online reading: LC states always extend (LC is
        // constructible and ⊆ NN), so whenever a membership-preserving NN
        // session jams, the state it jammed from must already have left
        // LC. Verify over random reveals, and record that greedy-first NN
        // does escape LC in practice (the crossing is sometimes the first
        // admissible row).
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut left_lc = 0;
        let mut jams = 0;
        // 200 rounds: the escape event is RNG-stream-dependent, and the
        // vendored StdRng (xoshiro256++) walks a different stream than
        // upstream's ChaCha; a wider net keeps the check robust.
        for _ in 0..200 {
            let dag = ccmm_dag::generate::gnp_dag(7, 0.35, &mut rng);
            let ops: Vec<Op> =
                (0..7).map(|i| if i < 3 { Op::Write(l(0)) } else { Op::Read(l(0)) }).collect();
            let c = Computation::new(dag, ops).unwrap();
            let mut s = OnlineSession::new(Nn::default(), 1);
            let mut was_in_lc = true;
            for u in c.nodes() {
                let preds: Vec<NodeId> = c.dag().predecessors(u).to_vec();
                match s.reveal(&preds, c.op(u)) {
                    Ok(_) => {
                        let in_lc = Lc.contains(s.computation(), s.observer());
                        if !in_lc {
                            left_lc += 1;
                        }
                        was_in_lc = in_lc;
                    }
                    Err(_) => {
                        jams += 1;
                        assert!(
                            !was_in_lc,
                            "an NN session jammed from *inside* LC on {c:?} — \
                             contradicts LC's constructibility"
                        );
                        break;
                    }
                }
            }
        }
        assert!(left_lc > 0, "expected greedy-first NN to escape LC somewhere");
        // Jams may or may not occur depending on what the adversary
        // reveals after the escape; both outcomes are consistent.
        let _ = jams;
    }

    /// Drives an NN session into the Figure-4 trap (same reveal sequence
    /// as `short_sighted_nn_player_jams_on_figure_4_reveals`) and returns
    /// it jammed.
    fn jammed_nn_session() -> OnlineSession<Nn> {
        let mut s = OnlineSession::new(Nn::default(), 1);
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        s.reveal(&[], Op::Write(l(0))).unwrap();
        s.reveal(&[], Op::Write(l(0))).unwrap();
        s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
            cands.iter().position(|p| p.get(l(0), NodeId::new(2)) == Some(a)).unwrap()
        })
        .unwrap();
        s.reveal_choose(&[a, b], Op::Read(l(0)), |cands| {
            cands.iter().position(|p| p.get(l(0), NodeId::new(3)) == Some(b)).unwrap()
        })
        .unwrap();
        s.reveal(&[NodeId::new(2), NodeId::new(3)], Op::Read(l(0))).unwrap_err();
        s
    }

    #[test]
    fn jammed_session_is_poisoned_but_queryable() {
        let s = jammed_nn_session();
        assert!(s.is_jammed());
        // The committed state is the last good 4-node prefix — the
        // unplaceable node was never committed — and it is still in NN.
        assert_eq!(s.computation().node_count(), 4);
        assert!(Nn::default().contains(s.computation(), s.observer()));
        // The stored jam carries the full witness.
        let jam = s.jam().expect("jam witness retained");
        assert_eq!(jam.op, Op::Read(l(0)));
        assert_eq!(jam.computation.node_count(), 5);
    }

    #[test]
    fn reveal_after_jam_returns_the_jam_without_panicking() {
        let mut s = jammed_nn_session();
        let before = s.computation().clone();
        // A fresh reveal — even one that would be trivially placeable on
        // a healthy session — is refused with the original jam.
        let err = s.reveal(&[], Op::Nop).expect_err("poisoned session must refuse reveals");
        assert_eq!(err.op, Op::Read(l(0)), "the *original* jam is returned");
        assert_eq!(err.computation.node_count(), 5);
        // State untouched: still the 4-node prefix, still queryable.
        assert_eq!(s.computation().node_count(), before.node_count());
        assert!(s.is_jammed());
        // And a second refused reveal behaves identically (no panic, no
        // state drift).
        let err2 = s.reveal(&[NodeId::new(0)], Op::Read(l(0))).unwrap_err();
        assert_eq!(err2.op, err.op);
        assert_eq!(s.computation().node_count(), 4);
    }

    #[test]
    fn healthy_session_reports_not_jammed() {
        let mut s = OnlineSession::new(Lc, 1);
        assert!(!s.is_jammed());
        assert!(s.jam().is_none());
        s.reveal(&[], Op::Write(l(0))).unwrap();
        assert!(!s.is_jammed());
    }

    #[test]
    fn stuck_error_is_informative() {
        let w = crate::witness::figure4_prefix();
        // Build a session that *is* in the trap state by replaying the
        // exact prefix pair: commit rows matching the witness by
        // controlling candidate order is fragile, so instead assert the
        // Stuck display formatting on a synthetic value.
        let stuck = Stuck {
            computation: w.computation.clone(),
            prefix_phi: w.phi.clone(),
            op: Op::Read(l(0)),
        };
        let msg = stuck.to_string();
        assert!(msg.contains("stuck placing R(l0)"));
    }

    #[test]
    fn stuck_display_is_bounded_on_large_computations() {
        // A 400-node antichain of writes: the old Display debug-printed
        // the whole computation and observer (O(L·n) characters); the
        // summary must stay fixed-size with counts and a capped frontier.
        let n = 400;
        let ops: Vec<Op> = (0..n).map(|_| Op::Write(l(0))).collect();
        let c = Computation::from_edges(n, &[], ops);
        let stuck = Stuck {
            computation: c,
            prefix_phi: crate::observer::ObserverFunction::bottom(1, n),
            op: Op::Read(l(0)),
        };
        let msg = stuck.to_string();
        assert!(msg.contains("stuck placing R(l0)"), "{msg}");
        assert!(msg.contains("400 nodes"), "{msg}");
        assert!(msg.contains(&format!("…+{}", n - Stuck::MAX_FRONTIER_SHOWN)), "{msg}");
        assert!(msg.len() < 300, "Display must stay fixed-size, got {} chars: {msg}", msg.len());
    }

    #[test]
    fn reveal_and_reveal_choose_commit_identical_rows() {
        // The early-exit fast path must commit exactly the row the
        // collect-all path's index 0 denotes, for every model and a
        // non-trivial reveal sequence.
        let reveals: Vec<(Vec<usize>, Op)> = vec![
            (vec![], Op::Write(l(0))),
            (vec![], Op::Write(l(0))),
            (vec![0], Op::Read(l(0))),
            (vec![0, 1], Op::Write(l(1))),
            (vec![2, 3], Op::Read(l(1))),
            (vec![2], Op::Read(l(0))),
            (vec![4, 5], Op::Nop),
        ];
        for m in crate::model::Model::ALL {
            let mut fast = OnlineSession::new(m, 2);
            let mut slow = OnlineSession::new(m, 2);
            for (preds, op) in &reveals {
                let preds: Vec<NodeId> = preds.iter().map(|&i| NodeId::new(i)).collect();
                let a = fast.reveal(&preds, *op).unwrap();
                let b = slow.reveal_choose(&preds, *op, |_| 0).unwrap();
                assert_eq!(a, b, "model {m}: fast path diverged from collect-all index 0");
            }
            assert_eq!(fast.observer(), slow.observer(), "model {m}");
            assert_eq!(fast.computation(), slow.computation(), "model {m}");
        }
    }
}
