//! Bounded universes of computations.
//!
//! To machine-check a universally quantified claim ("for all computations
//! …") we enumerate *every* computation up to a node budget: all naturally
//! labelled posets (see `ccmm_dag::poset` for why natural labellings
//! suffice) crossed with all op labellings over a location alphabet.
//!
//! Universe sizes grow fast — `Universe::new(4, 1)` has 3,451
//! computations, `Universe::new(5, 1)` has 90,202 — so drivers choose the
//! budget per experiment.

use crate::computation::Computation;
use crate::op::Op;
use ccmm_dag::poset::for_each_poset;
use std::ops::ControlFlow;

/// A bounded universe: all computations with at most `max_nodes` nodes
/// whose ops range over `num_locations` locations (plus `N` if
/// `include_nop`).
#[derive(Clone, Copy, Debug)]
pub struct Universe {
    /// Maximum number of nodes (inclusive).
    pub max_nodes: usize,
    /// Number of locations in the op alphabet.
    pub num_locations: usize,
    /// Whether the no-op `N` is in the alphabet.
    pub include_nop: bool,
}

impl Universe {
    /// A universe with the full alphabet (reads, writes, and `N`).
    pub fn new(max_nodes: usize, num_locations: usize) -> Self {
        Universe { max_nodes, num_locations, include_nop: true }
    }

    /// The op alphabet.
    pub fn alphabet(&self) -> Vec<Op> {
        let mut ops = Op::all(self.num_locations);
        if !self.include_nop {
            ops.retain(|o| *o != Op::Nop);
        }
        ops
    }

    /// Calls `f` with every computation of exactly `n` nodes. Dags are
    /// transitive closures (every precedence pair is an edge). Break to
    /// stop early.
    pub fn for_each_computation_of_size<F>(&self, n: usize, f: &mut F) -> ControlFlow<()>
    where
        F: FnMut(&Computation) -> ControlFlow<()>,
    {
        let alphabet = self.alphabet();
        let mut flow = ControlFlow::Continue(());
        for_each_poset(n, |dag| {
            if flow.is_break() {
                return;
            }
            // All op labellings: n-digit counter in base |alphabet|.
            let k = alphabet.len();
            let mut digits = vec![0usize; n];
            loop {
                let ops: Vec<Op> = digits.iter().map(|&d| alphabet[d]).collect();
                let c = Computation::new(dag.clone(), ops).expect("labelling has one op per node");
                if f(&c).is_break() {
                    flow = ControlFlow::Break(());
                    return;
                }
                // Increment.
                let mut i = 0;
                loop {
                    if i == n {
                        return; // all labellings of this dag done
                    }
                    digits[i] += 1;
                    if digits[i] < k {
                        break;
                    }
                    digits[i] = 0;
                    i += 1;
                }
            }
        });
        flow
    }

    /// Calls `f` with every computation of size `0..=max_nodes`.
    pub fn for_each_computation<F>(&self, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(&Computation) -> ControlFlow<()>,
    {
        for n in 0..=self.max_nodes {
            self.for_each_computation_of_size(n, &mut f)?;
        }
        ControlFlow::Continue(())
    }

    /// Collects all computations (small budgets only).
    pub fn computations(&self) -> Vec<Computation> {
        let mut out = Vec::new();
        let _ = self.for_each_computation(|c| {
            out.push(c.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Number of computations in the universe.
    pub fn count_computations(&self) -> usize {
        let mut count = 0;
        let _ = self.for_each_computation(|_| {
            count += 1;
            ControlFlow::Continue(())
        });
        count
    }

    /// Number of computations in the universe, in closed form: the
    /// labellings of a size-`n` poset are independent of its shape, so
    /// the universe holds `Σₙ count_posets(n) · kⁿ` computations for an
    /// alphabet of `k` ops. Counts posets without building any dag and
    /// never materialises a computation — sizes far beyond
    /// [`count_computations`]'s enumerative reach (and beyond `usize` on
    /// 32-bit targets, hence `u128`).
    pub fn count_computations_closed(&self) -> u128 {
        let k = self.alphabet().len() as u128;
        (0..=self.max_nodes)
            .map(|n| ccmm_dag::poset::count_posets_fast(n) as u128 * k.pow(n as u32))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Location;

    #[test]
    fn alphabet_sizes() {
        assert_eq!(Universe::new(3, 1).alphabet().len(), 3);
        assert_eq!(Universe::new(3, 2).alphabet().len(), 5);
        let no_nop = Universe { max_nodes: 3, num_locations: 1, include_nop: false };
        assert_eq!(no_nop.alphabet().len(), 2);
    }

    #[test]
    fn count_matches_posets_times_labellings() {
        // sizes 0..=3, 1 location, with nop: 1 + 1·3 + 2·9 + 7·27 = 211.
        let u = Universe::new(3, 1);
        assert_eq!(u.count_computations(), 1 + 3 + 18 + 189);
    }

    #[test]
    fn documented_size_of_4_1_universe() {
        let u = Universe::new(4, 1);
        assert_eq!(u.count_computations(), 211 + 40 * 81);
    }

    #[test]
    fn closed_form_count_matches_enumeration() {
        for max_nodes in 0..=4 {
            for num_locations in 1..=2 {
                for include_nop in [false, true] {
                    let u = Universe { max_nodes, num_locations, include_nop };
                    assert_eq!(
                        u.count_computations_closed(),
                        u.count_computations() as u128,
                        "closed form diverges at {u:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn closed_form_reaches_past_enumeration() {
        // 6-node universes are painful to enumerate but instant to count:
        // 211 + 3240 + 90_202·... — just pin the documented 5-node value
        // plus the closed-form 6-node one.
        assert_eq!(Universe::new(5, 1).count_computations_closed(), 90_202);
        let six = Universe::new(6, 1).count_computations_closed();
        assert_eq!(six, 90_202 + 4824 * 3u128.pow(6));
    }

    #[test]
    fn computations_are_distinct() {
        let u = Universe::new(3, 1);
        let all = u.computations();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn includes_expected_members() {
        let u = Universe::new(2, 1);
        let all = u.computations();
        // W -> R chain.
        let wr = Computation::from_edges(
            2,
            &[(0, 1)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0))],
        );
        assert!(all.contains(&wr));
        assert!(all.contains(&Computation::empty()));
    }

    #[test]
    fn early_exit_works() {
        let u = Universe::new(3, 1);
        let mut seen = 0;
        let flow = u.for_each_computation(|_| {
            seen += 1;
            if seen == 5 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(flow.is_break());
        assert_eq!(seen, 5);
    }

    #[test]
    fn size_restricted_enumeration() {
        let u = Universe::new(4, 1);
        let mut count = 0;
        let _ = u.for_each_computation_of_size(2, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 18);
    }
}
