//! Computations: a dag plus an op labelling (Definition 1).
//!
//! A [`Computation`] is immutable; the paper's growth operations
//! (*extension* by one node, *augmentation* per Definition 11) produce new
//! values. Reachability and the per-location write index are computed once
//! at construction, so precedence queries and "all writes to l" are cheap
//! everywhere downstream.

use crate::error::CoreError;
use crate::op::{Location, Op};
use ccmm_dag::bitset::BitSet;
use ccmm_dag::{Dag, NodeId, Reachability};

/// A computation `C = (G, op)` — Definition 1 of the paper.
#[derive(Clone)]
pub struct Computation {
    dag: Dag,
    ops: Vec<Op>,
    reach: Reachability,
    /// `writes[l]` = nodes with `op = W(l)`, ascending.
    writes: Vec<Vec<NodeId>>,
    num_locations: usize,
}

impl Computation {
    /// Builds a computation from a dag and one op per node.
    pub fn new(dag: Dag, ops: Vec<Op>) -> Result<Self, CoreError> {
        if dag.node_count() != ops.len() {
            return Err(CoreError::OpCountMismatch { nodes: dag.node_count(), ops: ops.len() });
        }
        let num_locations =
            ops.iter().filter_map(|o| o.location()).map(|l| l.index() + 1).max().unwrap_or(0);
        let mut writes = vec![Vec::new(); num_locations];
        for (i, op) in ops.iter().enumerate() {
            if let Op::Write(l) = op {
                writes[l.index()].push(NodeId::new(i));
            }
        }
        let reach = Reachability::new(&dag);
        Ok(Computation { dag, ops, reach, writes, num_locations })
    }

    /// Convenience constructor from an edge list and ops.
    pub fn from_edges(n: usize, edges: &[(usize, usize)], ops: Vec<Op>) -> Self {
        let dag = Dag::from_edges(n, edges).expect("invalid edge list");
        Computation::new(dag, ops).expect("op count mismatch")
    }

    /// The empty computation ε.
    pub fn empty() -> Self {
        Computation::new(Dag::empty(), Vec::new()).expect("empty computation is valid")
    }

    /// The underlying dag.
    #[inline]
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The precomputed precedence relation.
    #[inline]
    pub fn reach(&self) -> &Reachability {
        &self.reach
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.dag.node_count()
    }

    /// Whether this is the empty computation.
    pub fn is_empty(&self) -> bool {
        self.dag.is_empty()
    }

    /// Iterates over the nodes.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        self.dag.nodes()
    }

    /// The op at node `u`.
    #[inline]
    pub fn op(&self, u: NodeId) -> Op {
        self.ops[u.index()]
    }

    /// All ops, indexed by node.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// One more than the largest location index mentioned by any op.
    #[inline]
    pub fn num_locations(&self) -> usize {
        self.num_locations
    }

    /// Iterates over the locations `0..num_locations`.
    pub fn locations(&self) -> impl Iterator<Item = Location> {
        (0..self.num_locations).map(Location::new)
    }

    /// The nodes writing to `l`, ascending. Empty for out-of-range `l`.
    pub fn writes_to(&self, l: Location) -> &[NodeId] {
        self.writes.get(l.index()).map_or(&[], Vec::as_slice)
    }

    /// Strict precedence `u ≺ v`.
    #[inline]
    pub fn precedes(&self, u: NodeId, v: NodeId) -> bool {
        self.reach.reaches(u, v)
    }

    /// Reflexive precedence `u ⪯ v`.
    #[inline]
    pub fn precedes_eq(&self, u: NodeId, v: NodeId) -> bool {
        self.reach.reaches_eq(u, v)
    }

    /// Re-points this computation at a new dag **in place**, reusing the
    /// reachability bitset storage ([`Reachability::rebuild`]) — the sweep
    /// engine keeps one scratch `Computation` per worker and retargets it
    /// once per poset task, so reachability is computed once per (canonical)
    /// dag and shared by every op labelling of it, and the per-labelling
    /// hot loop performs no `Reachability::new`. Ops are reset to `Nop`;
    /// callers must follow with [`refresh_ops`] before use.
    ///
    /// [`refresh_ops`]: Computation::refresh_ops
    pub(crate) fn retarget(&mut self, dag: &Dag) {
        self.dag.clone_from(dag);
        self.reach.rebuild(&self.dag);
        self.ops.clear();
        self.ops.resize(self.dag.node_count(), Op::Nop);
        for w in &mut self.writes {
            w.clear();
        }
        self.num_locations = 0;
    }

    /// Replaces the op labelling **in place** (same node count), reusing
    /// the write-index storage. `writes` may keep empty trailing entries
    /// beyond `num_locations`; [`writes_to`] tolerates that, and equality,
    /// hashing, and serialization ignore derived fields entirely.
    ///
    /// [`writes_to`]: Computation::writes_to
    pub(crate) fn refresh_ops(&mut self, ops: &[Op]) {
        debug_assert_eq!(ops.len(), self.dag.node_count());
        self.ops.clear();
        self.ops.extend_from_slice(ops);
        self.num_locations =
            ops.iter().filter_map(|o| o.location()).map(|l| l.index() + 1).max().unwrap_or(0);
        for w in &mut self.writes {
            w.clear();
        }
        if self.writes.len() < self.num_locations {
            self.writes.resize(self.num_locations, Vec::new());
        }
        for (i, op) in ops.iter().enumerate() {
            if let Op::Write(l) = op {
                self.writes[l.index()].push(NodeId::new(i));
            }
        }
    }

    /// The paper's *extension* of this computation by op `o`: one new node
    /// with the given direct predecessors.
    ///
    /// Clones the entire computation and rebuilds reachability from
    /// scratch — O(n²) per call. Incremental consumers (the online game,
    /// streaming checkers) should use [`push`](Computation::push) instead.
    pub fn extend(&self, preds: &[NodeId], o: Op) -> Computation {
        crate::telemetry::count(crate::telemetry::Counter::DagClones, 1);
        let dag = self.dag.extend_with(preds).expect("extension preds in range");
        let mut ops = self.ops.clone();
        ops.push(o);
        Computation::new(dag, ops).expect("extension preserves op count")
    }

    /// The *augmented computation* `aug_o(C)` (Definition 11): a new final
    /// node, successor of every existing node, labelled `o`.
    pub fn augment(&self, o: Op) -> Computation {
        crate::telemetry::count(crate::telemetry::Counter::DagClones, 1);
        let dag = self.dag.augment();
        let mut ops = self.ops.clone();
        ops.push(o);
        Computation::new(dag, ops).expect("augmentation preserves op count")
    }

    /// Extends this computation **in place** by one node labelled `o` with
    /// the given direct predecessors: the dag gains the node, reachability
    /// is extended incrementally ([`Reachability::extend`]), and the write
    /// index and location count are updated — no clone, no closure rebuild.
    /// Amortized O(degree + n/64) per call versus O(n²) for
    /// [`extend`](Computation::extend).
    ///
    /// On error (a predecessor out of range) the computation is unchanged.
    pub fn push(&mut self, preds: &[NodeId], o: Op) -> Result<NodeId, CoreError> {
        let new = self.dag.push_node(preds).map_err(CoreError::Dag)?;
        let appended = self.reach.extend(self.dag.predecessors(new));
        debug_assert_eq!(appended, new);
        self.ops.push(o);
        if let Some(l) = o.location() {
            if l.index() >= self.num_locations {
                self.num_locations = l.index() + 1;
            }
            if self.writes.len() < self.num_locations {
                self.writes.resize(self.num_locations, Vec::new());
            }
        }
        if let Op::Write(l) = o {
            self.writes[l.index()].push(new);
        }
        Ok(new)
    }

    /// Undoes the most recent [`push`](Computation::push), restoring the
    /// previous computation (LIFO). The location count is *not* shrunk —
    /// equality, hashing, and serialization ignore derived fields, and
    /// [`writes_to`](Computation::writes_to) tolerates trailing empties.
    /// No-op on the empty computation.
    pub fn pop_last(&mut self) {
        let Some(op) = self.ops.pop() else { return };
        if let Op::Write(l) = op {
            let popped = self.writes[l.index()].pop();
            debug_assert_eq!(popped, Some(NodeId::new(self.dag.node_count() - 1)));
        }
        self.reach.shrink_last();
        self.dag.pop_node();
    }

    /// The node added by the most recent extension/augmentation — by
    /// convention the highest-indexed node (`final(C)` in Definition 11,
    /// when called on an augmented computation).
    pub fn last_node(&self) -> Option<NodeId> {
        let n = self.node_count();
        (n > 0).then(|| NodeId::new(n - 1))
    }

    /// The subcomputation induced by `keep`, renumbered densely; `None` if
    /// `keep` is not downward-closed (not a prefix). Also returns the map
    /// from new index to old node.
    pub fn prefix(&self, keep: &BitSet) -> Option<(Computation, Vec<NodeId>)> {
        if !self.dag.is_prefix_set(keep) {
            return None;
        }
        let (sub, old_of_new) = self.dag.induced_subgraph(keep);
        let ops = old_of_new.iter().map(|&u| self.ops[u.index()]).collect();
        let c = Computation::new(sub, ops).expect("induced subgraph preserves op count");
        Some((c, old_of_new))
    }

    /// All prefixes obtained by deleting exactly one maximal node, as
    /// `(prefix, deleted_node)` pairs. Deleting the highest-indexed maximal
    /// node leaves node numbering intact, but in general the prefix is
    /// renumbered; the returned map is implied by order preservation.
    pub fn one_node_prefixes(&self) -> Vec<(Computation, NodeId)> {
        let mut out = Vec::new();
        for m in self.dag.leaves() {
            let mut keep = BitSet::full(self.node_count());
            keep.remove(m.index());
            let (p, _) = self.prefix(&keep).expect("removing a maximal node keeps a prefix");
            out.push((p, m));
        }
        out
    }

    /// The computation with one dag edge removed (a one-step *relaxation*),
    /// or `None` if the edge is absent.
    pub fn without_edge(&self, u: NodeId, v: NodeId) -> Option<Computation> {
        let dag = self.dag.without_edge(u, v)?;
        Some(Computation::new(dag, self.ops.clone()).expect("relaxation preserves op count"))
    }

    /// Whether `self` is a relaxation of `other` (same nodes and ops,
    /// `E(self) ⊆ E(other)`).
    pub fn is_relaxation_of(&self, other: &Computation) -> bool {
        self.ops == other.ops && self.dag.is_relaxation_of(&other.dag)
    }

    /// Graphviz rendering with `op` labels.
    pub fn to_dot(&self, name: &str) -> String {
        ccmm_dag::dot::to_dot(&self.dag, name, |u| Some(format!("{}: {}", u, self.op(u))))
    }
}

/// Serialized form: the dag's edge list plus the op labelling (derived
/// fields are rebuilt on deserialization).
struct ComputationRepr {
    nodes: usize,
    edges: Vec<(u32, u32)>,
    ops: Vec<Op>,
}

serde::impl_serde_struct!(ComputationRepr { nodes, edges, ops });

impl serde::Serialize for Computation {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        ComputationRepr {
            nodes: self.node_count(),
            edges: self.dag.edges().map(|(u, v)| (u.0, v.0)).collect(),
            ops: self.ops.clone(),
        }
        .serialize(s)
    }
}

impl<'de> serde::Deserialize<'de> for Computation {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let repr = ComputationRepr::deserialize(d)?;
        let edges: Vec<(usize, usize)> =
            repr.edges.iter().map(|&(u, v)| (u as usize, v as usize)).collect();
        let dag = Dag::from_edges(repr.nodes, &edges).map_err(serde::de::Error::custom)?;
        Computation::new(dag, repr.ops).map_err(serde::de::Error::custom)
    }
}

impl PartialEq for Computation {
    fn eq(&self, other: &Self) -> bool {
        self.dag == other.dag && self.ops == other.ops
    }
}

impl Eq for Computation {}

impl std::hash::Hash for Computation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // The derived fields (reach, writes, num_locations) are functions
        // of (dag, ops); hashing the edge list and ops suffices.
        self.dag.node_count().hash(state);
        for (u, v) in self.dag.edges() {
            (u.index(), v.index()).hash(state);
        }
        self.ops.hash(state);
    }
}

impl std::fmt::Debug for Computation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Computation(ops=[")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}:{op}")?;
        }
        write!(f, "], edges=[")?;
        for (i, (u, v)) in self.dag.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}->{}", u.index(), v.index())?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }
    fn l(i: usize) -> Location {
        Location::new(i)
    }

    /// W(0) -> R(0) -> N chain.
    fn chain3() -> Computation {
        Computation::from_edges(
            3,
            &[(0, 1), (1, 2)],
            vec![Op::Write(l(0)), Op::Read(l(0)), Op::Nop],
        )
    }

    #[test]
    fn new_rejects_op_mismatch() {
        let dag = Dag::edgeless(2);
        assert!(matches!(
            Computation::new(dag, vec![Op::Nop]),
            Err(CoreError::OpCountMismatch { nodes: 2, ops: 1 })
        ));
    }

    #[test]
    fn empty_computation() {
        let c = Computation::empty();
        assert!(c.is_empty());
        assert_eq!(c.num_locations(), 0);
        assert_eq!(c.last_node(), None);
    }

    #[test]
    fn writes_index() {
        let c = Computation::from_edges(
            4,
            &[],
            vec![Op::Write(l(0)), Op::Write(l(1)), Op::Write(l(0)), Op::Read(l(1))],
        );
        assert_eq!(c.writes_to(l(0)), &[n(0), n(2)]);
        assert_eq!(c.writes_to(l(1)), &[n(1)]);
        assert_eq!(c.writes_to(l(5)), &[] as &[NodeId]);
        assert_eq!(c.num_locations(), 2);
    }

    #[test]
    fn precedence_queries() {
        let c = chain3();
        assert!(c.precedes(n(0), n(2)));
        assert!(!c.precedes(n(2), n(0)));
        assert!(c.precedes_eq(n(1), n(1)));
    }

    #[test]
    fn extend_appends_op() {
        let c = chain3();
        let e = c.extend(&[n(2)], Op::Read(l(0)));
        assert_eq!(e.node_count(), 4);
        assert_eq!(e.op(n(3)), Op::Read(l(0)));
        assert!(e.precedes(n(0), n(3)));
    }

    #[test]
    fn augment_matches_definition_11() {
        let c = Computation::from_edges(2, &[], vec![Op::Nop, Op::Nop]);
        let a = c.augment(Op::Write(l(0)));
        assert_eq!(a.node_count(), 3);
        let fin = a.last_node().unwrap();
        assert_eq!(a.op(fin), Op::Write(l(0)));
        assert!(a.precedes(n(0), fin));
        assert!(a.precedes(n(1), fin));
    }

    #[test]
    fn prefix_requires_downward_closure() {
        let c = chain3();
        let mut keep = BitSet::new(3);
        keep.insert(1); // missing node 0
        assert!(c.prefix(&keep).is_none());
        keep.insert(0);
        let (p, map) = c.prefix(&keep).unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(map, vec![n(0), n(1)]);
        assert_eq!(p.op(n(1)), Op::Read(l(0)));
    }

    #[test]
    fn one_node_prefixes_drop_each_maximal() {
        let c = Computation::from_edges(3, &[(0, 1), (0, 2)], vec![Op::Nop, Op::Nop, Op::Nop]);
        let ps = c.one_node_prefixes();
        assert_eq!(ps.len(), 2);
        let dropped: Vec<NodeId> = ps.iter().map(|(_, m)| *m).collect();
        assert_eq!(dropped, vec![n(1), n(2)]);
        for (p, _) in &ps {
            assert_eq!(p.node_count(), 2);
        }
    }

    #[test]
    fn relaxation_relation() {
        let c = chain3();
        let r = c.without_edge(n(0), n(1)).unwrap();
        assert!(r.is_relaxation_of(&c));
        assert!(!c.is_relaxation_of(&r));
        // Different ops are not relaxations.
        let other = Computation::from_edges(3, &[], vec![Op::Nop, Op::Nop, Op::Nop]);
        assert!(!other.is_relaxation_of(&c));
    }

    #[test]
    fn equality_and_hash_ignore_derived_fields() {
        use std::collections::HashSet;
        let a = chain3();
        let b = chain3();
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn retarget_and_refresh_match_fresh_construction() {
        // One scratch computation driven through several shapes/labellings
        // must be indistinguishable from freshly constructed values,
        // including all derived fields.
        let cases: Vec<Computation> = vec![
            chain3(),
            Computation::from_edges(2, &[], vec![Op::Write(l(1)), Op::Read(l(1))]),
            Computation::empty(),
            Computation::from_edges(
                4,
                &[(0, 1), (0, 2), (1, 3), (2, 3)],
                vec![Op::Write(l(0)), Op::Write(l(2)), Op::Read(l(2)), Op::Nop],
            ),
            Computation::from_edges(1, &[], vec![Op::Read(l(0))]),
        ];
        let mut scratch = Computation::empty();
        for fresh in &cases {
            scratch.retarget(fresh.dag());
            scratch.refresh_ops(fresh.ops());
            assert_eq!(&scratch, fresh);
            assert_eq!(scratch.num_locations(), fresh.num_locations());
            for loc in 0..4 {
                assert_eq!(scratch.writes_to(l(loc)), fresh.writes_to(l(loc)), "loc {loc}");
            }
            for u in fresh.nodes() {
                for v in fresh.nodes() {
                    assert_eq!(scratch.precedes(u, v), fresh.precedes(u, v), "{u} ≺ {v}");
                }
            }
        }
    }

    #[test]
    fn push_matches_extend_and_pop_last_undoes_it() {
        // Drive one computation through a sequence of in-place pushes and
        // compare against the clone-based extend at every step, including
        // derived state (precedence, write index, location count).
        let steps: Vec<(Vec<usize>, Op)> = vec![
            (vec![], Op::Write(l(0))),
            (vec![0], Op::Read(l(0))),
            (vec![0], Op::Write(l(2))),
            (vec![1, 2], Op::Nop),
            (vec![3], Op::Write(l(1))),
            (vec![2, 4], Op::Read(l(2))),
        ];
        let mut inc = Computation::empty();
        let mut model = Computation::empty();
        let mut snapshots = vec![inc.clone()];
        for (preds, op) in &steps {
            let preds: Vec<NodeId> = preds.iter().map(|&i| n(i)).collect();
            model = model.extend(&preds, *op);
            let new = inc.push(&preds, *op).unwrap();
            assert_eq!(Some(new), model.last_node());
            assert_eq!(inc, model);
            assert_eq!(inc.num_locations(), model.num_locations());
            for loc in 0..inc.num_locations() {
                assert_eq!(inc.writes_to(l(loc)), model.writes_to(l(loc)), "loc {loc}");
            }
            for u in model.nodes() {
                for v in model.nodes() {
                    assert_eq!(inc.precedes(u, v), model.precedes(u, v), "{u} ≺ {v}");
                }
            }
            snapshots.push(inc.clone());
        }
        // pop_last walks back through every snapshot (derived fields may
        // keep extra capacity, so compare semantically).
        for snap in snapshots.iter().rev().skip(1) {
            inc.pop_last();
            assert_eq!(&inc, snap);
            for loc in 0..snap.num_locations() {
                assert_eq!(inc.writes_to(l(loc)), snap.writes_to(l(loc)));
            }
            for u in snap.nodes() {
                for v in snap.nodes() {
                    assert_eq!(inc.precedes(u, v), snap.precedes(u, v));
                }
            }
        }
        assert!(inc.is_empty());
        inc.pop_last(); // no-op on empty
        assert!(inc.is_empty());
    }

    #[test]
    fn push_rejects_out_of_range_and_leaves_computation_unchanged() {
        let mut c = chain3();
        let before = c.clone();
        assert!(matches!(
            c.push(&[n(7)], Op::Nop),
            Err(CoreError::Dag(ccmm_dag::DagError::NodeOutOfRange { node: 7, n: 3 }))
        ));
        assert_eq!(c, before);
        assert_eq!(c.writes_to(l(0)), before.writes_to(l(0)));
    }

    #[test]
    fn dot_contains_ops() {
        let c = chain3();
        let dot = c.to_dot("c");
        assert!(dot.contains("W(l0)"));
        assert!(dot.contains("R(l0)"));
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::op::Location;

    #[test]
    fn computation_json_roundtrip() {
        let c = Computation::from_edges(
            3,
            &[(0, 1), (0, 2)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0)), Op::Nop],
        );
        let json = serde_json::to_string(&c).unwrap();
        let back: Computation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.num_locations(), 1);
        assert!(back.precedes(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn observer_json_roundtrip() {
        let c = Computation::from_edges(
            2,
            &[(0, 1)],
            vec![Op::Write(Location::new(0)), Op::Read(Location::new(0))],
        );
        let phi = crate::observer::ObserverFunction::base(&c).with(
            Location::new(0),
            NodeId::new(1),
            Some(NodeId::new(0)),
        );
        let json = serde_json::to_string(&phi).unwrap();
        let back: crate::observer::ObserverFunction = serde_json::from_str(&json).unwrap();
        assert_eq!(back, phi);
        assert!(back.is_valid_for(&c));
    }

    #[test]
    fn deserialize_rejects_cyclic_edges() {
        let bad = r#"{"nodes":2,"edges":[[0,1],[1,0]],"ops":["Nop","Nop"]}"#;
        assert!(serde_json::from_str::<Computation>(bad).is_err());
    }
}
