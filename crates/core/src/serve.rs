//! The `ccmm serve` wire protocol, verdict cache, and request handler.
//!
//! This module is the socket-free core of membership-as-a-service: the
//! framed wire format, the request/reply grammar, the hash-consing
//! verdict cache, and the per-request handler that runs every query
//! under the §8 robustness discipline (panic quarantine → a structured
//! [`Reply::Degraded`], cooperative deadlines → [`Reply::Partial`]).
//! The actual daemon (sockets, threads, admission control, drain) lives
//! in the `ccmm` facade crate's `serve` module, and the conformance
//! harness drives this handler directly so protocol + cache + checker
//! agreement is differentially tested without a network in the loop.
//!
//! # Framing
//!
//! Every message (both directions) is one *frame*: a little-endian
//! `u32` payload length followed by that many bytes of UTF-8 payload.
//! The decoder ([`FrameDecoder`]) is incremental and never trusts the
//! length prefix: a length above [`MAX_FRAME`] is reported as
//! [`FrameEvent::Oversized`] *before any allocation* and the payload
//! bytes are drained in constant space, so the connection survives an
//! attacker-controlled prefix without a `Vec::with_capacity(4 GiB)`.
//!
//! # Requests and replies
//!
//! Payloads are line-oriented text (see [`Request`] and [`Reply`]),
//! reusing [`crate::parse`]'s computation/observer format so every
//! malformed byte sequence becomes a line-numbered [`Reply::Error`]
//! instead of a panic. Verdict lines use the corpus golden spelling
//! `SC: in` / `SC: out`, so replies diff directly against
//! `corpus/golden/*`.
//!
//! # Verdict cache soundness
//!
//! Incoming pairs are hash-consed to a canonical node labelling derived
//! from [`ccmm_dag::canon`]'s lex-min ancestor-mask representative (with
//! the op/observer encoding as tie-break), so isomorphic queries share
//! one cache slot. Model membership is isomorphism-invariant (the
//! conformance harness pins this), and the cache stores only the final
//! verdict bit, so **eviction can never change an answer**: a miss
//! recomputes `contains_with`, which is bit-identical to what was
//! evicted. The cache is sharded and size-bounded with FIFO eviction;
//! `hits + misses == lookups` holds exactly (each lookup is classified
//! once, under the shard lock).

use crate::computation::Computation;
use crate::model::{CheckScratch, MemoryModel, Model};
use crate::observer::ObserverFunction;
use crate::parse::{parse_computation, parse_observer, render_computation, render_observer};
use crate::telemetry::{self, Counter};
use ccmm_dag::topo::for_each_topo_sort;
use std::collections::{HashMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Protocol identifier on the first line of every request payload.
pub const REQ_MAGIC: &str = "ccmm-req-v1";
/// Protocol identifier on the first line of every reply payload.
pub const REP_MAGIC: &str = "ccmm-rep-v1";

/// Hard cap on a frame payload. A length prefix above this is rejected
/// before any allocation and the excess bytes are skipped, not stored.
pub const MAX_FRAME: usize = 1 << 20;

/// Node-count cap on request computations: large enough for every
/// litmus shape and the bounded universes, small enough that a single
/// membership check cannot hold a worker hostage indefinitely (the
/// deadline budget covers the rest).
pub const MAX_REQUEST_NODES: usize = 64;

/// Canonicalisation cap: pairs with at most this many nodes are
/// hash-consed to their canonical labelling (linear-extension
/// enumeration is factorial, so bigger pairs cache under their literal
/// encoding instead — still sound, just no isomorphism sharing).
pub const CANON_NODE_CAP: usize = 8;

/// The six concrete models served, in corpus golden order.
pub const SERVED_MODELS: [Model; 6] =
    [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

/// splitmix64 — the same mix used by the fault plans; exposed here so
/// the client's seeded backoff jitter shares one deterministic stream
/// shape with the server's fault decisions.
pub fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Encodes one frame: `u32` LE length + payload. Panics if the payload
/// exceeds [`MAX_FRAME`] (callers construct payloads; inputs that large
/// are a caller bug, not wire data).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One decoded framing event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// A length prefix above [`MAX_FRAME`]; the payload bytes are being
    /// skipped in constant space. Reported once, when the prefix is
    /// read — before any of the payload arrives.
    Oversized {
        /// The rejected length prefix.
        len: u64,
    },
}

#[derive(Debug)]
enum DecodeState {
    Header { buf: [u8; 4], fill: usize },
    Payload { buf: Vec<u8>, need: usize },
    Skip { remaining: u64 },
}

/// Incremental frame decoder. Feed arbitrary byte chunks with
/// [`push`](FrameDecoder::push) and drain events with
/// [`next_event`](FrameDecoder::next_event). Never panics on any input,
/// never allocates more than [`MAX_FRAME`] + O(1) bytes, and keeps
/// framing sync across oversized frames (they are skipped byte-exactly,
/// so the following frame decodes normally).
#[derive(Debug)]
pub struct FrameDecoder {
    state: DecodeState,
    events: VecDeque<FrameEvent>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    pub fn new() -> Self {
        FrameDecoder {
            state: DecodeState::Header { buf: [0; 4], fill: 0 },
            events: VecDeque::new(),
        }
    }

    /// Whether the decoder sits at a frame boundary with no pending
    /// events — i.e. closing the connection now tears nothing.
    pub fn is_idle(&self) -> bool {
        matches!(&self.state, DecodeState::Header { fill: 0, .. }) && self.events.is_empty()
    }

    /// Consumes a chunk of wire bytes.
    pub fn push(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            match &mut self.state {
                DecodeState::Header { buf, fill } => {
                    let take = (4 - *fill).min(bytes.len());
                    buf[*fill..*fill + take].copy_from_slice(&bytes[..take]);
                    *fill += take;
                    bytes = &bytes[take..];
                    if *fill == 4 {
                        let len = u32::from_le_bytes(*buf) as u64;
                        if len as usize > MAX_FRAME {
                            // Reject before allocating: the capacity we
                            // reserve below is bounded by MAX_FRAME, never
                            // by the attacker-controlled prefix.
                            self.events.push_back(FrameEvent::Oversized { len });
                            self.state = if len == 0 {
                                DecodeState::Header { buf: [0; 4], fill: 0 }
                            } else {
                                DecodeState::Skip { remaining: len }
                            };
                        } else if len == 0 {
                            self.events.push_back(FrameEvent::Frame(Vec::new()));
                            self.state = DecodeState::Header { buf: [0; 4], fill: 0 };
                        } else {
                            self.state = DecodeState::Payload {
                                buf: Vec::with_capacity(len as usize),
                                need: len as usize,
                            };
                        }
                    }
                }
                DecodeState::Payload { buf, need } => {
                    let take = (*need - buf.len()).min(bytes.len());
                    buf.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if buf.len() == *need {
                        self.events.push_back(FrameEvent::Frame(std::mem::take(buf)));
                        self.state = DecodeState::Header { buf: [0; 4], fill: 0 };
                    }
                }
                DecodeState::Skip { remaining } => {
                    let take = (*remaining).min(bytes.len() as u64);
                    *remaining -= take;
                    bytes = &bytes[take as usize..];
                    if *remaining == 0 {
                        self.state = DecodeState::Header { buf: [0; 4], fill: 0 };
                    }
                }
            }
        }
    }

    /// Pops the oldest decoded event, if any.
    pub fn next_event(&mut self) -> Option<FrameEvent> {
        self.events.pop_front()
    }
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// A parsed request: a verb plus per-request options.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// What the client wants.
    pub verb: Verb,
    /// Per-request deadline budget in milliseconds (overrides the
    /// server default when present).
    pub deadline_ms: Option<u64>,
}

/// The request verbs.
#[derive(Debug, Clone, PartialEq)]
pub enum Verb {
    /// Liveness probe; replies `pong`.
    Ping,
    /// Membership of one (computation, observer) pair in one model.
    Check {
        /// The model to query.
        model: Model,
        /// The computation.
        c: Computation,
        /// The observer function.
        phi: ObserverFunction,
    },
    /// Membership of one pair in all six served models.
    Models {
        /// The computation.
        c: Computation,
        /// The observer function.
        phi: ObserverFunction,
    },
    /// Outcome counts of a named litmus test under every served model.
    Litmus {
        /// Test name, matched case-insensitively.
        name: String,
    },
}

/// A request parse failure: 1-based payload line plus message (line 0
/// for payload-global problems, matching [`crate::parse::ParseError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// 1-based line within the request payload (0 = whole payload).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn rerr(line: usize, message: impl Into<String>) -> RequestError {
    RequestError { line, message: message.into() }
}

fn model_by_name(name: &str) -> Option<Model> {
    SERVED_MODELS.iter().copied().find(|m| m.name().eq_ignore_ascii_case(name))
}

/// Renders a request payload (the inverse of [`parse_request`]).
pub fn render_request(req: &Request) -> String {
    let mut head = String::from(REQ_MAGIC);
    let mut body = String::new();
    match &req.verb {
        Verb::Ping => head.push_str(" ping"),
        Verb::Check { model, c, phi } => {
            head.push_str(&format!(" check {}", model.name().to_ascii_lowercase()));
            body = format!("{}---\n{}", render_computation(c), render_observer(phi));
        }
        Verb::Models { c, phi } => {
            head.push_str(" models");
            body = format!("{}---\n{}", render_computation(c), render_observer(phi));
        }
        Verb::Litmus { name } => head.push_str(&format!(" litmus {name}")),
    }
    if let Some(ms) = req.deadline_ms {
        head.push_str(&format!(" deadline-ms={ms}"));
    }
    format!("{head}\n{body}")
}

/// Parses a request payload. Accepts arbitrary bytes and never panics:
/// non-UTF-8 input, unknown verbs, and malformed bodies all become
/// line-numbered [`RequestError`]s (the line of the first invalid byte
/// for encoding errors).
pub fn parse_request(payload: &[u8]) -> Result<Request, RequestError> {
    let text = match std::str::from_utf8(payload) {
        Ok(t) => t,
        Err(e) => {
            // Report the line containing the first invalid byte, so a
            // request truncated mid-UTF-8-character points at the cut.
            let line = payload[..e.valid_up_to()].iter().filter(|&&b| b == b'\n').count() + 1;
            return Err(rerr(line, "request is not valid UTF-8"));
        }
    };
    let mut lines = text.lines();
    let head = lines.next().unwrap_or("");
    let mut toks = head.split_whitespace();
    if toks.next() != Some(REQ_MAGIC) {
        return Err(rerr(1, format!("expected `{REQ_MAGIC} <verb> …` header")));
    }
    let verb_tok = toks.next().ok_or_else(|| rerr(1, "missing verb (ping|check|models|litmus)"))?;
    let mut deadline_ms = None;
    let mut positional: Vec<&str> = Vec::new();
    for t in toks {
        if let Some(v) = t.strip_prefix("deadline-ms=") {
            deadline_ms =
                Some(v.parse().map_err(|_| rerr(1, format!("bad deadline-ms value `{v}`")))?);
        } else {
            positional.push(t);
        }
    }
    let body_pair = |positional: &[&str]| -> Result<(Computation, ObserverFunction), RequestError> {
        if !positional.is_empty() {
            return Err(rerr(1, format!("unexpected token `{}`", positional[0])));
        }
        let body: Vec<&str> = text.lines().skip(1).collect();
        let split = body
            .iter()
            .position(|l| l.trim() == "---")
            .ok_or_else(|| rerr(0, "missing `---` separator between computation and observer"))?;
        // Global line numbers: the header is line 1, the computation
        // body starts at line 2, the observer after the separator.
        let lift = |base: usize, e: crate::parse::ParseError| {
            rerr(if e.line == 0 { 0 } else { base + e.line }, e.message)
        };
        let c = parse_computation(&body[..split].join("\n")).map_err(|e| lift(1, e))?;
        if c.node_count() > MAX_REQUEST_NODES {
            return Err(rerr(
                0,
                format!("computation has {} nodes; the cap is {MAX_REQUEST_NODES}", c.node_count()),
            ));
        }
        let phi =
            parse_observer(&body[split + 1..].join("\n"), &c).map_err(|e| lift(2 + split, e))?;
        Ok((c, phi))
    };
    let verb = match verb_tok {
        "ping" => {
            if !positional.is_empty() {
                return Err(rerr(1, format!("unexpected token `{}`", positional[0])));
            }
            Verb::Ping
        }
        "check" => {
            let [name] = positional.as_slice() else {
                return Err(rerr(1, "check needs exactly one model name"));
            };
            let model = model_by_name(name)
                .ok_or_else(|| rerr(1, format!("unknown model `{name}` (sc|lc|nn|nw|wn|ww)")))?;
            let (c, phi) = body_pair(&[])?;
            Verb::Check { model, c, phi }
        }
        "models" => {
            let (c, phi) = body_pair(&positional)?;
            Verb::Models { c, phi }
        }
        "litmus" => {
            let [name] = positional.as_slice() else {
                return Err(rerr(1, "litmus needs exactly one test name"));
            };
            Verb::Litmus { name: (*name).to_string() }
        }
        other => return Err(rerr(1, format!("unknown verb `{other}` (ping|check|models|litmus)"))),
    };
    Ok(Request { verb, deadline_ms })
}

// ---------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------

/// A structured reply. Every failure mode of the server is a reply
/// variant, never a dropped connection: panics become [`Degraded`],
/// deadline expiry becomes [`Partial`], load shedding becomes
/// [`Overloaded`], and malformed requests become [`Error`].
///
/// [`Degraded`]: Reply::Degraded
/// [`Partial`]: Reply::Partial
/// [`Overloaded`]: Reply::Overloaded
/// [`Error`]: Reply::Error
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Success. `cached` is set when every verdict came from the cache.
    Ok {
        /// Result lines (`SC: in`, `pong`, …).
        body: Vec<String>,
        /// Whether the cache answered without any fresh check.
        cached: bool,
    },
    /// The request did not parse; the connection stays usable.
    Error {
        /// 1-based payload line (0 = whole payload).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The handler panicked; the panic was quarantined to this request
    /// and the connection (and process) survive.
    Degraded {
        /// The panic payload.
        message: String,
    },
    /// The deadline budget expired; `body` holds the verdicts finished
    /// in time.
    Partial {
        /// Sub-checks completed before expiry.
        done: usize,
        /// Total sub-checks the request needed.
        total: usize,
        /// Result lines for the completed sub-checks.
        body: Vec<String>,
    },
    /// Load shed at admission; retry after the hinted backoff.
    Overloaded {
        /// Server's backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The server is draining and accepted no new work.
    ShuttingDown,
}

impl Reply {
    /// Renders the reply payload.
    pub fn encode(&self) -> Vec<u8> {
        // Body lines come from render/verdict code and never contain
        // newlines; panic payloads might, so they are flattened.
        let flat = |s: &str| s.replace('\n', " ");
        let text = match self {
            Reply::Ok { body, cached } => {
                let tag = if *cached { " cached=1" } else { "" };
                format!("{REP_MAGIC} ok{tag}\n{}", body.join("\n"))
            }
            Reply::Error { line, message } => {
                format!("{REP_MAGIC} error line={line}\n{}", flat(message))
            }
            Reply::Degraded { message } => format!("{REP_MAGIC} degraded\n{}", flat(message)),
            Reply::Partial { done, total, body } => {
                format!("{REP_MAGIC} partial done={done} total={total}\n{}", body.join("\n"))
            }
            Reply::Overloaded { retry_after_ms } => {
                format!("{REP_MAGIC} overloaded retry-after-ms={retry_after_ms}")
            }
            Reply::ShuttingDown => format!("{REP_MAGIC} shutting-down"),
        };
        text.into_bytes()
    }

    /// Parses a reply payload (the client side). Never panics.
    pub fn decode(payload: &[u8]) -> Result<Reply, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "reply is not UTF-8".to_string())?;
        let mut lines = text.lines();
        let head = lines.next().unwrap_or("");
        let mut toks = head.split_whitespace();
        if toks.next() != Some(REP_MAGIC) {
            return Err(format!("expected `{REP_MAGIC} <status> …` header, got `{head}`"));
        }
        let status = toks.next().ok_or("missing reply status")?;
        let mut kv = HashMap::new();
        for t in toks {
            if let Some((k, v)) = t.split_once('=') {
                kv.insert(k.to_string(), v.to_string());
            }
        }
        let num = |k: &str| -> Result<u64, String> {
            kv.get(k)
                .ok_or(format!("reply status `{status}` missing `{k}`"))?
                .parse()
                .map_err(|_| format!("bad `{k}` in reply"))
        };
        let body: Vec<String> = lines.map(str::to_string).collect();
        Ok(match status {
            "ok" => Reply::Ok { body, cached: kv.contains_key("cached") },
            "error" => Reply::Error {
                line: num("line")? as usize,
                message: body.first().cloned().unwrap_or_default(),
            },
            "degraded" => Reply::Degraded { message: body.first().cloned().unwrap_or_default() },
            "partial" => {
                Reply::Partial { done: num("done")? as usize, total: num("total")? as usize, body }
            }
            "overloaded" => Reply::Overloaded { retry_after_ms: num("retry-after-ms")? },
            "shutting-down" => Reply::ShuttingDown,
            other => return Err(format!("unknown reply status `{other}`")),
        })
    }
}

/// Renders a verdict line in the corpus golden spelling.
pub fn verdict_line(model: Model, member: bool) -> String {
    format!("{}: {}", model.name(), if member { "in" } else { "out" })
}

// ---------------------------------------------------------------------
// Verdict cache
// ---------------------------------------------------------------------

/// The canonical cache key of `(model, c, phi)`.
///
/// For pairs of at most [`CANON_NODE_CAP`] nodes the key encodes the
/// lex-min relabelling of the pair over all linear extensions that
/// minimise the ancestor-mask vector (ties broken by the encoded op and
/// observer bytes) — exactly [`ccmm_dag::canon`]'s representative,
/// extended to break automorphism ties by the labelling the observer
/// induces. Isomorphic pairs therefore collide, and because membership
/// is isomorphism-invariant the shared verdict is exact. Larger pairs
/// encode literally (marker byte 0), which is always sound.
pub fn verdict_key(model: Model, c: &Computation, phi: &ObserverFunction) -> Vec<u8> {
    let n = c.node_count();
    let mut key = Vec::with_capacity(8 + n * (2 + c.num_locations()));
    key.push(match model {
        Model::Sc => 1,
        Model::Lc => 2,
        Model::Nn => 3,
        Model::Nw => 4,
        Model::Wn => 5,
        Model::Ww => 6,
        Model::Any => 7,
    });
    if n > CANON_NODE_CAP {
        key.push(0); // literal marker
        encode_pair(&mut key, c, phi, &(0..n).collect::<Vec<_>>());
        return key;
    }
    key.push(1); // canonical marker
                 // Enumerate linear extensions of c's dag; each sort t relabels the
                 // pair (new node i = old node t[i]). Keep the lex-min (ancestor-mask
                 // vector, encoded pair bytes).
    let mut pos = vec![0usize; n];
    let mut best: Option<(Vec<u32>, Vec<u8>)> = None;
    let mut enc = Vec::new();
    let _ = for_each_topo_sort(c.dag(), |t| {
        for (i, u) in t.iter().enumerate() {
            pos[u.index()] = i;
        }
        // Ancestor masks under the relabelling, via the reachability the
        // computation already carries (canon_info uses closure edges; the
        // reachability relation is the same thing).
        let masks: Vec<u32> = t
            .iter()
            .map(|&v| {
                let mut m = 0u32;
                for (j, &u) in t.iter().enumerate() {
                    if u != v && c.precedes(u, v) {
                        m |= 1 << j;
                    }
                }
                m
            })
            .collect();
        if let Some((bm, _)) = &best {
            if masks > *bm {
                return ControlFlow::Continue(());
            }
        }
        enc.clear();
        let perm: Vec<usize> = t.iter().map(|u| u.index()).collect();
        encode_pair(&mut enc, c, phi, &perm);
        let cand = (masks, std::mem::take(&mut enc));
        match &best {
            Some(b) if *b <= cand => {}
            _ => best = Some(cand),
        }
        ControlFlow::Continue(())
    });
    let (masks, bytes) = best.unwrap_or_default();
    for m in masks {
        key.extend_from_slice(&m.to_le_bytes());
    }
    key.extend_from_slice(&bytes);
    key
}

/// Encodes the pair under the relabelling `perm` (new index `i` = old
/// node `perm[i]`).
fn encode_pair(out: &mut Vec<u8>, c: &Computation, phi: &ObserverFunction, perm: &[usize]) {
    use crate::op::{Location, Op};
    use ccmm_dag::NodeId;
    let n = c.node_count();
    let mut inv = vec![0u16; n];
    for (i, &old) in perm.iter().enumerate() {
        inv[old] = i as u16;
    }
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&(c.num_locations() as u16).to_le_bytes());
    for &old in perm {
        let (tag, loc) = match c.op(NodeId::new(old)) {
            Op::Nop => (0u16, 0u16),
            Op::Read(l) => (1, l.index() as u16),
            Op::Write(l) => (2, l.index() as u16),
        };
        out.extend_from_slice(&tag.to_le_bytes());
        out.extend_from_slice(&loc.to_le_bytes());
    }
    for l in 0..c.num_locations() {
        for &old in perm {
            let v = match phi.get(Location::new(l), NodeId::new(old)) {
                None => 0u16,
                Some(w) => inv[w.index()] + 1,
            };
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

struct Shard {
    map: HashMap<Vec<u8>, bool>,
    fifo: VecDeque<Vec<u8>>,
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (and were recomputed).
    pub misses: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// A sharded, size-bounded concurrent verdict cache.
///
/// Each shard is an independent `Mutex<HashMap + FIFO>`; the key hash
/// picks the shard, so concurrent lookups on different pairs rarely
/// contend. When a shard exceeds its slice of `capacity` the oldest
/// inserted entry is evicted — sound by construction, because a future
/// miss recomputes the identical verdict (see the module docs).
pub struct VerdictCache {
    shards: Box<[Mutex<Shard>]>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts across `shards`
    /// shards (both floored at 1).
    pub fn new(shards: usize, capacity: usize) -> Self {
        let shards = shards.max(1);
        let cap_per_shard = capacity.div_ceil(shards).max(1);
        VerdictCache {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard { map: HashMap::new(), fifo: VecDeque::new() }))
                .collect(),
            cap_per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Shard> {
        // FNV-1a over the key picks the shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up a verdict, classifying the lookup as a hit or miss.
    pub fn lookup(&self, key: &[u8]) -> Option<bool> {
        let shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        match shard.map.get(key).copied() {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                telemetry::count(Counter::ServeCacheHits, 1);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                telemetry::count(Counter::ServeCacheMisses, 1);
                None
            }
        }
    }

    /// Inserts a verdict, evicting FIFO-oldest entries past capacity.
    pub fn insert(&self, key: Vec<u8>, verdict: bool) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if shard.map.insert(key.clone(), verdict).is_none() {
            shard.fifo.push_back(key);
        }
        while shard.map.len() > self.cap_per_shard {
            let Some(old) = shard.fifo.pop_front() else { break };
            shard.map.remove(&old);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            telemetry::count(Counter::ServeCacheEvictions, 1);
        }
    }

    /// Cached membership check: one classified lookup, recomputing via
    /// `contains_with` on a miss. The returned flag says whether the
    /// cache answered.
    pub fn check(
        &self,
        model: Model,
        c: &Computation,
        phi: &ObserverFunction,
        scratch: &mut CheckScratch,
    ) -> (bool, bool) {
        let key = verdict_key(model, c, phi);
        if let Some(v) = self.lookup(&key) {
            return (v, true);
        }
        let v = model.contains_with(c, phi, scratch);
        self.insert(key, v);
        (v, false)
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.shards.iter().map(|s| s.lock().map(|g| g.map.len()).unwrap_or(0)).sum(),
        }
    }
}

// ---------------------------------------------------------------------
// Handler
// ---------------------------------------------------------------------

/// How a reply should be accounted (and surfaced in exit codes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyClass {
    /// [`Reply::Ok`].
    Served,
    /// [`Reply::Error`].
    BadRequest,
    /// [`Reply::Degraded`].
    Degraded,
    /// [`Reply::Partial`].
    DeadlineExpired,
}

impl Reply {
    /// Classifies a handler reply for accounting.
    pub fn class(&self) -> ReplyClass {
        match self {
            Reply::Ok { .. } => ReplyClass::Served,
            Reply::Error { .. } => ReplyClass::BadRequest,
            Reply::Degraded { .. } => ReplyClass::Degraded,
            Reply::Partial { .. } => ReplyClass::DeadlineExpired,
            // Overloaded/ShuttingDown are minted at admission, before
            // the handler runs; the handler never returns them.
            Reply::Overloaded { .. } | Reply::ShuttingDown => ReplyClass::Served,
        }
    }
}

/// The per-connection request handler: parse → supervise → reply.
///
/// One handler per connection thread; the scratch is reused across
/// requests and rebuilt after a quarantined panic (panics can leave it
/// mid-update, exactly like the sweep supervisor's per-worker scratch).
pub struct Handler {
    cache: std::sync::Arc<VerdictCache>,
    default_deadline_ms: Option<u64>,
    scratch: CheckScratch,
}

impl Handler {
    /// A handler sharing `cache`, applying `default_deadline_ms` to
    /// requests that set no budget of their own.
    pub fn new(cache: std::sync::Arc<VerdictCache>, default_deadline_ms: Option<u64>) -> Self {
        Handler { cache, default_deadline_ms, scratch: CheckScratch::new() }
    }

    /// Handles one request payload end to end. Never panics and never
    /// returns transport-level failures: every outcome is a [`Reply`].
    /// `inject_panic` is the fault plan's handler-panic arm.
    pub fn handle(&mut self, payload: &[u8], inject_panic: bool) -> Reply {
        telemetry::count(Counter::ServeRequests, 1);
        let req = match parse_request(payload) {
            Ok(r) => r,
            Err(e) => {
                telemetry::count(Counter::ServeFrameErrors, 1);
                return Reply::Error { line: e.line, message: e.message };
            }
        };
        let deadline = req
            .deadline_ms
            .or(self.default_deadline_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if inject_panic {
                std::panic::panic_any("injected fault: handler panic".to_string());
            }
            self.dispatch(&req, deadline)
        }));
        match out {
            Ok(reply) => {
                match reply.class() {
                    ReplyClass::Served => telemetry::count(Counter::ServeServed, 1),
                    ReplyClass::DeadlineExpired => {
                        telemetry::count(Counter::ServeDeadlineExpired, 1);
                    }
                    ReplyClass::BadRequest => {}
                    ReplyClass::Degraded => {}
                }
                reply
            }
            Err(panic) => {
                // Quarantine: the panic is confined to this request. The
                // scratch may be mid-update, so it is rebuilt — the same
                // retry hygiene the sweep supervisor applies per task.
                self.scratch = CheckScratch::new();
                telemetry::count(Counter::ServeDegraded, 1);
                Reply::Degraded { message: crate::fault::payload_string(panic) }
            }
        }
    }

    fn dispatch(&mut self, req: &Request, deadline: Option<Instant>) -> Reply {
        let expired = |d: &Option<Instant>| d.is_some_and(|d| Instant::now() >= d);
        match &req.verb {
            Verb::Ping => Reply::Ok { body: vec!["pong".to_string()], cached: false },
            Verb::Check { model, c, phi } => {
                if expired(&deadline) {
                    return Reply::Partial { done: 0, total: 1, body: Vec::new() };
                }
                let (member, cached) = self.cache.check(*model, c, phi, &mut self.scratch);
                Reply::Ok { body: vec![verdict_line(*model, member)], cached }
            }
            Verb::Models { c, phi } => {
                // Cooperative deadline at model granularity: each of the
                // six verdicts is one budget poll, mirroring the sweep
                // supervisor's per-task polls.
                let mut body = Vec::new();
                let mut all_cached = true;
                for m in SERVED_MODELS {
                    if expired(&deadline) {
                        return Reply::Partial {
                            done: body.len(),
                            total: SERVED_MODELS.len(),
                            body,
                        };
                    }
                    let (member, cached) = self.cache.check(m, c, phi, &mut self.scratch);
                    all_cached &= cached;
                    body.push(verdict_line(m, member));
                }
                Reply::Ok { body, cached: all_cached }
            }
            Verb::Litmus { name } => {
                let tests = crate::litmus::standard_tests();
                let Some(t) = tests.iter().find(|t| t.name.eq_ignore_ascii_case(name)) else {
                    let names: Vec<&str> = tests.iter().map(|t| t.name).collect();
                    return Reply::Error {
                        line: 1,
                        message: format!("unknown litmus test `{name}` ({})", names.join("|")),
                    };
                };
                let mut body = Vec::new();
                for m in SERVED_MODELS {
                    if expired(&deadline) {
                        return Reply::Partial {
                            done: body.len(),
                            total: SERVED_MODELS.len(),
                            body,
                        };
                    }
                    body.push(format!("{}: {} outcomes", m.name(), t.outcomes(&m).len()));
                }
                Reply::Ok { body, cached: false }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::witness;

    fn mp_pair() -> (Computation, ObserverFunction) {
        let t = crate::litmus::message_passing();
        let phi = ObserverFunction::base(&t.computation);
        (t.computation, phi)
    }

    #[test]
    fn frame_round_trip_and_chunked_decode() {
        let payload = b"hello frames".to_vec();
        let wire = encode_frame(&payload);
        // Feed byte by byte: the decoder reassembles across chunks.
        let mut d = FrameDecoder::new();
        for b in &wire {
            d.push(&[*b]);
        }
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(payload.clone())));
        assert!(d.is_idle());
        // Two frames in one chunk.
        let mut two = encode_frame(b"a");
        two.extend_from_slice(&encode_frame(b""));
        d.push(&two);
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(b"a".to_vec())));
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(Vec::new())));
        assert!(d.is_idle());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_allocation_and_resyncs() {
        let mut d = FrameDecoder::new();
        // Claim 3 GiB: the event fires as soon as the header is read.
        let len: u32 = 3 << 30;
        d.push(&len.to_le_bytes());
        assert_eq!(d.next_event(), Some(FrameEvent::Oversized { len: len as u64 }));
        assert!(!d.is_idle(), "skipping the announced payload");
        // Only 8 bytes of the "payload" ever arrive before the peer
        // gives up; decoding stalls but never allocates the 3 GiB.
        d.push(&[0; 8]);
        assert_eq!(d.next_event(), None);
        // A peer that does send it all resyncs to the next frame. Use a
        // small oversized frame to keep the test fast.
        let mut d = FrameDecoder::new();
        let over = (MAX_FRAME + 3) as u32;
        d.push(&over.to_le_bytes());
        assert_eq!(d.next_event(), Some(FrameEvent::Oversized { len: over as u64 }));
        d.push(&vec![0u8; MAX_FRAME + 3]);
        d.push(&encode_frame(b"after"));
        assert_eq!(d.next_event(), Some(FrameEvent::Frame(b"after".to_vec())));
        assert!(d.is_idle());
    }

    #[test]
    fn request_round_trips() {
        let (c, phi) = mp_pair();
        for req in [
            Request { verb: Verb::Ping, deadline_ms: None },
            Request { verb: Verb::Ping, deadline_ms: Some(25) },
            Request {
                verb: Verb::Check { model: Model::Sc, c: c.clone(), phi: phi.clone() },
                deadline_ms: Some(50),
            },
            Request { verb: Verb::Models { c: c.clone(), phi: phi.clone() }, deadline_ms: None },
            Request { verb: Verb::Litmus { name: "MP".to_string() }, deadline_ms: None },
        ] {
            let text = render_request(&req);
            let back = parse_request(text.as_bytes()).unwrap();
            assert_eq!(back, req, "round trip failed for {text:?}");
        }
    }

    #[test]
    fn request_errors_are_line_numbered() {
        let e = parse_request(b"nonsense").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_request(b"ccmm-req-v1 frobnicate").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unknown verb"));
        // A bad node on line 3 of the payload (header + 2 body lines).
        let e =
            parse_request(b"ccmm-req-v1 check sc\nn0: W(0)\nBAD LINE\n---\nl0: n0\n").unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        // Observer errors point past the separator.
        let e = parse_request(b"ccmm-req-v1 check sc\nn0: W(0)\n---\nl0: n0 n9 n9\n").unwrap_err();
        assert_eq!(e.line, 4, "{e}");
        // Mid-UTF-8 truncation: line of the first invalid byte.
        let mut bytes = b"ccmm-req-v1 check sc\nn0: W(0)\n---\nl0: ".to_vec();
        bytes.extend_from_slice(&[0xE2, 0x88]); // truncated '∈'
        let e = parse_request(&bytes).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.message.contains("UTF-8"));
        // Missing separator is payload-global.
        let e = parse_request(b"ccmm-req-v1 models\nn0: W(0)\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("---"));
    }

    #[test]
    fn reply_round_trips() {
        for rep in [
            Reply::Ok { body: vec!["SC: in".into(), "LC: out".into()], cached: false },
            Reply::Ok { body: vec!["pong".into()], cached: true },
            Reply::Error { line: 7, message: "bad node".into() },
            Reply::Degraded { message: "injected fault: handler panic".into() },
            Reply::Partial { done: 2, total: 6, body: vec!["SC: in".into(), "LC: in".into()] },
            Reply::Overloaded { retry_after_ms: 40 },
            Reply::ShuttingDown,
        ] {
            let wire = rep.encode();
            assert_eq!(Reply::decode(&wire).unwrap(), rep);
        }
        assert!(Reply::decode(b"garbage").is_err());
        assert!(Reply::decode(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn handler_serves_corpus_shaped_verdicts() {
        let cache = std::sync::Arc::new(VerdictCache::new(4, 64));
        let mut h = Handler::new(std::sync::Arc::clone(&cache), None);
        let (c, phi) = mp_pair();
        let req = render_request(&Request {
            verb: Verb::Models { c: c.clone(), phi: phi.clone() },
            deadline_ms: None,
        });
        let Reply::Ok { body, cached } = h.handle(req.as_bytes(), false) else {
            panic!("expected ok")
        };
        assert!(!cached);
        for (line, m) in body.iter().zip(SERVED_MODELS) {
            assert_eq!(*line, verdict_line(m, m.contains(&c, &phi)));
        }
        // Second ask: all six verdicts come from the cache.
        let Reply::Ok { body: again, cached } = h.handle(req.as_bytes(), false) else {
            panic!("expected ok")
        };
        assert!(cached, "second ask must be fully cached");
        assert_eq!(again, body);
        assert_eq!(cache.stats().hits, 6);
    }

    #[test]
    fn handler_quarantines_panics_and_survives() {
        let cache = std::sync::Arc::new(VerdictCache::new(1, 8));
        let mut h = Handler::new(cache, None);
        let req = render_request(&Request { verb: Verb::Ping, deadline_ms: None });
        let Reply::Degraded { message } = h.handle(req.as_bytes(), true) else {
            panic!("expected degraded")
        };
        assert!(message.contains("injected fault"));
        // The same handler keeps serving.
        let Reply::Ok { body, .. } = h.handle(req.as_bytes(), false) else {
            panic!("expected ok after quarantine")
        };
        assert_eq!(body, vec!["pong".to_string()]);
    }

    #[test]
    fn zero_deadline_yields_partial() {
        let cache = std::sync::Arc::new(VerdictCache::new(1, 8));
        let mut h = Handler::new(cache, None);
        let (c, phi) = mp_pair();
        let req = render_request(&Request { verb: Verb::Models { c, phi }, deadline_ms: Some(0) });
        let Reply::Partial { done, total, body } = h.handle(req.as_bytes(), false) else {
            panic!("expected partial")
        };
        assert_eq!((done, total), (0, 6));
        assert!(body.is_empty());
    }

    #[test]
    fn litmus_verb_counts_outcomes() {
        let cache = std::sync::Arc::new(VerdictCache::new(1, 8));
        let mut h = Handler::new(cache, None);
        let req = render_request(&Request {
            verb: Verb::Litmus { name: "mp".to_string() },
            deadline_ms: None,
        });
        let Reply::Ok { body, .. } = h.handle(req.as_bytes(), false) else { panic!("expected ok") };
        let t = crate::litmus::message_passing();
        assert_eq!(body[0], format!("SC: {} outcomes", t.outcomes(&Model::Sc).len()));
        let bad = render_request(&Request {
            verb: Verb::Litmus { name: "nope".to_string() },
            deadline_ms: None,
        });
        assert!(matches!(h.handle(bad.as_bytes(), false), Reply::Error { .. }));
    }

    #[test]
    fn canonical_keys_identify_isomorphic_pairs() {
        // Figure 2 relabelled by reversing the antichain components must
        // share a key with the original.
        let w = witness::figure2();
        let (c, phi) = (w.computation, w.phi);
        let k1 = verdict_key(Model::Sc, &c, &phi);
        // Relabel by a random-ish topo order: swap two incomparable
        // nodes if any exist; MP's two chains are incomparable.
        let t = crate::litmus::message_passing();
        let c2 = {
            use crate::op::Op;
            // MP with the chains swapped: nodes (2,3) first.
            Computation::from_edges(
                4,
                &[(0, 1), (2, 3)],
                vec![
                    t.computation.op(ccmm_dag::NodeId::new(2)),
                    t.computation.op(ccmm_dag::NodeId::new(3)),
                    t.computation.op(ccmm_dag::NodeId::new(0)),
                    t.computation.op(ccmm_dag::NodeId::new(1)),
                ]
                .into_iter()
                .collect::<Vec<Op>>(),
            )
        };
        let phi_a = ObserverFunction::base(&t.computation);
        let phi_b = ObserverFunction::base(&c2);
        assert_eq!(
            verdict_key(Model::Lc, &t.computation, &phi_a),
            verdict_key(Model::Lc, &c2, &phi_b),
            "isomorphic pairs must share a cache key"
        );
        // Different models never collide.
        assert_ne!(k1, verdict_key(Model::Lc, &c, &phi));
    }

    #[test]
    fn cache_eviction_never_changes_an_answer() {
        let cache = VerdictCache::new(2, 4); // tiny: constant eviction
        let mut scratch = CheckScratch::new();
        let tests = crate::litmus::standard_tests();
        let mut lookups = 0u64;
        for round in 0..3 {
            for t in &tests {
                for m in SERVED_MODELS {
                    let phi = ObserverFunction::base(&t.computation);
                    let (got, _) = cache.check(m, &t.computation, &phi, &mut scratch);
                    lookups += 1;
                    assert_eq!(
                        got,
                        m.contains(&t.computation, &phi),
                        "round {round}: cached verdict for {} on {} drifted",
                        m.name(),
                        t.name
                    );
                }
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "capacity 4 must evict under {lookups} lookups");
        assert_eq!(s.hits + s.misses, lookups, "every lookup classified exactly once");
        assert!(s.len <= 4 + 1, "size bound respected (cap + in-flight insert)");
    }

    #[test]
    fn cache_hammered_from_four_threads_stays_exact() {
        // Four threads, a capacity small enough that eviction is
        // constant, and a working set (litmus pairs × models) larger
        // than the cache: every verdict any thread ever sees must equal
        // a fresh `contains_with`, and the deterministic invariant
        // `hits + misses == lookups` must hold across all schedules.
        let cache = std::sync::Arc::new(VerdictCache::new(4, 6));
        let tests = crate::litmus::standard_tests();
        const PER_THREAD: usize = 400;
        std::thread::scope(|s| {
            for tid in 0..4u64 {
                let cache = std::sync::Arc::clone(&cache);
                let tests = &tests;
                s.spawn(move || {
                    let mut scratch = CheckScratch::new();
                    let mut fresh = CheckScratch::new();
                    for i in 0..PER_THREAD {
                        // A seeded walk so threads interleave different
                        // keys (contention + disjoint shards both hit).
                        let r = mix64(tid ^ (i as u64) << 8);
                        let t = &tests[(r % tests.len() as u64) as usize];
                        let m = SERVED_MODELS[(r >> 32) as usize % SERVED_MODELS.len()];
                        let phi = ObserverFunction::base(&t.computation);
                        let (got, _) = cache.check(m, &t.computation, &phi, &mut scratch);
                        let want = m.contains_with(&t.computation, &phi, &mut fresh);
                        assert_eq!(
                            got,
                            want,
                            "thread {tid} lookup {i}: cached {} on {} != fresh",
                            m.name(),
                            t.name
                        );
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4 * PER_THREAD as u64, "hits + misses == requests");
        assert!(s.evictions > 0, "capacity 6 must evict across 1600 lookups");
        assert!(s.len <= 8, "size bound respected under concurrency");
    }
}
