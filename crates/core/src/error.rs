//! Errors for computation and observer-function construction.

use crate::op::Location;
use ccmm_dag::NodeId;

/// Errors produced by `ccmm-core` constructors and validators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreError {
    /// An underlying dag operation failed (e.g. an in-place extension
    /// named an out-of-range predecessor).
    Dag(ccmm_dag::DagError),
    /// The op labelling does not have one op per dag node.
    OpCountMismatch {
        /// Number of dag nodes.
        nodes: usize,
        /// Number of ops supplied.
        ops: usize,
    },
    /// The observer table's shape does not match the computation.
    ObserverShapeMismatch {
        /// Expected (locations, nodes).
        expected: (usize, usize),
        /// Found (locations, nodes).
        found: (usize, usize),
    },
    /// Condition 2.1 violated: the observed node is not a write to the
    /// location.
    ObservedNotAWrite {
        /// The location.
        location: Location,
        /// The observing node.
        node: NodeId,
        /// The observed node, which is not a `W(location)`.
        observed: NodeId,
    },
    /// Condition 2.2 violated: a node strictly precedes the node it
    /// observes.
    ObserverPrecedes {
        /// The location.
        location: Location,
        /// The observing node.
        node: NodeId,
        /// The observed node, which `node` strictly precedes.
        observed: NodeId,
    },
    /// Condition 2.3 violated: a write does not observe itself.
    WriteNotSelfObserving {
        /// The location.
        location: Location,
        /// The write node.
        node: NodeId,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Dag(e) => write!(f, "{e}"),
            CoreError::OpCountMismatch { nodes, ops } => {
                write!(f, "computation has {nodes} nodes but {ops} ops")
            }
            CoreError::ObserverShapeMismatch { expected, found } => write!(
                f,
                "observer table shape {found:?} does not match computation {expected:?}"
            ),
            CoreError::ObservedNotAWrite { location, node, observed } => write!(
                f,
                "Φ({location}, {node}) = {observed}, which is not a write to {location} (Def. 2.1)"
            ),
            CoreError::ObserverPrecedes { location, node, observed } => write!(
                f,
                "{node} strictly precedes its observed node Φ({location}, {node}) = {observed} (Def. 2.2)"
            ),
            CoreError::WriteNotSelfObserving { location, node } => write!(
                f,
                "write {node} to {location} does not observe itself (Def. 2.3)"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_definition_clauses() {
        let e = CoreError::ObservedNotAWrite {
            location: Location::new(0),
            node: NodeId::new(1),
            observed: NodeId::new(2),
        };
        assert!(e.to_string().contains("Def. 2.1"));
        let e =
            CoreError::WriteNotSelfObserving { location: Location::new(1), node: NodeId::new(0) };
        assert!(e.to_string().contains("Def. 2.3"));
    }
}
