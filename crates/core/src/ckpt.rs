//! Crash-safe checkpoint journals for long sweeps.
//!
//! A checkpoint file is append-only: an 8-byte magic, then
//! length-prefixed, checksummed records — `[len: u32 LE][fnv1a64 of the
//! payload: u64 LE][payload]`. The first record is a *fingerprint*
//! (a UTF-8 description of the sweep configuration); every later record
//! is an opaque snapshot payload owned by the caller (the supervisor
//! stores the completed-task frontier plus the merged partial state).
//!
//! Every append is `fsync`'d before it is counted, so a crash loses at
//! most the record being written. The reader is **torn-tail tolerant**:
//! it accepts the longest valid prefix and ignores a truncated or
//! corrupted tail. Re-opening for append first truncates the file back
//! to that valid prefix, so a resumed run never buries garbage between
//! records.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::Path;

/// File magic: identifies a ccmm checkpoint journal, version 1.
const MAGIC: &[u8; 8] = b"CCMMCKP1";

/// Per-record header bytes: u32 length + u64 checksum.
const RECORD_HEADER: usize = 4 + 8;

/// Cap on a single record so a corrupt length prefix cannot trigger a
/// huge allocation.
const MAX_RECORD: usize = 1 << 28;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// An open checkpoint journal being written.
pub struct CkptWriter {
    file: File,
    snapshots: usize,
}

impl CkptWriter {
    /// Creates (or truncates) the journal at `path` and writes the magic
    /// plus the fingerprint record.
    ///
    /// Durability guarantee: the journal's *name* is fsync'd into its
    /// parent directory before this returns. Appending a record fsyncs
    /// only the file's data (`sync_data`), which makes the record itself
    /// durable but — on ext4 and friends — not the directory entry of a
    /// freshly created file; without the directory fsync a crash right
    /// after `create` could lose the whole journal, not just a torn
    /// tail.
    pub fn create(path: &Path, fingerprint: &str) -> io::Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(MAGIC)?;
        let mut w = CkptWriter { file, snapshots: 0 };
        w.write_record(fingerprint.as_bytes())?;
        w.snapshots = 0; // the fingerprint is not a snapshot
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        File::open(parent)?.sync_all()?;
        Ok(w)
    }

    /// Re-opens an existing journal for appending: validates the magic
    /// and fingerprint, truncates any torn tail, and positions at the end
    /// of the valid prefix. Snapshot counting restarts at zero for this
    /// run (kill-after-K faults count per run).
    pub fn append_to(path: &Path) -> io::Result<Self> {
        let loaded = Checkpoint::load(path)?;
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(loaded.valid_len)?;
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        Ok(CkptWriter { file, snapshots: 0 })
    }

    fn write_record(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(RECORD_HEADER + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        self.snapshots += 1;
        Ok(())
    }

    /// Appends one snapshot record (length-prefixed, checksummed,
    /// fsync'd before returning).
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        self.write_record(payload)
    }

    /// Snapshot records appended by this writer (excludes the
    /// fingerprint record).
    pub fn snapshots(&self) -> usize {
        self.snapshots
    }
}

/// A loaded checkpoint journal: the valid prefix of the file.
pub struct Checkpoint {
    /// The fingerprint the journal was created with.
    pub fingerprint: String,
    /// Snapshot payloads, oldest first (resume wants the last).
    pub snapshots: Vec<Vec<u8>>,
    /// Byte length of the valid prefix (magic + intact records).
    pub valid_len: u64,
}

impl Checkpoint {
    /// Loads the longest valid prefix of the journal at `path`. A torn or
    /// corrupted tail is silently dropped; a missing/foreign file or a
    /// torn *fingerprint* record is an error (nothing to resume from).
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} is not a ccmm checkpoint journal", path.display()),
            ));
        }
        let mut pos = MAGIC.len();
        let mut records: Vec<Vec<u8>> = Vec::new();
        while let Some((payload, next)) = read_record(&bytes, pos) {
            records.push(payload);
            pos = next;
        }
        if records.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} has no intact fingerprint record", path.display()),
            ));
        }
        let fingerprint = String::from_utf8(records.remove(0)).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} has a non-UTF-8 fingerprint", path.display()),
            )
        })?;
        Ok(Checkpoint { fingerprint, snapshots: records, valid_len: pos as u64 })
    }

    /// The most recent snapshot payload, if any.
    pub fn latest(&self) -> Option<&[u8]> {
        self.snapshots.last().map(Vec::as_slice)
    }
}

/// Parses one record at `pos`; `None` on a torn or corrupt record.
fn read_record(bytes: &[u8], pos: usize) -> Option<(Vec<u8>, usize)> {
    let header = bytes.get(pos..pos + RECORD_HEADER)?;
    let (len_bytes, crc_bytes) = header.split_first_chunk::<4>()?;
    let len = u32::from_le_bytes(*len_bytes) as usize;
    if len > MAX_RECORD {
        return None;
    }
    let crc = u64::from_le_bytes(*crc_bytes.first_chunk::<8>()?);
    let payload = bytes.get(pos + RECORD_HEADER..pos + RECORD_HEADER + len)?;
    if fnv1a64(payload) != crc {
        return None;
    }
    Some((payload.to_vec(), pos + RECORD_HEADER + len))
}

// ---------------------------------------------------------------------
// Little-endian codec helpers for snapshot payloads
// ---------------------------------------------------------------------

/// Appends a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Consumes a little-endian u64 from the front of `input`.
pub fn get_u64(input: &mut &[u8]) -> Option<u64> {
    let (head, rest) = input.split_first_chunk::<8>()?;
    *input = rest;
    Some(u64::from_le_bytes(*head))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ccmm-ckpt-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trip_snapshots() {
        let path = temp("rt");
        let mut w = CkptWriter::create(&path, "fp v1").unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"beta").unwrap();
        assert_eq!(w.snapshots(), 2);
        drop(w);
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.fingerprint, "fp v1");
        assert_eq!(ck.snapshots, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert_eq!(ck.latest(), Some(&b"beta"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_truncated_on_reopen() {
        let path = temp("torn");
        let mut w = CkptWriter::create(&path, "fp").unwrap();
        w.append(b"good").unwrap();
        drop(w);
        // Simulate a crash mid-write: append half a record.
        let intact = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[9, 0, 0, 0, 1, 2, 3]).unwrap(); // torn header+payload
        drop(f);
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.snapshots, vec![b"good".to_vec()]);
        assert_eq!(ck.valid_len, intact, "tail excluded from the valid prefix");
        // Reopening for append truncates the tail and continues cleanly.
        let mut w = CkptWriter::append_to(&path).unwrap();
        w.append(b"resumed").unwrap();
        drop(w);
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.snapshots, vec![b"good".to_vec(), b"resumed".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_fails_its_checksum() {
        let path = temp("crc");
        let mut w = CkptWriter::create(&path, "fp").unwrap();
        w.append(b"aaaa").unwrap();
        w.append(b"bbbb").unwrap();
        drop(w);
        // Flip a byte in the LAST record's payload: only it is dropped.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let ck = Checkpoint::load(&path).unwrap();
        assert_eq!(ck.snapshots, vec![b"aaaa".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_and_headerless_files_are_errors() {
        let path = temp("foreign");
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(Checkpoint::load(&path).is_err());
        // Magic alone, no fingerprint record: also unresumable.
        std::fs::write(&path, MAGIC).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        assert!(Checkpoint::load(Path::new("/nonexistent/ckpt")).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn codec_helpers_round_trip() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 0);
        put_u64(&mut buf, u64::MAX);
        put_u64(&mut buf, 0xDEAD_BEEF);
        let mut r: &[u8] = &buf;
        assert_eq!(get_u64(&mut r), Some(0));
        assert_eq!(get_u64(&mut r), Some(u64::MAX));
        assert_eq!(get_u64(&mut r), Some(0xDEAD_BEEF));
        assert_eq!(get_u64(&mut r), None);
    }
}
