//! Lock-augmented computations — the §7 future-work direction.
//!
//! "Some models, such as release consistency, require computations to be
//! augmented with locks, and how to do this is a matter of active
//! research." This module is one concrete way: a [`LockedComputation`]
//! pairs a computation with *critical sections* (an acquire node and a
//! release node per section, per lock). The runtime may execute the
//! sections of each lock in any order, but must execute them **mutually
//! exclusively** — modelled by adding a `release → acquire` edge between
//! consecutive sections of every per-lock serialization.
//!
//! A lock-aware memory model is then existential over serializations:
//! `(C, locks, Φ) ∈ Sync(Δ)` iff some serialization `C'` of the critical
//! sections has `(C', Φ) ∈ Δ`. The headline consequence, machine-checked
//! in the tests: **locks restore atomicity over weak memory** — a
//! lock-protected read-modify-write cannot lose updates even under plain
//! location consistency, because the serialization edges put every
//! section's reads downstream of the previous section's writes.

use crate::computation::Computation;
use crate::model::MemoryModel;
use crate::observer::ObserverFunction;
use ccmm_dag::NodeId;
use std::ops::ControlFlow;

/// A lock identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lock(pub u32);

/// One critical section: everything between `acquire` and `release`
/// (inclusive) holds `lock`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CriticalSection {
    /// The lock held.
    pub lock: Lock,
    /// The acquiring node.
    pub acquire: NodeId,
    /// The releasing node (must satisfy `acquire ⪯ release`).
    pub release: NodeId,
}

/// A computation plus its critical sections.
#[derive(Clone, Debug)]
pub struct LockedComputation {
    computation: Computation,
    sections: Vec<CriticalSection>,
}

impl LockedComputation {
    /// Validates and builds. Each section needs `acquire ⪯ release` and
    /// in-range nodes; sections of the same lock must be pairwise
    /// *non-nested* along a path only in the sense that serialization
    /// stays possible — no structural restriction is imposed here.
    pub fn new(computation: Computation, sections: Vec<CriticalSection>) -> Result<Self, String> {
        for s in &sections {
            if s.acquire.index() >= computation.node_count()
                || s.release.index() >= computation.node_count()
            {
                return Err(format!("section {s:?} out of range"));
            }
            if !computation.precedes_eq(s.acquire, s.release) {
                return Err(format!("section {s:?}: acquire must precede (or equal) release"));
            }
        }
        Ok(LockedComputation { computation, sections })
    }

    /// The underlying computation.
    pub fn computation(&self) -> &Computation {
        &self.computation
    }

    /// The critical sections.
    pub fn sections(&self) -> &[CriticalSection] {
        &self.sections
    }

    /// Calls `f` with every *serialization*: the computation augmented
    /// with `release → acquire` edges realizing one total order per lock
    /// over its critical sections (orders whose edges would create a
    /// cycle are skipped — the dag already forbids them).
    pub fn for_each_serialization<F>(&self, mut f: F) -> ControlFlow<()>
    where
        F: FnMut(&Computation) -> ControlFlow<()>,
    {
        // Group section indices by lock.
        let mut locks: Vec<Lock> = self.sections.iter().map(|s| s.lock).collect();
        locks.sort_unstable();
        locks.dedup();
        let groups: Vec<Vec<usize>> = locks
            .iter()
            .map(|&l| (0..self.sections.len()).filter(|&i| self.sections[i].lock == l).collect())
            .collect();
        // Recursively choose a permutation per lock, accumulate edges.
        fn permute<F>(
            this: &LockedComputation,
            groups: &[Vec<usize>],
            g: usize,
            edges: &mut Vec<(usize, usize)>,
            f: &mut F,
        ) -> ControlFlow<()>
        where
            F: FnMut(&Computation) -> ControlFlow<()>,
        {
            if g == groups.len() {
                let c = &this.computation;
                let mut all: Vec<(usize, usize)> =
                    c.dag().edges().map(|(u, v)| (u.index(), v.index())).collect();
                all.extend_from_slice(edges);
                return match ccmm_dag::Dag::from_edges(c.node_count(), &all) {
                    Ok(dag) => {
                        let serialized =
                            Computation::new(dag, c.ops().to_vec()).expect("same op count");
                        f(&serialized)
                    }
                    Err(_) => ControlFlow::Continue(()), // cyclic order: skip
                };
            }
            // Heap-style permutation of groups[g].
            let mut idx = groups[g].clone();
            permute_group(this, groups, g, &mut idx, 0, edges, f)
        }
        fn permute_group<F>(
            this: &LockedComputation,
            groups: &[Vec<usize>],
            g: usize,
            idx: &mut Vec<usize>,
            k: usize,
            edges: &mut Vec<(usize, usize)>,
            f: &mut F,
        ) -> ControlFlow<()>
        where
            F: FnMut(&Computation) -> ControlFlow<()>,
        {
            if k == idx.len() {
                let added = idx.len().saturating_sub(1);
                for w in idx.windows(2) {
                    let rel = this.sections[w[0]].release.index();
                    let acq = this.sections[w[1]].acquire.index();
                    edges.push((rel, acq));
                }
                let r = permute(this, groups, g + 1, edges, f);
                edges.truncate(edges.len() - added);
                return r;
            }
            for i in k..idx.len() {
                idx.swap(k, i);
                permute_group(this, groups, g, idx, k + 1, edges, f)?;
                idx.swap(k, i);
            }
            ControlFlow::Continue(())
        }
        let mut edges = Vec::new();
        permute(self, &groups, 0, &mut edges, &mut f)
    }

    /// All serializations, collected.
    pub fn serializations(&self) -> Vec<Computation> {
        let mut out = Vec::new();
        let _ = self.for_each_serialization(|c| {
            out.push(c.clone());
            ControlFlow::Continue(())
        });
        out
    }

    /// Lock-aware membership: `∃` serialization `C'` with `(C', Φ) ∈ Δ`.
    ///
    /// Note that Φ must be a valid observer for the *serialized*
    /// computation (the extra edges strengthen Condition 2.2).
    pub fn contains_under<M: MemoryModel>(&self, model: &M, phi: &ObserverFunction) -> bool {
        let mut found = false;
        let _ = self.for_each_serialization(|c| {
            if model.contains(c, phi) {
                found = true;
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_observer;
    use crate::model::{Lc, Sc};
    use crate::op::{Location, Op};
    use std::collections::BTreeSet;

    fn l(i: usize) -> Location {
        Location::new(i)
    }
    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Two parallel lock-protected increment sections on x, plus a final
    /// read: each section is R(x); W(x) with acquire = the read node and
    /// release = the write node.
    fn two_increments() -> LockedComputation {
        // Nodes 0,1 = section A (R, W); 2,3 = section B (R, W); 4 = R.
        let c = Computation::from_edges(
            5,
            &[(0, 1), (2, 3), (1, 4), (3, 4)],
            vec![Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0)), Op::Read(l(0))],
        );
        let m = Lock(0);
        LockedComputation::new(
            c,
            vec![
                CriticalSection { lock: m, acquire: n(0), release: n(1) },
                CriticalSection { lock: m, acquire: n(2), release: n(3) },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_backwards_sections() {
        let c = Computation::from_edges(2, &[(0, 1)], vec![Op::Nop, Op::Nop]);
        let bad = LockedComputation::new(
            c,
            vec![CriticalSection { lock: Lock(0), acquire: n(1), release: n(0) }],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn serializations_enumerate_orders() {
        let lc = two_increments();
        let sers = lc.serializations();
        assert_eq!(sers.len(), 2, "two orders of two parallel sections");
        // One adds 1→2, the other 3→0.
        assert!(sers.iter().any(|c| c.precedes(n(1), n(2))));
        assert!(sers.iter().any(|c| c.precedes(n(3), n(0))));
    }

    #[test]
    fn dag_ordered_sections_have_one_serialization() {
        // Sections already ordered by the dag: the opposite order is
        // cyclic and gets skipped.
        let c = Computation::from_edges(4, &[(0, 1), (1, 2), (2, 3)], vec![Op::Nop; 4]);
        let m = Lock(0);
        let lc = LockedComputation::new(
            c,
            vec![
                CriticalSection { lock: m, acquire: n(0), release: n(1) },
                CriticalSection { lock: m, acquire: n(2), release: n(3) },
            ],
        )
        .unwrap();
        assert_eq!(lc.serializations().len(), 1);
    }

    #[test]
    fn locks_eliminate_the_lost_update() {
        // Without locks, LC admits the lost update: both sections read ⊥
        // (initial 0) and write, so one increment vanishes. With the lock
        // serialization, the second section's read *must* observe the
        // first section's write.
        let locked = two_increments();
        let plain = locked.computation().clone();

        // Collect the (section-A-read, section-B-read) observation pairs
        // admitted by LC with and without locks.
        let mut plain_outcomes = BTreeSet::new();
        let mut locked_outcomes = BTreeSet::new();
        let _ = for_each_observer(&plain, |phi| {
            let pair = (phi.get(l(0), n(0)), phi.get(l(0), n(2)));
            if Lc.contains(&plain, phi) {
                plain_outcomes.insert(pair);
            }
            if locked.contains_under(&Lc, phi) {
                locked_outcomes.insert(pair);
            }
            std::ops::ControlFlow::Continue(())
        });
        // Lost update: both sections read ⊥.
        assert!(plain_outcomes.contains(&(None, None)), "plain LC loses updates");
        assert!(
            !locked_outcomes.contains(&(None, None)),
            "lock serialization must forbid the lost update"
        );
        // One section reads ⊥, the other reads the first's write: allowed.
        assert!(locked_outcomes.contains(&(None, Some(n(1)))));
        assert!(locked_outcomes.contains(&(Some(n(3)), None)));
        // Locked outcomes ⊆ plain outcomes (extra edges only restrict).
        assert!(locked_outcomes.is_subset(&plain_outcomes));
    }

    #[test]
    fn drf_style_equivalence_on_fully_protected_program() {
        // Every conflicting access is inside a section of the same lock:
        // lock-aware LC and lock-aware SC admit identical outcome sets
        // (the DRF guarantee, computation-centric flavour).
        let locked = two_increments();
        let plain = locked.computation().clone();
        let mut lc_outcomes = BTreeSet::new();
        let mut sc_outcomes = BTreeSet::new();
        let _ = for_each_observer(&plain, |phi| {
            let tuple = (phi.get(l(0), n(0)), phi.get(l(0), n(2)), phi.get(l(0), n(4)));
            if locked.contains_under(&Lc, phi) {
                lc_outcomes.insert(tuple);
            }
            if locked.contains_under(&Sc, phi) {
                sc_outcomes.insert(tuple);
            }
            std::ops::ControlFlow::Continue(())
        });
        assert_eq!(lc_outcomes, sc_outcomes, "DRF: locked LC ≡ locked SC");
        assert!(!lc_outcomes.is_empty());
    }

    #[test]
    fn multiple_locks_serialize_independently() {
        // Two locks, one section each per thread: 2 × 2 serializations...
        // but each lock has sections on both threads: orders multiply.
        let c = Computation::from_edges(4, &[(0, 1), (2, 3)], vec![Op::Nop; 4]);
        let lc = LockedComputation::new(
            c,
            vec![
                CriticalSection { lock: Lock(0), acquire: n(0), release: n(0) },
                CriticalSection { lock: Lock(0), acquire: n(2), release: n(2) },
                CriticalSection { lock: Lock(1), acquire: n(1), release: n(1) },
                CriticalSection { lock: Lock(1), acquire: n(3), release: n(3) },
            ],
        )
        .unwrap();
        // 2 orders for lock 0 × 2 for lock 1, minus combinations that are
        // cyclic: (2→...→0 with 1→...→3) style conflicts.
        let sers = lc.serializations();
        assert!(!sers.is_empty());
        assert!(sers.len() <= 4);
        for s in &sers {
            // Serializations are genuine dags containing the original.
            assert!(s.dag().edge_count() >= 2);
        }
    }
}
