//! Fault-tolerant supervision for parallel sweeps.
//!
//! The plain engine in [`crate::sweep`] is all-or-nothing: one panicking
//! task aborts the whole run, there is no time budget, and a killed
//! multi-hour sweep loses all progress. This module wraps the same
//! poset-granular task queue with three guarantees:
//!
//! 1. **Panic quarantine.** Every task runs under `catch_unwind` and
//!    folds into a *fresh per-task delta*, merged into the global state
//!    only on success — so a mid-task panic cannot corrupt counts. A
//!    panicking task gets its worker scratch rebuilt and is retried once
//!    (transient faults heal); a second panic quarantines the task
//!    ([`Quarantined`]: task index, poset size, panic payload) and the
//!    sweep completes with [`SweepStatus::Degraded`]. Witnesses for all
//!    non-quarantined tasks keep the smallest-task-index contract, so
//!    they still match the serial scan exactly.
//!
//! 2. **Deadline budgets.** [`SweepConfig::deadline`] cooperatively
//!    stops workers between tasks once the budget elapses. The result is
//!    [`SweepStatus::Partial`], carrying the exact completed-task
//!    [`Frontier`] so the run can be resumed or reported honestly.
//!
//! 3. **Crash-safe checkpoint/resume.** Counting sweeps can journal
//!    `(frontier, merged state)` snapshots to an append-only
//!    [`CkptWriter`] every N completed tasks (fsync'd, torn-tail
//!    tolerant — see [`crate::ckpt`]). A later run passes the decoded
//!    snapshot back as `resume`: completed tasks are filtered out, the
//!    remaining deltas merge into the restored state, and because every
//!    merge here is commutative and associative the resumed totals and
//!    witnesses are **bit-identical** to an uninterrupted run.
//!
//! Determinism note: deltas are merged in worker completion order, which
//! is racy — so supervised sweeps require merges to be commutative and
//! associative (weighted counts are; the min-task-index witness merge is,
//! because task indices are unique). That is exactly the property the
//! unsupervised engine already relied on for its per-worker fold, now
//! stated as the [`Merge`] contract.
//!
//! Faults are injected deterministically via [`FaultPlan`] — see
//! [`crate::fault`]. The injected-kill path ([`SweepStatus::Killed`])
//! stops workers right after the configured checkpoint record, leaving
//! the journal exactly as a real `kill -9` would.

use super::{
    for_each_labelling, keep_min, maps_for, materialize, pop, run_workers, Keyed, LabelScratch,
    SweepConfig, Task,
};
use crate::ckpt::{get_u64, put_u64, CkptWriter};
use crate::computation::Computation;
use crate::constructible::lanes::block_empty;
use crate::enumerate::{
    for_each_observer, for_each_observer_node_major, location_major_index, node_major_shape,
};
use crate::fault::{payload_string, FaultPlan};
use crate::model::{CheckScratch, LanePack, LaneScratch, MemoryModel};
use crate::observer::ObserverFunction;
use crate::props::{
    any_extension, ConstructibilityWitness, IncompleteWitness, MonotonicityWitness,
};
use crate::relation::{Comparison, LatticeRow, Relation};
use crate::telemetry::{self, Counter};
use crate::universe::Universe;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Supervision settings for a sweep: the deterministic fault-injection
/// plan. Deadlines live on [`SweepConfig`]; checkpointing is passed to
/// the entry points that support it ([`sweep_supervised_ckpt`],
/// [`memberships_supervised`]).
#[derive(Debug, Default)]
pub struct Supervisor {
    /// Faults to inject (empty by default — see [`FaultPlan::none`]).
    pub fault: FaultPlan,
}

impl Supervisor {
    /// A supervisor that injects nothing.
    pub fn none() -> Self {
        Supervisor { fault: FaultPlan::none() }
    }

    /// A supervisor driving the given fault plan.
    pub fn with_fault(fault: FaultPlan) -> Self {
        Supervisor { fault }
    }
}

/// How a supervised sweep ended, from best to worst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SweepStatus {
    /// Every task scanned, nothing quarantined: results are exactly the
    /// serial scan's.
    Complete,
    /// Every task attempted but some quarantined after a failed retry:
    /// counts exclude the quarantined tasks' contributions; witnesses
    /// for all other tasks still match the serial scan.
    Degraded,
    /// The deadline stopped the sweep (or a checkpoint error did) before
    /// every task was attempted: counts cover exactly the frontier.
    Partial,
    /// The fault plan's simulated kill fired after a checkpoint record;
    /// the journal on disk is the source of truth for resume.
    Killed,
}

/// One task that panicked twice and was excluded from the results.
#[derive(Clone, Debug)]
pub struct Quarantined {
    /// Global task (poset) index of the failed task.
    pub task_idx: usize,
    /// Node count of the task's poset.
    pub size: usize,
    /// The second panic's payload, rendered as a string.
    pub payload: String,
}

/// The set of completed task indices, kept as sorted disjoint half-open
/// ranges `[start, end)` — the resume frontier of a partial sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Frontier {
    ranges: Vec<(usize, usize)>,
}

impl Frontier {
    /// The empty frontier.
    pub fn new() -> Self {
        Frontier::default()
    }

    /// Marks task `idx` complete, coalescing adjacent ranges.
    pub fn insert(&mut self, idx: usize) {
        let i = self.ranges.partition_point(|&(_, end)| end < idx);
        if i < self.ranges.len() {
            let (s, e) = self.ranges[i];
            if s <= idx && idx < e {
                return; // already complete
            }
        }
        let left = i < self.ranges.len() && self.ranges[i].1 == idx;
        let right_pos = if left { i + 1 } else { i };
        let right = right_pos < self.ranges.len() && self.ranges[right_pos].0 == idx + 1;
        match (left, right) {
            (true, true) => {
                self.ranges[i].1 = self.ranges[right_pos].1;
                self.ranges.remove(right_pos);
            }
            (true, false) => self.ranges[i].1 = idx + 1,
            (false, true) => self.ranges[right_pos].0 = idx,
            (false, false) => self.ranges.insert(i, (idx, idx + 1)),
        }
    }

    /// Whether task `idx` is complete.
    pub fn contains(&self, idx: usize) -> bool {
        let i = self.ranges.partition_point(|&(_, end)| end <= idx);
        i < self.ranges.len() && self.ranges[i].0 <= idx
    }

    /// Number of completed tasks.
    pub fn len(&self) -> usize {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether no task is complete.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The sorted disjoint ranges, for display.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    /// Appends the wire encoding (`count`, then `start`,`end` per range,
    /// all little-endian u64).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.ranges.len() as u64);
        for &(s, e) in &self.ranges {
            put_u64(out, s as u64);
            put_u64(out, e as u64);
        }
    }

    /// Consumes a wire encoding from the front of `input`; `None` if the
    /// bytes are truncated or the ranges are not sorted and disjoint.
    pub fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let n = get_u64(input)? as usize;
        let mut ranges = Vec::with_capacity(n.min(1024));
        let mut prev_end = 0usize;
        for i in 0..n {
            let s = get_u64(input)? as usize;
            let e = get_u64(input)? as usize;
            if s >= e || (i > 0 && s <= prev_end) {
                return None;
            }
            prev_end = e;
            ranges.push((s, e));
        }
        Some(Frontier { ranges })
    }
}

/// The outcome of a supervised sweep: the merged value plus everything
/// needed to interpret (and resume) it.
#[derive(Debug)]
pub struct Supervised<S> {
    /// The merged result. Complete ⇒ exactly the serial scan's value;
    /// Degraded ⇒ quarantined tasks' contributions are missing;
    /// Partial/Killed ⇒ covers exactly `frontier`.
    pub value: S,
    /// How the sweep ended.
    pub status: SweepStatus,
    /// Tasks excluded after panicking twice, sorted by task index.
    pub quarantined: Vec<Quarantined>,
    /// Completed task indices (includes tasks completed by a resumed-from
    /// run).
    pub frontier: Frontier,
    /// Total tasks in the sweep, including already-resumed ones.
    pub total_tasks: usize,
    /// A checkpoint-append failure, if one stopped journalling.
    pub ckpt_error: Option<String>,
}

impl<S> Supervised<S> {
    /// Whether every task was scanned successfully.
    pub fn is_complete(&self) -> bool {
        self.status == SweepStatus::Complete
    }

    /// Unwraps a sweep that must have completed cleanly — the bridge for
    /// the unsupervised `_par` entry points, which have no way to express
    /// degraded or partial results. Panics (with the first quarantined
    /// task's payload) otherwise, restoring the old abort-on-panic
    /// behaviour for callers that opted out of supervision.
    pub fn expect_complete(self, what: &str) -> S {
        match self.status {
            SweepStatus::Complete => self.value,
            SweepStatus::Degraded => match self.quarantined.first() {
                Some(q) => panic!(
                    "{what}: sweep degraded — {} task(s) quarantined; first: task {} ({} nodes): {}",
                    self.quarantined.len(),
                    q.task_idx,
                    q.size,
                    q.payload
                ),
                // Degraded with nothing quarantined: journalling failed.
                None => panic!(
                    "{what}: sweep degraded — checkpoint journalling failed: {}",
                    self.ckpt_error.as_deref().unwrap_or("unknown")
                ),
            },
            SweepStatus::Partial => panic!(
                "{what}: sweep stopped early with {} of {} tasks done — use a supervised entry point to consume partial results",
                self.frontier.len(),
                self.total_tasks
            ),
            SweepStatus::Killed => panic!("{what}: sweep killed by its fault plan"),
        }
    }

    /// Maps the value, keeping the supervision verdict.
    pub fn map<T>(self, f: impl FnOnce(S) -> T) -> Supervised<T> {
        Supervised {
            value: f(self.value),
            status: self.status,
            quarantined: self.quarantined,
            frontier: self.frontier,
            total_tasks: self.total_tasks,
            ckpt_error: self.ckpt_error,
        }
    }
}

/// Per-task delta merging. Supervised sweeps merge deltas in completion
/// order, so `merge` must be commutative and associative for results to
/// be deterministic (weighted counts and min-task-index witness slots
/// both are).
pub trait Merge {
    /// Folds `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// Where and how often a counting sweep journals `(frontier, state)`
/// snapshots.
pub struct CkptSink<'a, S> {
    /// Open journal to append to (created via [`CkptWriter::create`] or
    /// [`CkptWriter::append_to`]).
    pub writer: &'a mut CkptWriter,
    /// Append a snapshot every this many completed tasks (≥ 1).
    pub every: usize,
    /// Serializes the merged state + frontier into one record payload.
    pub encode: &'a (dyn Fn(&S, &Frontier) -> Vec<u8> + Sync),
}

/// Shared mutable sweep progress, behind one mutex (tasks are coarse —
/// one poset covers all its labellings — so commit contention is noise).
struct Shared<'a, S> {
    state: S,
    frontier: Frontier,
    quarantined: Vec<Quarantined>,
    since_ckpt: usize,
    ckpt: Option<CkptSink<'a, S>>,
    ckpt_error: Option<String>,
}

/// The supervised engine: distributes `tasks` over `threads` workers,
/// each task scanned into a fresh delta under `catch_unwind` (retried
/// once on panic, quarantined on a second), deltas committed through
/// `merge` under the shared lock, with cooperative deadline stop and
/// optional checkpoint journalling.
#[allow(clippy::too_many_arguments)] // internal engine; wrappers present the public face
pub(crate) fn run_supervised<S, X, XF, SC, MG>(
    mut tasks: Vec<Task>,
    threads: usize,
    deadline: Option<Duration>,
    fault: &FaultPlan,
    resume: Frontier,
    initial: S,
    ckpt: Option<CkptSink<'_, S>>,
    scratch: XF,
    scan: SC,
    merge: MG,
) -> Supervised<S>
where
    S: Send,
    XF: Fn() -> X + Sync,
    SC: Fn(&Task, &mut X) -> S + Sync,
    MG: Fn(&mut S, S, usize) + Sync,
{
    let ids: Vec<usize> = tasks.iter().map(|t| t.idx).collect();
    fault.resolve_indices(&ids);
    let total_tasks = tasks.len();
    if !resume.is_empty() {
        tasks.retain(|t| !resume.contains(t.idx));
    }
    let start = Instant::now();
    // Ordering audit: all three flags are accessed with Relaxed
    // throughout, which is sufficient because they are *advisory*,
    // monotonic (false→true once) booleans: they only influence how
    // soon workers stop scanning, never what a scanned task computes.
    // All result data travels through the `shared` Mutex (lock/unlock
    // provides acquire/release), and the final `into_inner` reads
    // happen after `run_workers` joins every worker thread — thread
    // join is a synchronizes-with edge, so the last stores to the
    // flags are visible without any fence. A worker seeing a stale
    // `false` merely scans one extra task; seeing a stale `true` is
    // impossible to distinguish from a slightly earlier stop.
    let stop = AtomicBool::new(false);
    let deadline_hit = AtomicBool::new(false);
    let killed = AtomicBool::new(false);
    let shared = Mutex::new(Shared {
        state: initial,
        frontier: resume,
        quarantined: Vec::new(),
        since_ckpt: 0,
        ckpt,
        ckpt_error: None,
    });
    run_workers(tasks, threads, |inj| {
        let mut x = scratch();
        while let Some(task) = pop(inj) {
            if stop.load(Ordering::Relaxed) {
                continue; // drain the queue without scanning
            }
            if deadline.is_some() {
                telemetry::count(Counter::DeadlinePolls, 1);
            }
            if deadline.is_some_and(|d| start.elapsed() >= d) {
                deadline_hit.store(true, Ordering::Relaxed);
                stop.store(true, Ordering::Relaxed);
                continue;
            }
            let delta = match catch_unwind(AssertUnwindSafe(|| {
                fault.before_task(task.idx);
                scan(&task, &mut x)
            })) {
                Ok(d) => Some(d),
                Err(_first) => {
                    // The panic may have left the worker scratch in an
                    // arbitrary state: rebuild it, then retry once.
                    x = scratch();
                    match catch_unwind(AssertUnwindSafe(|| {
                        fault.before_task(task.idx);
                        scan(&task, &mut x)
                    })) {
                        Ok(d) => Some(d),
                        Err(second) => {
                            x = scratch();
                            let q = Quarantined {
                                task_idx: task.idx,
                                size: task.size,
                                payload: payload_string(second),
                            };
                            telemetry::count(Counter::Quarantines, 1);
                            shared.lock().unwrap().quarantined.push(q);
                            None
                        }
                    }
                }
            };
            let Some(delta) = delta else { continue };
            let mut guard = shared.lock().unwrap();
            let g = &mut *guard;
            merge(&mut g.state, delta, task.idx);
            g.frontier.insert(task.idx);
            telemetry::progress_tick(g.frontier.len(), total_tasks, g.quarantined.len());
            if let Some(sink) = g.ckpt.as_mut() {
                if g.ckpt_error.is_none() {
                    g.since_ckpt += 1;
                    if g.since_ckpt >= sink.every {
                        g.since_ckpt = 0;
                        let payload = (sink.encode)(&g.state, &g.frontier);
                        // The fault plan can fail this record's write
                        // (the "disk full mid-run" shape) without going
                        // anywhere near the real file.
                        let wrote = if fault.io_error_at(sink.writer.snapshots() + 1) {
                            Err(std::io::Error::other(format!(
                                "injected fault: io error at ckpt record {}",
                                sink.writer.snapshots() + 1
                            )))
                        } else {
                            sink.writer.append(&payload)
                        };
                        match wrote {
                            Ok(()) => {
                                telemetry::count(Counter::CkptRecords, 1);
                                if fault.should_kill(sink.writer.snapshots()) {
                                    killed.store(true, Ordering::Relaxed);
                                    stop.store(true, Ordering::Relaxed);
                                }
                            }
                            Err(e) => {
                                // Journalling failed: keep sweeping, stop
                                // checkpointing, and surface the error.
                                g.ckpt_error = Some(e.to_string());
                            }
                        }
                    }
                }
            }
        }
    });
    let mut sh = shared.into_inner().unwrap();
    sh.quarantined.sort_by_key(|q| q.task_idx);
    let scanned = sh.frontier.len() + sh.quarantined.len();
    let status = if killed.into_inner() {
        SweepStatus::Killed
    } else if scanned < total_tasks {
        SweepStatus::Partial
    } else if !sh.quarantined.is_empty() || sh.ckpt_error.is_some() {
        // A journalling failure degrades the run even when every task
        // scanned cleanly: the verdicts are exact, but the promised
        // resumability is gone, and exit codes must say so.
        SweepStatus::Degraded
    } else {
        SweepStatus::Complete
    };
    Supervised {
        value: sh.state,
        status,
        quarantined: sh.quarantined,
        frontier: sh.frontier,
        total_tasks,
        ckpt_error: sh.ckpt_error,
    }
}

/// Supervised general counting sweep: like
/// [`crate::sweep::sweep_computations`] but with per-task transactional
/// deltas, panic quarantine, and deadline support. `empty` seeds each
/// task's delta; `scratch` builds per-worker scratch (rebuilt after a
/// panic); `work` folds one `(computation, weight)` into the delta.
pub fn sweep_supervised<S, X, EF, XF, WF>(
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
    empty: EF,
    scratch: XF,
    work: WF,
) -> Supervised<S>
where
    S: Merge + Send,
    EF: Fn() -> S + Sync,
    XF: Fn() -> X + Sync,
    WF: Fn(&mut S, &mut X, usize, &Computation, u64) + Sync,
{
    sweep_supervised_ckpt(u, cfg, sup, None, None, empty, scratch, work)
}

/// [`sweep_supervised`] plus checkpoint/resume: `resume` restores a
/// decoded `(frontier, state)` snapshot (completed tasks are skipped and
/// their contributions are already in `state`); `ckpt` journals fresh
/// snapshots as the sweep progresses. Because [`Merge`] is commutative
/// and associative and witnesses merge by unique minimal task index, a
/// resumed run is bit-identical to an uninterrupted one.
#[allow(clippy::too_many_arguments)]
pub fn sweep_supervised_ckpt<S, X, EF, XF, WF>(
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
    resume: Option<(Frontier, S)>,
    ckpt: Option<CkptSink<'_, S>>,
    empty: EF,
    scratch: XF,
    work: WF,
) -> Supervised<S>
where
    S: Merge + Send,
    EF: Fn() -> S + Sync,
    XF: Fn() -> X + Sync,
    WF: Fn(&mut S, &mut X, usize, &Computation, u64) + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    let (resume_frontier, initial) = match resume {
        Some((f, s)) => (f, s),
        None => (Frontier::new(), empty()),
    };
    run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        resume_frontier,
        initial,
        ckpt,
        || (LabelScratch::new(), scratch()),
        |task, xs| {
            let (ls, x) = xs;
            let mut delta = empty();
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, w| {
                work(&mut delta, x, task.idx, c, w);
                ControlFlow::Continue(())
            });
            delta
        },
        |g, d, _| g.merge(d),
    )
}

/// Keeps the smaller-task-index keyed witness of two merged slots.
fn merge_keyed<W>(dst: &mut Option<Keyed<W>>, src: Option<Keyed<W>>) {
    if let Some(k) = src {
        if dst.as_ref().is_none_or(|d| k.task_idx < d.task_idx) {
            *dst = Some(k);
        }
    }
}

/// Per-task (and merged) comparison state.
struct CmpState {
    both: usize,
    a_total: usize,
    b_total: usize,
    pairs_checked: usize,
    a_only: Option<Keyed<(Computation, ObserverFunction)>>,
    b_only: Option<Keyed<(Computation, ObserverFunction)>>,
}

impl CmpState {
    fn new() -> Self {
        CmpState { both: 0, a_total: 0, b_total: 0, pairs_checked: 0, a_only: None, b_only: None }
    }
}

/// Supervised [`crate::sweep::compare_par`]: same `Comparison` when
/// complete; under quarantine, totals exclude the quarantined tasks and
/// the witnesses of all other tasks still match the serial scan.
pub fn compare_supervised<A, B>(
    a: &A,
    b: &B,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Comparison>
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    let out = run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        Frontier::new(),
        CmpState::new(),
        None,
        || (LabelScratch::new(), CheckScratch::new()),
        |task, xs| {
            let (ls, check) = xs;
            let mut p = CmpState::new();
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, weight| {
                let w = weight as usize;
                let _ = for_each_observer(c, |phi| {
                    p.pairs_checked += w;
                    let in_a = a.contains_with(c, phi, check);
                    let in_b = b.contains_with(c, phi, check);
                    p.a_total += w * in_a as usize;
                    p.b_total += w * in_b as usize;
                    p.both += w * (in_a && in_b) as usize;
                    if in_a && !in_b {
                        keep_min(&mut p.a_only, task.idx, || (c.clone(), phi.clone()));
                    }
                    if in_b && !in_a {
                        keep_min(&mut p.b_only, task.idx, || (c.clone(), phi.clone()));
                    }
                    ControlFlow::Continue(())
                });
                ControlFlow::Continue(())
            });
            p
        },
        |g, d, _| {
            g.both += d.both;
            g.a_total += d.a_total;
            g.b_total += d.b_total;
            g.pairs_checked += d.pairs_checked;
            merge_keyed(&mut g.a_only, d.a_only);
            merge_keyed(&mut g.b_only, d.b_only);
        },
    );
    out.map(|p| {
        let a_only = p.a_only.map(|k| k.witness);
        let b_only = p.b_only.map(|k| k.witness);
        let relation = match (&a_only, &b_only) {
            (None, None) => Relation::Equal,
            (None, Some(_)) => Relation::StrictlyStronger,
            (Some(_), None) => Relation::StrictlyWeaker,
            (Some(_), Some(_)) => Relation::Incomparable,
        };
        Comparison {
            relation,
            a_only,
            b_only,
            both: p.both,
            a_total: p.a_total,
            b_total: p.b_total,
            pairs_checked: p.pairs_checked,
        }
    })
}

/// Supervised [`crate::sweep::relation_par`]. Witness-existence evidence
/// found by a task that later panics is kept — it is a real pair, so the
/// verdict stays sound; a degraded verdict may at worst miss evidence
/// from quarantined tasks (conservative toward `Equal`/one-sided).
pub fn relation_supervised<A, B>(
    a: &A,
    b: &B,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Relation>
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    // Ordering audit: Relaxed is enough for these monotonic
    // (false→true) evidence flags. A stale `false` costs at most one
    // redundant check of a pair that would set the same flag; the final
    // loads below run after `run_supervised` has joined every worker
    // (thread join synchronizes-with), so no store can be missed.
    let found_a_only = AtomicBool::new(false);
    let found_b_only = AtomicBool::new(false);
    let out = run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        Frontier::new(),
        (),
        None,
        || (LabelScratch::new(), CheckScratch::new()),
        |task, xs| {
            if found_a_only.load(Ordering::Relaxed) && found_b_only.load(Ordering::Relaxed) {
                return; // verdict already forced
            }
            let (ls, check) = xs;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                let done_a = found_a_only.load(Ordering::Relaxed);
                let done_b = found_b_only.load(Ordering::Relaxed);
                if done_a && done_b {
                    return ControlFlow::Break(());
                }
                let _ = for_each_observer(c, |phi| {
                    let in_a = a.contains_with(c, phi, check);
                    let in_b = b.contains_with(c, phi, check);
                    if in_a && !in_b {
                        found_a_only.store(true, Ordering::Relaxed);
                    }
                    if in_b && !in_a {
                        found_b_only.store(true, Ordering::Relaxed);
                    }
                    ControlFlow::Continue(())
                });
                ControlFlow::Continue(())
            });
        },
        |_, _, _| {},
    );
    let relation =
        match (found_a_only.load(Ordering::Relaxed), found_b_only.load(Ordering::Relaxed)) {
            (false, false) => Relation::Equal,
            (false, true) => Relation::StrictlyStronger,
            (true, false) => Relation::StrictlyWeaker,
            (true, true) => Relation::Incomparable,
        };
    out.map(|()| relation)
}

/// Supervised [`crate::sweep::lattice_par`]: every cell runs under the
/// same supervisor (so one fault plan spans the whole matrix), and the
/// worst cell status wins. The deadline applies per cell.
pub fn lattice_supervised<M: MemoryModel + Sync>(
    models: &[M],
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Vec<LatticeRow>> {
    let mut status = SweepStatus::Complete;
    let mut quarantined = Vec::new();
    let mut total_tasks = 0;
    let mut rows = Vec::new();
    for a in models {
        let mut row = LatticeRow { name: a.name().to_string(), relations: Vec::new() };
        for b in models {
            let cell = relation_supervised(a, b, u, cfg, sup);
            status = status.max(cell.status);
            quarantined.extend(cell.quarantined);
            total_tasks += cell.total_tasks;
            row.relations.push(cell.value);
        }
        rows.push(row);
    }
    quarantined.sort_by_key(|q| q.task_idx);
    Supervised {
        value: rows,
        status,
        quarantined,
        frontier: Frontier::new(),
        total_tasks,
        ckpt_error: None,
    }
}

/// Supervised first-witness search (the engine behind the `check_*`
/// entry points): the winning — minimal-task-index — witness is published
/// to the shared `best` atomic only at commit time, so a task that found
/// a candidate but then panicked cannot suppress other tasks' witnesses.
fn search_supervised<W, X, XF, F>(
    tasks: Vec<Task>,
    cfg: &SweepConfig,
    sup: &Supervisor,
    scratch: XF,
    scan: F,
) -> Supervised<Option<W>>
where
    W: Send,
    XF: Fn() -> X + Sync,
    F: Fn(&Task, &mut X, &dyn Fn() -> bool) -> Option<W> + Sync,
{
    // Ordering audit: `best` is a Relaxed pruning hint, not the answer.
    // fetch_min is an atomic RMW, so concurrent minima commute and none
    // is lost regardless of ordering; a worker reading a stale (larger)
    // value only scans a task whose witness `merge_keyed` then discards
    // under the shared lock — the authoritative min-task-index merge.
    let best = AtomicUsize::new(usize::MAX);
    let out = run_supervised(
        tasks,
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        Frontier::new(),
        None::<Keyed<W>>,
        None,
        scratch,
        |task, x| {
            if best.load(Ordering::Relaxed) < task.idx {
                return None; // an earlier task already has a witness
            }
            let superseded = || best.load(Ordering::Relaxed) < task.idx;
            scan(task, x, &superseded).map(|w| Keyed { task_idx: task.idx, witness: w })
        },
        |g, d, idx| {
            if d.is_some() {
                best.fetch_min(idx, Ordering::Relaxed);
            }
            merge_keyed(g, d);
        },
    );
    out.map(|k| k.map(|k| k.witness))
}

/// Supervised [`crate::sweep::check_complete_par`]; `Some` is the serial
/// scan's witness.
pub fn check_complete_supervised<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Option<IncompleteWitness>> {
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    search_supervised(
        materialize(u, cfg.canonical),
        cfg,
        sup,
        || (LabelScratch::new(), CheckScratch::new()),
        |task, xs, superseded| {
            let (ls, check) = xs;
            let mut found = None;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                if superseded() {
                    return ControlFlow::Break(());
                }
                let mut any = false;
                let _ = for_each_observer(c, |phi| {
                    if model.contains_with(c, phi, check) {
                        any = true;
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                });
                if !any {
                    found = Some(c.clone());
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            found
        },
    )
}

/// Supervised [`crate::sweep::check_monotonic_par`]; `Some` is the serial
/// scan's witness.
pub fn check_monotonic_supervised<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Option<MonotonicityWitness>> {
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    search_supervised(
        materialize(u, cfg.canonical),
        cfg,
        sup,
        || (LabelScratch::new(), CheckScratch::new()),
        |task, xs, superseded| {
            let (ls, check) = xs;
            let mut found = None;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                if superseded() {
                    return ControlFlow::Break(());
                }
                for_each_observer(c, |phi| {
                    if !model.contains_with(c, phi, check) {
                        return ControlFlow::Continue(());
                    }
                    for (na, nb) in c.dag().edges() {
                        let relaxed = c.without_edge(na, nb).expect("edge exists");
                        if !model.contains_with(&relaxed, phi, check) {
                            found = Some(MonotonicityWitness {
                                c: c.clone(),
                                phi: phi.clone(),
                                relaxed,
                            });
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                })
            });
            found
        },
    )
}

/// Supervised [`crate::sweep::check_constructible_aug_par`]; `Some` is
/// the serial scan's witness.
pub fn check_constructible_aug_supervised<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Option<ConstructibilityWitness>> {
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    let bounded = Universe { max_nodes: u.max_nodes.saturating_sub(1), ..*u };
    search_supervised(
        materialize(&bounded, cfg.canonical),
        cfg,
        sup,
        || (LabelScratch::new(), CheckScratch::new()),
        |task, xs, superseded| {
            let (ls, check) = xs;
            let mut found = None;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                if superseded() {
                    return ControlFlow::Break(());
                }
                for_each_observer(c, |phi| {
                    if !model.contains_with(c, phi, check) {
                        return ControlFlow::Continue(());
                    }
                    for &o in &alphabet {
                        let aug = c.augment(o);
                        if !any_extension(&aug, phi, |phi2| model.contains_with(&aug, phi2, check))
                        {
                            found = Some(ConstructibilityWitness {
                                c: c.clone(),
                                phi: phi.clone(),
                                extension: aug,
                                op: o,
                            });
                            return ControlFlow::Break(());
                        }
                    }
                    ControlFlow::Continue(())
                })
            });
            found
        },
    )
}

/// Packs the membership verdicts of `c`'s observers, in node-major
/// enumeration order, into a bit mask (bit `p` ⇔ `p`-th node-major
/// observer is a member) via the lane kernel.
fn lane_member_mask<M: MemoryModel + Sync>(
    model: &M,
    c: &Computation,
    pack: &mut LanePack,
    lscr: &mut LaneScratch,
    out: &mut Vec<u64>,
) {
    out.clear();
    pack.prepare(c);
    let flush = |pack: &mut LanePack, lscr: &mut LaneScratch, out: &mut Vec<u64>| {
        let used = pack.used();
        telemetry::count(Counter::LaneWords, 1);
        telemetry::count(Counter::LaneSlots, u64::from(used.count_ones()));
        out.push(model.contains_lanes(c, pack, lscr) & used);
        pack.clear_lanes();
    };
    let _ = for_each_observer_node_major(c, |phi| {
        pack.push_valid(c, phi);
        if pack.is_full() {
            flush(pack, lscr, out);
        }
        ControlFlow::Continue(())
    });
    if !pack.is_empty() {
        flush(pack, lscr, out);
    }
}

/// Lane-parallel [`check_constructible_aug_supervised`]: instead of
/// probing `any_extension` per member observer, it packs each
/// labelling's member verdicts and each augmentation's member verdicts
/// into node-major masks, so one aligned block-emptiness test per
/// `(member, op)` replaces the scalar candidate enumeration. The
/// returned witness is **identical** to the scalar scan's: node-major
/// failures are re-ranked by location-major observer index (the scalar
/// enumeration order) and op position before the first one is chosen.
pub fn check_constructible_aug_lanes_supervised<M: MemoryModel + Sync>(
    model: &M,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Option<ConstructibilityWitness>> {
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    let bounded = Universe { max_nodes: u.max_nodes.saturating_sub(1), ..*u };
    search_supervised(
        materialize(&bounded, cfg.canonical),
        cfg,
        sup,
        || (LabelScratch::new(), LanePack::new(), LaneScratch::new()),
        |task, xs, superseded| {
            let (ls, pack, lscr) = xs;
            let mut found = None;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                if superseded() {
                    return ControlFlow::Break(());
                }
                let mut members = Vec::new();
                lane_member_mask(model, c, pack, lscr, &mut members);
                if members.iter().all(|&w| w == 0) {
                    return ControlFlow::Continue(());
                }
                // Per op: the augmentation's member mask and its block
                // size E — member bit p of `c` extends exactly into the
                // block [p·E, (p+1)·E) of the augmentation's mask.
                let augs: Vec<_> = alphabet
                    .iter()
                    .map(|&o| {
                        let aug = c.augment(o);
                        let (_, block) = node_major_shape(&aug);
                        let mut mask = Vec::new();
                        lane_member_mask(model, &aug, pack, lscr, &mut mask);
                        (o, aug, mask, block)
                    })
                    .collect();
                // For each member, the first op (alphabet order) whose
                // extension block is empty — mirroring the scalar scan's
                // inner op loop.
                let mut failing: Vec<(u64, usize)> = Vec::new();
                for (wi, &w) in members.iter().enumerate() {
                    let mut w = w;
                    while w != 0 {
                        let p = (wi as u64) * 64 + u64::from(w.trailing_zeros());
                        w &= w - 1;
                        for (j, (_, _, mask, block)) in augs.iter().enumerate() {
                            if block_empty(mask, p * block, *block) {
                                failing.push((p, j));
                                break;
                            }
                        }
                    }
                }
                if failing.is_empty() {
                    return ControlFlow::Continue(());
                }
                // Re-rank node-major failures into the scalar scan's
                // (location-major observer, op) order and keep the first.
                let mut best: Option<(u64, usize, ObserverFunction)> = None;
                let mut p = 0u64;
                let _ = for_each_observer_node_major(c, |phi| {
                    if let Some(&(_, j)) = failing.iter().find(|&&(q, _)| q == p) {
                        let rank =
                            location_major_index(c, phi).expect("enumerated observer is valid");
                        if best.as_ref().is_none_or(|(r, bj, _)| (rank, j) < (*r, *bj)) {
                            best = Some((rank, j, phi.clone()));
                        }
                    }
                    p += 1;
                    ControlFlow::Continue(())
                });
                let (_, j, phi) = best.expect("failing set is non-empty");
                let (o, aug, _, _) = &augs[j];
                found = Some(ConstructibilityWitness {
                    c: c.clone(),
                    phi,
                    extension: aug.clone(),
                    op: *o,
                });
                ControlFlow::Break(())
            });
            found
        },
    )
}

// ---------------------------------------------------------------------
// A ready-made checkpointable state: weighted membership counts
// ---------------------------------------------------------------------

/// Weighted membership counts: the checkpointable state behind
/// `ccmm sweep` phase 1 and the kill/resume tests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountsState {
    /// Weighted (C, Φ) pairs visited.
    pub pairs: u64,
    /// Weighted membership count per model, in caller order.
    pub per_model: Vec<u64>,
}

impl CountsState {
    /// Zero counts for `models` models.
    pub fn new(models: usize) -> Self {
        CountsState { pairs: 0, per_model: vec![0; models] }
    }

    /// Appends the wire encoding (`pairs`, model count, per-model counts,
    /// all little-endian u64).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_u64(out, self.pairs);
        put_u64(out, self.per_model.len() as u64);
        for &m in &self.per_model {
            put_u64(out, m);
        }
    }

    /// Consumes a wire encoding from the front of `input`.
    pub fn decode_from(input: &mut &[u8]) -> Option<Self> {
        let pairs = get_u64(input)?;
        let n = get_u64(input)? as usize;
        if n > 4096 {
            return None; // corrupt count, not a real model list
        }
        let mut per_model = Vec::with_capacity(n);
        for _ in 0..n {
            per_model.push(get_u64(input)?);
        }
        Some(CountsState { pairs, per_model })
    }
}

impl Merge for CountsState {
    fn merge(&mut self, other: Self) {
        debug_assert_eq!(self.per_model.len(), other.per_model.len());
        self.pairs += other.pairs;
        for (d, s) in self.per_model.iter_mut().zip(other.per_model) {
            *d += s;
        }
    }
}

/// Encodes one checkpoint snapshot payload: frontier, then counts.
pub fn encode_counts_snapshot(frontier: &Frontier, counts: &CountsState) -> Vec<u8> {
    let mut out = Vec::new();
    frontier.encode_into(&mut out);
    counts.encode_into(&mut out);
    out
}

/// Decodes a snapshot produced by [`encode_counts_snapshot`].
pub fn decode_counts_snapshot(mut bytes: &[u8]) -> Option<(Frontier, CountsState)> {
    let frontier = Frontier::decode_from(&mut bytes)?;
    let counts = CountsState::decode_from(&mut bytes)?;
    Some((frontier, counts))
}

/// Supervised weighted membership counting over every `(C, Φ)` pair of
/// the universe: the checkpointable sweep behind `ccmm sweep` phase 1.
/// `ckpt` is `(journal, every-N-tasks)`; `resume` a decoded snapshot.
pub fn memberships_supervised<M: MemoryModel + Sync>(
    models: &[M],
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
    resume: Option<(Frontier, CountsState)>,
    ckpt: Option<(&mut CkptWriter, usize)>,
) -> Supervised<CountsState> {
    let n = models.len();
    let encode = |s: &CountsState, f: &Frontier| encode_counts_snapshot(f, s);
    let sink = ckpt.map(|(writer, every)| CkptSink { writer, every, encode: &encode });
    sweep_supervised_ckpt(
        u,
        cfg,
        sup,
        resume,
        sink,
        || CountsState::new(n),
        CheckScratch::new,
        |acc, check, _, c, w| {
            let _ = for_each_observer(c, |phi| {
                telemetry::count(Counter::PairsChecked, 1);
                acc.pairs += w;
                for (i, m) in models.iter().enumerate() {
                    if m.contains_with(c, phi, check) {
                        acc.per_model[i] += w;
                    }
                }
                ControlFlow::Continue(())
            });
        },
    )
}

/// Lane-engine counterpart of [`memberships_supervised`]: packs up to
/// [`crate::model::LANES`] observers per [`LanePack`] and decides them in
/// lockstep via [`MemoryModel::contains_lanes`]. Counts are identical to
/// the scalar engine — a verdict mask contributes
/// `weight × popcount(verdict)`. Checkpoints stay task (poset) granular
/// with the scalar snapshot encoding, so journals from either engine
/// resume bit-identically under the same fingerprint discipline.
pub fn memberships_lanes_supervised<M: MemoryModel + Sync>(
    models: &[M],
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
    resume: Option<(Frontier, CountsState)>,
    ckpt: Option<(&mut CkptWriter, usize)>,
) -> Supervised<CountsState> {
    let n = models.len();
    let encode = |s: &CountsState, f: &Frontier| encode_counts_snapshot(f, s);
    let sink = ckpt.map(|(writer, every)| CkptSink { writer, every, encode: &encode });
    sweep_supervised_ckpt(
        u,
        cfg,
        sup,
        resume,
        sink,
        || CountsState::new(n),
        || (LanePack::new(), LaneScratch::new()),
        |acc, xs, _, c, w| {
            let (pack, lanes) = xs;
            pack.prepare(c);
            let mut flush = |pack: &mut LanePack, lanes: &mut LaneScratch| {
                let used = pack.used();
                let slots = u64::from(used.count_ones());
                telemetry::count(Counter::LaneWords, 1);
                telemetry::count(Counter::LaneSlots, slots);
                telemetry::count(Counter::PairsChecked, slots);
                acc.pairs += w * slots;
                for (i, m) in models.iter().enumerate() {
                    let verdict = m.contains_lanes(c, pack, lanes) & used;
                    acc.per_model[i] += w * u64::from(verdict.count_ones());
                }
                pack.clear_lanes();
            };
            let _ = for_each_observer(c, |phi| {
                pack.push_valid(c, phi);
                if pack.is_full() {
                    flush(pack, lanes);
                }
                ControlFlow::Continue(())
            });
            if !pack.is_empty() {
                flush(pack, lanes);
            }
        },
    )
}

/// Lane-engine counterpart of [`compare_supervised`]: same `Comparison`
/// — counts AND first witnesses — as the scalar engine. Lanes fill in
/// observer-enumeration order, so the lowest set bit of a one-sided
/// verdict mask is exactly the scalar scan's first witness, and
/// [`keep_min`]/[`merge_keyed`] resolve across flushes and tasks exactly
/// as they do for scalar checks.
pub fn compare_lanes_supervised<A, B>(
    a: &A,
    b: &B,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Comparison>
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    let out = run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        Frontier::new(),
        CmpState::new(),
        None,
        || (LabelScratch::new(), LanePack::new(), LaneScratch::new()),
        |task, xs| {
            let (ls, pack, lanes) = xs;
            let mut p = CmpState::new();
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, weight| {
                let w = weight as usize;
                pack.prepare(c);
                let mut flush = |pack: &mut LanePack, lanes: &mut LaneScratch| {
                    let used = pack.used();
                    telemetry::count(Counter::LaneWords, 1);
                    telemetry::count(Counter::LaneSlots, u64::from(used.count_ones()));
                    p.pairs_checked += w * used.count_ones() as usize;
                    let va = a.contains_lanes(c, pack, lanes) & used;
                    let vb = b.contains_lanes(c, pack, lanes) & used;
                    p.a_total += w * va.count_ones() as usize;
                    p.b_total += w * vb.count_ones() as usize;
                    p.both += w * (va & vb).count_ones() as usize;
                    let a_mask = va & !vb;
                    if a_mask != 0 {
                        let lane = a_mask.trailing_zeros() as usize;
                        keep_min(&mut p.a_only, task.idx, || (c.clone(), pack.extract(c, lane)));
                    }
                    let b_mask = vb & !va;
                    if b_mask != 0 {
                        let lane = b_mask.trailing_zeros() as usize;
                        keep_min(&mut p.b_only, task.idx, || (c.clone(), pack.extract(c, lane)));
                    }
                    pack.clear_lanes();
                };
                let _ = for_each_observer(c, |phi| {
                    pack.push_valid(c, phi);
                    if pack.is_full() {
                        flush(pack, lanes);
                    }
                    ControlFlow::Continue(())
                });
                if !pack.is_empty() {
                    flush(pack, lanes);
                }
                ControlFlow::Continue(())
            });
            p
        },
        |g, d, _| {
            g.both += d.both;
            g.a_total += d.a_total;
            g.b_total += d.b_total;
            g.pairs_checked += d.pairs_checked;
            merge_keyed(&mut g.a_only, d.a_only);
            merge_keyed(&mut g.b_only, d.b_only);
        },
    );
    out.map(|p| {
        let a_only = p.a_only.map(|k| k.witness);
        let b_only = p.b_only.map(|k| k.witness);
        let relation = match (&a_only, &b_only) {
            (None, None) => Relation::Equal,
            (None, Some(_)) => Relation::StrictlyStronger,
            (Some(_), None) => Relation::StrictlyWeaker,
            (Some(_), Some(_)) => Relation::Incomparable,
        };
        Comparison {
            relation,
            a_only,
            b_only,
            both: p.both,
            a_total: p.a_total,
            b_total: p.b_total,
            pairs_checked: p.pairs_checked,
        }
    })
}

/// Lane-engine counterpart of [`relation_supervised`]: existence-only
/// evidence via verdict masks, with the same early exit once both sides
/// have a witness. Verdict soundness is unchanged — masks are already
/// restricted to valid lanes.
pub fn relation_lanes_supervised<A, B>(
    a: &A,
    b: &B,
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Relation>
where
    A: MemoryModel + Sync,
    B: MemoryModel + Sync,
{
    let alphabet = u.alphabet();
    let maps = maps_for(u, cfg, &alphabet);
    // Ordering audit: same argument as `relation_supervised` — Relaxed
    // monotonic evidence flags, final loads after worker join.
    let found_a_only = AtomicBool::new(false);
    let found_b_only = AtomicBool::new(false);
    let out = run_supervised(
        materialize(u, cfg.canonical),
        cfg.threads,
        cfg.deadline,
        &sup.fault,
        Frontier::new(),
        (),
        None,
        || (LabelScratch::new(), LanePack::new(), LaneScratch::new()),
        |task, xs| {
            if found_a_only.load(Ordering::Relaxed) && found_b_only.load(Ordering::Relaxed) {
                return; // verdict already forced
            }
            let (ls, pack, lanes) = xs;
            let _ = for_each_labelling(&alphabet, &maps, task, ls, &mut |c, _| {
                let done_a = found_a_only.load(Ordering::Relaxed);
                let done_b = found_b_only.load(Ordering::Relaxed);
                if done_a && done_b {
                    return ControlFlow::Break(());
                }
                pack.prepare(c);
                let flush = |pack: &mut LanePack, lanes: &mut LaneScratch| {
                    let used = pack.used();
                    let va = a.contains_lanes(c, pack, lanes) & used;
                    let vb = b.contains_lanes(c, pack, lanes) & used;
                    if va & !vb != 0 {
                        found_a_only.store(true, Ordering::Relaxed);
                    }
                    if vb & !va != 0 {
                        found_b_only.store(true, Ordering::Relaxed);
                    }
                    pack.clear_lanes();
                };
                let _ = for_each_observer(c, |phi| {
                    pack.push_valid(c, phi);
                    if pack.is_full() {
                        flush(pack, lanes);
                    }
                    ControlFlow::Continue(())
                });
                if !pack.is_empty() {
                    flush(pack, lanes);
                }
                ControlFlow::Continue(())
            });
        },
        |_, _, _| {},
    );
    let relation =
        match (found_a_only.load(Ordering::Relaxed), found_b_only.load(Ordering::Relaxed)) {
            (false, false) => Relation::Equal,
            (false, true) => Relation::StrictlyStronger,
            (true, false) => Relation::StrictlyWeaker,
            (true, true) => Relation::Incomparable,
        };
    out.map(|()| relation)
}

/// Lane-engine counterpart of [`lattice_supervised`]: every cell runs
/// [`relation_lanes_supervised`] under the same supervisor; the worst
/// cell status wins, as in the scalar lattice.
pub fn lattice_lanes_supervised<M: MemoryModel + Sync>(
    models: &[M],
    u: &Universe,
    cfg: &SweepConfig,
    sup: &Supervisor,
) -> Supervised<Vec<LatticeRow>> {
    let mut status = SweepStatus::Complete;
    let mut quarantined = Vec::new();
    let mut total_tasks = 0;
    let mut rows = Vec::new();
    for a in models {
        let mut row = LatticeRow { name: a.name().to_string(), relations: Vec::new() };
        for b in models {
            let cell = relation_lanes_supervised(a, b, u, cfg, sup);
            status = status.max(cell.status);
            quarantined.extend(cell.quarantined);
            total_tasks += cell.total_tasks;
            row.relations.push(cell.value);
        }
        rows.push(row);
    }
    quarantined.sort_by_key(|q| q.task_idx);
    Supervised {
        value: rows,
        status,
        quarantined,
        frontier: Frontier::new(),
        total_tasks,
        ckpt_error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::relation::compare;

    const MODELS: [Model; 6] = [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww];

    fn temp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ccmm-sup-{name}-{}", std::process::id()))
    }

    #[test]
    fn frontier_insert_coalesces_and_round_trips() {
        let mut f = Frontier::new();
        for idx in [5, 3, 4, 9, 0, 1, 10, 7] {
            f.insert(idx);
            f.insert(idx); // idempotent
        }
        assert_eq!(f.ranges(), &[(0, 2), (3, 6), (7, 8), (9, 11)]);
        assert_eq!(f.len(), 8);
        for idx in [0, 1, 3, 4, 5, 7, 9, 10] {
            assert!(f.contains(idx));
        }
        for idx in [2, 6, 8, 11, 100] {
            assert!(!f.contains(idx));
        }
        f.insert(8); // bridges (7,8) and (9,11)
        assert_eq!(f.ranges(), &[(0, 2), (3, 6), (7, 11)]);
        let mut buf = Vec::new();
        f.encode_into(&mut buf);
        let mut r: &[u8] = &buf;
        assert_eq!(Frontier::decode_from(&mut r), Some(f));
        assert!(r.is_empty());
        // Truncated and unsorted encodings are rejected.
        let mut torn: &[u8] = &buf[..buf.len() - 1];
        assert!(Frontier::decode_from(&mut torn).is_none());
        let mut bad = Vec::new();
        put_u64(&mut bad, 2);
        for v in [5u64, 9, 1, 3] {
            put_u64(&mut bad, v);
        }
        let mut r: &[u8] = &bad;
        assert!(Frontier::decode_from(&mut r).is_none());
    }

    #[test]
    fn clean_supervised_memberships_are_complete_and_match_unsupervised() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2);
        let sup = Supervisor::none();
        let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, None);
        assert!(out.is_complete());
        assert!(out.quarantined.is_empty());
        assert_eq!(out.frontier.len(), out.total_tasks);
        // Pair totals match the exhaustive comparison's count.
        let serial = compare(&Model::Sc, &Model::Lc, &u);
        assert_eq!(out.value.pairs as usize, serial.pairs_checked);
        assert_eq!(out.value.per_model[0] as usize, serial.a_total);
        assert_eq!(out.value.per_model[1] as usize, serial.b_total);
    }

    #[test]
    fn persistent_panic_quarantines_and_degrades() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2);
        let clean =
            memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None).value;
        let sup = Supervisor::with_fault(FaultPlan::none().panic_at_task(0));
        let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, None);
        assert_eq!(out.status, SweepStatus::Degraded);
        assert_eq!(out.quarantined.len(), 1);
        assert_eq!(out.quarantined[0].task_idx, 0);
        assert!(out.quarantined[0].payload.contains("panic at task 0"));
        assert!(!out.frontier.contains(0));
        assert_eq!(out.frontier.len() + 1, out.total_tasks);
        // Task 0 is the empty poset: exactly one (C, Φ) pair missing.
        assert_eq!(out.value.pairs, clean.pairs - 1);
    }

    #[test]
    fn transient_panic_heals_on_retry() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2);
        let clean =
            memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None).value;
        let sup = Supervisor::with_fault(FaultPlan::none().panic_once_at_task(2));
        let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, None);
        assert!(out.is_complete(), "retry should heal a once-fault");
        assert_eq!(out.value, clean);
    }

    #[test]
    fn zero_deadline_yields_partial_with_empty_frontier() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2).deadline(Duration::ZERO);
        let out = memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None);
        assert_eq!(out.status, SweepStatus::Partial);
        assert!(out.frontier.is_empty());
        assert_eq!(out.value.pairs, 0);
    }

    #[test]
    fn kill_resume_is_bit_identical() {
        let u = Universe::new(3, 1);
        for threads in [1, 2, 4] {
            let cfg = SweepConfig::with_threads(threads).canonical(true);
            let clean =
                memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None).value;
            let path = temp(&format!("killres-{threads}"));
            let mut writer = CkptWriter::create(&path, "test fp").unwrap();
            let sup = Supervisor::with_fault(FaultPlan::none().kill_after_records(2));
            let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, Some((&mut writer, 1)));
            assert_eq!(out.status, SweepStatus::Killed);
            drop(writer);
            let ck = crate::ckpt::Checkpoint::load(&path).unwrap();
            assert_eq!(ck.fingerprint, "test fp");
            assert!(ck.snapshots.len() >= 2);
            let (frontier, counts) = decode_counts_snapshot(ck.latest().unwrap()).unwrap();
            assert!(frontier.len() >= 2);
            let mut writer = CkptWriter::append_to(&path).unwrap();
            let resumed = memberships_supervised(
                &MODELS,
                &u,
                &cfg,
                &Supervisor::none(),
                Some((frontier, counts)),
                Some((&mut writer, 1)),
            );
            assert!(resumed.is_complete(), "{threads} threads");
            assert_eq!(resumed.value, clean, "{threads} threads: resume must be bit-identical");
            assert_eq!(resumed.frontier.len(), resumed.total_tasks);
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn lane_memberships_match_scalar_at_every_thread_count() {
        // The lane64 engine must reproduce the scalar engine's weighted
        // membership counts exactly — labelled and canonical, 1/2/4
        // threads — because downstream tables and gates treat the two
        // engines as interchangeable up to throughput.
        let u = Universe::new(4, 1);
        for canonical in [false, true] {
            let scalar = memberships_supervised(
                &MODELS,
                &u,
                &SweepConfig::with_threads(1).canonical(canonical),
                &Supervisor::none(),
                None,
                None,
            )
            .expect_complete("scalar memberships");
            for threads in [1, 2, 4] {
                let cfg = SweepConfig::with_threads(threads).canonical(canonical);
                let lanes = memberships_lanes_supervised(
                    &MODELS,
                    &u,
                    &cfg,
                    &Supervisor::none(),
                    None,
                    None,
                )
                .expect_complete("lane memberships");
                assert_eq!(lanes, scalar, "canonical={canonical} threads={threads}");
            }
        }
    }

    #[test]
    fn lane_compare_matches_scalar_counts_and_witnesses() {
        let u = Universe::new(4, 1);
        let serial = compare(&Model::Lc, &Model::Nn, &u);
        for threads in [1, 2, 4] {
            let cfg = SweepConfig::with_threads(threads).canonical(true);
            let out =
                compare_lanes_supervised(&Model::Lc, &Model::Nn, &u, &cfg, &Supervisor::none())
                    .expect_complete("lane compare");
            assert_eq!(out.relation, serial.relation, "{threads} threads");
            assert_eq!(out.both, serial.both, "{threads} threads");
            assert_eq!(out.a_total, serial.a_total, "{threads} threads");
            assert_eq!(out.b_total, serial.b_total, "{threads} threads");
            assert_eq!(out.pairs_checked, serial.pairs_checked, "{threads} threads");
            assert_eq!(out.a_only, serial.a_only, "{threads} threads: a_only witness");
            assert_eq!(out.b_only, serial.b_only, "{threads} threads: b_only witness");
        }
    }

    #[test]
    fn lane_lattice_matches_scalar() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2).canonical(true);
        let scalar = lattice_supervised(&MODELS, &u, &cfg, &Supervisor::none());
        let lanes = lattice_lanes_supervised(&MODELS, &u, &cfg, &Supervisor::none());
        assert!(lanes.is_complete());
        for (a, b) in scalar.value.iter().zip(&lanes.value) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.relations, b.relations, "lattice row {} drift", a.name);
        }
    }

    #[test]
    fn lane_kill_resume_is_bit_identical() {
        // Same discipline as the scalar kill/resume test: a lane journal
        // truncated by an injected kill must resume to the exact clean
        // counts, at every thread count.
        let u = Universe::new(3, 1);
        for threads in [1, 2, 4] {
            let cfg = SweepConfig::with_threads(threads).canonical(true);
            let clean =
                memberships_lanes_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None)
                    .value;
            let path = temp(&format!("lane-killres-{threads}"));
            let mut writer = CkptWriter::create(&path, "test fp").unwrap();
            let sup = Supervisor::with_fault(FaultPlan::none().kill_after_records(2));
            let out =
                memberships_lanes_supervised(&MODELS, &u, &cfg, &sup, None, Some((&mut writer, 1)));
            assert_eq!(out.status, SweepStatus::Killed);
            drop(writer);
            let ck = crate::ckpt::Checkpoint::load(&path).unwrap();
            let (frontier, counts) = decode_counts_snapshot(ck.latest().unwrap()).unwrap();
            let mut writer = CkptWriter::append_to(&path).unwrap();
            let resumed = memberships_lanes_supervised(
                &MODELS,
                &u,
                &cfg,
                &Supervisor::none(),
                Some((frontier, counts)),
                Some((&mut writer, 1)),
            );
            assert!(resumed.is_complete(), "{threads} threads");
            assert_eq!(resumed.value, clean, "{threads} threads: resume must be bit-identical");
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn lane_and_scalar_snapshots_interoperate() {
        // A journal written by the scalar engine can seed a lane resume:
        // the snapshot encoding (frontier + counts) is engine-agnostic.
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2).canonical(true);
        let clean =
            memberships_supervised(&MODELS, &u, &cfg, &Supervisor::none(), None, None).value;
        let path = temp("lane-interop");
        let mut writer = CkptWriter::create(&path, "test fp").unwrap();
        let sup = Supervisor::with_fault(FaultPlan::none().kill_after_records(2));
        let out = memberships_supervised(&MODELS, &u, &cfg, &sup, None, Some((&mut writer, 1)));
        assert_eq!(out.status, SweepStatus::Killed);
        drop(writer);
        let ck = crate::ckpt::Checkpoint::load(&path).unwrap();
        let (frontier, counts) = decode_counts_snapshot(ck.latest().unwrap()).unwrap();
        let resumed = memberships_lanes_supervised(
            &MODELS,
            &u,
            &cfg,
            &Supervisor::none(),
            Some((frontier, counts)),
            None,
        );
        assert!(resumed.is_complete());
        assert_eq!(resumed.value, clean, "scalar journal + lane resume must match clean scalar");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn degraded_compare_keeps_other_witnesses() {
        // Panic at task 0 (the empty poset, which witnesses nothing):
        // the LC/NN disagreement witnesses must still equal the serial
        // scan's, and the verdict must be Degraded, not a crash.
        let u = Universe::new(3, 1);
        let serial = compare(&Model::Lc, &Model::Nn, &u);
        let sup = Supervisor::with_fault(FaultPlan::none().panic_at_task(0));
        let out =
            compare_supervised(&Model::Lc, &Model::Nn, &u, &SweepConfig::with_threads(2), &sup);
        assert_eq!(out.status, SweepStatus::Degraded);
        assert_eq!(out.value.relation, serial.relation);
        assert_eq!(out.value.a_only, serial.a_only);
        assert_eq!(out.value.b_only, serial.b_only);
        // Exactly the empty computation's single pair is missing.
        assert_eq!(out.value.pairs_checked, serial.pairs_checked - 1);
    }

    #[test]
    fn degraded_witness_search_does_not_abort() {
        let u = Universe::new(3, 1);
        let cfg = SweepConfig::with_threads(2);
        let sup = Supervisor::with_fault(FaultPlan::none().panic_at_task(0));
        let out = check_complete_supervised(&Model::Nn, &u, &cfg, &sup);
        assert_eq!(out.status, SweepStatus::Degraded);
        assert!(out.value.is_none(), "NN is complete at this bound");
        assert_eq!(out.quarantined.len(), 1);
    }

    #[test]
    fn lane_constructibility_witness_matches_scalar() {
        // NN first fails constructibility at the 5-node bound: both
        // engines must return the *same* first witness (min task,
        // labelling, location-major observer, op). Below the bound (and
        // at two locations) both must agree there is none.
        for &(b, l, fails) in &[(4usize, 1usize, false), (3, 2, false), (5, 1, true)] {
            let u = Universe::new(b, l);
            for cfg in [
                SweepConfig::with_threads(1),
                SweepConfig::with_threads(4),
                SweepConfig { canonical: true, ..SweepConfig::with_threads(2) },
            ] {
                let scalar =
                    check_constructible_aug_supervised(&Model::Nn, &u, &cfg, &Supervisor::none())
                        .expect_complete("scalar constructibility");
                let lane = check_constructible_aug_lanes_supervised(
                    &Model::Nn,
                    &u,
                    &cfg,
                    &Supervisor::none(),
                )
                .expect_complete("lane constructibility");
                assert_eq!(scalar.is_some(), fails, "scalar at bound {b}, {l} locs");
                match (scalar, lane) {
                    (None, None) => {}
                    (Some(s), Some(n)) => {
                        assert_eq!(s.c, n.c);
                        assert_eq!(s.phi, n.phi);
                        assert_eq!(s.extension, n.extension);
                        assert_eq!(s.op, n.op);
                    }
                    (s, n) => panic!("engines disagree: scalar {s:?} vs lane {n:?}"),
                }
            }
        }
        // Constructible models return no witness under either engine.
        let u = Universe::new(3, 2);
        let cfg = SweepConfig::with_threads(2);
        for m in [Model::Sc, Model::Lc, Model::Ww] {
            let lane = check_constructible_aug_lanes_supervised(&m, &u, &cfg, &Supervisor::none())
                .expect_complete("lane constructibility");
            assert!(lane.is_none(), "{m:?} is constructible");
        }
    }

    #[test]
    fn counts_snapshot_round_trip() {
        let mut f = Frontier::new();
        f.insert(3);
        f.insert(4);
        f.insert(9);
        let counts = CountsState { pairs: 123, per_model: vec![7, 0, 99] };
        let bytes = encode_counts_snapshot(&f, &counts);
        let (f2, c2) = decode_counts_snapshot(&bytes).unwrap();
        assert_eq!(f2, f);
        assert_eq!(c2, counts);
        assert!(decode_counts_snapshot(&bytes[..bytes.len() - 3]).is_none());
    }
}
