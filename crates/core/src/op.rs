//! Memory locations and abstract instructions.
//!
//! The paper fixes the instruction set
//! `O = {R(l) : l ∈ L} ∪ {W(l) : l ∈ L} ∪ {N}` — reads, writes, and a
//! no-op `N` standing for any instruction that does not touch memory
//! (Section 2). Data values are abstracted away; they reappear only in
//! [`crate::exec`] for concrete executions.

/// A memory location, a dense index in `0..num_locations`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(pub u32);

serde::impl_serde_newtype!(Location);

impl Location {
    /// The location's dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `Location` from a dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        Location(index as u32)
    }
}

impl std::fmt::Debug for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// An abstract instruction.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// `R(l)` — read location `l`.
    Read(Location),
    /// `W(l)` — write location `l`.
    Write(Location),
    /// `N` — an instruction that does not access memory.
    Nop,
}

impl Op {
    /// Whether this is a write to `l`.
    #[inline]
    pub fn is_write_to(self, l: Location) -> bool {
        self == Op::Write(l)
    }

    /// Whether this is a read of `l`.
    #[inline]
    pub fn is_read_of(self, l: Location) -> bool {
        self == Op::Read(l)
    }

    /// The location accessed, if any.
    pub fn location(self) -> Option<Location> {
        match self {
            Op::Read(l) | Op::Write(l) => Some(l),
            Op::Nop => None,
        }
    }

    /// All instructions over `num_locations` locations, in a fixed order:
    /// `N, R(0), W(0), R(1), W(1), …`.
    pub fn all(num_locations: usize) -> Vec<Op> {
        let mut ops = Vec::with_capacity(1 + 2 * num_locations);
        ops.push(Op::Nop);
        for l in 0..num_locations {
            ops.push(Op::Read(Location::new(l)));
            ops.push(Op::Write(Location::new(l)));
        }
        ops
    }
}

// Externally-tagged encoding, as the upstream serde derive would emit:
// `"Nop"` for the unit variant, `{"Read": l}` / `{"Write": l}` otherwise.
impl serde::Serialize for Op {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let v = match self {
            Op::Nop => serde::Value::Str("Nop".to_string()),
            Op::Read(l) => serde::Value::Map(vec![("Read".to_string(), serde::to_value(l))]),
            Op::Write(l) => serde::Value::Map(vec![("Write".to_string(), serde::to_value(l))]),
        };
        s.serialize_value(v)
    }
}

impl<'de> serde::Deserialize<'de> for Op {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        use serde::de::Error;
        match d.take_value()? {
            serde::Value::Str(tag) if tag == "Nop" => Ok(Op::Nop),
            serde::Value::Map(entries) if entries.len() == 1 => {
                let (tag, payload) = entries.into_iter().next().expect("len checked");
                let l: Location = serde::from_value(payload)?;
                match tag.as_str() {
                    "Read" => Ok(Op::Read(l)),
                    "Write" => Ok(Op::Write(l)),
                    other => Err(D::Error::custom(format_args!("unknown Op variant `{other}`"))),
                }
            }
            other => Err(D::Error::custom(format_args!("expected Op, found {other:?}"))),
        }
    }
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read(l) => write!(f, "R({l})"),
            Op::Write(l) => write!(f, "W({l})"),
            Op::Nop => write!(f, "N"),
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_predicates() {
        let l0 = Location::new(0);
        let l1 = Location::new(1);
        assert!(Op::Write(l0).is_write_to(l0));
        assert!(!Op::Write(l0).is_write_to(l1));
        assert!(!Op::Read(l0).is_write_to(l0));
        assert!(Op::Read(l1).is_read_of(l1));
        assert!(!Op::Nop.is_read_of(l0));
    }

    #[test]
    fn location_extraction() {
        assert_eq!(Op::Read(Location::new(3)).location(), Some(Location::new(3)));
        assert_eq!(Op::Write(Location::new(0)).location(), Some(Location::new(0)));
        assert_eq!(Op::Nop.location(), None);
    }

    #[test]
    fn all_ops_enumeration() {
        let ops = Op::all(2);
        assert_eq!(ops.len(), 5);
        assert_eq!(ops[0], Op::Nop);
        assert!(ops.contains(&Op::Read(Location::new(1))));
        assert!(ops.contains(&Op::Write(Location::new(0))));
        assert_eq!(Op::all(0), vec![Op::Nop]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Op::Read(Location::new(2)).to_string(), "R(l2)");
        assert_eq!(Op::Write(Location::new(0)).to_string(), "W(l0)");
        assert_eq!(Op::Nop.to_string(), "N");
    }
}
