//! # ccmm-core — computation-centric memory models
//!
//! An executable rendition of the theory in Frigo & Luchangco,
//! *Computation-Centric Memory Models* (SPAA 1998):
//!
//! * [`Computation`]: a dag of instruction instances (Definition 1);
//! * [`ObserverFunction`]: which write each node observes (Definition 2);
//! * [`model`]: the memory-model trait plus exact membership checkers for
//!   SC, LC, and the Q-dag-consistency family NN/NW/WN/WW (Definitions
//!   17, 18, 20), with brute-force twins for cross-validation;
//! * [`oracle`]: definitional oracle deciders — the models transliterated
//!   from the paper with no algorithmic shortcuts, for differential
//!   conformance testing of the fast checkers;
//! * [`enumerate`]: exhaustive enumeration of valid observer functions;
//! * [`universe`]: bounded universes of computations (all naturally
//!   labelled posets × op labellings up to a node budget);
//! * [`relation`]: decide stronger/weaker/equal/incomparable between
//!   models over a universe (Figure 1's lattice, machine-checked);
//! * [`props`]: completeness, monotonicity, and constructibility checkers
//!   (Definitions 5, 6; Theorems 10, 12);
//! * [`sweep`]: the parallel universe-sweep engine sharding the
//!   (poset × labelling) space across threads, with deterministic
//!   (serial-identical) counts and witnesses;
//! * [`sweep::supervisor`], [`fault`], [`ckpt`]: fault-tolerant sweep
//!   supervision — panic quarantine, deadline budgets, and crash-safe
//!   checkpoint/resume, exercised by a deterministic fault-injection
//!   plan;
//! * [`constructible`]: the bounded Δ* fixpoint (Definition 8, Theorem 9)
//!   used to machine-check `LC = NN*` (Theorem 23);
//! * [`telemetry`]: zero-cost-when-disabled counters, spans, and
//!   progress heartbeats threaded through every long-running path;
//! * [`witness`]: the paper's Figures 2–4 as concrete library values;
//! * [`exec`] and [`litmus`]: value semantics and litmus-test outcomes
//!   under each model;
//! * [`trace`]: post-mortem verification of value traces (\[GK94\]);
//! * [`procs`]: the processor-centric bridge (threads → chains).
//!
//! # Example
//!
//! Build a computation, pick an observer function, and ask the models:
//!
//! ```
//! use ccmm_core::{Computation, Location, Model, ObserverFunction, Op};
//! use ccmm_dag::NodeId;
//!
//! // W(l) -> R(l), with a second W(l) racing alongside.
//! let l = Location::new(0);
//! let c = Computation::from_edges(
//!     3,
//!     &[(0, 1)],
//!     vec![Op::Write(l), Op::Read(l), Op::Write(l)],
//! );
//!
//! // The read observes the racing write — allowed even by SC (the race
//! // serializes in between).
//! let phi = ObserverFunction::base(&c).with(l, NodeId::new(1), Some(NodeId::new(2)));
//! assert!(Model::Sc.contains(&c, &phi));
//!
//! // The read observing ⊥ would mean the preceding write never happened:
//! // every dag-consistent model forbids it.
//! let stale = ObserverFunction::base(&c);
//! assert!(!Model::Ww.contains(&c, &stale));
//! assert!(Model::Any.contains(&c, &stale), "but it is a *valid* observer");
//! ```

#![warn(missing_docs)]

pub mod ckpt;
pub mod computation;
pub mod constructible;
pub mod enumerate;
pub mod error;
pub mod exec;
pub mod fault;
pub mod last_writer;
pub mod litmus;
pub mod locks;
pub mod model;
pub mod observer;
pub mod online;
pub mod op;
pub mod oracle;
pub mod parse;
pub mod procs;
pub mod props;
pub mod relation;
pub mod serve;
pub mod stream;
pub mod sweep;
pub mod telemetry;
pub mod trace;
pub mod universe;
pub mod witness;

pub use computation::Computation;
pub use error::CoreError;
pub use model::{AnyObserver, LanePack, LaneScratch, Lc, MemoryModel, Model, Nn, Nw, Sc, Wn, Ww};
pub use observer::ObserverFunction;
pub use op::{Location, Op};
pub use oracle::Oracle;
pub use stream::{AccessVerdict, StreamChecker, StreamVerdicts};
