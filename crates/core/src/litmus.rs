//! Litmus tests in the computation-centric setting.
//!
//! A litmus test is a small computation with designated reads; its
//! *outcome set* under a model is every tuple of read results realisable
//! by some observer function in the model. Because computations carry no
//! processors, the classic tests are expressed as independent chains
//! ("threads" connected only through memory): exactly the situation where
//! processor-centric and computation-centric models are comparable.
//!
//! The standard batch — message passing, store buffering, coherence of
//! read-read, IRIW — shows the lattice of Figure 1 as observable
//! behaviour: each weaker model admits a superset of outcomes.

use crate::computation::Computation;
use crate::enumerate::for_each_observer;
use crate::exec::Execution;
use crate::model::MemoryModel;
use crate::op::{Location, Op};
use ccmm_dag::NodeId;
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// A named litmus test.
pub struct LitmusTest {
    /// Test name, e.g. `"MP"`.
    pub name: &'static str,
    /// The computation (threads = chains).
    pub computation: Computation,
    /// The reads whose results constitute an outcome, in report order.
    pub observed: Vec<NodeId>,
    /// Human-readable description of the forbidden/interesting outcome.
    pub note: &'static str,
}

impl LitmusTest {
    /// All outcomes (tuples of observed-read results) realisable under
    /// `model`. Writes carry token values `node + 1`; initial memory is 0.
    pub fn outcomes<M: MemoryModel>(&self, model: &M) -> BTreeSet<Vec<u64>> {
        let mut out = BTreeSet::new();
        let _ = for_each_observer(&self.computation, |phi| {
            if model.contains(&self.computation, phi) {
                let e = Execution::with_token_values(&self.computation, phi);
                out.insert(self.observed.iter().map(|&r| e.read_result(r)).collect());
            }
            ControlFlow::Continue(())
        });
        out
    }

    /// Whether `model` admits the given outcome.
    pub fn admits<M: MemoryModel>(&self, model: &M, outcome: &[u64]) -> bool {
        self.outcomes(model).contains(outcome)
    }
}

fn l(i: usize) -> Location {
    Location::new(i)
}
fn n(i: usize) -> NodeId {
    NodeId::new(i)
}

/// Message passing (MP): writer thread `W data=token; W flag=token`,
/// reader thread `R flag; R data`. The relaxed outcome is "flag seen, data
/// stale": `[flag_token, 0]`.
pub fn message_passing() -> LitmusTest {
    // Nodes: 0 = W(data), 1 = W(flag), 2 = R(flag), 3 = R(data).
    let c = Computation::from_edges(
        4,
        &[(0, 1), (2, 3)],
        vec![Op::Write(l(0)), Op::Write(l(1)), Op::Read(l(1)), Op::Read(l(0))],
    );
    LitmusTest {
        name: "MP",
        computation: c,
        observed: vec![n(2), n(3)],
        note: "flag observed but data stale ([2,0]) is forbidden by SC, allowed by LC",
    }
}

/// Store buffering (SB): thread 1 `W x; R y`, thread 2 `W y; R x`. The
/// relaxed outcome is both reads stale: `[0, 0]`.
pub fn store_buffering() -> LitmusTest {
    // Nodes: 0 = W(x), 1 = R(y), 2 = W(y), 3 = R(x).
    let c = Computation::from_edges(
        4,
        &[(0, 1), (2, 3)],
        vec![Op::Write(l(0)), Op::Read(l(1)), Op::Write(l(1)), Op::Read(l(0))],
    );
    LitmusTest {
        name: "SB",
        computation: c,
        observed: vec![n(1), n(3)],
        note: "both reads stale ([0,0]) is forbidden by SC, allowed by LC",
    }
}

/// Coherence of read-read (CoRR): writer `W x` twice (serialized), reader
/// `R x; R x`. The anomalous outcome is new-then-old: `[2, 1]`.
pub fn coherence_rr() -> LitmusTest {
    // Nodes: 0 = W(x) (token 1), 1 = W(x) (token 2), 2 = R(x), 3 = R(x).
    let c = Computation::from_edges(
        4,
        &[(0, 1), (2, 3)],
        vec![Op::Write(l(0)), Op::Write(l(0)), Op::Read(l(0)), Op::Read(l(0))],
    );
    LitmusTest {
        name: "CoRR",
        computation: c,
        observed: vec![n(2), n(3)],
        note: "reads going backwards ([2,1]) is forbidden by SC and LC, \
               allowed by every dag-consistent model (Theorem 22 strictness)",
    }
}

/// Independent reads of independent writes (IRIW): writers `W x` ∥ `W y`,
/// two reader threads observing in opposite orders.
pub fn iriw() -> LitmusTest {
    // Nodes: 0 = W(x), 1 = W(y),
    //        2 = R(x), 3 = R(y)   (thread A),
    //        4 = R(y), 5 = R(x)   (thread B).
    let c = Computation::from_edges(
        6,
        &[(2, 3), (4, 5)],
        vec![
            Op::Write(l(0)),
            Op::Write(l(1)),
            Op::Read(l(0)),
            Op::Read(l(1)),
            Op::Read(l(1)),
            Op::Read(l(0)),
        ],
    );
    LitmusTest {
        name: "IRIW",
        computation: c,
        observed: vec![n(2), n(3), n(4), n(5)],
        note: "opposite observed orders ([1,0,2,0]) forbidden by SC, allowed by LC",
    }
}

/// Load buffering (LB): thread 1 `R x; W y`, thread 2 `R y; W x`. The
/// relaxed outcome is both reads seeing the *other thread's* later write.
/// Note the computation-centric subtlety: observing a write is not a dag
/// edge, so Condition 2.2 (a node never precedes what it observes) does
/// not close the "causal" cycle here — each read is incomparable to the
/// write it observes. SC forbids the outcome (the four constraints are
/// cyclic in any single serialization); LC and the dag-consistent models
/// allow it.
pub fn load_buffering() -> LitmusTest {
    // Nodes: 0 = R(x), 1 = W(y), 2 = R(y), 3 = W(x).
    let c = Computation::from_edges(
        4,
        &[(0, 1), (2, 3)],
        vec![Op::Read(l(0)), Op::Write(l(1)), Op::Read(l(1)), Op::Write(l(0))],
    );
    LitmusTest {
        name: "LB",
        computation: c,
        observed: vec![n(0), n(2)],
        note: "both reads seeing the other thread's write ([4,2]) is \
               forbidden by SC, allowed by LC — observation is not an edge, \
               so no Condition-2.2 cycle forms",
    }
}

/// Write-to-read causality (WRC): writer `W x`; forwarder `R x; W y`;
/// reader `R y; R x`. The relaxed outcome: the reader sees y (so the
/// forwarder saw x) but misses x — causality through two threads.
pub fn wrc() -> LitmusTest {
    // Nodes: 0 = W(x) | 1 = R(x), 2 = W(y) | 3 = R(y), 4 = R(x).
    let c = Computation::from_edges(
        5,
        &[(1, 2), (3, 4)],
        vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(1)), Op::Read(l(1)), Op::Read(l(0))],
    );
    LitmusTest {
        name: "WRC",
        computation: c,
        observed: vec![n(1), n(3), n(4)],
        note: "forwarded-but-missed ([1,3,0]) is forbidden by SC, \
               allowed by LC (per-location serialization has no cross-location causality)",
    }
}

/// 2+2W: thread 1 `W x=a; W y=b'`, thread 2 `W y=b; W x=a'`. The relaxed
/// outcome is each location ending on the *first* write of the opposing
/// thread — the two per-location orders contradicting program order.
/// Observed via two final reads following both threads.
pub fn two_plus_two_w() -> LitmusTest {
    // Nodes: 0 = W(x), 1 = W(y) | 2 = W(y), 3 = W(x) | 4 = R(x), 5 = R(y).
    let c = Computation::from_edges(
        6,
        &[(0, 1), (2, 3), (1, 4), (3, 4), (1, 5), (3, 5)],
        vec![
            Op::Write(l(0)),
            Op::Write(l(1)),
            Op::Write(l(1)),
            Op::Write(l(0)),
            Op::Read(l(0)),
            Op::Read(l(1)),
        ],
    );
    LitmusTest {
        name: "2+2W",
        computation: c,
        observed: vec![n(4), n(5)],
        note: "x ends on thread-1's write AND y ends on thread-2's write \
               ([1,3]) is forbidden by SC, allowed by LC",
    }
}

/// Coherence of write-read (CoWR): one thread `W x; R x`, another `W x`.
/// The anomalous outcome is the read missing its own program-order write
/// in favour of ⊥; seeing the *other* write is legal (it may serialize in
/// between).
pub fn coherence_wr() -> LitmusTest {
    // Nodes: 0 = W(x), 1 = R(x) | 2 = W(x).
    let c = Computation::from_edges(
        3,
        &[(0, 1)],
        vec![Op::Write(l(0)), Op::Read(l(0)), Op::Write(l(0))],
    );
    LitmusTest {
        name: "CoWR",
        computation: c,
        observed: vec![n(1)],
        note: "the read returning 0 (own write lost) is forbidden by all \
               four dag-consistent models via the virtual-initial-write triples",
    }
}

/// The standard batch.
pub fn standard_tests() -> Vec<LitmusTest> {
    vec![
        message_passing(),
        store_buffering(),
        coherence_rr(),
        iriw(),
        load_buffering(),
        wrc(),
        two_plus_two_w(),
        coherence_wr(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lc, Model, Nn, Sc, Ww};

    #[test]
    fn mp_stale_data_forbidden_by_sc_allowed_by_lc() {
        let t = message_passing();
        // Writer tokens: data-write node 0 → 1, flag-write node 1 → 2.
        let relaxed = vec![2, 0];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed));
        assert!(t.admits(&Nn::new(), &relaxed));
    }

    #[test]
    fn mp_sequential_outcome_allowed_everywhere() {
        let t = message_passing();
        let seq = vec![2, 1]; // flag seen, data seen
        for m in Model::ALL {
            assert!(t.admits(&m, &seq), "{m} must admit the MP success outcome");
        }
    }

    #[test]
    fn sb_both_stale_forbidden_by_sc() {
        let t = store_buffering();
        let relaxed = vec![0, 0];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed));
    }

    #[test]
    fn corr_backwards_reads_separate_lc_from_nn() {
        // The reader chain is incomparable with the writer chain, so no
        // NN triple relates the reads to the writes: NN *admits* the
        // backwards outcome. LC forbids it — the blocks of the two writes
        // would have to precede each other both ways. This is exactly the
        // LC ⊊ NN strictness of Theorem 22, observable as values.
        let t = coherence_rr();
        let backwards = vec![2, 1];
        assert!(!t.admits(&Sc, &backwards));
        assert!(!t.admits(&Lc, &backwards));
        assert!(t.admits(&Nn::new(), &backwards), "NN cannot order unrelated reads");
        assert!(t.admits(&Ww::new(), &backwards));
    }

    #[test]
    fn iriw_disagreement_forbidden_by_sc_only() {
        let t = iriw();
        // A sees x (token 1) then misses y; B sees y (token 2) then misses x.
        let relaxed = vec![1, 0, 2, 0];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed));
    }

    #[test]
    fn outcome_sets_nest_with_model_strength() {
        // SC ⊆ LC ⊆ NN ⊆ WW outcome sets, per test.
        for t in standard_tests() {
            let sc = t.outcomes(&Sc);
            let lc = t.outcomes(&Lc);
            let nn = t.outcomes(&Nn::new());
            let ww = t.outcomes(&Ww::new());
            assert!(sc.is_subset(&lc), "{}: SC ⊄ LC", t.name);
            assert!(lc.is_subset(&nn), "{}: LC ⊄ NN", t.name);
            assert!(nn.is_subset(&ww), "{}: NN ⊄ WW", t.name);
        }
    }

    #[test]
    fn every_test_has_some_sc_outcome() {
        for t in standard_tests() {
            assert!(!t.outcomes(&Sc).is_empty(), "{} has no SC outcome", t.name);
        }
    }

    #[test]
    fn lb_cycle_forbidden_by_sc_only() {
        let t = load_buffering();
        // Thread-other writes: node 3 (token 4) and node 1 (token 2).
        let relaxed = vec![4, 2];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed), "observation is not an edge");
        assert!(t.admits(&Nn::new(), &relaxed));
    }

    #[test]
    fn wrc_causality_forbidden_by_sc_allowed_by_lc() {
        let t = wrc();
        // Forwarder saw x (token 1), reader saw y (token 3) but missed x.
        let relaxed = vec![1, 3, 0];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed));
        // The causal outcome is fine everywhere.
        let causal = vec![1, 3, 1];
        assert!(t.admits(&Sc, &causal));
    }

    #[test]
    fn two_plus_two_w_opposing_orders() {
        let t = two_plus_two_w();
        // x ends on node 0 (token 1), y ends on node 2 (token 3).
        let relaxed = vec![1, 3];
        assert!(!t.admits(&Sc, &relaxed));
        assert!(t.admits(&Lc, &relaxed));
        // Agreeing orders are SC.
        let agree = vec![4, 2]; // x ends on node 3, y ends on node 1
        assert!(t.admits(&Sc, &agree));
    }

    #[test]
    fn cowr_lost_own_write_forbidden_by_dag_models() {
        let t = coherence_wr();
        let lost = vec![0];
        for m in [Model::Sc, Model::Lc, Model::Nn, Model::Nw, Model::Wn, Model::Ww] {
            assert!(!t.admits(&m, &lost), "{m} must forbid losing the own write");
        }
        assert!(t.admits(&Model::Any, &lost), "validity alone allows it");
        // Seeing the own write or the other write is fine everywhere.
        assert!(t.admits(&Sc, &[1]));
        assert!(t.admits(&Sc, &[3]));
    }

    #[test]
    fn extended_batch_still_nests() {
        for t in [load_buffering(), wrc(), two_plus_two_w(), coherence_wr()] {
            let sc = t.outcomes(&Sc);
            let lc = t.outcomes(&Lc);
            let nn = t.outcomes(&Nn::new());
            assert!(sc.is_subset(&lc), "{}", t.name);
            assert!(lc.is_subset(&nn), "{}", t.name);
        }
    }
}
