//! Definitional oracle deciders for every model of the paper.
//!
//! The production checkers in [`crate::model`] earn their speed with
//! algorithmic shortcuts (block contraction for LC, per-triple early
//! exits for the Q-dag family). An **oracle** is the opposite trade: a
//! decider transliterated from the paper's definition with no shortcuts
//! at all, so slow that it is only usable on small computations — and so
//! simple that its correctness is evident by inspection against the
//! definition text.
//!
//! * [`Oracle::Sc`] / [`Oracle::Lc`] quantify over **all topological
//!   sorts** and compare last-writer functions, verbatim Definitions
//!   17/18 (built on the Defs. 13–16 machinery in
//!   [`crate::last_writer`]);
//! * [`Oracle::Nn`] … [`Oracle::Ww`] iterate **every** `(l, u, v, w)`
//!   triple with `u ≺ v ≺ w` (including `u = ⊥`), verbatim
//!   Definition 20;
//! * [`Oracle::Any`] is Definition 2's validity check alone.
//!
//! The oracles exist to be disagreed with: `ccmm-conformance`
//! differentially tests each fast checker against its oracle over
//! exhaustive, random, and harvested `(C, Φ)` sources, and shrinks any
//! disagreement to a minimal witness.

use crate::computation::Computation;
use crate::model::brute::{lc_brute, qdag_brute, sc_brute};
use crate::model::dagcons::{NnPred, NwPred, QPredicate, WnPred, WwPred};
use crate::model::{MemoryModel, Model};
use crate::observer::ObserverFunction;

/// A definitional oracle decider, one per [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Oracle {
    /// Definition 17: `∃T ∈ TS(C)` with `Φ = W_T` everywhere.
    Sc,
    /// Definition 18: per location, `∃T ∈ TS(C)` with `Φ(l,·) = W_T(l,·)`.
    Lc,
    /// Definition 20 with `Q = true`.
    Nn,
    /// Definition 20 with `Q` = "`v` writes `l`".
    Nw,
    /// Definition 20 with `Q` = "`u` writes `l`" (⊥ counts as a write).
    Wn,
    /// Definition 20 with `Q` = "`u` and `v` write `l`".
    Ww,
    /// Definition 2 alone: every valid pair.
    Any,
}

impl Oracle {
    /// The oracle twin of a fast model.
    pub fn for_model(m: Model) -> Oracle {
        match m {
            Model::Sc => Oracle::Sc,
            Model::Lc => Oracle::Lc,
            Model::Nn => Oracle::Nn,
            Model::Nw => Oracle::Nw,
            Model::Wn => Oracle::Wn,
            Model::Ww => Oracle::Ww,
            Model::Any => Oracle::Any,
        }
    }

    /// The fast model this oracle is the twin of.
    pub fn model(self) -> Model {
        match self {
            Oracle::Sc => Model::Sc,
            Oracle::Lc => Model::Lc,
            Oracle::Nn => Model::Nn,
            Oracle::Nw => Model::Nw,
            Oracle::Wn => Model::Wn,
            Oracle::Ww => Model::Ww,
            Oracle::Any => Model::Any,
        }
    }
}

impl MemoryModel for Oracle {
    fn name(&self) -> &str {
        match self {
            Oracle::Sc => "SC-oracle",
            Oracle::Lc => "LC-oracle",
            Oracle::Nn => "NN-oracle",
            Oracle::Nw => "NW-oracle",
            Oracle::Wn => "WN-oracle",
            Oracle::Ww => "WW-oracle",
            Oracle::Any => "Any-oracle",
        }
    }

    fn contains(&self, c: &Computation, phi: &ObserverFunction) -> bool {
        crate::telemetry::count(crate::telemetry::Counter::OracleChecks, 1);
        match self {
            Oracle::Sc => sc_brute(c, phi),
            Oracle::Lc => lc_brute(c, phi),
            Oracle::Nn => qdag_brute(c, phi, NnPred::holds),
            Oracle::Nw => qdag_brute(c, phi, NwPred::holds),
            Oracle::Wn => qdag_brute(c, phi, WnPred::holds),
            Oracle::Ww => qdag_brute(c, phi, WwPred::holds),
            Oracle::Any => phi.is_valid_for(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::for_each_observer;
    use crate::universe::Universe;
    use std::ops::ControlFlow;

    #[test]
    fn oracle_roundtrips_through_model() {
        for m in Model::ALL {
            assert_eq!(Oracle::for_model(m).model(), m);
        }
    }

    #[test]
    fn oracle_names_are_tagged() {
        for m in Model::ALL {
            let o = Oracle::for_model(m);
            assert!(o.name().starts_with(m.name()));
            assert!(o.name().ends_with("-oracle"));
        }
    }

    #[test]
    fn oracles_agree_with_fast_checkers_on_a_small_universe() {
        // The conformance crate sweeps far larger spaces; this is the
        // in-crate sanity anchor.
        let u = Universe::new(3, 1);
        let _ = u.for_each_computation(|c| {
            for_each_observer(c, |phi| {
                for m in Model::ALL {
                    assert_eq!(
                        m.contains(c, phi),
                        Oracle::for_model(m).contains(c, phi),
                        "{m} disagrees with its oracle on {c:?} {phi:?}"
                    );
                }
                ControlFlow::Continue(())
            })
        });
    }

    #[test]
    fn oracles_reject_invalid_observers() {
        use crate::op::{Location, Op};
        let c = Computation::from_edges(1, &[], vec![Op::Write(Location::new(0))]);
        let bad = ObserverFunction::bottom(1, 1);
        for m in Model::ALL {
            assert!(!Oracle::for_model(m).contains(&c, &bad));
        }
    }
}
